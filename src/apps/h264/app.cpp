#include "apps/h264/app.hpp"

#include "apps/h264/h264_codec.hpp"

namespace sccft::apps::h264 {

ApplicationSpec make_application(std::uint64_t content_seed) {
  ApplicationSpec app;
  app.name = "h264";
  app.topology = ReplicaTopology::kSingleStage;
  app.input_token_bytes = kFrameWidth * kFrameHeight;  // raw frame in
  app.output_token_bytes = 8 * 1024;                   // nominal encoded size
  app.stage_compute_time = rtc::from_ms(2.5);

  // Asymmetric replica jitters (see header).
  app.timing.producer = rtc::PJD::from_ms(30, 1, 30);
  app.timing.replica1_in = rtc::PJD::from_ms(30, 4, 30);
  app.timing.replica1_out = rtc::PJD::from_ms(30, 4, 30);
  app.timing.replica2_in = rtc::PJD::from_ms(30, 20, 30);
  app.timing.replica2_out = rtc::PJD::from_ms(30, 20, 30);
  app.timing.consumer = rtc::PJD::from_ms(30, 1, 30);

  app.make_input = [content_seed](std::uint64_t index) -> Bytes {
    return generate_frame(kFrameWidth, kFrameHeight, index, content_seed).pixels;
  };
  app.transform = [](BytesView input) -> Bytes {
    Frame frame{kFrameWidth, kFrameHeight, Bytes(input.begin(), input.end())};
    return encode_frame(frame, kQp);
  };
  return app;
}

}  // namespace sccft::apps::h264
