#include "apps/h264/h264_codec.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "util/assert.hpp"
#include "util/bitio.hpp"

namespace sccft::apps::h264 {

namespace {

/// Position class of a coefficient: 0 = both coords even, 1 = both odd,
/// 2 = mixed (H.264 8.5.9's three V/MF classes).
int position_class(int x, int y) {
  const bool ex = (x % 2) == 0;
  const bool ey = (y % 2) == 0;
  if (ex && ey) return 0;
  if (!ex && !ey) return 1;
  return 2;
}

/// Forward quant multipliers MF for qp%6 in {0..5} x class {0,1,2}.
constexpr std::array<std::array<int, 3>, 6> kMf = {{{13107, 5243, 8066},
                                                    {11916, 4660, 7490},
                                                    {10082, 4194, 6554},
                                                    {9362, 3647, 5825},
                                                    {8192, 3355, 5243},
                                                    {7282, 2893, 4559}}};

/// Dequant scales V for qp%6 x class.
constexpr std::array<std::array<int, 3>, 6> kV = {{{10, 16, 13},
                                                   {11, 18, 14},
                                                   {13, 20, 16},
                                                   {14, 23, 18},
                                                   {16, 25, 20},
                                                   {18, 29, 23}}};

struct Prediction {
  std::array<int, 16> values{};
};

/// Builds the predictor for a block at (bx*4, by*4) from reconstructed
/// neighbours; availability follows raster coding order.
Prediction predict(IntraMode mode, const Frame& recon, int x0, int y0) {
  Prediction pred;
  const bool have_top = y0 > 0;
  const bool have_left = x0 > 0;
  auto top = [&](int dx) { return static_cast<int>(recon.at(x0 + dx, y0 - 1)); };
  auto left = [&](int dy) { return static_cast<int>(recon.at(x0 - 1, y0 + dy)); };

  switch (mode) {
    case IntraMode::kVertical:
      SCCFT_EXPECTS(have_top);
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) pred.values[static_cast<std::size_t>(y * 4 + x)] = top(x);
      }
      break;
    case IntraMode::kHorizontal:
      SCCFT_EXPECTS(have_left);
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) pred.values[static_cast<std::size_t>(y * 4 + x)] = left(y);
      }
      break;
    case IntraMode::kDc: {
      int sum = 0;
      int count = 0;
      if (have_top) {
        for (int x = 0; x < 4; ++x) sum += top(x);
        count += 4;
      }
      if (have_left) {
        for (int y = 0; y < 4; ++y) sum += left(y);
        count += 4;
      }
      const int dc = count > 0 ? (sum + count / 2) / count : 128;
      pred.values.fill(dc);
      break;
    }
  }
  return pred;
}

int sad(const Prediction& pred, const Frame& source, int x0, int y0) {
  int total = 0;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      total += std::abs(static_cast<int>(source.at(x0 + x, y0 + y)) -
                        pred.values[static_cast<std::size_t>(y * 4 + x)]);
    }
  }
  return total;
}

std::uint8_t clamp_pixel(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

void code_block(util::BitWriter& writer, const int levels[16]) {
  int run = 0;
  for (int i = 0; i < 16; ++i) {
    if (levels[i] == 0) {
      ++run;
      continue;
    }
    writer.write_ue(static_cast<std::uint32_t>(run));
    writer.write_se(levels[i]);
    run = 0;
  }
  writer.write_ue(16);  // end of block
}

void read_block(util::BitReader& reader, int levels[16]) {
  std::fill_n(levels, 16, 0);
  int i = 0;
  while (i < 16) {
    const std::uint32_t run = reader.read_ue();
    if (run == 16) return;
    i += static_cast<int>(run);
    SCCFT_ASSERT(i < 16);
    levels[i] = reader.read_se();
    ++i;
  }
  const std::uint32_t eob = reader.read_ue();
  SCCFT_ASSERT(eob == 16);
}

}  // namespace

void forward_transform4x4(const int in[16], int out[16]) {
  // Y = Cf X Cf^T with Cf = [[1,1,1,1],[2,1,-1,-2],[1,-1,-1,1],[1,-2,2,-1]].
  int tmp[16];
  for (int y = 0; y < 4; ++y) {
    const int a = in[y * 4 + 0], b = in[y * 4 + 1], c = in[y * 4 + 2], d = in[y * 4 + 3];
    const int s0 = a + d, s1 = b + c, s2 = b - c, s3 = a - d;
    tmp[y * 4 + 0] = s0 + s1;
    tmp[y * 4 + 1] = 2 * s3 + s2;
    tmp[y * 4 + 2] = s0 - s1;
    tmp[y * 4 + 3] = s3 - 2 * s2;
  }
  for (int x = 0; x < 4; ++x) {
    const int a = tmp[0 * 4 + x], b = tmp[1 * 4 + x], c = tmp[2 * 4 + x], d = tmp[3 * 4 + x];
    const int s0 = a + d, s1 = b + c, s2 = b - c, s3 = a - d;
    out[0 * 4 + x] = s0 + s1;
    out[1 * 4 + x] = 2 * s3 + s2;
    out[2 * 4 + x] = s0 - s1;
    out[3 * 4 + x] = s3 - 2 * s2;
  }
}

void inverse_transform4x4(const int in[16], int out[16]) {
  // H.264 8.5.12.2: rows then columns with half-pel terms, then (x+32)>>6.
  int tmp[16];
  for (int y = 0; y < 4; ++y) {
    const int w0 = in[y * 4 + 0], w1 = in[y * 4 + 1], w2 = in[y * 4 + 2], w3 = in[y * 4 + 3];
    const int e = w0 + w2, f = w0 - w2, g = w1 + (w3 >> 1), h = (w1 >> 1) - w3;
    tmp[y * 4 + 0] = e + g;
    tmp[y * 4 + 1] = f + h;
    tmp[y * 4 + 2] = f - h;
    tmp[y * 4 + 3] = e - g;
  }
  for (int x = 0; x < 4; ++x) {
    const int w0 = tmp[0 * 4 + x], w1 = tmp[1 * 4 + x], w2 = tmp[2 * 4 + x], w3 = tmp[3 * 4 + x];
    const int e = w0 + w2, f = w0 - w2, g = w1 + (w3 >> 1), h = (w1 >> 1) - w3;
    out[0 * 4 + x] = (e + g + 32) >> 6;
    out[1 * 4 + x] = (f + h + 32) >> 6;
    out[2 * 4 + x] = (f - h + 32) >> 6;
    out[3 * 4 + x] = (e - g + 32) >> 6;
  }
}

int quantize(int coeff, int x, int y, int qp) {
  SCCFT_EXPECTS(qp >= 0 && qp <= kMaxQp);
  const int mf = kMf[static_cast<std::size_t>(qp % 6)]
                    [static_cast<std::size_t>(position_class(x, y))];
  const int qbits = 15 + qp / 6;
  const int f = (1 << qbits) / 3;  // intra rounding offset
  const int sign = coeff < 0 ? -1 : 1;
  const int level = (std::abs(coeff) * mf + f) >> qbits;
  return sign * level;
}

int dequantize(int level, int x, int y, int qp) {
  SCCFT_EXPECTS(qp >= 0 && qp <= kMaxQp);
  const int v = kV[static_cast<std::size_t>(qp % 6)]
                  [static_cast<std::size_t>(position_class(x, y))];
  return level * v * (1 << (qp / 6));
}

std::vector<std::uint8_t> encode_frame(const Frame& frame, int qp) {
  SCCFT_EXPECTS(frame.width % kBlock == 0 && frame.height % kBlock == 0);
  SCCFT_EXPECTS(qp >= 0 && qp <= kMaxQp);
  SCCFT_EXPECTS(static_cast<int>(frame.pixels.size()) == frame.width * frame.height);

  util::BitWriter writer;
  writer.write_bits('H', 8);
  writer.write_bits(static_cast<std::uint32_t>(frame.width), 16);
  writer.write_bits(static_cast<std::uint32_t>(frame.height), 16);
  writer.write_bits(static_cast<std::uint32_t>(qp), 8);

  Frame recon{frame.width, frame.height, {}};
  recon.pixels.assign(frame.pixels.size(), 0);

  for (int y0 = 0; y0 < frame.height; y0 += kBlock) {
    for (int x0 = 0; x0 < frame.width; x0 += kBlock) {
      // Candidate modes by neighbour availability; pick best SAD.
      IntraMode best_mode = IntraMode::kDc;
      Prediction best_pred = predict(IntraMode::kDc, recon, x0, y0);
      int best_sad = sad(best_pred, frame, x0, y0);
      if (y0 > 0) {
        auto pred = predict(IntraMode::kVertical, recon, x0, y0);
        const int s = sad(pred, frame, x0, y0);
        if (s < best_sad) {
          best_sad = s;
          best_mode = IntraMode::kVertical;
          best_pred = pred;
        }
      }
      if (x0 > 0) {
        auto pred = predict(IntraMode::kHorizontal, recon, x0, y0);
        const int s = sad(pred, frame, x0, y0);
        if (s < best_sad) {
          best_sad = s;
          best_mode = IntraMode::kHorizontal;
          best_pred = pred;
        }
      }

      int residual[16];
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          residual[y * 4 + x] = static_cast<int>(frame.at(x0 + x, y0 + y)) -
                                best_pred.values[static_cast<std::size_t>(y * 4 + x)];
        }
      }
      int coeffs[16];
      forward_transform4x4(residual, coeffs);
      int levels[16];
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          levels[y * 4 + x] = quantize(coeffs[y * 4 + x], x, y, qp);
        }
      }

      writer.write_ue(static_cast<std::uint32_t>(best_mode));
      code_block(writer, levels);

      // In-loop reconstruction for subsequent predictions.
      int dequant[16];
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          dequant[y * 4 + x] = dequantize(levels[y * 4 + x], x, y, qp);
        }
      }
      int rec_res[16];
      inverse_transform4x4(dequant, rec_res);
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          const int value = best_pred.values[static_cast<std::size_t>(y * 4 + x)] +
                            rec_res[y * 4 + x];
          recon.pixels[static_cast<std::size_t>(y0 + y) *
                           static_cast<std::size_t>(frame.width) +
                       static_cast<std::size_t>(x0 + x)] = clamp_pixel(value);
        }
      }
    }
  }
  return writer.finish();
}

Frame decode_frame(std::span<const std::uint8_t> data) {
  util::BitReader reader(data);
  const std::uint32_t magic = reader.read_bits(8);
  SCCFT_EXPECTS(magic == 'H');
  const int width = static_cast<int>(reader.read_bits(16));
  const int height = static_cast<int>(reader.read_bits(16));
  const int qp = static_cast<int>(reader.read_bits(8));
  SCCFT_EXPECTS(width > 0 && width % kBlock == 0);
  SCCFT_EXPECTS(height > 0 && height % kBlock == 0);
  SCCFT_EXPECTS(qp <= kMaxQp);

  Frame recon{width, height, {}};
  recon.pixels.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                      0);

  for (int y0 = 0; y0 < height; y0 += kBlock) {
    for (int x0 = 0; x0 < width; x0 += kBlock) {
      const auto mode = static_cast<IntraMode>(reader.read_ue());
      const Prediction pred = predict(mode, recon, x0, y0);
      int levels[16];
      read_block(reader, levels);
      int dequant[16];
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          dequant[y * 4 + x] = dequantize(levels[y * 4 + x], x, y, qp);
        }
      }
      int rec_res[16];
      inverse_transform4x4(dequant, rec_res);
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          const int value =
              pred.values[static_cast<std::size_t>(y * 4 + x)] + rec_res[y * 4 + x];
          recon.pixels[static_cast<std::size_t>(y0 + y) * static_cast<std::size_t>(width) +
                       static_cast<std::size_t>(x0 + x)] = clamp_pixel(value);
        }
      }
    }
  }
  return recon;
}

}  // namespace sccft::apps::h264
