// H.264-style intra-only encoder (the paper's third application).
//
// A faithful structural subset of H.264 intra coding: 4x4 luma blocks with
// Vertical / Horizontal / DC intra prediction chosen by SAD, the H.264 4x4
// integer core transform, the standard position-class quantization
// (MF/V tables, QP period of 6), Exp-Golomb entropy coding (ue/se), and
// in-loop reconstruction so prediction always uses decoded (not source)
// neighbours — the property that makes intra coding order-dependent and
// computationally real. A matching decoder is provided for round-trip
// validation.
//
// Bitstream: magic 'H', width u16, height u16, qp u8, then per 4x4 block in
// raster order: ue(mode), coefficients as (run, level) events, ue(16) EOB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common/generators.hpp"

namespace sccft::apps::h264 {

inline constexpr int kBlock = 4;
inline constexpr int kMaxQp = 51;

enum class IntraMode : std::uint8_t { kVertical = 0, kHorizontal = 1, kDc = 2 };

/// Encodes a grayscale frame. Width/height must be multiples of 4; `qp` in
/// [0, 51] as in H.264.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame, int qp = 26);

/// Decodes an encoded frame (round-trip validation).
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> data);

// --- exposed internals (unit-tested) ---

/// H.264 forward core transform of a 4x4 residual (Cf * X * Cf^T).
void forward_transform4x4(const int in[16], int out[16]);

/// H.264 inverse core transform including the final (x + 32) >> 6 scaling.
void inverse_transform4x4(const int in[16], int out[16]);

/// Forward quantization of coefficient `coeff` at block position (x, y):
/// level = sign * ((|coeff| * MF + f) >> (15 + qp/6)), per H.264 8.5.
[[nodiscard]] int quantize(int coeff, int x, int y, int qp);

/// Dequantization: coeff' = level * V * 2^(qp/6).
[[nodiscard]] int dequantize(int level, int x, int y, int qp);

}  // namespace sccft::apps::h264
