// The H.264 encoder application (paper Section 4.2; results mentioned but
// omitted from the paper "due to space constraints" — we generate its
// Table 2 analog).
//
// Input token: one raw QCIF-like 176x144 grayscale frame (25,344 B) at
// ~30 fps; the critical subnetwork is a single intra encoder stage; output
// token: the encoded bitstream (size varies with content). The replica
// jitters are deliberately asymmetric (the paper: "the upper bounds for
// fault detection latency are not always symmetrical (e.g., the H.264
// application)").
#pragma once

#include "apps/common/application.hpp"

namespace sccft::apps::h264 {

inline constexpr int kFrameWidth = 176;
inline constexpr int kFrameHeight = 144;
inline constexpr int kQp = 26;

/// Builds the H.264 intra-encoder application spec.
[[nodiscard]] ApplicationSpec make_application(std::uint64_t content_seed = 2014);

}  // namespace sccft::apps::h264
