// The MJPEG decoder application (paper Section 4.2, Figure 2 top).
//
// Input token: one encoded frame (~10 KB). The critical subnetwork is
// splitstream -> {decode_a, decode_b} -> mergeframe; output token: one
// decoded 320x240 grayscale frame (76.8 KB). Timing per Table 1:
// producer <30, 2, 30> ms, replica 1 <30, 5, 30>, replica 2 <30, 30, 30>,
// consumer <30, 2, 30>.
#pragma once

#include "apps/common/application.hpp"

namespace sccft::apps::mjpeg {

inline constexpr int kFrameWidth = 320;
inline constexpr int kFrameHeight = 240;
inline constexpr int kQuality = 75;

/// Builds the MJPEG decoder application spec.
[[nodiscard]] ApplicationSpec make_application(std::uint64_t content_seed = 2014);

}  // namespace sccft::apps::mjpeg
