#include "apps/mjpeg/app.hpp"

#include "apps/mjpeg/jpeg_codec.hpp"

namespace sccft::apps::mjpeg {

ApplicationSpec make_application(std::uint64_t content_seed) {
  ApplicationSpec app;
  app.name = "mjpeg";
  app.topology = ReplicaTopology::kSplitMerge;
  app.input_token_bytes = 10 * 1024;
  app.output_token_bytes = kFrameWidth * kFrameHeight;  // 76.8 KB decoded
  app.stage_compute_time = rtc::from_ms(2.0);

  // Table 1 (MJPEG row), <period, jitter, min-distance> in ms.
  app.timing.producer = rtc::PJD::from_ms(30, 2, 30);
  app.timing.replica1_in = rtc::PJD::from_ms(30, 5, 30);
  app.timing.replica1_out = rtc::PJD::from_ms(30, 5, 30);
  app.timing.replica2_in = rtc::PJD::from_ms(30, 30, 30);
  app.timing.replica2_out = rtc::PJD::from_ms(30, 30, 30);
  app.timing.consumer = rtc::PJD::from_ms(30, 2, 30);

  app.make_input = [content_seed](std::uint64_t index) -> Bytes {
    const Frame frame = generate_frame(kFrameWidth, kFrameHeight, index, content_seed);
    return encode_frame(frame, kQuality);
  };
  app.split = [](BytesView input) -> std::pair<Bytes, Bytes> {
    EncodedSlices slices = split_encoded(input);
    return {std::move(slices.top), std::move(slices.bottom)};
  };
  app.part_transform = [](BytesView slice) -> Bytes {
    const Frame half = decode_slice(slice);
    return half.pixels;
  };
  app.merge = [](BytesView top, BytesView bottom) -> Bytes {
    Bytes merged;
    merged.reserve(top.size() + bottom.size());
    merged.insert(merged.end(), top.begin(), top.end());
    merged.insert(merged.end(), bottom.begin(), bottom.end());
    return merged;
  };
  return app;
}

}  // namespace sccft::apps::mjpeg
