#include "apps/mjpeg/jpeg_codec.hpp"

#include <array>
#include <optional>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"
#include "util/bitio.hpp"
#include "util/huffman.hpp"

namespace sccft::apps::mjpeg {

namespace {

/// JPEG Annex K luminance quantization base table.
constexpr std::array<int, 64> kBaseQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

std::array<int, 64> make_zigzag() {
  std::array<int, 64> order{};
  int i = 0;
  for (int s = 0; s < 15; ++s) {
    if (s % 2 == 0) {  // up-right
      for (int y = std::min(s, 7); y >= std::max(0, s - 7); --y) {
        order[static_cast<std::size_t>(i++)] = y * 8 + (s - y);
      }
    } else {  // down-left
      for (int x = std::min(s, 7); x >= std::max(0, s - 7); --x) {
        order[static_cast<std::size_t>(i++)] = (s - x) * 8 + x;
      }
    }
  }
  return order;
}

const std::array<int, 64> kZigzag = make_zigzag();

/// DCT basis cosines, computed once.
struct DctTables {
  double c[8][8];  // c[u][x] = cos((2x+1) u pi / 16)
  DctTables() {
    for (int u = 0; u < 8; ++u) {
      for (int x = 0; x < 8; ++x) {
        c[u][x] = std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
      }
    }
  }
};
const DctTables kDct;

constexpr double alpha(int u) { return u == 0 ? 0.70710678118654752 : 1.0; }

void quantize_block(const std::uint8_t* pixels, int stride,
                    const std::array<int, 64>& quant, int out[64]) {
  double coeffs[64];
  fdct8x8(pixels, stride, coeffs);
  for (int i = 0; i < 64; ++i) {
    const int pos = kZigzag[static_cast<std::size_t>(i)];
    out[i] = static_cast<int>(
        std::lround(coeffs[pos] / static_cast<double>(quant[static_cast<std::size_t>(pos)])));
  }
}

void reconstruct_block(const int quantized[64], std::uint8_t* pixels, int stride,
                       const std::array<int, 64>& quant) {
  double coeffs[64];
  for (int z = 0; z < 64; ++z) {
    const int pos = kZigzag[static_cast<std::size_t>(z)];
    coeffs[pos] = static_cast<double>(quantized[z]) *
                  static_cast<double>(quant[static_cast<std::size_t>(pos)]);
  }
  idct8x8(coeffs, pixels, stride);
}

// ---- Exp-Golomb entropy backend -------------------------------------------

void eg_encode_block(util::BitWriter& writer, const int quantized[64], int& dc_pred) {
  // DC: DPCM relative to the previous block in the slice.
  writer.write_se(quantized[0] - dc_pred);
  dc_pred = quantized[0];
  // AC: (run, level) events; ue(63) terminates the block.
  int run = 0;
  for (int i = 1; i < 64; ++i) {
    if (quantized[i] == 0) {
      ++run;
      continue;
    }
    writer.write_ue(static_cast<std::uint32_t>(run));
    writer.write_se(quantized[i]);
    run = 0;
  }
  writer.write_ue(63);  // end of block
}

void eg_decode_block(util::BitReader& reader, int quantized[64], int& dc_pred) {
  std::fill_n(quantized, 64, 0);
  dc_pred += reader.read_se();
  quantized[0] = dc_pred;
  int i = 1;
  while (i < 64) {
    const std::uint32_t run = reader.read_ue();
    if (run == 63) return;  // end of block
    i += static_cast<int>(run);
    SCCFT_ASSERT(i < 64);
    quantized[i] = reader.read_se();
    ++i;
  }
  const std::uint32_t eob = reader.read_ue();
  SCCFT_ASSERT(eob == 63);
}

// ---- Huffman entropy backend (JPEG-style category/amplitude coding) -------

/// Bit category of a value: smallest s with |v| < 2^s (0 for v == 0).
int category_of(int value) {
  int magnitude = value < 0 ? -value : value;
  int size = 0;
  while (magnitude > 0) {
    magnitude >>= 1;
    ++size;
  }
  return size;
}

/// JPEG amplitude mapping: positive values as-is, negative values offset so
/// the top bit distinguishes sign.
std::uint32_t amplitude_bits(int value, int size) {
  if (value >= 0) return static_cast<std::uint32_t>(value);
  return static_cast<std::uint32_t>(value + (1 << size) - 1);
}

int amplitude_value(std::uint32_t bits, int size) {
  if (size == 0) return 0;
  if (bits < (1U << (size - 1))) {
    return static_cast<int>(bits) - (1 << size) + 1;
  }
  return static_cast<int>(bits);
}

constexpr int kEob = 0x00;
constexpr int kZrl = 0xF0;  // run of 16 zeros

/// Emits one block's symbols: to `freq_dc`/`freq_ac` histograms when
/// `writer == nullptr` (statistics pass), or to the bitstream otherwise.
void huff_code_block(const int quantized[64], int& dc_pred,
                     std::uint64_t* freq_dc, std::uint64_t* freq_ac,
                     util::BitWriter* writer, const util::HuffmanTable* dc_table,
                     const util::HuffmanTable* ac_table) {
  const int diff = quantized[0] - dc_pred;
  dc_pred = quantized[0];
  const int dc_size = category_of(diff);
  SCCFT_ASSERT(dc_size <= 15);
  if (writer != nullptr) {
    dc_table->encode(*writer, dc_size);
    if (dc_size > 0) writer->write_bits(amplitude_bits(diff, dc_size), dc_size);
  } else {
    ++freq_dc[dc_size];
  }

  int run = 0;
  for (int i = 1; i < 64; ++i) {
    if (quantized[i] == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      if (writer != nullptr) {
        ac_table->encode(*writer, kZrl);
      } else {
        ++freq_ac[kZrl];
      }
      run -= 16;
    }
    const int size = category_of(quantized[i]);
    SCCFT_ASSERT(size >= 1 && size <= 15);
    const int symbol = (run << 4) | size;
    if (writer != nullptr) {
      ac_table->encode(*writer, symbol);
      writer->write_bits(amplitude_bits(quantized[i], size), size);
    } else {
      ++freq_ac[symbol];
    }
    run = 0;
  }
  if (writer != nullptr) {
    ac_table->encode(*writer, kEob);
  } else {
    ++freq_ac[kEob];
  }
}

void huff_decode_block(util::BitReader& reader, int quantized[64], int& dc_pred,
                       const util::HuffmanTable& dc_table,
                       const util::HuffmanTable& ac_table) {
  std::fill_n(quantized, 64, 0);
  const int dc_size = dc_table.decode(reader);
  const int diff =
      dc_size > 0 ? amplitude_value(reader.read_bits(dc_size), dc_size) : 0;
  dc_pred += diff;
  quantized[0] = dc_pred;
  int i = 1;
  while (i < 64) {
    const int symbol = ac_table.decode(reader);
    if (symbol == kEob) return;
    if (symbol == kZrl) {
      i += 16;
      continue;
    }
    const int run = symbol >> 4;
    const int size = symbol & 0x0F;
    SCCFT_ASSERT(size >= 1);
    i += run;
    SCCFT_ASSERT(i < 64);
    quantized[i] = amplitude_value(reader.read_bits(size), size);
    ++i;
  }
  // The encoder unconditionally terminates each block with EOB — consume it
  // even when the last coefficient landed exactly on index 63.
  const int eob = ac_table.decode(reader);
  SCCFT_ASSERT(eob == kEob);
}

/// Slice bitstream: magic ('S' = Exp-Golomb, 'T' = Huffman), width u16,
/// rows u16, quality u8; for Huffman, the DC and AC tables follow (DHT-style
/// serialization); then the coded blocks.
std::vector<std::uint8_t> encode_slice(const Frame& frame, int y0, int rows,
                                       int quality, EntropyMode mode) {
  const auto quant = quant_table(quality);
  const int blocks_x = frame.width / kBlockSize;
  const int blocks_y = rows / kBlockSize;
  auto block_at = [&](int bx, int by) {
    return frame.pixels.data() +
           static_cast<std::size_t>(y0 + by * kBlockSize) *
               static_cast<std::size_t>(frame.width) +
           static_cast<std::size_t>(bx * kBlockSize);
  };

  util::BitWriter writer;
  writer.write_bits(mode == EntropyMode::kHuffman ? 'T' : 'S', 8);
  writer.write_bits(static_cast<std::uint32_t>(frame.width), 16);
  writer.write_bits(static_cast<std::uint32_t>(rows), 16);
  writer.write_bits(static_cast<std::uint32_t>(quality), 8);

  if (mode == EntropyMode::kExpGolomb) {
    int dc_pred = 0;
    for (int by = 0; by < blocks_y; ++by) {
      for (int bx = 0; bx < blocks_x; ++bx) {
        int quantized[64];
        quantize_block(block_at(bx, by), frame.width, quant, quantized);
        eg_encode_block(writer, quantized, dc_pred);
      }
    }
    return writer.finish();
  }

  // Huffman: pass 1 gathers symbol statistics, pass 2 emits tables + codes.
  std::uint64_t freq_dc[256] = {};
  std::uint64_t freq_ac[256] = {};
  int dc_pred = 0;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      int quantized[64];
      quantize_block(block_at(bx, by), frame.width, quant, quantized);
      huff_code_block(quantized, dc_pred, freq_dc, freq_ac, nullptr, nullptr, nullptr);
    }
  }
  const auto dc_table = util::HuffmanTable::build(freq_dc);
  const auto ac_table = util::HuffmanTable::build(freq_ac);
  dc_table.write_to(writer);
  ac_table.write_to(writer);
  dc_pred = 0;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      int quantized[64];
      quantize_block(block_at(bx, by), frame.width, quant, quantized);
      huff_code_block(quantized, dc_pred, nullptr, nullptr, &writer, &dc_table,
                      &ac_table);
    }
  }
  return writer.finish();
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t read_u32(std::span<const std::uint8_t> data, std::size_t at) {
  SCCFT_EXPECTS(at + 4 <= data.size());
  return static_cast<std::uint32_t>(data[at]) |
         (static_cast<std::uint32_t>(data[at + 1]) << 8) |
         (static_cast<std::uint32_t>(data[at + 2]) << 16) |
         (static_cast<std::uint32_t>(data[at + 3]) << 24);
}

}  // namespace

void fdct8x8(const std::uint8_t* pixels, int stride, double out[64]) {
  // Separable DCT: rows then columns (64 -> 2*8 multiplies per coefficient).
  double centered[64];
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      centered[y * 8 + x] = static_cast<double>(pixels[y * stride + x]) - 128.0;
    }
  }
  double rows[64];
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double sum = 0.0;
      for (int x = 0; x < 8; ++x) sum += centered[y * 8 + x] * kDct.c[u][x];
      rows[y * 8 + u] = 0.5 * alpha(u) * sum;
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double sum = 0.0;
      for (int y = 0; y < 8; ++y) sum += rows[y * 8 + u] * kDct.c[v][y];
      out[v * 8 + u] = 0.5 * alpha(v) * sum;
    }
  }
}

void idct8x8(const double in[64], std::uint8_t* pixels, int stride) {
  double cols[64];
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      double sum = 0.0;
      for (int v = 0; v < 8; ++v) sum += alpha(v) * in[v * 8 + u] * kDct.c[v][y];
      cols[y * 8 + u] = 0.5 * sum;
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double sum = 0.0;
      for (int u = 0; u < 8; ++u) sum += alpha(u) * cols[y * 8 + u] * kDct.c[u][x];
      const int value = static_cast<int>(std::lround(0.5 * sum + 128.0));
      pixels[y * stride + x] =
          static_cast<std::uint8_t>(value < 0 ? 0 : (value > 255 ? 255 : value));
    }
  }
}

std::array<int, 64> quant_table(int quality) {
  SCCFT_EXPECTS(quality >= 1 && quality <= 100);
  // Standard IJG quality scaling.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> table{};
  for (int i = 0; i < 64; ++i) {
    int q = (kBaseQuant[static_cast<std::size_t>(i)] * scale + 50) / 100;
    table[static_cast<std::size_t>(i)] = q < 1 ? 1 : (q > 255 ? 255 : q);
  }
  return table;
}

const std::array<int, 64>& zigzag_order() { return kZigzag; }

std::vector<std::uint8_t> encode_frame(const Frame& frame, int quality,
                                       EntropyMode mode) {
  SCCFT_EXPECTS(frame.width % kBlockSize == 0);
  SCCFT_EXPECTS(frame.height % (2 * kBlockSize) == 0);
  SCCFT_EXPECTS(static_cast<int>(frame.pixels.size()) == frame.width * frame.height);

  const int half = frame.height / 2;
  const auto top = encode_slice(frame, 0, half, quality, mode);
  const auto bottom = encode_slice(frame, half, half, quality, mode);

  std::vector<std::uint8_t> out;
  out.reserve(top.size() + bottom.size() + 16);
  out.push_back('J');
  out.push_back('1');
  append_u32(out, static_cast<std::uint32_t>(frame.width));
  append_u32(out, static_cast<std::uint32_t>(frame.height));
  append_u32(out, static_cast<std::uint32_t>(top.size()));
  out.insert(out.end(), top.begin(), top.end());
  append_u32(out, static_cast<std::uint32_t>(bottom.size()));
  out.insert(out.end(), bottom.begin(), bottom.end());
  return out;
}

EncodedSlices split_encoded(std::span<const std::uint8_t> data) {
  SCCFT_EXPECTS(data.size() > 14);
  SCCFT_EXPECTS(data[0] == 'J' && data[1] == '1');
  std::size_t at = 10;
  const std::uint32_t top_len = read_u32(data, at);
  at += 4;
  SCCFT_EXPECTS(at + top_len <= data.size());
  EncodedSlices slices;
  slices.top.assign(data.begin() + static_cast<std::ptrdiff_t>(at),
                    data.begin() + static_cast<std::ptrdiff_t>(at + top_len));
  at += top_len;
  const std::uint32_t bottom_len = read_u32(data, at);
  at += 4;
  SCCFT_EXPECTS(at + bottom_len <= data.size());
  slices.bottom.assign(data.begin() + static_cast<std::ptrdiff_t>(at),
                       data.begin() + static_cast<std::ptrdiff_t>(at + bottom_len));
  return slices;
}

Frame decode_slice(std::span<const std::uint8_t> slice) {
  util::BitReader reader(slice);
  const std::uint32_t magic = reader.read_bits(8);
  SCCFT_EXPECTS(magic == 'S' || magic == 'T');
  const int width = static_cast<int>(reader.read_bits(16));
  const int rows = static_cast<int>(reader.read_bits(16));
  const int quality = static_cast<int>(reader.read_bits(8));
  SCCFT_EXPECTS(width > 0 && width % kBlockSize == 0);
  SCCFT_EXPECTS(rows > 0 && rows % kBlockSize == 0);

  std::optional<util::HuffmanTable> dc_table;
  std::optional<util::HuffmanTable> ac_table;
  if (magic == 'T') {
    dc_table = util::HuffmanTable::read_from(reader);
    ac_table = util::HuffmanTable::read_from(reader);
  }

  Frame frame{width, rows, {}};
  frame.pixels.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(rows));
  const auto quant = quant_table(quality);
  int dc_pred = 0;
  for (int by = 0; by < rows / kBlockSize; ++by) {
    for (int bx = 0; bx < width / kBlockSize; ++bx) {
      std::uint8_t* block = frame.pixels.data() +
                            static_cast<std::size_t>(by * kBlockSize) *
                                static_cast<std::size_t>(width) +
                            static_cast<std::size_t>(bx * kBlockSize);
      int quantized[64];
      if (magic == 'T') {
        huff_decode_block(reader, quantized, dc_pred, *dc_table, *ac_table);
      } else {
        eg_decode_block(reader, quantized, dc_pred);
      }
      reconstruct_block(quantized, block, width, quant);
    }
  }
  return frame;
}

Frame merge_slices(const Frame& top, const Frame& bottom) {
  SCCFT_EXPECTS(top.width == bottom.width);
  Frame frame{top.width, top.height + bottom.height, {}};
  frame.pixels.reserve(top.pixels.size() + bottom.pixels.size());
  frame.pixels.insert(frame.pixels.end(), top.pixels.begin(), top.pixels.end());
  frame.pixels.insert(frame.pixels.end(), bottom.pixels.begin(), bottom.pixels.end());
  return frame;
}

Frame decode_frame(std::span<const std::uint8_t> data) {
  const EncodedSlices slices = split_encoded(data);
  return merge_slices(decode_slice(slices.top), decode_slice(slices.bottom));
}

}  // namespace sccft::apps::mjpeg
