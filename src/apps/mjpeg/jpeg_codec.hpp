// JPEG-style intra frame codec for the MJPEG application.
//
// A real transform codec: 8x8 forward/inverse DCT, Annex-K-style quantization
// scaled by a quality factor, zigzag scan, DPCM-coded DC, and run-level
// entropy coding with Exp-Golomb codes (in place of JPEG's Huffman tables —
// same structure, self-contained tables). Frames are encoded as two
// independently-decodable *slices* (top and bottom half) so the MJPEG process
// network's `splitstream` stage can split an encoded frame into parts that
// the two decode processes handle concurrently, exactly as in the paper's
// Figure 2 topology.
//
// Bitstream layout:
//   FrameHeader: magic 'J1', width u16, height u16, quality u8
//   u32 slice0_length, slice0 bytes, u32 slice1_length, slice1 bytes
// Each slice independently codes its rows (DC prediction resets per slice).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common/generators.hpp"

namespace sccft::apps::mjpeg {

inline constexpr int kBlockSize = 8;

/// Entropy-coding backend for the coefficient data.
enum class EntropyMode : std::uint8_t {
  kExpGolomb = 0,  ///< fixed structured codes, single pass, no tables
  kHuffman = 1,    ///< per-slice optimized canonical Huffman tables with
                   ///< JPEG-style category/amplitude coding (two passes,
                   ///< better compression — the real-JPEG behaviour)
};

/// Encodes a grayscale frame; `quality` in [1, 100] scales the quantization
/// table (higher = better fidelity, larger output). Width and height must be
/// multiples of 8 and the height a multiple of 16 (two equal slices).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const Frame& frame, int quality = 75, EntropyMode mode = EntropyMode::kHuffman);

/// Decodes a full encoded frame (both slices).
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> data);

/// Splits an encoded frame into its two standalone slices (each gets its own
/// mini header and can be decoded by decode_slice).
struct EncodedSlices {
  std::vector<std::uint8_t> top;
  std::vector<std::uint8_t> bottom;
};
[[nodiscard]] EncodedSlices split_encoded(std::span<const std::uint8_t> data);

/// Decodes one standalone slice into a half-height frame.
[[nodiscard]] Frame decode_slice(std::span<const std::uint8_t> slice);

/// Stacks the two half frames back into a full frame.
[[nodiscard]] Frame merge_slices(const Frame& top, const Frame& bottom);

// --- exposed internals (unit-tested directly) ---

/// Forward / inverse 8x8 DCT (separable, double precision internally).
void fdct8x8(const std::uint8_t* pixels, int stride, double out[64]);
void idct8x8(const double in[64], std::uint8_t* pixels, int stride);

/// Quantization table for a quality factor (JPEG Annex K luminance base).
[[nodiscard]] std::array<int, 64> quant_table(int quality);

/// Zigzag scan order (index i of the scan -> position in the 8x8 block).
[[nodiscard]] const std::array<int, 64>& zigzag_order();

}  // namespace sccft::apps::mjpeg
