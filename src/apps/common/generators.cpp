#include "apps/common/generators.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::apps {

Frame generate_frame(int width, int height, std::uint64_t index, std::uint64_t seed) {
  SCCFT_EXPECTS(width > 0 && height > 0);
  Frame frame{width, height, {}};
  frame.pixels.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height));

  util::Xoshiro256 rng(seed ^ (index * 0x9E3779B97F4A7C15ULL));
  const int box1_x = static_cast<int>((index * 3) % static_cast<std::uint64_t>(width));
  const int box1_y = static_cast<int>((index * 2) % static_cast<std::uint64_t>(height));
  const int box2_x = static_cast<int>((index * 5 + 40) % static_cast<std::uint64_t>(width));
  const int box2_y =
      static_cast<int>((index * 7 + 20) % static_cast<std::uint64_t>(height));

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Diagonal gradient background drifting with the frame index.
      int value = ((x + y + static_cast<int>(index)) * 255) / (width + height);
      // Two moving rectangles (hard edges exercise the codecs' AC paths).
      if (x >= box1_x && x < box1_x + 32 && y >= box1_y && y < box1_y + 24) value = 230;
      if (x >= box2_x && x < box2_x + 20 && y >= box2_y && y < box2_y + 40) value = 25;
      // Small deterministic noise.
      value += static_cast<int>(rng.uniform_int(-4, 4));
      value = value < 0 ? 0 : (value > 255 ? 255 : value);
      frame.pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                   static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(value);
    }
  }
  return frame;
}

std::vector<std::int16_t> generate_audio(std::size_t count, std::uint64_t start,
                                         std::uint64_t seed) {
  std::vector<std::int16_t> samples(count);
  util::Xoshiro256 rng(seed ^ (start * 0x2545F4914F6CDD1DULL));
  constexpr double kRate = 48'000.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(start + i) / kRate;
    double v = 0.4 * std::sin(2.0 * 3.14159265358979 * 440.0 * t) +
               0.25 * std::sin(2.0 * 3.14159265358979 * 554.37 * t) +
               0.2 * std::sin(2.0 * 3.14159265358979 * 659.25 * t);
    v += rng.uniform(-0.01, 0.01);
    const auto scaled = static_cast<int>(v * 30'000.0);
    samples[i] = static_cast<std::int16_t>(
        scaled < -32'768 ? -32'768 : (scaled > 32'767 ? 32'767 : scaled));
  }
  return samples;
}

std::vector<std::uint8_t> samples_to_bytes(const std::vector<std::int16_t>& samples) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(samples.size() * 2);
  for (std::int16_t s : samples) {
    const auto u = static_cast<std::uint16_t>(s);
    bytes.push_back(static_cast<std::uint8_t>(u & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>(u >> 8));
  }
  return bytes;
}

std::vector<std::int16_t> bytes_to_samples(const std::vector<std::uint8_t>& bytes) {
  SCCFT_EXPECTS(bytes.size() % 2 == 0);
  std::vector<std::int16_t> samples(bytes.size() / 2);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(bytes[2 * i]) |
        (static_cast<std::uint16_t>(bytes[2 * i + 1]) << 8));
  }
  return samples;
}

}  // namespace sccft::apps
