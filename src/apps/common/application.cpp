#include "apps/common/application.hpp"

#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace sccft::apps {

Bytes ApplicationSpec::apply_reference(BytesView input) const {
  switch (topology) {
    case ReplicaTopology::kSingleStage:
      SCCFT_EXPECTS(transform != nullptr);
      return transform(input);
    case ReplicaTopology::kTwoStage: {
      SCCFT_EXPECTS(stage1 != nullptr && stage2 != nullptr);
      const Bytes intermediate = stage1(input);
      return stage2(intermediate);
    }
    case ReplicaTopology::kSplitMerge: {
      SCCFT_EXPECTS(split != nullptr && part_transform != nullptr && merge != nullptr);
      const auto [a, b] = split(input);
      const Bytes ta = part_transform(a);
      const Bytes tb = part_transform(b);
      return merge(ta, tb);
    }
  }
  SCCFT_ASSERT(false);
  return {};
}

int ApplicationSpec::replica_process_count() const {
  switch (topology) {
    case ReplicaTopology::kSingleStage: return 1;
    case ReplicaTopology::kTwoStage: return 2;
    case ReplicaTopology::kSplitMerge: return 4;
  }
  return 1;
}

SharedBytes TransformCache::apply(const std::function<Bytes(BytesView)>& fn,
                                  BytesView input) {
  SCCFT_EXPECTS(fn != nullptr);
  return apply_keyed(fn, std::make_pair(util::crc32(input), input.size()), input);
}

SharedBytes TransformCache::apply(const std::function<Bytes(BytesView)>& fn,
                                  const kpn::PayloadRef& input) {
  SCCFT_EXPECTS(fn != nullptr);
  SCCFT_EXPECTS(static_cast<bool>(input));
  return apply_keyed(fn, std::make_pair(input.crc(), input.size()), input.view());
}

SharedBytes TransformCache::apply_keyed(const std::function<Bytes(BytesView)>& fn,
                                        std::pair<std::uint32_t, std::size_t> key,
                                        BytesView input) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Miss: transform outside the lock so concurrent workers are never
  // serialized on an expensive encode/decode. First insert wins; any racing
  // computation produced the same bytes.
  auto result = SharedBytes::adopt(fn(input));
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.emplace(key, std::move(result)).first->second;
}

}  // namespace sccft::apps
