// The experiment engine: builds the reference or duplicated process network
// of an application on the simulated SCC, optionally injects one timing
// fault, and collects everything the paper's Tables 2 and 3 report — FIFO
// high-water marks, detection latencies per channel and rule, consumer
// inter-arrival statistics, output checksums for equivalence checking, and
// baseline-monitor detection latencies.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/application.hpp"
#include "ft/framework.hpp"
#include "monitor/distance_function.hpp"
#include "monitor/watchdog.hpp"
#include "rtc/online/conformance.hpp"
#include "rtc/online/dimensioner.hpp"
#include "rtc/online/snapshot.hpp"
#include "rtc/online/weakly_hard.hpp"
#include "trace/bus.hpp"
#include "trace/metrics.hpp"
#include "util/stats.hpp"

namespace sccft::apps {

/// Gradual timing drift of one stream — the mis-modeled-deployment scenario
/// the online-RTC monitor exists to catch. Unlike an injected fault (an
/// abrupt failure the ft layer detects), drift keeps the stream alive but
/// slides it out of its design PJD envelope: rate creep stretches the
/// emission spacing, jitter creep adds extra random displacement. No RNG is
/// drawn before the onset, so the pre-drift prefix of a run is identical to
/// the drift-free run with the same seed.
struct DriftSpec {
  enum class Target { kNone, kProducer, kReplica1, kReplica2 };
  Target target = Target::kNone;
  std::uint64_t after_periods = 0;  ///< onset, in producer periods
  double rate_mult = 1.0;   ///< > 1: emissions at least mult * period apart
  rtc::TimeNs extra_jitter = 0;  ///< adds U[0, extra_jitter] per emission
};

struct ExperimentOptions {
  std::uint64_t seed = 1;

  bool duplicated = true;       ///< false = run the reference network
  bool inject_fault = false;
  ft::ReplicaIndex faulty_replica = ft::ReplicaIndex::kReplica1;
  ft::FaultMode fault_mode = ft::FaultMode::kSilence;
  double rate_factor = 4.0;     ///< for kRateDegradation

  /// Fault is injected at fault_after_periods * producer period plus a
  /// seed-dependent phase within one period (the paper injects "after 18,000
  /// frames"; we scale the warm-up down and randomize the phase across runs).
  std::uint64_t fault_after_periods = 120;
  std::uint64_t run_periods = 200;  ///< total simulated length in periods

  bool use_platform = true;     ///< model the SCC NoC (false = ideal channels)
  bool enable_selector_stall_rule = true;
  rtc::Tokens divergence_override = 0;          ///< ablation A
  rtc::Tokens replicator_capacity_override = 0; ///< ablation C (both queues)

  /// Attach the Section 4.3 baseline monitors (distance function + watchdog)
  /// to the faulty replica's consumption stream at the replicator.
  bool attach_baseline_monitors = false;
  rtc::TimeNs monitor_polling_interval = rtc::from_ms(1.0);
  int monitor_history_l = 1;

  /// If non-empty, dump channel fill levels / space counters / fault flags
  /// as a VCD waveform (viewable in GTKWave), change-driven from the trace
  /// bus.
  std::string vcd_path;

  /// Optional external trace sink, subscribed for the duration of the run
  /// with `trace_mask` (e.g. a BinarySink for determinism checks, a CsvSink
  /// for offline analysis, a RingBufferSink flight recorder). Must outlive
  /// run(). Subscribed with deferred/batched delivery: the sink is treated as
  /// a passive recorder and sees the complete event stream in emission order,
  /// but only at flush points — it must not be inspected mid-run.
  trace::Sink* trace_sink = nullptr;
  std::uint32_t trace_mask = trace::kAllEvents;

  /// Online-RTC monitor (rtc/online): estimate empirical arrival curves of
  /// the producer and both replica output streams from their kEmission
  /// events, check Eq. (2) conformance against the design PJD curves
  /// (breaches reach the Supervisor path as kCurveViolation), and
  /// re-dimension Eqs. (3)/(5)/(8) on the measured curves. Duplicated
  /// network only. kEmission is a data-path event: with
  /// SCCFT_TRACE_COMPILED_OUT the monitor observes nothing and reports
  /// zero-event streams (the zero-cost discipline).
  bool online_monitor = false;
  int online_levels = 8;                ///< power-of-two lattice size
  rtc::TimeNs online_base_delta = 0;    ///< Delta_0; 0 = producer period

  /// Timing drift applied to one stream's emissions (see DriftSpec).
  DriftSpec drift;

  /// Adaptation loop (src/adapt, Layer 8). Requires duplicated +
  /// online_monitor. When enabled, the monitor runs the weakly-hard (m,K)
  /// acceptance window from `adaptation.window` (graduated kAcceptanceMiss
  /// pressure instead of first-miss conviction), and an AdaptationPolicy +
  /// ReconfigurationController pair re-dimensions the replicator FIFOs and
  /// the selector divergence threshold live. Disabled (the default) leaves
  /// every run byte-identical to the pre-adaptation build.
  rtc::online::AdaptationConfig adaptation;
};

struct ExperimentResult {
  rtc::SizingReport sizing;

  // High-water marks (Table 2 "Max. Observed fill").
  rtc::Tokens fill_r1 = 0, fill_r2 = 0, fill_s1 = 0, fill_s2 = 0;

  // Detection outcomes.
  std::optional<rtc::TimeNs> replicator_latency;  ///< overflow rule
  std::optional<rtc::TimeNs> selector_latency;    ///< stall or divergence rule
  std::optional<ft::DetectionRecord> first_record;
  std::optional<rtc::TimeNs> first_latency;
  bool any_detection = false;
  bool false_positive = false;    ///< detection with no (or before the) fault
  bool correct_replica = true;    ///< first detection blamed the right replica
  rtc::TimeNs fault_injected_at = -1;

  // Consumer-side stream measurements (Table 2 "Decoded Inter-Frame Timings").
  util::SampleSet consumer_interarrival_ms;
  std::vector<std::uint32_t> output_checksums;  ///< non-preload tokens, in order
  std::uint64_t consumer_tokens = 0;
  std::uint64_t consumer_stalls = 0;  ///< reads that blocked on an empty FIFO

  // Overheads (Table 2 "Overhead / Memory").
  std::size_t replicator_memory_bytes = 0;
  std::size_t selector_memory_bytes = 0;

  // Baseline monitors (Table 3), measured on the same run.
  std::optional<rtc::TimeNs> distance_latency;
  std::optional<rtc::TimeNs> watchdog_latency;

  std::uint64_t noc_contention_stalls = 0;

  /// Simulator events dispatched over the whole run — the kernel-throughput
  /// denominator (bench/throughput) and the determinism fingerprint
  /// (tests/fingerprint_test): any event-count drift means the schedule
  /// changed.
  std::uint64_t events_processed = 0;

  /// Online-RTC results, one entry per monitored stream (producer, r1.out,
  /// r2.out), populated when options.online_monitor was set.
  struct OnlineStream {
    std::string name;
    int replica = -1;
    std::uint64_t events = 0;
    std::uint64_t upper_violations = 0;
    std::uint64_t lower_violations = 0;
    /// Weakly-hard misses recorded (0 unless adaptation was enabled).
    std::uint64_t acceptance_misses = 0;
    std::optional<rtc::online::ConformanceChecker::Violation> first_violation;
    rtc::online::EmpiricalCurveSnapshot snapshot;
  };
  std::vector<OnlineStream> online_streams;
  /// Eqs. (3)/(5)/(8) re-derived on the measured curves (nullopt when the
  /// monitor was off or saw no events).
  std::optional<rtc::online::OnlineMargins> online_margins;

  /// Adaptation-loop outcome (populated when options.adaptation.enabled).
  struct AdaptationOutcome {
    std::uint64_t misses_seen = 0;       ///< kAcceptanceMiss events observed
    std::uint64_t breaches_seen = 0;     ///< kCurveViolation events observed
    std::uint64_t widen_requests = 0;    ///< reactive rung: widen D
    std::uint64_t resize_requests = 0;   ///< reactive rung: grow FIFOs (+D)
    std::uint64_t proactive_requests = 0;
    std::uint64_t windows_completed = 0;
    std::uint64_t targets_applied = 0;
    std::uint64_t clamped = 0;
    // Sizes installed when the run ended (== designed if nothing fired).
    rtc::Tokens final_fifo1 = 0;
    rtc::Tokens final_fifo2 = 0;
    rtc::Tokens final_divergence = 0;
  };
  std::optional<AdaptationOutcome> adaptation;

  /// Snapshot of the run's full metrics registry (channel gauges/counters,
  /// consumer stream series, trace-event counts). Campaign harnesses merge
  /// these across runs instead of re-deriving aggregates by hand.
  std::shared_ptr<trace::MetricsRegistry> metrics;
};

/// Reusable runner: payload/transform caches persist across runs, so 20-run
/// campaigns do each distinct encode/decode once.
///
/// run() is re-entrant: every run owns an isolated single-threaded Simulator,
/// network, and metrics registry, so parallel campaign workers may call run()
/// concurrently on one runner. The only cross-run state is the memoization
/// caches, which are internally synchronized and deterministic (pure
/// functions of the input — see TransformCache). Run-local trace sinks
/// (options.trace_sink, vcd_path) stay run-local; sharing one sink object
/// across concurrent runs is a caller bug (the TraceBus owner-thread
/// contract catches cross-thread subscription).
class ExperimentRunner final {
 public:
  explicit ExperimentRunner(ApplicationSpec app);

  [[nodiscard]] ExperimentResult run(const ExperimentOptions& options);

  [[nodiscard]] const ApplicationSpec& app() const { return app_; }

  /// Renders the (duplicated or reference) topology as ASCII (Figures 1/2).
  [[nodiscard]] std::string render_topology(bool duplicated);

 private:
  const kpn::Token& input_token(std::uint64_t index);

  ApplicationSpec app_;
  // Pre-sized to input_cycle at construction (never reallocates), each slot
  // written once under input_mutex_: returned references stay valid across
  // concurrent runs.
  std::vector<kpn::Token> input_cache_;
  std::mutex input_mutex_;
  TransformCache whole_cache_{"whole"};
  TransformCache stage1_cache_{"stage1"};
  TransformCache stage2_cache_{"stage2"};
  TransformCache part_cache_{"part"};
  TransformCache split_top_cache_{"split-top"};
  TransformCache split_bottom_cache_{"split-bottom"};
  std::mutex merge_mutex_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, SharedBytes> merge_cache_;
};

/// Returns a copy of `app` with all replica jitters shrunk to `jitter_ms`
/// (the paper's Table 3 setup: "timing variations from the replicas were
/// minimized").
[[nodiscard]] ApplicationSpec minimize_replica_jitter(ApplicationSpec app,
                                                      double jitter_ms = 0.0);

}  // namespace sccft::apps
