// Application specification: everything the experiment engine needs to build
// the reference and duplicated process networks of one streaming application.
//
// The three paper applications (MJPEG decoder, ADPCM encoder+decoder, H.264
// encoder) each provide an ApplicationSpec; the engine (experiment.hpp) then
// assembles producer -> [replicated critical subnetwork] -> consumer with the
// paper's channel machinery and timing models.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ft/framework.hpp"
#include "kpn/payload.hpp"
#include "rtc/time.hpp"

namespace sccft::apps {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;
/// Shared immutable payload bytes. Backed by the kpn payload pool: carries a
/// CRC-32 cached at admission, so constructing Tokens from cached transform
/// results never re-hashes the payload.
using SharedBytes = kpn::PayloadRef;

/// Internal structure of the critical subnetwork.
enum class ReplicaTopology {
  kSingleStage,  ///< one process: in -> f -> out            (H.264 encoder)
  kTwoStage,     ///< chain: in -> f1 -> FIFO -> f2 -> out   (ADPCM enc+dec)
  kSplitMerge,   ///< in -> split -> {a, b} -> merge -> out  (MJPEG decoder)
};

struct ApplicationSpec {
  std::string name;
  ft::AppTimingSpec timing;  ///< the paper's Table 1 row for this app
  ReplicaTopology topology = ReplicaTopology::kSingleStage;

  int input_token_bytes = 0;   ///< nominal input token size (reporting/mapping)
  int output_token_bytes = 0;  ///< nominal output token size

  /// Modelled computation time charged per stage per token on an SCC core.
  rtc::TimeNs stage_compute_time = 0;

  /// Number of distinct inputs before the generator cycles (keeps payload
  /// caches bounded across 20-run sweeps without losing determinism).
  std::uint64_t input_cycle = 64;

  /// Deterministic input payload for logical index `i` (i < input_cycle).
  std::function<Bytes(std::uint64_t)> make_input;

  // Topology kSingleStage:
  std::function<Bytes(BytesView)> transform;

  // Topology kTwoStage:
  std::function<Bytes(BytesView)> stage1;
  std::function<Bytes(BytesView)> stage2;

  // Topology kSplitMerge:
  std::function<std::pair<Bytes, Bytes>(BytesView)> split;
  std::function<Bytes(BytesView)> part_transform;
  std::function<Bytes(BytesView, BytesView)> merge;

  /// End-to-end critical-subnetwork function (for oracle comparisons).
  [[nodiscard]] Bytes apply_reference(BytesView input) const;

  /// Number of processes inside one replica for this topology.
  [[nodiscard]] int replica_process_count() const;
};

/// Deterministic memoizing wrapper around a Bytes -> Bytes function, keyed by
/// (tag, input checksum, input size). The replicas and the reference network
/// transform identical inputs (the network is determinate), so memoization
/// changes wall-clock cost only, never results.
///
/// Thread-safe: parallel campaign workers share one cache. Transforms run
/// outside the lock (concurrent misses may compute the same entry twice; the
/// first insert wins), which is harmless because the transform is a pure
/// function of the input — every computed value for a key is identical.
class TransformCache final {
 public:
  explicit TransformCache(std::string tag) : tag_(std::move(tag)) {}

  [[nodiscard]] SharedBytes apply(const std::function<Bytes(BytesView)>& fn,
                                  BytesView input);

  /// Pooled-payload fast path: keys the lookup by the payload's CRC cached at
  /// buffer admission instead of re-hashing the input bytes. The key equals
  /// the BytesView overload's (a buffer's crc() is util::crc32 of its bytes),
  /// so both overloads share one cache.
  [[nodiscard]] SharedBytes apply(const std::function<Bytes(BytesView)>& fn,
                                  const kpn::PayloadRef& input);

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
  }

 private:
  [[nodiscard]] SharedBytes apply_keyed(const std::function<Bytes(BytesView)>& fn,
                                        std::pair<std::uint32_t, std::size_t> key,
                                        BytesView input);

  std::string tag_;
  mutable std::mutex mutex_;
  std::map<std::pair<std::uint32_t, std::size_t>, SharedBytes> cache_;
};

}  // namespace sccft::apps
