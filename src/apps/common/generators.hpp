// Deterministic synthetic workload generators.
//
// The paper feeds real encoded video (~30 fps MJPEG), PCM audio samples and
// raw video (H.264 encoder input) to its applications. We do not have the
// original media; these generators produce procedurally-synthesized frames
// and audio that (a) are bit-deterministic per index and seed, so both
// replicas and the reference network see identical inputs, and (b) have
// enough structure (gradients, moving objects, tones) that the codecs do
// real, data-dependent work at realistic compression ratios.
#pragma once

#include <cstdint>
#include <vector>

namespace sccft::apps {

/// An 8-bit grayscale frame.
struct Frame {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  ///< row-major, width*height bytes

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
  [[nodiscard]] int size_bytes() const { return width * height; }
};

/// Generates frame `index` of a synthetic test sequence: smooth gradient
/// background, two moving rectangles, a little deterministic noise.
[[nodiscard]] Frame generate_frame(int width, int height, std::uint64_t index,
                                   std::uint64_t seed);

/// Generates `count` signed 16-bit PCM samples starting at sample offset
/// `start`: a chord of three sine tones plus low-level deterministic noise.
[[nodiscard]] std::vector<std::int16_t> generate_audio(std::size_t count,
                                                       std::uint64_t start,
                                                       std::uint64_t seed);

/// Serializes int16 samples to little-endian bytes and back.
[[nodiscard]] std::vector<std::uint8_t> samples_to_bytes(
    const std::vector<std::int16_t>& samples);
[[nodiscard]] std::vector<std::int16_t> bytes_to_samples(
    const std::vector<std::uint8_t>& bytes);

}  // namespace sccft::apps
