#include "apps/common/experiment.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "adapt/policy.hpp"
#include "adapt/reconfig.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "monitor/driver.hpp"
#include "rtc/online/monitor.hpp"
#include "scc/mapping.hpp"
#include "scc/platform.hpp"
#include "trace/sinks.hpp"
#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace sccft::apps {

namespace {

/// Names of the processes inside one replica, by topology.
std::vector<std::string> replica_stage_names(ReplicaTopology topology) {
  switch (topology) {
    case ReplicaTopology::kSingleStage: return {"stage"};
    case ReplicaTopology::kTwoStage: return {"enc", "dec"};
    case ReplicaTopology::kSplitMerge: return {"split", "dec_a", "dec_b", "merge"};
  }
  return {"stage"};
}

constexpr rtc::Tokens kInternalFifoCapacity = 4;

/// Per-stream drift, resolved from DriftSpec for capture into one process
/// lambda. `apply` adjusts an emission target in place; no RNG is drawn
/// before the onset instant (pre-drift behaviour is bit-identical to the
/// drift-free run).
struct DriftParams {
  bool active = false;
  rtc::TimeNs onset = 0;
  double rate_mult = 1.0;
  rtc::TimeNs extra_jitter = 0;

  void apply(rtc::TimeNs& target, rtc::TimeNs last_emit, rtc::TimeNs period,
             util::Xoshiro256& rng) const {
    if (!active || target < onset) return;
    if (rate_mult > 1.0 && last_emit >= 0) {
      target = std::max(target, last_emit + static_cast<rtc::TimeNs>(
                                                rate_mult * static_cast<double>(period)));
    }
    if (extra_jitter > 0) target += rng.uniform_int(0, extra_jitter);
  }
};

}  // namespace

ExperimentRunner::ExperimentRunner(ApplicationSpec app) : app_(std::move(app)) {
  SCCFT_EXPECTS(app_.make_input != nullptr);
  SCCFT_EXPECTS(app_.input_cycle > 0);
  // Size the payload cache up front: the vector never reallocates, so slot
  // references handed to concurrent runs stay valid.
  input_cache_.resize(app_.input_cycle);
}

const kpn::Token& ExperimentRunner::input_token(std::uint64_t index) {
  const std::uint64_t slot = index % app_.input_cycle;
  std::unique_lock<std::mutex> lock(input_mutex_);
  if (!input_cache_[slot].valid()) {
    // Generate outside the lock (make_input is pure and deterministic, so a
    // racing worker computes the identical token; first write wins).
    lock.unlock();
    kpn::Token token(app_.make_input(slot), slot, 0);
    lock.lock();
    if (!input_cache_[slot].valid()) input_cache_[slot] = std::move(token);
  }
  return input_cache_[slot];
}

ExperimentResult ExperimentRunner::run(const ExperimentOptions& options) {
  SCCFT_EXPECTS(options.run_periods > 0);
  SCCFT_EXPECTS(!options.inject_fault || options.duplicated);

  ExperimentResult result;

  sim::Simulator simulator;
  trace::MetricsRegistry& registry = simulator.trace().metrics();
  if (options.trace_sink != nullptr) {
    simulator.trace().subscribe(options.trace_sink, options.trace_mask,
                                trace::DeliveryMode::kDeferred);
  }
  std::optional<scc::Platform> platform;
  if (options.use_platform) platform.emplace(simulator);
  kpn::Network net(simulator);

  const rtc::TimeNs period = app_.timing.producer.period;
  const rtc::TimeNs run_until =
      static_cast<rtc::TimeNs>(options.run_periods) * period;

  // ----- process-to-core mapping -----------------------------------------
  const auto stage_names = replica_stage_names(app_.topology);
  std::vector<std::string> process_names{"producer"};
  const int replica_count = options.duplicated ? 2 : 1;
  for (int r = 0; r < replica_count; ++r) {
    const std::string prefix = options.duplicated ? ("r" + std::to_string(r + 1)) : "ref";
    for (const auto& stage : stage_names) process_names.push_back(prefix + "." + stage);
  }
  process_names.emplace_back("consumer");

  std::vector<scc::TrafficEdge> traffic;
  auto name_index = [&](const std::string& name) {
    const auto it = std::find(process_names.begin(), process_names.end(), name);
    SCCFT_ASSERT(it != process_names.end());
    return static_cast<int>(it - process_names.begin());
  };
  for (int r = 0; r < replica_count; ++r) {
    const std::string prefix = options.duplicated ? ("r" + std::to_string(r + 1)) : "ref";
    const std::string head = prefix + "." + stage_names.front();
    const std::string tail = prefix + "." + stage_names.back();
    traffic.push_back({name_index("producer"), name_index(head),
                       static_cast<std::uint64_t>(app_.input_token_bytes)});
    traffic.push_back({name_index(tail), name_index("consumer"),
                       static_cast<std::uint64_t>(app_.output_token_bytes)});
    if (app_.topology == ReplicaTopology::kTwoStage) {
      traffic.push_back({name_index(prefix + ".enc"), name_index(prefix + ".dec"),
                         static_cast<std::uint64_t>(app_.input_token_bytes)});
    } else if (app_.topology == ReplicaTopology::kSplitMerge) {
      for (const char* part : {"dec_a", "dec_b"}) {
        traffic.push_back({name_index(prefix + ".split"), name_index(prefix + "." + part),
                           static_cast<std::uint64_t>(app_.input_token_bytes / 2)});
        traffic.push_back({name_index(prefix + "." + part), name_index(prefix + ".merge"),
                           static_cast<std::uint64_t>(app_.output_token_bytes / 2)});
      }
    }
  }
  const scc::Mapping mapping =
      scc::map_low_contention(static_cast<int>(process_names.size()), traffic);
  auto core_of = [&](const std::string& name) {
    return mapping.process_to_core[static_cast<std::size_t>(name_index(name))];
  };

  auto link = [&](const std::string& from, const std::string& to)
      -> std::optional<kpn::FifoChannel::LinkModel> {
    if (!platform) return std::nullopt;
    return kpn::FifoChannel::LinkModel{&platform->noc(), core_of(from), core_of(to)};
  };

  // ----- channels ----------------------------------------------------------
  std::optional<ft::FaultTolerantHarness> harness;
  kpn::TokenSink* producer_sink = nullptr;
  kpn::TokenSource* consumer_source = nullptr;
  kpn::TokenSource* replica_inputs[2] = {nullptr, nullptr};
  kpn::TokenSink* replica_outputs[2] = {nullptr, nullptr};
  kpn::FifoChannel* ref_in = nullptr;
  kpn::FifoChannel* ref_out = nullptr;

  if (options.duplicated) {
    ft::FaultTolerantHarness::Config config;
    config.timing = app_.timing;
    config.name_prefix = app_.name;
    config.platform = platform ? &*platform : nullptr;
    config.producer_core = core_of("producer");
    config.replica1_in_core = core_of("r1." + stage_names.front());
    config.replica1_out_core = core_of("r1." + stage_names.back());
    config.replica2_in_core = core_of("r2." + stage_names.front());
    config.replica2_out_core = core_of("r2." + stage_names.back());
    config.consumer_core = core_of("consumer");
    config.enable_selector_stall_rule = options.enable_selector_stall_rule;
    config.divergence_threshold_override = options.divergence_override;
    config.replicator_capacity_override = options.replicator_capacity_override;
    harness.emplace(net, config);

    result.sizing = harness->sizing();
    producer_sink = &harness->replicator();
    consumer_source = &harness->selector();
    replica_inputs[0] = &harness->replicator().read_interface(ft::ReplicaIndex::kReplica1);
    replica_inputs[1] = &harness->replicator().read_interface(ft::ReplicaIndex::kReplica2);
    replica_outputs[0] = &harness->selector().write_interface(ft::ReplicaIndex::kReplica1);
    replica_outputs[1] = &harness->selector().write_interface(ft::ReplicaIndex::kReplica2);
  } else {
    // Reference network: same analysis, FIFOs F_P and F_C dimensioned per
    // Eq. (3)/(4) with the replica-1 timing (the reference's own timing).
    result.sizing =
        rtc::analyze_duplicated_network(app_.timing.to_model(), app_.timing.default_horizon());
    ref_in = &net.add_fifo(app_.name + ".F_P", result.sizing.replicator_capacity1,
                           link("producer", "ref." + stage_names.front()));
    ref_out = &net.add_fifo(app_.name + ".F_C", result.sizing.selector_capacity1,
                            link("ref." + stage_names.back(), "consumer"));
    producer_sink = ref_in;
    consumer_source = ref_out;
    replica_inputs[0] = ref_in;
    replica_outputs[0] = ref_out;
  }

  // ----- baseline monitors (Table 3) --------------------------------------
  std::optional<monitor::DistanceFunctionMonitor> distance_monitor;
  std::optional<monitor::WatchdogMonitor> watchdog_monitor;
  std::optional<monitor::ActivationBridge> distance_bridge;
  std::optional<monitor::ActivationBridge> watchdog_bridge;
  std::optional<rtc::TimeNs> distance_detect;
  std::optional<rtc::TimeNs> watchdog_detect;
  if (options.attach_baseline_monitors && options.duplicated) {
    const int faulty = ft::index_of(options.faulty_replica);
    const rtc::PJD model = faulty == 0 ? app_.timing.replica1_in : app_.timing.replica2_in;
    distance_monitor.emplace(monitor::DistanceFunctionMonitor::Config{
        .model = model,
        .l = options.monitor_history_l,
        .polling_interval = options.monitor_polling_interval,
        .fail_silent_only = true});
    watchdog_monitor.emplace(monitor::WatchdogMonitor::Config{
        .timeout = monitor::WatchdogMonitor::sound_timeout(model),
        .polling_interval = options.monitor_polling_interval});
    // Observe the faulty replica's consumption stream through its queue's
    // dequeue events — no tap in the data path. Bridge order = subscription
    // order, so the distance monitor still sees each activation first.
    const trace::SubjectId watched =
        harness->replicator().queue_subject(options.faulty_replica);
    distance_bridge.emplace(simulator.trace(), watched, *distance_monitor);
    watchdog_bridge.emplace(simulator.trace(), watched, *watchdog_monitor);
  }

  // ----- online-RTC monitor (rtc/online) -----------------------------------
  // Taps the producer's and both replicas' emission streams off the trace
  // bus, estimates their empirical arrival curves, and escalates Eq. (2)
  // breaches to the Supervisor path as kCurveViolation.
  std::optional<rtc::online::OnlineMonitor> online_monitor;
  if (options.online_monitor && options.duplicated) {
    SCCFT_EXPECTS(options.online_levels >= 1);
    const rtc::online::LatticeConfig lattice{
        .base_delta =
            options.online_base_delta > 0 ? options.online_base_delta : period,
        .levels = options.online_levels};
    auto stream = [](std::string subject, int replica, const rtc::PJD& model) {
      auto curves = rtc::ArrivalCurvePair::from_pjd(model);
      rtc::online::StreamSpec spec;
      spec.name = subject;
      spec.subject = std::move(subject);
      spec.replica = replica;
      spec.design_lower = std::move(curves.lower);
      spec.design_upper = std::move(curves.upper);
      return spec;
    };
    std::vector<rtc::online::StreamSpec> specs;
    specs.push_back(stream("producer", -1, app_.timing.producer));
    specs.push_back(stream("r1.out", 0, app_.timing.replica1_out));
    specs.push_back(stream("r2.out", 1, app_.timing.replica2_out));
    rtc::online::OnlineMonitor::Options monitor_options;
    if (options.adaptation.enabled) {
      monitor_options.weakly_hard = options.adaptation.window;
    }
    online_monitor.emplace(simulator.trace(), lattice, std::move(specs),
                           monitor_options);
  }

  // ----- adaptation loop (Layer 8) -----------------------------------------
  // Policy listens for the monitor's kAcceptanceMiss/kCurveViolation events
  // and polls its empirical snapshots through the MeasureFn; the controller
  // runs quiesce -> resize -> resume windows over the harness channels.
  std::optional<adapt::ReconfigurationController> reconfigurator;
  std::optional<adapt::AdaptationPolicy> adaptation_policy;
  if (options.adaptation.enabled) {
    SCCFT_EXPECTS(options.duplicated && options.online_monitor);
    reconfigurator.emplace(
        simulator, simulator.trace(), harness->replicator(), harness->selector(),
        adapt::ReconfigurationController::Config{
            .quiesce_window = options.adaptation.quiesce_window});
    const rtc::NetworkTimingModel design_model = app_.timing.to_model();
    const rtc::SizingReport designed = result.sizing;
    adapt::MeasureFn measure =
        [&monitor = *online_monitor, design_model, designed](rtc::TimeNs now)
        -> std::optional<rtc::online::OnlineMargins> {
      // No bound is certifiable until every stream has been witnessed.
      for (std::size_t s = 0; s < 3; ++s) {
        if (monitor.stream_events(s) == 0) return std::nullopt;
      }
      return rtc::online::redimension(monitor.snapshot_stream(0, now),
                                      monitor.snapshot_stream(1, now),
                                      monitor.snapshot_stream(2, now),
                                      design_model, designed);
    };
    adaptation_policy.emplace(simulator, simulator.trace(), *reconfigurator,
                              options.adaptation, std::move(measure));
    adaptation_policy->start();
  }

  // ----- processes ---------------------------------------------------------
  const std::uint64_t seed_base = options.seed * 7919;

  // Resolve the drift spec onto its target stream.
  DriftParams producer_drift;
  DriftParams replica_drift[2];
  if (options.drift.target != DriftSpec::Target::kNone) {
    DriftParams params;
    params.active = options.drift.rate_mult > 1.0 || options.drift.extra_jitter > 0;
    params.onset = static_cast<rtc::TimeNs>(options.drift.after_periods) * period;
    params.rate_mult = options.drift.rate_mult;
    params.extra_jitter = options.drift.extra_jitter;
    switch (options.drift.target) {
      case DriftSpec::Target::kNone: break;
      case DriftSpec::Target::kProducer: producer_drift = params; break;
      case DriftSpec::Target::kReplica1: replica_drift[0] = params; break;
      case DriftSpec::Target::kReplica2: replica_drift[1] = params; break;
    }
  }

  // Producer: emits input tokens shaped by the producer PJD.
  net.add_process("producer", core_of("producer"), seed_base + 1,
                  [this, producer_sink, &simulator,
                   producer_drift](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(app_.timing.producer, 0, ctx.rng());
                    shaper.bind_trace(&simulator.trace(),
                                      simulator.trace().intern("producer"));
                    rtc::TimeNs last_emit = -1;
                    for (std::uint64_t k = 0;; ++k) {
                      const kpn::Token& cached = input_token(k);
                      rtc::TimeNs target = shaper.next_emission(ctx.now());
                      producer_drift.apply(target, last_emit, shaper.model().period,
                                           ctx.rng());
                      if (target > ctx.now()) co_await ctx.delay(target - ctx.now());
                      co_await kpn::write(*producer_sink,
                                          cached.restamped(k, ctx.now()));
                      shaper.commit(ctx.now());
                      last_emit = ctx.now();
                    }
                  });

  // Replica builder: constructs the stages of one replica.
  std::vector<kpn::Process*> replica_processes[2];
  auto build_replica = [&](int r_index, const std::string& prefix,
                           const rtc::PJD& in_model, const rtc::PJD& out_model,
                           kpn::TokenSource* in, kpn::TokenSink* out) {
    std::vector<kpn::Process*>& procs = replica_processes[r_index];
    const std::uint64_t rs = seed_base + 100 * static_cast<std::uint64_t>(r_index + 1);
    const rtc::TimeNs compute = app_.stage_compute_time;
    // The replica's output-emission stream is traced under "<prefix>.out" so
    // the online-RTC monitor (and any offline audit) can tap it.
    const trace::SubjectId out_subject = simulator.trace().intern(prefix + ".out");
    const DriftParams drift = replica_drift[r_index];

    switch (app_.topology) {
      case ReplicaTopology::kSingleStage: {
        procs.push_back(&net.add_process(
            prefix + "." + stage_names[0], core_of(prefix + "." + stage_names[0]), rs + 1,
            [this, in, out, in_model, out_model, compute, &simulator, out_subject,
             drift](kpn::ProcessContext& ctx) -> sim::Task {
              kpn::TimingShaper consume(in_model, 0, ctx.rng());
              kpn::TimingShaper emit(out_model, 0, ctx.rng());
              emit.bind_trace(&simulator.trace(), out_subject);
              rtc::TimeNs last_emit = -1;
              while (true) {
                SCCFT_FAULT_GATE(ctx);
                const rtc::TimeNs slot = consume.next_emission(ctx.now());
                if (slot > ctx.now()) co_await ctx.compute(slot - ctx.now());
                kpn::Token token = co_await kpn::read(*in);
                consume.commit(ctx.now());
                SCCFT_FAULT_GATE(ctx);
                co_await ctx.compute(compute);
                const SharedBytes bytes = whole_cache_.apply(app_.transform, token.payload_ref());
                rtc::TimeNs target = emit.next_emission(ctx.now());
                // A rate-degraded replica's interface slows proportionally
                // (the paper's "does so at a rate lower than expected"):
                // consecutive emissions are at least factor * period apart.
                if (ctx.fault().rate_factor > 1.0 && last_emit >= 0) {
                  target = std::max(
                      target, last_emit + static_cast<rtc::TimeNs>(
                                              ctx.fault().rate_factor *
                                              static_cast<double>(out_model.period)));
                }
                drift.apply(target, last_emit, out_model.period, ctx.rng());
                if (target > ctx.now()) co_await ctx.compute(target - ctx.now());
                SCCFT_FAULT_GATE(ctx);
                co_await kpn::write(*out, kpn::Token(bytes, token.seq(), ctx.now()));
                emit.commit(ctx.now());
                last_emit = ctx.now();
              }
            }));
        break;
      }
      case ReplicaTopology::kTwoStage: {
        auto& mid = net.add_fifo(prefix + ".mid", kInternalFifoCapacity,
                                 link(prefix + ".enc", prefix + ".dec"));
        procs.push_back(&net.add_process(
            prefix + ".enc", core_of(prefix + ".enc"), rs + 1,
            [this, in, &mid, in_model, compute](kpn::ProcessContext& ctx) -> sim::Task {
              kpn::TimingShaper consume(in_model, 0, ctx.rng());
              while (true) {
                SCCFT_FAULT_GATE(ctx);
                const rtc::TimeNs slot = consume.next_emission(ctx.now());
                if (slot > ctx.now()) co_await ctx.compute(slot - ctx.now());
                kpn::Token token = co_await kpn::read(*in);
                consume.commit(ctx.now());
                SCCFT_FAULT_GATE(ctx);
                co_await ctx.compute(compute);
                const SharedBytes bytes = stage1_cache_.apply(app_.stage1, token.payload_ref());
                co_await kpn::write(mid, kpn::Token(bytes, token.seq(), ctx.now()));
              }
            }));
        procs.push_back(&net.add_process(
            prefix + ".dec", core_of(prefix + ".dec"), rs + 2,
            [this, &mid, out, out_model, compute, &simulator, out_subject,
             drift](kpn::ProcessContext& ctx) -> sim::Task {
              kpn::TimingShaper emit(out_model, 0, ctx.rng());
              emit.bind_trace(&simulator.trace(), out_subject);
              rtc::TimeNs last_emit = -1;
              while (true) {
                SCCFT_FAULT_GATE(ctx);
                kpn::Token token = co_await kpn::read(mid);
                SCCFT_FAULT_GATE(ctx);
                co_await ctx.compute(compute);
                const SharedBytes bytes = stage2_cache_.apply(app_.stage2, token.payload_ref());
                rtc::TimeNs target = emit.next_emission(ctx.now());
                // A rate-degraded replica's interface slows proportionally
                // (the paper's "does so at a rate lower than expected"):
                // consecutive emissions are at least factor * period apart.
                if (ctx.fault().rate_factor > 1.0 && last_emit >= 0) {
                  target = std::max(
                      target, last_emit + static_cast<rtc::TimeNs>(
                                              ctx.fault().rate_factor *
                                              static_cast<double>(out_model.period)));
                }
                drift.apply(target, last_emit, out_model.period, ctx.rng());
                if (target > ctx.now()) co_await ctx.compute(target - ctx.now());
                SCCFT_FAULT_GATE(ctx);
                co_await kpn::write(*out, kpn::Token(bytes, token.seq(), ctx.now()));
                emit.commit(ctx.now());
                last_emit = ctx.now();
              }
            }));
        break;
      }
      case ReplicaTopology::kSplitMerge: {
        auto& to_a = net.add_fifo(prefix + ".to_a", kInternalFifoCapacity,
                                  link(prefix + ".split", prefix + ".dec_a"));
        auto& to_b = net.add_fifo(prefix + ".to_b", kInternalFifoCapacity,
                                  link(prefix + ".split", prefix + ".dec_b"));
        auto& from_a = net.add_fifo(prefix + ".from_a", kInternalFifoCapacity,
                                    link(prefix + ".dec_a", prefix + ".merge"));
        auto& from_b = net.add_fifo(prefix + ".from_b", kInternalFifoCapacity,
                                    link(prefix + ".dec_b", prefix + ".merge"));
        procs.push_back(&net.add_process(
            prefix + ".split", core_of(prefix + ".split"), rs + 1,
            [this, in, &to_a, &to_b, in_model](kpn::ProcessContext& ctx) -> sim::Task {
              kpn::TimingShaper consume(in_model, 0, ctx.rng());
              const auto top_fn = [this](BytesView input) { return app_.split(input).first; };
              const auto bottom_fn = [this](BytesView input) {
                return app_.split(input).second;
              };
              while (true) {
                SCCFT_FAULT_GATE(ctx);
                const rtc::TimeNs slot = consume.next_emission(ctx.now());
                if (slot > ctx.now()) co_await ctx.compute(slot - ctx.now());
                kpn::Token token = co_await kpn::read(*in);
                consume.commit(ctx.now());
                SCCFT_FAULT_GATE(ctx);
                co_await ctx.compute(rtc::from_us(200));
                const SharedBytes top = split_top_cache_.apply(top_fn, token.payload_ref());
                const SharedBytes bottom =
                    split_bottom_cache_.apply(bottom_fn, token.payload_ref());
                co_await kpn::write(to_a, kpn::Token(top, token.seq(), ctx.now()));
                co_await kpn::write(to_b, kpn::Token(bottom, token.seq(), ctx.now()));
              }
            }));
        auto part_body = [this, compute](kpn::FifoChannel& from, kpn::FifoChannel& to) {
          return [this, &from, &to, compute](kpn::ProcessContext& ctx) -> sim::Task {
            while (true) {
              SCCFT_FAULT_GATE(ctx);
              kpn::Token token = co_await kpn::read(from);
              SCCFT_FAULT_GATE(ctx);
              co_await ctx.compute(compute);
              const SharedBytes bytes = part_cache_.apply(app_.part_transform, token.payload_ref());
              co_await kpn::write(to, kpn::Token(bytes, token.seq(), ctx.now()));
            }
          };
        };
        procs.push_back(&net.add_process(prefix + ".dec_a", core_of(prefix + ".dec_a"),
                                         rs + 2, part_body(to_a, from_a)));
        procs.push_back(&net.add_process(prefix + ".dec_b", core_of(prefix + ".dec_b"),
                                         rs + 3, part_body(to_b, from_b)));
        procs.push_back(&net.add_process(
            prefix + ".merge", core_of(prefix + ".merge"), rs + 4,
            [this, &from_a, &from_b, out, out_model, &simulator, out_subject,
             drift](kpn::ProcessContext& ctx) -> sim::Task {
              kpn::TimingShaper emit(out_model, 0, ctx.rng());
              emit.bind_trace(&simulator.trace(), out_subject);
              rtc::TimeNs last_emit = -1;
              while (true) {
                SCCFT_FAULT_GATE(ctx);
                kpn::Token top = co_await kpn::read(from_a);
                kpn::Token bottom = co_await kpn::read(from_b);
                SCCFT_FAULT_GATE(ctx);
                co_await ctx.compute(rtc::from_us(200));
                const auto key = std::make_pair(top.checksum(), bottom.checksum());
                SharedBytes merged;
                {
                  const std::lock_guard<std::mutex> lock(merge_mutex_);
                  if (const auto it = merge_cache_.find(key); it != merge_cache_.end()) {
                    merged = it->second;
                  }
                }
                if (!merged) {
                  // Merge outside the lock; first insert wins (the merge is a
                  // pure function of the two payloads).
                  merged = SharedBytes::adopt(
                      app_.merge(top.payload(), bottom.payload()));
                  const std::lock_guard<std::mutex> lock(merge_mutex_);
                  merged = merge_cache_.emplace(key, std::move(merged)).first->second;
                }
                rtc::TimeNs target = emit.next_emission(ctx.now());
                if (ctx.fault().rate_factor > 1.0 && last_emit >= 0) {
                  target = std::max(
                      target, last_emit + static_cast<rtc::TimeNs>(
                                              ctx.fault().rate_factor *
                                              static_cast<double>(out_model.period)));
                }
                drift.apply(target, last_emit, out_model.period, ctx.rng());
                if (target > ctx.now()) co_await ctx.compute(target - ctx.now());
                SCCFT_FAULT_GATE(ctx);
                co_await kpn::write(*out, kpn::Token(merged, top.seq(), ctx.now()));
                emit.commit(ctx.now());
                last_emit = ctx.now();
              }
            }));
        break;
      }
    }
  };

  if (options.duplicated) {
    build_replica(0, "r1", app_.timing.replica1_in, app_.timing.replica1_out,
                  replica_inputs[0], replica_outputs[0]);
    build_replica(1, "r2", app_.timing.replica2_in, app_.timing.replica2_out,
                  replica_inputs[1], replica_outputs[1]);
  } else {
    build_replica(0, "ref", app_.timing.replica1_in, app_.timing.replica1_out,
                  replica_inputs[0], replica_outputs[0]);
  }

  // Consumer: shaped destructive reads; measures the output stream. The
  // stream statistics go to the metrics registry (hoisted references — the
  // registry guarantees their stability); checksums stay on the result, they
  // are data, not metrics.
  rtc::TimeNs last_data_read = -1;
  net.add_process(
      "consumer", core_of("consumer"), seed_base + 2,
      [this, consumer_source, &result, &last_data_read, &simulator, &registry](
          kpn::ProcessContext& ctx) -> sim::Task {
        kpn::TimingShaper shaper(app_.timing.consumer, 0, ctx.rng());
        shaper.bind_trace(&simulator.trace(), simulator.trace().intern("consumer"));
        std::uint64_t& tokens = registry.counter_ref("consumer.tokens");
        std::uint64_t& stalls = registry.counter_ref("consumer.stalls");
        trace::Series& interarrival = registry.series_ref("consumer.interarrival_ns");
        while (true) {
          const rtc::TimeNs slot = shaper.next_emission(ctx.now());
          if (slot > ctx.now()) co_await ctx.delay(slot - ctx.now());
          const rtc::TimeNs before = ctx.now();
          kpn::Token token = co_await kpn::read(*consumer_source);
          if (ctx.now() > before) ++stalls;
          shaper.commit(ctx.now());
          ++tokens;
          if (token.size_bytes() > 0) {
            result.output_checksums.push_back(token.checksum());
            if (last_data_read >= 0) {
              interarrival.add(ctx.now() - last_data_read);
            }
            last_data_read = ctx.now();
          }
        }
      });

  // Polling processes for the baseline monitors.
  if (distance_monitor) {
    net.add_process("monitor.distance", core_of("consumer"), seed_base + 3,
                    monitor::make_polling_body(*distance_monitor,
                                               options.monitor_polling_interval,
                                               &distance_detect));
    net.add_process("monitor.watchdog", core_of("consumer"), seed_base + 4,
                    monitor::make_polling_body(*watchdog_monitor,
                                               options.monitor_polling_interval,
                                               &watchdog_detect));
  }

  // ----- VCD waveform export ----------------------------------------------
  // Change-driven from the trace bus: every enqueue/dequeue/level event lands
  // in the waveform at its exact instant (the old implementation polled the
  // channels 8x per period from a dedicated sampler process).
  std::optional<trace::VcdSink> vcd_sink;
  if (!options.vcd_path.empty() && options.duplicated) {
    vcd_sink.emplace(app_.name);
    vcd_sink->watch_fill(harness->replicator().queue_subject(ft::ReplicaIndex::kReplica1),
                         "replicator_fill_R1");
    vcd_sink->watch_fill(harness->replicator().queue_subject(ft::ReplicaIndex::kReplica2),
                         "replicator_fill_R2");
    vcd_sink->watch_space(harness->selector().side_subject(ft::ReplicaIndex::kReplica1),
                          "selector_space_S1");
    vcd_sink->watch_space(harness->selector().side_subject(ft::ReplicaIndex::kReplica2),
                          "selector_space_S2");
    vcd_sink->watch_fill(harness->selector().trace_subject(), "selector_fill");
    vcd_sink->watch_fault(0, "fault_R1");
    vcd_sink->watch_fault(1, "fault_R2");
    simulator.trace().subscribe(
        &*vcd_sink, trace::bit(trace::EventKind::kEnqueue) |
                        trace::bit(trace::EventKind::kDequeue) |
                        trace::bit(trace::EventKind::kQueueLevel) |
                        trace::bit(trace::EventKind::kDetection) |
                        trace::bit(trace::EventKind::kReintegrate));
  }

  // ----- fault injection ---------------------------------------------------
  if (options.inject_fault) {
    util::Xoshiro256 phase_rng(options.seed ^ 0xFA417BADC0FFEEULL);
    const rtc::TimeNs fault_time =
        static_cast<rtc::TimeNs>(options.fault_after_periods) * period +
        phase_rng.uniform_int(0, period - 1);
    result.fault_injected_at = fault_time;
    harness->injector().schedule(
        replica_processes[ft::index_of(options.faulty_replica)], fault_time,
        options.fault_mode, options.rate_factor);
    if (options.fault_mode == ft::FaultMode::kSilence) {
      // A halted core stops issuing channel operations at the fault instant,
      // including an in-flight blocked read/write — freeze its endpoints so
      // the manifestation is immediate, matching the paper's fault model
      // ("the faulty replica stops producing (or consuming) tokens
      // altogether").
      simulator.schedule_at(fault_time, [&harness, faulty = options.faulty_replica] {
        harness->replicator().freeze_reader(faulty);
        harness->selector().freeze_writer(faulty);
      });
    }
  }

  // ----- run ---------------------------------------------------------------
  net.run_until(run_until);

  // ----- harvest -----------------------------------------------------------
  // Channels publish into the registry; the result reads the registry back.
  // The registry is the single quantitative record of the run — Table 2 and
  // the campaign aggregations all draw from it.
  if (options.duplicated) {
    harness->replicator().publish_metrics(registry);
    harness->selector().publish_metrics(registry);
    const std::string rep = app_.name + ".replicator";
    const std::string sel = app_.name + ".selector";
    result.fill_r1 = static_cast<rtc::Tokens>(registry.gauge(rep + ".R1.max_fill"));
    result.fill_r2 = static_cast<rtc::Tokens>(registry.gauge(rep + ".R2.max_fill"));
    result.fill_s1 = static_cast<rtc::Tokens>(registry.gauge(sel + ".S1.max_observed_fill"));
    result.fill_s2 = static_cast<rtc::Tokens>(registry.gauge(sel + ".S2.max_observed_fill"));
    result.replicator_memory_bytes =
        static_cast<std::size_t>(registry.gauge(rep + ".control_bytes"));
    result.selector_memory_bytes =
        static_cast<std::size_t>(registry.gauge(sel + ".control_bytes"));

    const auto& log = harness->detections();
    result.any_detection = !log.records.empty();
    result.first_record = log.first();
    if (result.first_record) {
      if (result.fault_injected_at < 0 ||
          result.first_record->detected_at < result.fault_injected_at) {
        result.false_positive = true;
      } else {
        result.correct_replica =
            result.first_record->replica == options.faulty_replica;
        result.first_latency =
            result.first_record->detected_at - result.fault_injected_at;
        if (const auto rep = log.first_replicator()) {
          result.replicator_latency = rep->detected_at - result.fault_injected_at;
        }
        if (const auto sel = log.first_selector()) {
          result.selector_latency = sel->detected_at - result.fault_injected_at;
        }
      }
    }
  } else {
    ref_in->publish_metrics(registry);
    ref_out->publish_metrics(registry);
    result.fill_r1 =
        static_cast<rtc::Tokens>(registry.gauge(app_.name + ".F_P.max_fill"));
    result.fill_s1 =
        static_cast<rtc::Tokens>(registry.gauge(app_.name + ".F_C.max_fill"));
  }

  result.consumer_tokens = registry.counter("consumer.tokens");
  result.consumer_stalls = registry.counter("consumer.stalls");
  if (const auto* interarrival = registry.find_series("consumer.interarrival_ns")) {
    for (const std::int64_t sample : interarrival->samples()) {
      result.consumer_interarrival_ms.add(rtc::to_ms(sample));
    }
  }

  if (distance_detect && result.fault_injected_at >= 0 &&
      *distance_detect >= result.fault_injected_at) {
    result.distance_latency = *distance_detect - result.fault_injected_at;
  }
  if (watchdog_detect && result.fault_injected_at >= 0 &&
      *watchdog_detect >= result.fault_injected_at) {
    result.watchdog_latency = *watchdog_detect - result.fault_injected_at;
  }
  if (platform) {
    result.noc_contention_stalls = platform->noc().contention_stalls();
    registry.add("noc.contention_stalls", result.noc_contention_stalls);
  }
  if (online_monitor) {
    // Finalize at the nominal end time (not simulator.now(), which depends on
    // the last dispatched event) so snapshots are pure functions of the seed.
    const auto reports = online_monitor->finalize(run_until);
    result.online_streams.reserve(reports.size());
    for (const auto& report : reports) {
      result.online_streams.push_back({report.name, report.replica, report.events,
                                       report.upper_violations,
                                       report.lower_violations,
                                       report.acceptance_misses, report.first,
                                       report.snapshot});
    }
    if (reports.size() == 3 && reports[0].events > 0) {
      result.online_margins = rtc::online::redimension(
          reports[0].snapshot, reports[1].snapshot, reports[2].snapshot,
          app_.timing.to_model(), result.sizing);
    }
  }
  if (adaptation_policy) {
    ExperimentResult::AdaptationOutcome outcome;
    const auto& policy_stats = adaptation_policy->stats();
    const auto& controller_stats = reconfigurator->stats();
    outcome.misses_seen = policy_stats.misses_seen;
    outcome.breaches_seen = policy_stats.breaches_seen;
    outcome.widen_requests = policy_stats.widen_requests;
    outcome.resize_requests = policy_stats.resize_requests;
    outcome.proactive_requests = policy_stats.proactive_requests;
    outcome.windows_completed = controller_stats.windows_completed;
    outcome.targets_applied = controller_stats.targets_applied;
    outcome.clamped = controller_stats.clamped;
    outcome.final_fifo1 = reconfigurator->fifo1();
    outcome.final_fifo2 = reconfigurator->fifo2();
    outcome.final_divergence = reconfigurator->divergence();
    result.adaptation = outcome;
  }
  if (vcd_sink) {
    simulator.trace().unsubscribe(&*vcd_sink);
    SCCFT_ASSERT(vcd_sink->write_file(options.vcd_path));
  }
  if (options.trace_sink != nullptr) {
    simulator.trace().unsubscribe(options.trace_sink);
  }
  result.metrics = std::make_shared<trace::MetricsRegistry>(registry);
  result.events_processed = simulator.events_processed();

  return result;
}

std::string ExperimentRunner::render_topology(bool duplicated) {
  sim::Simulator simulator;
  kpn::Network net(simulator);
  const auto stage_names = replica_stage_names(app_.topology);
  auto add_edges = [&](const std::string& prefix, const std::string& in_chan,
                       const std::string& out_chan) {
    net.register_edge("P (producer)", prefix + "." + stage_names.front(), in_chan,
                      app_.input_token_bytes);
    if (app_.topology == ReplicaTopology::kTwoStage) {
      net.register_edge(prefix + ".enc", prefix + ".dec", prefix + ".mid");
    } else if (app_.topology == ReplicaTopology::kSplitMerge) {
      net.register_edge(prefix + ".split", prefix + ".dec_a", prefix + ".to_a");
      net.register_edge(prefix + ".split", prefix + ".dec_b", prefix + ".to_b");
      net.register_edge(prefix + ".dec_a", prefix + ".merge", prefix + ".from_a");
      net.register_edge(prefix + ".dec_b", prefix + ".merge", prefix + ".from_b");
    }
    net.register_edge(prefix + "." + stage_names.back(), "C (consumer)", out_chan,
                      app_.output_token_bytes);
  };
  if (duplicated) {
    add_edges("r1", "replicator.R1", "selector.S1");
    add_edges("r2", "replicator.R2", "selector.S2");
  } else {
    add_edges("ref", "F_P", "F_C");
  }
  return net.render_topology();
}

ApplicationSpec minimize_replica_jitter(ApplicationSpec app, double jitter_ms) {
  const rtc::TimeNs jitter = rtc::from_ms(jitter_ms);
  for (rtc::PJD* model : {&app.timing.replica1_in, &app.timing.replica1_out,
                          &app.timing.replica2_in, &app.timing.replica2_out}) {
    model->jitter = jitter;
  }
  // The producer/consumer jitters and the per-stage compute time must stay
  // well below the replica jitters for the conformance argument of
  // kpn/timing.hpp to hold. (With jitter = 0, all interfaces become strictly
  // periodic; Eq. (3) then gives |R_i| = 1 and detection takes 1-2 periods —
  // the regime of the paper's Table 3.)
  app.timing.producer.jitter = std::min(app.timing.producer.jitter, jitter / 4);
  app.timing.consumer.jitter = std::min(app.timing.consumer.jitter, jitter / 4);
  app.stage_compute_time =
      std::min(app.stage_compute_time, std::max(jitter / 8, rtc::from_us(100)));
  return app;
}

}  // namespace sccft::apps
