#include "apps/adpcm/adpcm_codec.hpp"

#include <algorithm>
#include <array>

#include "util/assert.hpp"

namespace sccft::apps::adpcm {

namespace {

constexpr std::array<int, kStepTableSize> kStepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,
    21,    23,    25,    28,    31,    34,    37,    41,    45,    50,    55,
    60,    66,    73,    80,    88,    97,    107,   118,   130,   143,   157,
    173,   190,   209,   230,   253,   279,   307,   337,   371,   408,   449,
    494,   544,   598,   658,   724,   796,   876,   963,   1060,  1166,  1282,
    1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,  3024,  3327,  3660,
    4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493,  10442,
    11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,
    32767};

constexpr std::array<int, 16> kIndexTable = {-1, -1, -1, -1, 2, 4, 6, 8,
                                             -1, -1, -1, -1, 2, 4, 6, 8};

struct CodecState {
  int predictor = 0;
  int step_index = 0;
};

std::uint8_t encode_sample(CodecState& state, int sample) {
  const int step = kStepTable[static_cast<std::size_t>(state.step_index)];
  int diff = sample - state.predictor;
  std::uint8_t code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  // Quantize diff/step into 3 bits with successive approximation.
  int temp_step = step;
  if (diff >= temp_step) {
    code |= 4;
    diff -= temp_step;
  }
  temp_step >>= 1;
  if (diff >= temp_step) {
    code |= 2;
    diff -= temp_step;
  }
  temp_step >>= 1;
  if (diff >= temp_step) code |= 1;

  // Reconstruct exactly as the decoder will (predictor tracks the decoder).
  int diffq = step >> 3;
  if (code & 4) diffq += step;
  if (code & 2) diffq += step >> 1;
  if (code & 1) diffq += step >> 2;
  state.predictor += (code & 8) ? -diffq : diffq;
  state.predictor = std::clamp(state.predictor, -32'768, 32'767);
  state.step_index =
      std::clamp(state.step_index + kIndexTable[code], 0, kStepTableSize - 1);
  return code;
}

int decode_sample(CodecState& state, std::uint8_t code) {
  const int step = kStepTable[static_cast<std::size_t>(state.step_index)];
  int diffq = step >> 3;
  if (code & 4) diffq += step;
  if (code & 2) diffq += step >> 1;
  if (code & 1) diffq += step >> 2;
  state.predictor += (code & 8) ? -diffq : diffq;
  state.predictor = std::clamp(state.predictor, -32'768, 32'767);
  state.step_index =
      std::clamp(state.step_index + kIndexTable[code & 0xF], 0, kStepTableSize - 1);
  return state.predictor;
}

}  // namespace

int step_size(int index) {
  SCCFT_EXPECTS(index >= 0 && index < kStepTableSize);
  return kStepTable[static_cast<std::size_t>(index)];
}

std::vector<std::uint8_t> encode(std::span<const std::int16_t> samples) {
  SCCFT_EXPECTS(!samples.empty());
  CodecState state;
  state.predictor = samples[0];

  std::vector<std::uint8_t> out;
  out.reserve(8 + (samples.size() + 1) / 2);
  const auto pred = static_cast<std::uint16_t>(state.predictor);
  out.push_back(static_cast<std::uint8_t>(pred & 0xFF));
  out.push_back(static_cast<std::uint8_t>(pred >> 8));
  out.push_back(static_cast<std::uint8_t>(state.step_index));
  out.push_back(0);  // reserved
  const auto count = static_cast<std::uint32_t>(samples.size());
  out.push_back(static_cast<std::uint8_t>(count & 0xFF));
  out.push_back(static_cast<std::uint8_t>((count >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((count >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((count >> 24) & 0xFF));

  std::uint8_t pending = 0;
  bool have_pending = false;
  for (std::int16_t sample : samples) {
    const std::uint8_t code = encode_sample(state, sample);
    if (!have_pending) {
      pending = code;
      have_pending = true;
    } else {
      out.push_back(static_cast<std::uint8_t>(pending | (code << 4)));
      have_pending = false;
    }
  }
  if (have_pending) out.push_back(pending);
  return out;
}

std::vector<std::int16_t> decode(std::span<const std::uint8_t> block) {
  SCCFT_EXPECTS(block.size() >= 8);
  CodecState state;
  state.predictor = static_cast<std::int16_t>(
      static_cast<std::uint16_t>(block[0]) | (static_cast<std::uint16_t>(block[1]) << 8));
  state.step_index = block[2];
  SCCFT_EXPECTS(state.step_index < kStepTableSize);
  const std::uint32_t count = static_cast<std::uint32_t>(block[4]) |
                              (static_cast<std::uint32_t>(block[5]) << 8) |
                              (static_cast<std::uint32_t>(block[6]) << 16) |
                              (static_cast<std::uint32_t>(block[7]) << 24);
  SCCFT_EXPECTS(block.size() >= 8 + (count + 1) / 2);

  std::vector<std::int16_t> samples;
  samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t byte = block[8 + i / 2];
    const std::uint8_t code = (i % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
    samples.push_back(static_cast<std::int16_t>(decode_sample(state, code)));
  }
  return samples;
}

}  // namespace sccft::apps::adpcm
