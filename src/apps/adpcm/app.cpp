#include "apps/adpcm/app.hpp"

#include "apps/adpcm/adpcm_codec.hpp"
#include "apps/common/generators.hpp"

namespace sccft::apps::adpcm {

ApplicationSpec make_application(std::uint64_t content_seed) {
  ApplicationSpec app;
  app.name = "adpcm";
  app.topology = ReplicaTopology::kTwoStage;
  app.input_token_bytes = kSamplesPerToken * 2;   // 3 KB
  app.output_token_bytes = kSamplesPerToken * 2;  // 3 KB decoded
  app.stage_compute_time = rtc::from_ms(0.2);

  // Table 1 (ADPCM row); see app.hpp for the replica-2 jitter derivation.
  app.timing.producer = rtc::PJD::from_ms(6.3, 0.1, 6.3);
  app.timing.replica1_in = rtc::PJD::from_ms(6.3, 0.8, 6.3);
  app.timing.replica1_out = rtc::PJD::from_ms(6.3, 0.8, 6.3);
  app.timing.replica2_in = rtc::PJD::from_ms(6.3, 12.6, 6.3);
  app.timing.replica2_out = rtc::PJD::from_ms(6.3, 12.6, 6.3);
  app.timing.consumer = rtc::PJD::from_ms(6.3, 0.1, 6.3);

  app.make_input = [content_seed](std::uint64_t index) -> Bytes {
    const auto samples = generate_audio(
        kSamplesPerToken, index * static_cast<std::uint64_t>(kSamplesPerToken),
        content_seed);
    return samples_to_bytes(samples);
  };
  app.stage1 = [](BytesView input) -> Bytes {
    return encode(bytes_to_samples(Bytes(input.begin(), input.end())));
  };
  app.stage2 = [](BytesView encoded) -> Bytes {
    return samples_to_bytes(decode(encoded));
  };
  return app;
}

}  // namespace sccft::apps::adpcm
