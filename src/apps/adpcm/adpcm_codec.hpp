// IMA ADPCM codec (the ADPCM application's encoder + decoder stages).
//
// Standard IMA/DVI ADPCM: 16-bit PCM compressed to 4-bit codes (the paper's
// "encoder performs a 4:1 compression, which is reverted by the decoder").
// Each encoded block carries its initial predictor/step-index state so blocks
// (= tokens) are independently decodable.
//
// Block layout: i16 predictor, u8 step_index, u8 reserved,
//               u32 sample_count, ceil(sample_count/2) nibble bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sccft::apps::adpcm {

/// Encodes 16-bit PCM samples into one self-contained ADPCM block.
[[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::int16_t> samples);

/// Decodes one block back to PCM. Lossy but deterministic.
[[nodiscard]] std::vector<std::int16_t> decode(std::span<const std::uint8_t> block);

/// Step-size table access (exposed for tests).
[[nodiscard]] int step_size(int index);
inline constexpr int kStepTableSize = 89;

}  // namespace sccft::apps::adpcm
