// The ADPCM application (paper Section 4.2, Figure 2 bottom).
//
// Input token: one 3 KB PCM data sample (1536 int16 samples) every ~6.3 ms.
// The critical subnetwork is encoder -> decoder (4:1 compression, reverted);
// output token: the decoded 3 KB sample. Timing per Table 1 (the OCR-legible
// part gives producer <6.3, 0.1, 6.3> and replica 1 <6.3, 0.8, 6.3>; replica
// 2's jitter is set to 2 periods = 12.6 ms, which reproduces all of Table 2's
// ADPCM capacities |R|=2/4, |S|=4/8, |S|_0=2/4 exactly).
#pragma once

#include "apps/common/application.hpp"

namespace sccft::apps::adpcm {

inline constexpr int kSamplesPerToken = 1536;  // 3 KB of int16 PCM

/// Builds the ADPCM encoder+decoder application spec.
[[nodiscard]] ApplicationSpec make_application(std::uint64_t content_seed = 2014);

}  // namespace sccft::apps::adpcm
