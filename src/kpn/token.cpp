#include "kpn/token.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sccft::kpn {

Token::Token(std::vector<std::uint8_t> payload, std::uint64_t seq, TimeNs produced_at)
    : payload_(PayloadRef::adopt(std::move(payload))),
      seq_(seq),
      produced_at_(produced_at),
      checksum_(payload_.crc()) {}

Token::Token(PayloadRef payload, std::uint64_t seq, TimeNs produced_at)
    : payload_(std::move(payload)),
      seq_(seq),
      produced_at_(produced_at),
      checksum_(payload_.crc()) {
  SCCFT_EXPECTS(static_cast<bool>(payload_));
}

std::span<const std::uint8_t> Token::payload() const {
  SCCFT_EXPECTS(static_cast<bool>(payload_));
  return payload_.view();
}

bool Token::verify_checksum() const {
  if (!payload_) return true;
  return payload_.crc() == checksum_;
}

Token Token::corrupted(std::size_t bit_index) const {
  SCCFT_EXPECTS(payload_ && payload_.size() > 0);
  std::vector<std::uint8_t> flipped(payload_.view().begin(), payload_.view().end());
  const std::size_t bit = bit_index % (flipped.size() * 8);
  flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  Token copy = *this;  // keeps the (now stale) stored checksum
  copy.payload_ = PayloadRef::adopt(std::move(flipped));
  return copy;
}

Token Token::restamped(std::uint64_t seq, TimeNs produced_at) const {
  Token copy = *this;
  copy.seq_ = seq;
  copy.produced_at_ = produced_at;
  return copy;
}

}  // namespace sccft::kpn
