#include "kpn/token.hpp"

#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace sccft::kpn {

Token::Token(std::vector<std::uint8_t> payload, std::uint64_t seq, TimeNs produced_at)
    : payload_(std::make_shared<const std::vector<std::uint8_t>>(std::move(payload))),
      seq_(seq),
      produced_at_(produced_at) {
  checksum_ = util::crc32(*payload_);
}

Token::Token(std::shared_ptr<const std::vector<std::uint8_t>> payload,
             std::uint64_t seq, TimeNs produced_at)
    : payload_(std::move(payload)), seq_(seq), produced_at_(produced_at) {
  SCCFT_EXPECTS(payload_ != nullptr);
  checksum_ = util::crc32(*payload_);
}

std::span<const std::uint8_t> Token::payload() const {
  SCCFT_EXPECTS(payload_ != nullptr);
  return *payload_;
}

bool Token::verify_checksum() const {
  if (!payload_) return true;
  return util::crc32(*payload_) == checksum_;
}

Token Token::corrupted(std::size_t bit_index) const {
  SCCFT_EXPECTS(payload_ != nullptr && !payload_->empty());
  auto flipped = std::make_shared<std::vector<std::uint8_t>>(*payload_);
  const std::size_t bit = bit_index % (flipped->size() * 8);
  (*flipped)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  Token copy = *this;           // keeps the (now stale) stored checksum
  copy.payload_ = std::move(flipped);
  return copy;
}

Token Token::restamped(std::uint64_t seq, TimeNs produced_at) const {
  Token copy = *this;
  copy.seq_ = seq;
  copy.produced_at_ = produced_at;
  return copy;
}

}  // namespace sccft::kpn
