#include "kpn/token.hpp"

#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace sccft::kpn {

Token::Token(std::vector<std::uint8_t> payload, std::uint64_t seq, TimeNs produced_at)
    : payload_(std::make_shared<const std::vector<std::uint8_t>>(std::move(payload))),
      seq_(seq),
      produced_at_(produced_at) {
  checksum_ = util::crc32(*payload_);
}

Token::Token(std::shared_ptr<const std::vector<std::uint8_t>> payload,
             std::uint64_t seq, TimeNs produced_at)
    : payload_(std::move(payload)), seq_(seq), produced_at_(produced_at) {
  SCCFT_EXPECTS(payload_ != nullptr);
  checksum_ = util::crc32(*payload_);
}

std::span<const std::uint8_t> Token::payload() const {
  SCCFT_EXPECTS(payload_ != nullptr);
  return *payload_;
}

Token Token::restamped(std::uint64_t seq, TimeNs produced_at) const {
  Token copy = *this;
  copy.seq_ = seq;
  copy.produced_at_ = produced_at;
  return copy;
}

}  // namespace sccft::kpn
