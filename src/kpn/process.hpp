// Processes: coroutine actors mapped onto SCC cores.
//
// A process is a named coroutine with blocking-FIFO semantics, mapped to one
// core (the paper maps one process per tile). Its body receives a
// ProcessContext giving access to simulated time, per-process deterministic
// randomness, compute-delay modelling, and the fault gate through which the
// fault injector (src/ft/fault_injector.hpp) turns a healthy process into a
// silent or degraded one.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "scc/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

namespace sccft::kpn {

/// Mutable fault status shared between a process and the fault injector.
///
/// The paper's fault model (Section 2): a faulty replica "either stops
/// producing (or consuming) tokens, or does so at a rate lower than
/// expected". The extended taxonomy (ft/fault_plan.hpp) adds *transient*
/// silence: `silence_until >= 0` marks a halt that self-resumes at that
/// simulated time instead of parking the process forever.
struct FaultState {
  bool silenced = false;      ///< process stops at its next gate
  rtc::TimeNs silence_until = -1;  ///< resume time for transient silence, -1 = permanent
  double rate_factor = 1.0;   ///< >1.0 slows the process down proportionally
  rtc::TimeNs faulted_at = -1;  ///< simulated time of injection, -1 if none

  [[nodiscard]] bool faulty() const { return silenced || rate_factor > 1.0; }

  /// Ends a (transient) silence; idempotent.
  void clear_silence() {
    silenced = false;
    silence_until = -1;
  }
};

class Process;

/// Execution context handed to a process body.
class ProcessContext final {
 public:
  ProcessContext(sim::Simulator& sim, std::string name, scc::CoreId core,
                 std::uint64_t seed)
      : sim_(sim), name_(std::move(name)), core_(core), rng_(seed) {}

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] rtc::TimeNs now() const { return sim_.now(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] scc::CoreId core() const { return core_; }
  [[nodiscard]] util::Xoshiro256& rng() { return rng_; }

  /// Models `ns` of computation on this core. Scaled by the fault state's
  /// rate factor, so a degraded process computes proportionally slower.
  [[nodiscard]] sim::Delay compute(rtc::TimeNs ns) {
    const auto scaled =
        static_cast<rtc::TimeNs>(static_cast<double>(ns) * fault_.rate_factor);
    return sim::Delay{sim_, scaled};
  }

  /// Plain simulated-time delay (not affected by faults).
  [[nodiscard]] sim::Delay delay(rtc::TimeNs ns) { return sim::Delay{sim_, ns}; }

  [[nodiscard]] FaultState& fault() { return fault_; }
  [[nodiscard]] const FaultState& fault() const { return fault_; }

  /// True once the injector has silenced this process; bodies should
  /// `co_await sim::Forever{}` when they observe this (see
  /// SCCFT_FAULT_GATE below).
  [[nodiscard]] bool silenced() const { return fault_.silenced; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  scc::CoreId core_;
  util::Xoshiro256 rng_;
  FaultState fault_;
};

/// Standard fault gate for process bodies: park forever if permanently
/// silenced, or sleep through a transient silence window and resume. The loop
/// re-checks after every wake-up so an overlapping re-injection extends the
/// halt. (A macro because `co_await` must appear in the body's own frame.)
#define SCCFT_FAULT_GATE(ctx)                                                \
  do {                                                                       \
    while ((ctx).silenced()) {                                               \
      const ::sccft::rtc::TimeNs sccft_gate_until = (ctx).fault().silence_until; \
      if (sccft_gate_until < 0) {                                            \
        co_await ::sccft::sim::Forever{};                                    \
      } else if ((ctx).now() >= sccft_gate_until) {                          \
        (ctx).fault().clear_silence();                                       \
      } else {                                                               \
        co_await (ctx).delay(sccft_gate_until - (ctx).now());                \
      }                                                                      \
    }                                                                        \
  } while (false)

/// A named, mapped process. The body factory is invoked once when the
/// network starts; the resulting task is owned by the process.
class Process final {
 public:
  using BodyFactory = std::function<sim::Task(ProcessContext&)>;

  Process(sim::Simulator& sim, std::string name, scc::CoreId core, std::uint64_t seed,
          BodyFactory body)
      : context_(sim, std::move(name), core, seed), body_(std::move(body)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const { return context_.name(); }
  [[nodiscard]] scc::CoreId core() const { return context_.core(); }
  [[nodiscard]] ProcessContext& context() { return context_; }

  /// Instantiates and starts the body coroutine (runs until its first
  /// suspension point).
  void start() {
    task_ = body_(context_);
    task_.start();
  }

  /// Restarts the process: destroys the current coroutine (safe only if no
  /// channel still holds its handle — clear/reset those first) and runs the
  /// body factory again, with the fault state cleared. Models rebooting a
  /// replica's core during recovery.
  void restart() {
    context_.fault() = FaultState{};
    task_ = sim::Task{};  // destroy the old coroutine frame
    start();
  }

  [[nodiscard]] bool started() const { return task_.valid(); }
  [[nodiscard]] const sim::Task& task() const { return task_; }
  void rethrow_if_failed() const { task_.rethrow_if_failed(); }

 private:
  ProcessContext context_;
  BodyFactory body_;
  sim::Task task_;
};

}  // namespace sccft::kpn
