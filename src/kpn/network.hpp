// Process-network container: owns processes and channels, runs them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kpn/channel.hpp"
#include "kpn/process.hpp"
#include "sim/simulator.hpp"

namespace sccft::kpn {

/// A dataflow process network: processes (coroutines) + channels (FIFOs,
/// replicators, selectors), with a recorded topology for rendering and
/// mapping. Owns everything; addresses of processes and channels are stable
/// for the network's lifetime.
class Network final {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Adds a process; returns a stable reference.
  Process& add_process(std::string name, scc::CoreId core, std::uint64_t seed,
                       Process::BodyFactory body);

  /// Adds a plain FIFO channel; returns a stable reference.
  FifoChannel& add_fifo(std::string name, rtc::Tokens capacity,
                        std::optional<FifoChannel::LinkModel> link = std::nullopt);

  /// Transfers ownership of a custom channel (replicator, selector, ...).
  template <typename ChannelT>
  ChannelT& adopt_channel(std::unique_ptr<ChannelT> channel) {
    ChannelT& ref = *channel;
    channels_.push_back(std::move(channel));
    return ref;
  }

  /// Records a topology edge for rendering / mapping (purely metadata; the
  /// actual wiring is the interfaces captured by process bodies).
  void register_edge(const std::string& from_process, const std::string& to_process,
                     const std::string& via_channel, int token_bytes = 0);

  /// Starts every process (at the current simulated time) and runs the
  /// simulator until `until`. Rethrows the first exception that escaped a
  /// process body.
  void run_until(rtc::TimeNs until);

  /// Starts processes without running (caller drives the simulator).
  void start();

  /// Rethrows the first captured process exception, if any.
  void rethrow_failures() const;

  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<ChannelBase>>& channels() const {
    return channels_;
  }
  [[nodiscard]] Process* find_process(const std::string& name);
  [[nodiscard]] ChannelBase* find_channel(const std::string& name);

  struct Edge {
    std::string from, to, channel;
    int token_bytes = 0;
  };
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// ASCII rendering of the topology (one "from --channel--> to" line per
  /// edge), used by the Figure 1 / Figure 2 benches.
  [[nodiscard]] std::string render_topology() const;

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<ChannelBase>> channels_;
  std::vector<Edge> edges_;
  bool started_ = false;
};

}  // namespace sccft::kpn
