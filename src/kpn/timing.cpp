#include "kpn/timing.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::kpn {

TimingShaper::TimingShaper(rtc::PJD model, rtc::TimeNs anchor, util::Xoshiro256& rng)
    : model_(model), anchor_(anchor), rng_(rng) {
  SCCFT_EXPECTS(model_.period > 0);
  SCCFT_EXPECTS(model_.jitter >= 0);
  SCCFT_EXPECTS(model_.delay >= 0);
}

rtc::TimeNs TimingShaper::next_emission(rtc::TimeNs ready_at) {
  const rtc::TimeNs phi =
      model_.jitter > 0 ? rng_.uniform_int(0, model_.jitter) : 0;
  // Event k's nominal time is anchor + d + k*P, jittered within [0, J].
  const rtc::TimeNs nominal =
      anchor_ + model_.delay + static_cast<rtc::TimeNs>(k_) * model_.period + phi;
  rtc::TimeNs t = std::max(nominal, ready_at);
  if (last_ >= 0) t = std::max(t, last_);  // emission times are monotone
  // Contract: conformance requires the process to be ready within the jitter
  // envelope. A later `ready_at` (overloaded process) is *allowed* — it is
  // exactly the timing-fault condition the framework detects — so we do not
  // assert here; the curves simply stop holding for a genuinely late stream.
  ++k_;
  last_ = t;
  return t;
}

void TimingShaper::commit(rtc::TimeNs actual) {
  last_ = std::max(last_, actual);
  if (trace_ != nullptr) {
    SCCFT_TRACE(*trace_, trace::EventKind::kEmission, trace_subject_, actual,
                static_cast<std::int64_t>(k_));
  }
}

}  // namespace sccft::kpn
