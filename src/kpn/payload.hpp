// Pooled, reference-counted token payload buffers.
//
// The seed kernel stored every payload as a `shared_ptr<const vector>` and
// recomputed its CRC-32 on each Token construction. Under a 20-run campaign
// that is one heap allocation (control block + vector) and one full-payload
// CRC per *emission*, even though the payload caches mean only ~input_cycle
// distinct byte strings ever exist. This module replaces the shared_ptr with
// a pool-recycled buffer whose CRC is computed exactly once, at admission:
//
//  - PayloadBuffer: immutable byte string + its CRC-32, intrusively
//    refcounted, linked into the pool's free list when the count hits zero
//    so steady-state token traffic never allocates buffer nodes.
//  - PayloadRef: the shared-ownership handle (the `SharedBytes` of the apps
//    layer). Copying is one relaxed increment; no control block.
//  - PayloadPool: process-wide free list. Reference counts are atomic and the
//    free list is mutex-guarded because parallel campaign workers share
//    payloads through the transform caches — a buffer admitted by one worker
//    thread may take its last release on another.
//
// None of this changes simulated behaviour: buffers are immutable after
// admission, and a buffer's crc() equals util::crc32(view()) by construction,
// so every checksum the experiments record keeps its exact seed value.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace sccft::kpn {

class PayloadPool;
class PayloadRef;

/// One immutable payload: bytes + CRC-32, refcounted, pool-recycled.
class PayloadBuffer final {
 public:
  PayloadBuffer() = default;
  PayloadBuffer(const PayloadBuffer&) = delete;
  PayloadBuffer& operator=(const PayloadBuffer&) = delete;

  [[nodiscard]] std::span<const std::uint8_t> view() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] std::uint32_t crc() const { return crc_; }

 private:
  friend class PayloadPool;
  friend class PayloadRef;

  std::vector<std::uint8_t> bytes_;
  std::uint32_t crc_ = 0;
  std::atomic<std::uint32_t> refs_{0};
  PayloadBuffer* next_free_ = nullptr;
};

/// Shared-ownership handle to a PayloadBuffer. Default-constructed refs are
/// empty (tokens without a payload). The last ref returns the buffer to the
/// pool instead of freeing it.
class PayloadRef final {
 public:
  PayloadRef() = default;
  PayloadRef(const PayloadRef& other) noexcept : buf_(other.buf_) { retain(); }
  PayloadRef(PayloadRef&& other) noexcept : buf_(std::exchange(other.buf_, nullptr)) {}
  PayloadRef& operator=(const PayloadRef& other) noexcept {
    if (this != &other) {
      release();
      buf_ = other.buf_;
      retain();
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    if (this != &other) {
      release();
      buf_ = std::exchange(other.buf_, nullptr);
    }
    return *this;
  }
  ~PayloadRef() { release(); }

  [[nodiscard]] explicit operator bool() const { return buf_ != nullptr; }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_->view(); }
  [[nodiscard]] std::size_t size() const { return buf_ != nullptr ? buf_->size() : 0; }
  /// CRC-32 of the bytes, computed once at admission (== util::crc32(view())).
  [[nodiscard]] std::uint32_t crc() const { return buf_ != nullptr ? buf_->crc() : 0; }
  /// Pointer identity of the underlying bytes (tests assert sharing).
  [[nodiscard]] const std::uint8_t* data() const {
    return buf_ != nullptr ? buf_->view().data() : nullptr;
  }

  /// Admits `bytes` into the process-wide pool and returns the owning ref.
  [[nodiscard]] static PayloadRef adopt(std::vector<std::uint8_t> bytes);

 private:
  friend class PayloadPool;
  explicit PayloadRef(PayloadBuffer* buf) noexcept : buf_(buf) {}  // takes the ref

  void retain() noexcept {
    if (buf_ != nullptr) buf_->refs_.fetch_add(1, std::memory_order_relaxed);
  }
  void release() noexcept;

  PayloadBuffer* buf_ = nullptr;
};

/// Process-wide buffer pool. Buffers are owned by `storage_` for their whole
/// lifetime; the free list only lends them out, so teardown is a plain vector
/// destruction regardless of refcount races long past.
class PayloadPool final {
 public:
  static PayloadPool& instance();

  /// Moves `bytes` into a (recycled or fresh) buffer, stamps its CRC-32, and
  /// returns a ref holding the initial reference.
  [[nodiscard]] PayloadRef admit(std::vector<std::uint8_t> bytes);

  [[nodiscard]] std::uint64_t buffers_created() const {
    return buffers_created_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t buffers_recycled() const {
    return buffers_recycled_.load(std::memory_order_relaxed);
  }

 private:
  friend class PayloadRef;

  void recycle(PayloadBuffer* buf) noexcept;

  std::mutex mutex_;
  PayloadBuffer* free_ = nullptr;
  std::vector<std::unique_ptr<PayloadBuffer>> storage_;
  std::atomic<std::uint64_t> buffers_created_{0};
  std::atomic<std::uint64_t> buffers_recycled_{0};
};

inline void PayloadRef::release() noexcept {
  if (buf_ == nullptr) return;
  if (buf_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    PayloadPool::instance().recycle(buf_);
  }
  buf_ = nullptr;
}

}  // namespace sccft::kpn
