// Data tokens flowing through the process network.
//
// The paper's model (Section 2): a token T_k[j] produced by replica R_k
// carries a monotonically increasing sequence number j and has a timestamp
// t(k, j). Payloads are immutable and shared (the replicator duplicates each
// token to two FIFOs without copying the bytes), and carry a CRC-32 so that
// the experiments can check *functional* equivalence (Theorem 2) in O(1)
// space per token.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rtc/time.hpp"

namespace sccft::kpn {

using rtc::TimeNs;

class Token final {
 public:
  Token() = default;

  /// Creates a token with the given payload, sequence number and timestamp.
  Token(std::vector<std::uint8_t> payload, std::uint64_t seq, TimeNs produced_at);

  /// Creates a token sharing an existing payload (no copy, checksum reused by
  /// the caller via restamped(); used by payload caches).
  Token(std::shared_ptr<const std::vector<std::uint8_t>> payload, std::uint64_t seq,
        TimeNs produced_at);

  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] TimeNs produced_at() const { return produced_at_; }
  [[nodiscard]] int size_bytes() const {
    return payload_ ? static_cast<int>(payload_->size()) : 0;
  }
  [[nodiscard]] std::span<const std::uint8_t> payload() const;
  [[nodiscard]] std::uint32_t checksum() const { return checksum_; }
  [[nodiscard]] bool valid() const { return payload_ != nullptr; }

  /// Recomputes the CRC-32 over the payload and compares it with the stored
  /// checksum. A token whose payload was altered *after* construction (silent
  /// data corruption in a core or in transit) fails this check; tokens
  /// without a payload pass vacuously.
  [[nodiscard]] bool verify_checksum() const;

  /// Returns a copy of this token re-stamped with a new sequence number and
  /// production time (used when a channel re-emits a token downstream).
  [[nodiscard]] Token restamped(std::uint64_t seq, TimeNs produced_at) const;

  /// Fault-injection helper: returns a copy whose payload has bit
  /// `bit_index % (8 * size)` flipped while the stored checksum is kept
  /// unchanged — i.e. a token corrupted after CRC stamping, exactly what
  /// verify_checksum() is designed to convict. The original (shared) payload
  /// is not touched. Requires a non-empty payload.
  [[nodiscard]] Token corrupted(std::size_t bit_index) const;

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> payload_;
  std::uint64_t seq_ = 0;
  TimeNs produced_at_ = 0;
  std::uint32_t checksum_ = 0;
};

}  // namespace sccft::kpn
