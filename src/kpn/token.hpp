// Data tokens flowing through the process network.
//
// The paper's model (Section 2): a token T_k[j] produced by replica R_k
// carries a monotonically increasing sequence number j and has a timestamp
// t(k, j). Payloads are immutable and shared (the replicator duplicates each
// token to two FIFOs without copying the bytes), and carry a CRC-32 so that
// the experiments can check *functional* equivalence (Theorem 2) in O(1)
// space per token.
//
// Payload storage is the pooled PayloadRef (see payload.hpp): a buffer's CRC
// is computed once at admission, so constructing a token from a shared
// payload — the hot path of every replica emission — copies a cached word
// instead of re-hashing kilobytes, and verify_checksum() is a constant-time
// comparison of the token's stamped checksum against the buffer's true CRC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kpn/payload.hpp"
#include "rtc/time.hpp"

namespace sccft::kpn {

using rtc::TimeNs;

class Token final {
 public:
  Token() = default;

  /// Creates a token with the given payload, sequence number and timestamp.
  Token(std::vector<std::uint8_t> payload, std::uint64_t seq, TimeNs produced_at);

  /// Creates a token sharing an existing pooled payload (no copy, no CRC
  /// recomputation; used by the payload caches on every replica emission).
  Token(PayloadRef payload, std::uint64_t seq, TimeNs produced_at);

  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] TimeNs produced_at() const { return produced_at_; }
  [[nodiscard]] std::size_t size_bytes() const { return payload_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> payload() const;
  /// The shared payload handle itself (cached CRC + bytes). Empty for
  /// payload-less marker tokens.
  [[nodiscard]] const PayloadRef& payload_ref() const { return payload_; }
  [[nodiscard]] std::uint32_t checksum() const { return checksum_; }
  [[nodiscard]] bool valid() const { return static_cast<bool>(payload_); }

  /// Compares the stored checksum with the payload's true CRC-32 (cached at
  /// buffer admission — O(1)). A token whose payload was altered *after* CRC
  /// stamping (silent data corruption in a core or in transit) fails this
  /// check; tokens without a payload pass vacuously.
  [[nodiscard]] bool verify_checksum() const;

  /// Returns a copy of this token re-stamped with a new sequence number and
  /// production time (used when a channel re-emits a token downstream).
  [[nodiscard]] Token restamped(std::uint64_t seq, TimeNs produced_at) const;

  /// Fault-injection helper: returns a copy whose payload has bit
  /// `bit_index % (8 * size)` flipped while the stored checksum is kept
  /// unchanged — i.e. a token corrupted after CRC stamping, exactly what
  /// verify_checksum() is designed to convict. The original (shared) payload
  /// is not touched. Requires a non-empty payload.
  [[nodiscard]] Token corrupted(std::size_t bit_index) const;

 private:
  PayloadRef payload_;
  std::uint64_t seq_ = 0;
  TimeNs produced_at_ = 0;
  std::uint32_t checksum_ = 0;
};

}  // namespace sccft::kpn
