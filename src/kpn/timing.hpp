// PJD-conforming emission-time shaping.
//
// Experiment processes (producers, replica interface processes) must emit
// tokens whose timing provably satisfies a given <period, jitter,
// min-distance> model, because the design-time sizing (src/rtc/sizing.hpp)
// assumed exactly those curves. The shaper draws jittered nominal times and
// enforces the minimum distance:
//
//   t_k = max( t_{k-1} + d,  anchor + k*P + phi_k,  now ),  phi_k ~ U[0, J].
//
// Claim (property-tested in tests/kpn_timing_test.cpp): the resulting stream
// satisfies eta+/eta- of the PJD model. Sketch: each t_k lies in
// [anchor + k*P, anchor + k*P + J] (the max() with t_{k-1}+d cannot push past
// the jitter bound when d <= P, by induction), and consecutive emissions are
// >= d apart by construction.
#pragma once

#include "rtc/pjd.hpp"
#include "rtc/time.hpp"
#include "trace/bus.hpp"
#include "util/rng.hpp"

namespace sccft::kpn {

class TimingShaper final {
 public:
  /// `anchor` is the nominal time of emission 0.
  TimingShaper(rtc::PJD model, rtc::TimeNs anchor, util::Xoshiro256& rng);

  /// Attaches the shaper to a trace bus: every commit() emits a kEmission
  /// event under `subject`, so conformance of the shaped stream can be
  /// audited offline against the PJD curves. Optional; pass nullptr to
  /// detach.
  void bind_trace(trace::TraceBus* bus, trace::SubjectId subject) {
    trace_ = bus;
    trace_subject_ = subject;
  }

  /// Returns the emission time for the next token, given the earliest time
  /// the process could emit it (`ready_at`, usually now()). Monotone
  /// non-decreasing across calls.
  [[nodiscard]] rtc::TimeNs next_emission(rtc::TimeNs ready_at);

  /// Records the *actual* event time when it may be later than the value
  /// next_emission() returned (e.g. the read/write blocked); keeps the
  /// min-distance guarantee anchored to real events.
  void commit(rtc::TimeNs actual);

  [[nodiscard]] const rtc::PJD& model() const { return model_; }
  [[nodiscard]] std::uint64_t emitted() const { return k_; }

 private:
  rtc::PJD model_;
  rtc::TimeNs anchor_;
  util::Xoshiro256& rng_;
  trace::TraceBus* trace_ = nullptr;
  trace::SubjectId trace_subject_ = 0;
  std::uint64_t k_ = 0;
  rtc::TimeNs last_ = -1;
};

}  // namespace sccft::kpn
