#include "kpn/channel.hpp"

#include <algorithm>

namespace sccft::kpn {

FifoChannel::FifoChannel(sim::Simulator& sim, std::string name, rtc::Tokens capacity,
                         std::optional<LinkModel> link)
    : sim_(sim),
      name_(std::move(name)),
      subject_(sim.trace().intern(name_)),
      capacity_(capacity),
      link_(std::move(link)) {
  SCCFT_EXPECTS(capacity_ > 0);
  if (link_) {
    SCCFT_EXPECTS(link_->noc != nullptr);
    SCCFT_EXPECTS(link_->src.valid() && link_->dst.valid());
  }
}

FifoChannel::Slot* FifoChannel::acquire_slot() {
  if (free_slots_ != nullptr) {
    Slot* slot = free_slots_;
    free_slots_ = slot->next;
    slot->next = nullptr;
    return slot;
  }
  return slot_storage_.emplace_back(std::make_unique<Slot>()).get();
}

void FifoChannel::release_slot(Slot* slot) {
  slot->token = Token();  // drop the payload ref now, not at next reuse
  slot->next = free_slots_;
  free_slots_ = slot;
}

void FifoChannel::push_back(Slot* slot) {
  slot->next = nullptr;
  if (tail_ != nullptr) {
    tail_->next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
  ++fill_;
}

std::optional<Token> FifoChannel::try_read() {
  if (head_ == nullptr) return std::nullopt;
  if (head_->available_at > sim_.now()) return std::nullopt;
  Slot* slot = head_;
  head_ = slot->next;
  if (head_ == nullptr) tail_ = nullptr;
  --fill_;
  Token token = std::move(slot->token);
  release_slot(slot);
  ++stats_.tokens_read;
  SCCFT_TRACE(sim_.trace(), trace::EventKind::kDequeue, subject_, sim_.now(),
              static_cast<std::int64_t>(token.seq()), fill());
  wake_writer();
  return token;
}

void FifoChannel::await_readable(std::coroutine_handle<> reader) {
  SCCFT_EXPECTS(!waiting_reader_);
  waiting_reader_ = reader;
  ++stats_.reader_blocks;
  SCCFT_TRACE(sim_.trace(), trace::EventKind::kReaderBlock, subject_, sim_.now());
  // If a token is already queued but still in flight, arrange a wake at its
  // availability time (its enqueue event may have fired before we waited).
  if (head_ != nullptr) {
    wake_reader_at(std::max(head_->available_at, sim_.now()));
  }
}

bool FifoChannel::try_write(const Token& token) {
  if (fill_ >= capacity_) {
    ++stats_.writer_blocks;
    SCCFT_TRACE(sim_.trace(), trace::EventKind::kWriterBlock, subject_, sim_.now(),
                static_cast<std::int64_t>(token.seq()));
    return false;
  }
  TimeNs available_at = sim_.now();
  if (link_) {
    const auto outcome = link_->noc->transfer_ex(link_->src, link_->dst,
                                                 token.size_bytes(), sim_.now());
    if (!outcome.delivered) {
      // NoC fault after exhausting retransmissions: the write succeeded from
      // the sender's view but the token never materializes at the reader.
      ++stats_.tokens_written;
      ++stats_.tokens_dropped;
      SCCFT_TRACE(sim_.trace(), trace::EventKind::kTokenDrop, subject_, sim_.now(),
                  static_cast<std::int64_t>(token.seq()));
      if (record_writes_) write_trace_.push_back(sim_.now());
      return true;
    }
    available_at = outcome.arrival;
  }
  Slot* slot = acquire_slot();
  slot->token = token;
  slot->available_at = available_at;
  push_back(slot);
  ++stats_.tokens_written;
  stats_.max_fill = std::max(stats_.max_fill, fill());
  SCCFT_TRACE(sim_.trace(), trace::EventKind::kEnqueue, subject_, sim_.now(),
              static_cast<std::int64_t>(token.seq()), fill());
  if (record_writes_) write_trace_.push_back(sim_.now());
  if (waiting_reader_) wake_reader_at(available_at);
  return true;
}

void FifoChannel::await_writable(std::coroutine_handle<> writer) {
  SCCFT_EXPECTS(!waiting_writer_);
  waiting_writer_ = writer;
}

void FifoChannel::preload(const Token& token, rtc::Tokens count) {
  SCCFT_EXPECTS(count >= 0);
  SCCFT_EXPECTS(fill_ + count <= capacity_);
  for (rtc::Tokens i = 0; i < count; ++i) {
    Slot* slot = acquire_slot();
    slot->token = token;
    slot->available_at = sim_.now();
    push_back(slot);
  }
  stats_.max_fill = std::max(stats_.max_fill, fill());
}

void FifoChannel::reset() {
  for (Slot* slot = head_; slot != nullptr;) {
    Slot* next = slot->next;
    release_slot(slot);
    slot = next;
  }
  head_ = nullptr;
  tail_ = nullptr;
  fill_ = 0;
  waiting_reader_ = nullptr;
  waiting_writer_ = nullptr;
}

void FifoChannel::wake_reader_at(TimeNs when) {
  if (!waiting_reader_) return;
  auto reader = waiting_reader_;
  waiting_reader_ = nullptr;
  sim_.schedule_at(std::max(when, sim_.now()), [reader] { reader.resume(); });
}

void FifoChannel::wake_writer() {
  if (!waiting_writer_) return;
  auto writer = waiting_writer_;
  waiting_writer_ = nullptr;
  sim_.schedule_after(0, [writer] { writer.resume(); });
}

}  // namespace sccft::kpn
