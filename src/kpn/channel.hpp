// Channel interfaces and the bounded blocking FIFO channel.
//
// Processes communicate exclusively "via read and write operations on FIFO
// channels with finite capacities, and the processes have blocking semantics"
// (Section 2). The read/write interfaces here are the coroutine equivalent:
// `co_await read(src)` suspends the process until a token is available;
// `co_await write(sink, token)` suspends it until the channel accepts the
// token. All channels are single-reader/single-writer per interface, matching
// the paper's process-network model; the replicator and selector (src/ft/)
// implement the same interfaces with their multi-interface semantics.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kpn/token.hpp"
#include "scc/noc.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"

namespace sccft::kpn {

/// Read interface: destructive, blocking, single reader.
class TokenSource {
 public:
  virtual ~TokenSource() = default;

  /// Takes the next token if one is available *now*; nullopt otherwise.
  [[nodiscard]] virtual std::optional<Token> try_read() = 0;

  /// Registers the (single) reader coroutine to be resumed when a token
  /// becomes available. Pre: no other reader is registered.
  virtual void await_readable(std::coroutine_handle<> reader) = 0;

  [[nodiscard]] virtual std::string source_name() const = 0;
};

/// Write interface: blocking, single writer per interface.
class TokenSink {
 public:
  virtual ~TokenSink() = default;

  /// Attempts to hand `token` to the channel. Returns true if the write
  /// completed (the channel may internally enqueue *or drop* the token — the
  /// selector drops late duplicates; either way the write has succeeded from
  /// the writer's perspective). Returns false if the writer must block.
  [[nodiscard]] virtual bool try_write(const Token& token) = 0;

  /// Registers the (single) writer coroutine of this interface to be resumed
  /// when the channel can accept a token again.
  virtual void await_writable(std::coroutine_handle<> writer) = 0;

  [[nodiscard]] virtual std::string sink_name() const = 0;
};

/// Awaitable returned by read(): suspends until a token is available.
class [[nodiscard]] ReadAwaiter final {
 public:
  explicit ReadAwaiter(TokenSource& source) : source_(source) {}

  bool await_ready() {
    token_ = source_.try_read();
    return token_.has_value();
  }
  void await_suspend(std::coroutine_handle<> handle) { source_.await_readable(handle); }
  Token await_resume() {
    if (!token_) {
      token_ = source_.try_read();
      SCCFT_ASSERT(token_.has_value());  // channels resume readers only when readable
    }
    return std::move(*token_);
  }

 private:
  TokenSource& source_;
  std::optional<Token> token_;
};

/// Awaitable returned by write(): suspends until the channel accepts.
class [[nodiscard]] WriteAwaiter final {
 public:
  WriteAwaiter(TokenSink& sink, Token token) : sink_(sink), token_(std::move(token)) {}

  bool await_ready() {
    accepted_ = sink_.try_write(token_);
    return accepted_;
  }
  void await_suspend(std::coroutine_handle<> handle) { sink_.await_writable(handle); }
  void await_resume() {
    if (!accepted_) {
      accepted_ = sink_.try_write(token_);
      SCCFT_ASSERT(accepted_);  // channels resume writers only when writable
    }
  }

 private:
  TokenSink& sink_;
  Token token_;
  bool accepted_ = false;
};

[[nodiscard]] inline ReadAwaiter read(TokenSource& source) { return ReadAwaiter(source); }
[[nodiscard]] inline WriteAwaiter write(TokenSink& sink, Token token) {
  return WriteAwaiter(sink, std::move(token));
}

/// Occupancy and traffic statistics every channel keeps.
struct ChannelStats {
  rtc::Tokens max_fill = 0;        ///< high-water mark of queued tokens
  std::uint64_t tokens_written = 0;
  std::uint64_t tokens_read = 0;
  std::uint64_t tokens_dropped = 0;   ///< selector-style duplicate drops
  std::uint64_t writer_blocks = 0;    ///< times a writer had to suspend
  std::uint64_t reader_blocks = 0;    ///< times a reader had to suspend
};

/// Root of the channel ownership hierarchy (networks own channels by base).
class ChannelBase {
 public:
  virtual ~ChannelBase() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual ChannelStats stats() const = 0;

  /// Publishes the channel's statistics into `registry` under "<name>.*"
  /// (gauge "<name>.max_fill", counters for the traffic totals). Channels
  /// with per-interface bookkeeping (replicator, selector) extend this with
  /// their per-queue/per-side metrics — the registry is how the experiment
  /// harness harvests Table 2 without reaching into channel internals.
  virtual void publish_metrics(trace::MetricsRegistry& registry) const {
    const ChannelStats s = stats();
    const std::string prefix = name();
    registry.gauge_max(prefix + ".max_fill", s.max_fill);
    registry.add(prefix + ".tokens_written", s.tokens_written);
    registry.add(prefix + ".tokens_read", s.tokens_read);
    registry.add(prefix + ".tokens_dropped", s.tokens_dropped);
    registry.add(prefix + ".writer_blocks", s.writer_blocks);
    registry.add(prefix + ".reader_blocks", s.reader_blocks);
  }
};

/// Bounded, blocking, single-reader single-writer FIFO channel.
///
/// If constructed with a NoC link (source/destination cores plus the platform
/// NoC model), each token becomes *visible to the reader* only after the
/// modelled transfer latency; it occupies FIFO space from the moment the
/// write commits (the sender's iRCCE put reserves the MPB slot immediately).
class FifoChannel final : public ChannelBase, public TokenSource, public TokenSink {
 public:
  /// A NoC-backed link between two mapped cores.
  struct LinkModel {
    scc::NocModel* noc = nullptr;
    scc::CoreId src{};
    scc::CoreId dst{};
  };

  FifoChannel(sim::Simulator& sim, std::string name, rtc::Tokens capacity,
              std::optional<LinkModel> link = std::nullopt);

  // TokenSource
  [[nodiscard]] std::optional<Token> try_read() override;
  void await_readable(std::coroutine_handle<> reader) override;
  [[nodiscard]] std::string source_name() const override { return name_; }

  // TokenSink
  [[nodiscard]] bool try_write(const Token& token) override;
  void await_writable(std::coroutine_handle<> writer) override;
  [[nodiscard]] std::string sink_name() const override { return name_; }

  // ChannelBase
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] ChannelStats stats() const override { return stats_; }

  [[nodiscard]] rtc::Tokens capacity() const { return capacity_; }
  [[nodiscard]] rtc::Tokens fill() const { return fill_; }

  /// Pre-loads `count` copies of `token` (initial tokens |S|_0 per Eq. (4)).
  void preload(const Token& token, rtc::Tokens count);

  /// Enables recording of write timestamps (for curve calibration).
  void enable_write_trace() { record_writes_ = true; }
  [[nodiscard]] const std::vector<TimeNs>& write_trace() const { return write_trace_; }

  /// Discards all queued tokens and forgets any registered waiters. Used
  /// when the processes at both ends are being restarted (replica recovery):
  /// their old coroutines are destroyed, so stored handles must not be
  /// resumed.
  void reset();

 private:
  // Intrusive FIFO node, recycled through a per-channel free list: enqueueing
  // at steady state relinks a node instead of touching the allocator (slots
  // are allocated at most `capacity` times over the channel's lifetime).
  struct Slot {
    Token token;
    TimeNs available_at = 0;
    Slot* next = nullptr;
  };

  [[nodiscard]] Slot* acquire_slot();
  void release_slot(Slot* slot);
  void push_back(Slot* slot);

  void wake_reader_at(TimeNs when);
  void wake_writer();

  sim::Simulator& sim_;
  std::string name_;
  trace::SubjectId subject_;
  rtc::Tokens capacity_;
  std::optional<LinkModel> link_;
  Slot* head_ = nullptr;
  Slot* tail_ = nullptr;
  Slot* free_slots_ = nullptr;
  std::vector<std::unique_ptr<Slot>> slot_storage_;
  rtc::Tokens fill_ = 0;
  std::coroutine_handle<> waiting_reader_;
  std::coroutine_handle<> waiting_writer_;
  ChannelStats stats_;
  bool record_writes_ = false;
  std::vector<TimeNs> write_trace_;
};

}  // namespace sccft::kpn
