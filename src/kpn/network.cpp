#include "kpn/network.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace sccft::kpn {

Process& Network::add_process(std::string name, scc::CoreId core, std::uint64_t seed,
                              Process::BodyFactory body) {
  SCCFT_EXPECTS(!started_);
  SCCFT_EXPECTS(find_process(name) == nullptr);
  processes_.push_back(
      std::make_unique<Process>(sim_, std::move(name), core, seed, std::move(body)));
  return *processes_.back();
}

FifoChannel& Network::add_fifo(std::string name, rtc::Tokens capacity,
                               std::optional<FifoChannel::LinkModel> link) {
  SCCFT_EXPECTS(find_channel(name) == nullptr);
  auto channel = std::make_unique<FifoChannel>(sim_, std::move(name), capacity,
                                               std::move(link));
  FifoChannel& ref = *channel;
  channels_.push_back(std::move(channel));
  return ref;
}

void Network::register_edge(const std::string& from_process,
                            const std::string& to_process,
                            const std::string& via_channel, int token_bytes) {
  edges_.push_back(Edge{from_process, to_process, via_channel, token_bytes});
}

void Network::start() {
  SCCFT_EXPECTS(!started_);
  started_ = true;
  for (auto& process : processes_) process->start();
}

void Network::run_until(rtc::TimeNs until) {
  if (!started_) start();
  sim_.run_until(until);
  rethrow_failures();
}

void Network::rethrow_failures() const {
  for (const auto& process : processes_) {
    if (process->started()) process->rethrow_if_failed();
  }
}

Process* Network::find_process(const std::string& name) {
  for (auto& process : processes_) {
    if (process->name() == name) return process.get();
  }
  return nullptr;
}

ChannelBase* Network::find_channel(const std::string& name) {
  for (auto& channel : channels_) {
    if (channel->name() == name) return channel.get();
  }
  return nullptr;
}

std::string Network::render_topology() const {
  std::ostringstream os;
  for (const auto& edge : edges_) {
    os << "  " << edge.from << " --[" << edge.channel;
    if (edge.token_bytes > 0) os << ", " << edge.token_bytes << " B/token";
    os << "]--> " << edge.to << "\n";
  }
  return os.str();
}

}  // namespace sccft::kpn
