#include "kpn/payload.hpp"

#include "util/crc32.hpp"

namespace sccft::kpn {

PayloadPool& PayloadPool::instance() {
  static PayloadPool pool;
  return pool;
}

PayloadRef PayloadRef::adopt(std::vector<std::uint8_t> bytes) {
  return PayloadPool::instance().admit(std::move(bytes));
}

PayloadRef PayloadPool::admit(std::vector<std::uint8_t> bytes) {
  PayloadBuffer* buf = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (free_ != nullptr) {
      buf = free_;
      free_ = buf->next_free_;
      buffers_recycled_.fetch_add(1, std::memory_order_relaxed);
    } else {
      buf = storage_.emplace_back(std::make_unique<PayloadBuffer>()).get();
      buffers_created_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // From here the buffer is exclusively ours; fill and stamp outside the lock
  // so concurrent admits never serialize on the CRC.
  buf->next_free_ = nullptr;
  buf->bytes_ = std::move(bytes);
  buf->crc_ = util::crc32(buf->bytes_);
  buf->refs_.store(1, std::memory_order_relaxed);
  return PayloadRef(buf);
}

void PayloadPool::recycle(PayloadBuffer* buf) noexcept {
  // Only the node is recycled; its contents were move-assigned away by the
  // next admit() anyway, so clear eagerly (outside the lock) to release any
  // payload-held resources promptly.
  buf->bytes_.clear();
  const std::lock_guard<std::mutex> lock(mutex_);
  buf->next_free_ = free_;
  free_ = buf;
}

}  // namespace sccft::kpn
