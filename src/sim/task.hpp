// Coroutine task type for simulated processes.
//
// Process bodies in the KPN runtime (src/kpn/) are C++20 coroutines returning
// sim::Task. A Task is a top-level, runtime-owned coroutine: nothing awaits
// it; the simulator resumes it when the awaited condition (a delay elapsing,
// a FIFO becoming readable/writable) is met. Exceptions escaping a process
// body are captured and rethrown by the runtime after the simulation run, so
// contract violations inside processes fail tests instead of vanishing.
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>

#include "sim/simulator.hpp"

namespace sccft::sim {

class Task final {
 public:
  struct promise_type {
    std::exception_ptr exception;
    bool done_flag = false;
    /// Liveness token for scheduled wake-ups. Destroying the frame (e.g. a
    /// supervisor restarting a faulty replica mid-delay) releases it, so a
    /// pending Delay event observes the expired weak_ptr and never resumes a
    /// dangling handle.
    std::shared_ptr<const bool> liveness = std::make_shared<const bool>(true);

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    // Lazy start: the runtime decides when the process first runs.
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept { done_flag = true; }
    void unhandled_exception() noexcept {
      exception = std::current_exception();
      done_flag = true;
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

  /// Resumes the coroutine once (used by the runtime to start it).
  void start() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  /// Exception that escaped the body, if any (null otherwise).
  [[nodiscard]] std::exception_ptr exception() const {
    return handle_ ? handle_.promise().exception : nullptr;
  }

  /// Rethrows the captured exception if there is one.
  void rethrow_if_failed() const {
    if (auto ex = exception()) std::rethrow_exception(ex);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable that suspends the current coroutine for a simulated duration.
/// `co_await Delay{sim, ns}` resumes exactly ns later in simulated time.
struct Delay {
  Simulator& sim;
  TimeNs duration;

  [[nodiscard]] bool await_ready() const noexcept { return duration == 0; }
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> handle) const {
    if constexpr (requires { handle.promise().liveness; }) {
      // Guard the wake-up with the frame's liveness token: if the coroutine
      // is destroyed before the delay elapses (replica restart), the event
      // fires into a no-op instead of a use-after-free.
      sim.schedule_after(
          duration,
          [handle, alive = std::weak_ptr<const bool>(handle.promise().liveness)] {
            if (alive.expired()) return;
            handle.resume();
          });
    } else {
      sim.schedule_after(duration, [handle] { handle.resume(); });
    }
  }
  void await_resume() const noexcept {}
};

/// Awaitable that never resumes: a process awaiting Forever is permanently
/// parked (used to model a replica falling silent after a timing fault).
struct Forever {
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

}  // namespace sccft::sim
