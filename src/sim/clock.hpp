// Simulated hardware clocks.
//
// The SCC derives all timing measurements from per-core time-stamp counters
// (TSC). Each core's TSC runs at the tile frequency and may carry a small
// offset and drift relative to the global simulated time; clocks are
// synchronized at application boot ("All clocks are synchronized at
// application boot time", Section 4.1), which we model by capturing the
// offset at sync time.
#pragma once

#include <cstdint>

#include "rtc/time.hpp"
#include "util/assert.hpp"

namespace sccft::sim {

using rtc::TimeNs;

/// A TSC-style cycle counter clock derived from global simulated time.
class TscClock final {
 public:
  /// `frequency_hz` of the counter; `drift_ppm` models crystal inaccuracy
  /// (parts per million); `offset_ns` is the power-on phase offset.
  TscClock(double frequency_hz, double drift_ppm = 0.0, TimeNs offset_ns = 0)
      : frequency_hz_(frequency_hz), drift_ppm_(drift_ppm), offset_ns_(offset_ns) {
    SCCFT_EXPECTS(frequency_hz > 0.0);
  }

  /// Raw cycle count at global time `now`.
  [[nodiscard]] std::uint64_t cycles_at(TimeNs now) const {
    const double effective_hz = frequency_hz_ * (1.0 + drift_ppm_ * 1e-6);
    const double t = static_cast<double>(now + offset_ns_) * 1e-9;
    return static_cast<std::uint64_t>(t * effective_hz);
  }

  /// Local time in nanoseconds reconstructed from the cycle count using the
  /// *nominal* frequency (as software on the core would do).
  [[nodiscard]] TimeNs local_time_at(TimeNs now) const {
    const double seconds = static_cast<double>(cycles_at(now)) / frequency_hz_;
    return static_cast<TimeNs>(seconds * 1e9) - sync_correction_;
  }

  /// Boot-time synchronization: after sync, local_time_at(now) == now holds
  /// up to drift accumulated since `now`.
  void synchronize(TimeNs now) {
    sync_correction_ = 0;
    sync_correction_ = local_time_at(now) - now;
  }

  [[nodiscard]] double frequency_hz() const { return frequency_hz_; }

 private:
  double frequency_hz_;
  double drift_ppm_;
  TimeNs offset_ns_;
  TimeNs sync_correction_ = 0;
};

}  // namespace sccft::sim
