#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sccft::sim {

Simulator::Simulator() : trace_subject_(trace_.intern("sim")) {}

void Simulator::schedule_at(TimeNs t, Callback cb) {
  SCCFT_EXPECTS(t >= now_);
  SCCFT_EXPECTS(cb != nullptr);
  SCCFT_TRACE(trace_, trace::EventKind::kSimSchedule, trace_subject_, now_, t,
              static_cast<std::int64_t>(next_seq_));
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::schedule_after(TimeNs delay, Callback cb) {
  SCCFT_EXPECTS(delay >= 0);
  schedule_at(now_ + delay, std::move(cb));
}

void Simulator::dispatch_one() {
  // Copy out before pop: the callback may schedule new events.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  SCCFT_ASSERT(event.time >= now_);
  now_ = event.time;
  ++events_processed_;
  SCCFT_TRACE(trace_, trace::EventKind::kSimDispatch, trace_subject_, now_,
              static_cast<std::int64_t>(event.seq));
  event.cb();
}

void Simulator::run() {
  // A stop requested between run segments must not be discarded: the loop
  // condition observes it before dispatching anything, and observing is what
  // consumes the request (sticky-until-observed).
  while (!queue_.empty() && !stop_requested_) {
    dispatch_one();
  }
  stopped_ = std::exchange(stop_requested_, false);
}

bool Simulator::run_until(TimeNs t) {
  SCCFT_EXPECTS(t >= now_);
  while (!queue_.empty() && !stop_requested_ && queue_.top().time <= t) {
    dispatch_one();
  }
  stopped_ = std::exchange(stop_requested_, false);
  if (!stopped_ && now_ < t) now_ = t;
  return !stopped_;
}

}  // namespace sccft::sim
