#include "sim/simulator.hpp"

#include <string>
#include <utility>

#include "util/assert.hpp"

namespace sccft::sim {

Simulator::Simulator() : trace_subject_(trace_.intern("sim")) {}

Simulator::~Simulator() {
  // Pending events still own their callables (coroutine wake lambdas hold
  // liveness tokens, campaign closures hold captures): destroy them so the
  // arena can be torn down without leaking.
  queue_.for_each([](EventRecord* rec) { rec->ops->destroy(rec); });
}

void Simulator::reject_past_schedule(TimeNs t) const {
  util::contract_failure_msg(
      "precondition",
      "schedule_at into the past: t=" + std::to_string(t) +
          " < now()=" + std::to_string(now_),
      __FILE__, __LINE__);
}

void Simulator::dispatch(EventRecord* rec) {
  SCCFT_ASSERT(rec->time >= now_);
  now_ = rec->time;
  ++events_processed_;
  SCCFT_TRACE(trace_, trace::EventKind::kSimDispatch, trace_subject_, now_,
              static_cast<std::int64_t>(rec->seq));
  // Destroy the callable and recycle the record even when the callback throws
  // (contract violations propagate out of run_until into the chaos harness).
  struct Reclaim {
    EventArena& arena;
    EventRecord* rec;
    ~Reclaim() {
      rec->ops->destroy(rec);
      arena.release(rec);
    }
  } reclaim{arena_, rec};
  rec->ops->invoke(rec);
}

void Simulator::run() {
  // A stop requested between run segments must not be discarded: the loop
  // condition observes it before dispatching anything, and observing is what
  // consumes the request (sticky-until-observed).
  while (!queue_.empty() && !stop_requested_) {
    dispatch(queue_.pop());
  }
  stopped_ = std::exchange(stop_requested_, false);
}

bool Simulator::run_until(TimeNs t) {
  SCCFT_EXPECTS(t >= now_);
  while (!stop_requested_) {
    EventRecord* head = queue_.peek();  // cached: the pop below is O(1)
    if (head == nullptr || head->time > t) break;
    dispatch(queue_.pop());
  }
  stopped_ = std::exchange(stop_requested_, false);
  if (!stopped_ && now_ < t) {
    now_ = t;
    queue_.advance_floor(t);
  }
  return !stopped_;
}

}  // namespace sccft::sim
