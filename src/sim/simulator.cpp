#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sccft::sim {

void Simulator::schedule_at(TimeNs t, Callback cb) {
  SCCFT_EXPECTS(t >= now_);
  SCCFT_EXPECTS(cb != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::schedule_after(TimeNs delay, Callback cb) {
  SCCFT_EXPECTS(delay >= 0);
  schedule_at(now_ + delay, std::move(cb));
}

void Simulator::dispatch_one() {
  // Copy out before pop: the callback may schedule new events.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  SCCFT_ASSERT(event.time >= now_);
  now_ = event.time;
  ++events_processed_;
  event.cb();
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    dispatch_one();
  }
}

bool Simulator::run_until(TimeNs t) {
  SCCFT_EXPECTS(t >= now_);
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
    dispatch_one();
  }
  if (!stopped_ && now_ < t) now_ = t;
  return !stopped_;
}

}  // namespace sccft::sim
