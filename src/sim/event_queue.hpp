// Event storage for the simulator kernel: fixed-size inline-callable event
// records recycled through a free-list arena, ordered by a calendar queue.
//
// The seed kernel heap-allocated a std::function per event and kept a binary
// heap, so every schedule paid an allocation plus O(log n) sift and every
// dispatch another O(log n). Here an event is one 96-byte record from the
// arena: the callable is constructed in place (callables larger than the
// inline slot fall back to one boxed allocation), and ordering is a calendar
// queue — O(1) amortized insert/pop for the near-uniform event densities the
// KPN rigs produce — with the (time, seq) total order preserved exactly:
// bucket lists are kept sorted by (time, seq), ties across buckets resolve by
// seq, so reruns stay bit-identical with the heap kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "rtc/time.hpp"

namespace sccft::sim {

using rtc::TimeNs;

struct EventRecord;

/// Type-erased manual vtable for the callable stored in an EventRecord.
struct EventOps {
  void (*invoke)(EventRecord* rec);
  void (*destroy)(EventRecord* rec) noexcept;
};

/// Inline storage for the callable. 48 bytes covers every kernel-path lambda
/// (channel wakes capture a coroutine handle; sim::Delay adds a weak_ptr;
/// a by-value std::function is 32) — larger captures are boxed on the heap.
inline constexpr std::size_t kInlineCallableBytes = 48;

struct EventRecord {
  TimeNs time = 0;
  std::uint64_t seq = 0;
  EventRecord* next = nullptr;  ///< bucket list / free list link
  const EventOps* ops = nullptr;
  alignas(16) unsigned char storage[kInlineCallableBytes];
};

namespace detail {

template <typename F>
struct InlineOps {
  static void invoke(EventRecord* rec) {
    (*reinterpret_cast<F*>(static_cast<void*>(rec->storage)))();
  }
  static void destroy(EventRecord* rec) noexcept {
    reinterpret_cast<F*>(static_cast<void*>(rec->storage))->~F();
  }
  static constexpr EventOps ops{&invoke, &destroy};
};

template <typename F>
struct BoxedOps {
  static void invoke(EventRecord* rec) {
    (**reinterpret_cast<F**>(static_cast<void*>(rec->storage)))();
  }
  static void destroy(EventRecord* rec) noexcept {
    delete *reinterpret_cast<F**>(static_cast<void*>(rec->storage));
  }
  static constexpr EventOps ops{&invoke, &destroy};
};

}  // namespace detail

/// Constructs `fn` into `rec` (inline when it fits, boxed otherwise) and
/// points rec->ops at the matching vtable.
template <typename F>
void emplace_callable(EventRecord* rec, F&& fn) {
  using Fn = std::decay_t<F>;
  static_assert(std::is_invocable_r_v<void, Fn&>);
  if constexpr (sizeof(Fn) <= kInlineCallableBytes && alignof(Fn) <= 16 &&
                std::is_nothrow_move_constructible_v<Fn>) {
    ::new (static_cast<void*>(rec->storage)) Fn(std::forward<F>(fn));
    rec->ops = &detail::InlineOps<Fn>::ops;
  } else {
    ::new (static_cast<void*>(rec->storage)) Fn*(new Fn(std::forward<F>(fn)));
    rec->ops = &detail::BoxedOps<Fn>::ops;
  }
}

/// Free-list arena of EventRecords in chunked blocks: allocation and release
/// are pointer pops/pushes, and records keep cache locality across recycling
/// (LIFO reuse means the hottest record is the one just dispatched).
class EventArena final {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  [[nodiscard]] EventRecord* allocate() {
    if (free_ == nullptr) grow();
    EventRecord* rec = free_;
    free_ = rec->next;
    return rec;
  }

  /// The callable must already be destroyed (ops->destroy) by the caller.
  void release(EventRecord* rec) noexcept {
    rec->next = free_;
    free_ = rec;
  }

 private:
  void grow();

  static constexpr std::size_t kBlockRecords = 256;
  std::vector<std::unique_ptr<EventRecord[]>> blocks_;
  EventRecord* free_ = nullptr;
};

/// Calendar queue over intrusive EventRecord lists, keyed on integer-ns time
/// with (time, seq) tie order. Buckets are sorted singly-linked lists; the
/// rotation scan starts at the monotone floor (the last popped time) and a
/// full empty rotation falls back to a direct min search over bucket heads,
/// so sparse far-future events cannot livelock the scan. Deterministic by
/// construction: behavior is a pure function of the insert/pop sequence.
class CalendarQueue final {
 public:
  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  void insert(EventRecord* rec);

  /// Minimum (time, seq) record without unlinking, or nullptr when empty.
  /// The found position is cached, so an immediately following pop() is O(1).
  [[nodiscard]] EventRecord* peek();

  /// Unlinks and returns the minimum record, or nullptr when empty.
  EventRecord* pop();

  /// Caller guarantee: every queued event has time >= t (used by run_until
  /// when it advances simulated time past the last event). Tightens the
  /// rotation scan's starting bucket.
  void advance_floor(TimeNs t);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Visits every queued record (unordered) — the simulator's destructor uses
  /// this to destroy still-pending callables.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (EventRecord* head : buckets_) {
      for (EventRecord* rec = head; rec != nullptr;) {
        EventRecord* next = rec->next;
        fn(rec);
        rec = next;
      }
    }
  }

 private:
  [[nodiscard]] std::size_t bucket_index(TimeNs t) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) >> width_shift_) &
           mask_;
  }
  /// Relinks `rec` into its sorted bucket without resize bookkeeping.
  void link(EventRecord* rec);
  void resize(std::size_t bucket_count);
  struct Found {
    EventRecord* rec = nullptr;
    std::size_t bucket = 0;
  };
  [[nodiscard]] Found find_min() const;

  std::vector<EventRecord*> buckets_;
  std::size_t mask_ = 0;
  unsigned width_shift_ = 0;  ///< bucket width = 1 << width_shift_ ns
  std::size_t size_ = 0;
  TimeNs floor_ = 0;     ///< no queued event is earlier than this
  TimeNs max_time_ = 0;  ///< high-water mark of inserted times
  Found cached_min_;     ///< valid iff cache_valid_ (set by peek)
  bool cache_valid_ = false;
};

}  // namespace sccft::sim
