#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::sim {

void EventArena::grow() {
  blocks_.push_back(std::make_unique<EventRecord[]>(kBlockRecords));
  EventRecord* block = blocks_.back().get();
  for (std::size_t i = kBlockRecords; i-- > 0;) {
    block[i].next = free_;
    free_ = &block[i];
  }
}

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr unsigned kMaxWidthShift = 40;  // ~18 minutes of simulated time

/// Width heuristic: one bucket per average inter-event gap, as a power of two
/// so bucket indexing is a shift. Pure arithmetic on (span, count) — no
/// sampling, no clocks — so resizes are deterministic.
unsigned width_shift_for(TimeNs span, std::size_t count) {
  const auto gap = static_cast<std::uint64_t>(
      std::max<TimeNs>(span / static_cast<TimeNs>(std::max<std::size_t>(count, 1)), 1));
  unsigned shift = 0;
  while (shift < kMaxWidthShift && (std::uint64_t{1} << (shift + 1)) <= gap) ++shift;
  return shift;
}

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets, nullptr), mask_(kMinBuckets - 1) {}

void CalendarQueue::link(EventRecord* rec) {
  EventRecord** cursor = &buckets_[bucket_index(rec->time)];
  while (*cursor != nullptr &&
         ((*cursor)->time < rec->time ||
          ((*cursor)->time == rec->time && (*cursor)->seq < rec->seq))) {
    cursor = &(*cursor)->next;
  }
  rec->next = *cursor;
  *cursor = rec;
}

void CalendarQueue::insert(EventRecord* rec) {
  SCCFT_ASSERT(rec->time >= floor_);
  max_time_ = std::max(max_time_, rec->time);
  link(rec);
  ++size_;
  cache_valid_ = false;
  if (size_ > buckets_.size() * 2) resize(buckets_.size() * 2);
}

void CalendarQueue::resize(std::size_t bucket_count) {
  // Collect every record, re-derive the bucket width from the actual time
  // span of the queue's contents, and relink into the fresh table.
  EventRecord* all = nullptr;
  TimeNs lo = max_time_, hi = floor_;
  for (EventRecord* head : buckets_) {
    for (EventRecord* rec = head; rec != nullptr;) {
      EventRecord* next = rec->next;
      lo = std::min(lo, rec->time);
      hi = std::max(hi, rec->time);
      rec->next = all;
      all = rec;
      rec = next;
    }
  }
  buckets_.assign(bucket_count, nullptr);
  mask_ = bucket_count - 1;
  width_shift_ = width_shift_for(hi - lo, size_);
  for (EventRecord* rec = all; rec != nullptr;) {
    EventRecord* next = rec->next;
    link(rec);
    rec = next;
  }
  cache_valid_ = false;
}

CalendarQueue::Found CalendarQueue::find_min() const {
  // Rotation scan: walk buckets starting at the floor's virtual bucket; a
  // head qualifies only if it belongs to the bucket's current calendar year
  // (time < the bucket's window end), which makes it the global minimum.
  const std::uint64_t start_virtual = static_cast<std::uint64_t>(floor_) >> width_shift_;
  const std::uint64_t width = std::uint64_t{1} << width_shift_;
  std::uint64_t window_end = (start_virtual + 1) << width_shift_;
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    const std::size_t bucket =
        static_cast<std::size_t>(start_virtual + scanned) & mask_;
    EventRecord* head = buckets_[bucket];
    if (head != nullptr &&
        static_cast<std::uint64_t>(head->time) < window_end) {
      return {head, bucket};
    }
    window_end += width;
  }
  // Sparse queue: a full rotation found nothing in-year. Direct search over
  // bucket heads (each is its bucket's minimum); ties resolve by seq.
  Found best;
  for (std::size_t bucket = 0; bucket < buckets_.size(); ++bucket) {
    EventRecord* head = buckets_[bucket];
    if (head == nullptr) continue;
    if (best.rec == nullptr || head->time < best.rec->time ||
        (head->time == best.rec->time && head->seq < best.rec->seq)) {
      best = {head, bucket};
    }
  }
  return best;
}

EventRecord* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  if (!cache_valid_) {
    cached_min_ = find_min();
    cache_valid_ = true;
  }
  return cached_min_.rec;
}

EventRecord* CalendarQueue::pop() {
  if (size_ == 0) return nullptr;
  const Found found = cache_valid_ ? cached_min_ : find_min();
  SCCFT_ASSERT(found.rec != nullptr);
  buckets_[found.bucket] = found.rec->next;
  --size_;
  floor_ = found.rec->time;
  cache_valid_ = false;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4) {
    resize(buckets_.size() / 2);
  }
  return found.rec;
}

void CalendarQueue::advance_floor(TimeNs t) {
  SCCFT_ASSERT(t >= floor_);
  floor_ = t;
  cache_valid_ = false;
}

}  // namespace sccft::sim
