// Discrete-event simulation core.
//
// The framework's experiments run on a simulated Intel SCC (see src/scc/).
// This module provides the event wheel: a deterministic, single-threaded
// discrete-event simulator with integer-nanosecond time. Determinism comes
// from a (time, sequence) total order on events — two events at the same
// timestamp fire in scheduling order, so reruns are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "rtc/time.hpp"
#include "trace/bus.hpp"

namespace sccft::sim {

using rtc::TimeNs;

class Simulator final {
 public:
  using Callback = std::function<void()>;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The simulation's trace spine: every layer built on this simulator emits
  /// its events here and publishes its metrics into trace().metrics().
  [[nodiscard]] trace::TraceBus& trace() { return trace_; }
  [[nodiscard]] const trace::TraceBus& trace() const { return trace_; }

  /// Current simulated time. Starts at 0.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  void schedule_at(TimeNs t, Callback cb);

  /// Schedules `cb` `delay` nanoseconds from now (delay >= 0).
  void schedule_after(TimeNs delay, Callback cb);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs all events with timestamp <= `t`; afterwards now() == t unless the
  /// queue drained earlier or stop() was called. Returns false if stopped.
  bool run_until(TimeNs t);

  /// Requests the run loop to exit after the current event. The request is
  /// sticky: if no run loop is active, the *next* run()/run_until() observes
  /// it and returns immediately (dispatching nothing) instead of silently
  /// discarding it. A request is consumed by the run segment that observes it.
  void stop() { stop_requested_ = true; }

  /// True if a stop() request has not yet been observed by a run loop.
  [[nodiscard]] bool stop_pending() const { return stop_requested_; }

  /// True if the most recent run()/run_until() segment exited via stop().
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void dispatch_one();

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  trace::TraceBus trace_;
  trace::SubjectId trace_subject_ = 0;
};

}  // namespace sccft::sim
