// Discrete-event simulation core.
//
// The framework's experiments run on a simulated Intel SCC (see src/scc/).
// This module provides the event wheel: a deterministic, single-threaded
// discrete-event simulator with integer-nanosecond time. Determinism comes
// from a (time, sequence) total order on events — two events at the same
// timestamp fire in scheduling order, so reruns are bit-identical.
//
// Events are inline-callable records recycled through a free-list arena and
// ordered by a calendar queue (see event_queue.hpp): scheduling neither heap-
// allocates (for callables up to kInlineCallableBytes) nor pays a binary-heap
// sift. schedule_at is a template so the concrete lambda is constructed
// directly into the record; the std::function-compatible overload set of the
// seed kernel still compiles unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "rtc/time.hpp"
#include "sim/event_queue.hpp"
#include "trace/bus.hpp"
#include "util/assert.hpp"

namespace sccft::sim {

using rtc::TimeNs;

class Simulator final {
 public:
  using Callback = std::function<void()>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The simulation's trace spine: every layer built on this simulator emits
  /// its events here and publishes its metrics into trace().metrics().
  [[nodiscard]] trace::TraceBus& trace() { return trace_; }
  [[nodiscard]] const trace::TraceBus& trace() const { return trace_; }

  /// Current simulated time. Starts at 0.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `cb` at absolute time `t`. Scheduling into the past is a
  /// contract violation whose message carries both `t` and now().
  template <typename F>
  void schedule_at(TimeNs t, F&& cb) {
    if (t < now_) [[unlikely]] reject_past_schedule(t);
    if constexpr (requires { static_cast<bool>(cb); }) {
      SCCFT_EXPECTS(static_cast<bool>(cb));
    }
    SCCFT_TRACE(trace_, trace::EventKind::kSimSchedule, trace_subject_, now_, t,
                static_cast<std::int64_t>(next_seq_));
    EventRecord* rec = arena_.allocate();
    rec->time = t;
    rec->seq = next_seq_++;
    emplace_callable(rec, std::forward<F>(cb));
    queue_.insert(rec);
  }

  /// Schedules `cb` `delay` nanoseconds from now (delay >= 0).
  template <typename F>
  void schedule_after(TimeNs delay, F&& cb) {
    SCCFT_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs all events with timestamp <= `t`; afterwards now() == t unless the
  /// queue drained earlier or stop() was called. Returns false if stopped.
  bool run_until(TimeNs t);

  /// Requests the run loop to exit after the current event. The request is
  /// sticky: if no run loop is active, the *next* run()/run_until() observes
  /// it and returns immediately (dispatching nothing) instead of silently
  /// discarding it. A request is consumed by the run segment that observes it.
  void stop() { stop_requested_ = true; }

  /// True if a stop() request has not yet been observed by a run loop.
  [[nodiscard]] bool stop_pending() const { return stop_requested_; }

  /// True if the most recent run()/run_until() segment exited via stop().
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

 private:
  void dispatch(EventRecord* rec);
  [[noreturn]] void reject_past_schedule(TimeNs t) const;

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  bool stopped_ = false;
  EventArena arena_;
  CalendarQueue queue_;
  trace::TraceBus trace_;
  trace::SubjectId trace_subject_ = 0;
};

}  // namespace sccft::sim
