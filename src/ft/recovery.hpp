// Replica recovery / reintegration (extension beyond the paper).
//
// The paper tolerates one *permanent* fault and stops there; a production
// system wants to repair: restart the faulty replica's processes and re-admit
// it so the system regains its fault-tolerance margin. The sequence is:
//
//   1. the faulty replica's processes are restarted (fresh coroutines, fault
//      state cleared) — its internal FIFOs are reset first so no stale
//      coroutine handles remain registered anywhere;
//   2. the replicator re-opens the replica's queue (stale tokens discarded:
//      the replica rejoins at the producer's current stream position);
//   3. the selector clears the fault flag and re-synchronizes the replica's
//      received-token counter on its first write, using token sequence
//      numbers (see SelectorChannel::reintegrate) so duplicate-pair identity
//      is exact despite the tokens missed while the replica was down.
//
// After reintegration the system once again tolerates a (new) single fault —
// including one in the other replica, which tests/ft_recovery_test.cpp
// exercises.
#pragma once

#include <vector>

#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "kpn/channel.hpp"
#include "kpn/process.hpp"

namespace sccft::ft {

/// Everything belonging to one replica that recovery must touch.
struct ReplicaAssets {
  ReplicaIndex index = ReplicaIndex::kReplica1;
  std::vector<kpn::Process*> processes;          ///< the replica's processes
  std::vector<kpn::FifoChannel*> internal_fifos; ///< FIFOs inside the replica
};

/// Performs the full recovery sequence for one replica. Precondition: the
/// replica was frozen/silenced (its coroutines are parked and no channel
/// holds a live handle to them — freeze_reader/freeze_writer guarantee this
/// for the replicator/selector; internal FIFOs are reset here).
inline void recover_replica(ReplicatorChannel& replicator, SelectorChannel& selector,
                            const ReplicaAssets& assets) {
  for (auto* fifo : assets.internal_fifos) fifo->reset();
  replicator.reintegrate(assets.index);
  selector.reintegrate(assets.index);
  for (auto* process : assets.processes) process->restart();
}

}  // namespace sccft::ft
