// N-replica generalization of the replicator and selector channels.
//
// The paper (Section 1): "Without loss of generality, we focus on tolerating
// at most one permanent timing fault, using two replicas ... a more general
// setup for tolerating up to n timing faults can be easily constructed using
// the principles outlined in this paper." This module constructs it:
//
//  * NReplicatorChannel — one FIFO per replica, the producer's write is
//    duplicated into every non-faulty queue; a queue found full at a write
//    attempt marks its replica faulty (the Eq. (3) capacities make that
//    impossible for healthy replicas). Tolerates up to N-1 faults.
//  * NSelectorChannel — one write interface per replica, one physical FIFO.
//    Interface i's k-th token is the first of duplicate group k iff no peer
//    has delivered k tokens yet (received-count test, the exact form of the
//    paper's space comparison); later group members are dropped. Detection:
//    stall rule (space_i > |S_i|) and divergence rule (received count lags
//    the leader by >= D). Multiple replicas can be convicted over time, up
//    to N-1.
//
// Sizing is the per-replica application of Eq. (3)-(5):
//   |R_i| = sup(alpha_P^u - alpha_{i,in}^l),
//   |S_i|_0 = sup(alpha_C^u - alpha_{i,out}^l),
//   |S_i| = |S_i|_0 + sup(alpha_{i,out}^u - alpha_C^l),
//   D = 1 + max over ordered pairs (i, j) of sup(alpha_i^u - alpha_j^l).
#pragma once

#include <coroutine>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ft/replica.hpp"
#include "ft/scrub.hpp"
#include "kpn/channel.hpp"
#include "rtc/sizing.hpp"
#include "sim/simulator.hpp"

namespace sccft::ft {

/// Detection record for the N-replica channels (replica index is an int).
struct NDetectionRecord {
  int replica = 0;
  DetectionRule rule = DetectionRule::kReplicatorOverflow;
  rtc::TimeNs detected_at = 0;
};

using NFaultObserver = std::function<void(const NDetectionRecord&)>;

/// Per-replica timing models for the N-replica sizing analysis.
struct NReplicaTimingModel {
  rtc::CurveRef producer_upper, producer_lower;
  rtc::CurveRef consumer_upper, consumer_lower;
  std::vector<rtc::CurveRef> in_upper, in_lower;    // one per replica
  std::vector<rtc::CurveRef> out_upper, out_lower;  // one per replica
};

struct NSizingReport {
  std::vector<rtc::Tokens> replicator_capacity;  // |R_i|
  std::vector<rtc::Tokens> selector_capacity;    // |S_i|
  std::vector<rtc::Tokens> selector_initial;     // |S_i|_0
  rtc::Tokens divergence_threshold = 0;          // D
  rtc::TimeNs replicator_overflow_bound = 0;     // max_i (Eq. 3 fill time)
  rtc::TimeNs selector_latency_bound = 0;        // Eq. (7)/(8) over all pairs
};

/// Runs the Section 3.4 analysis for N replicas. Throws on infeasible bounds.
[[nodiscard]] NSizingReport analyze_n_replica_network(const NReplicaTimingModel& model,
                                                      rtc::TimeNs horizon);

/// Replicator channel with N reading interfaces.
class NReplicatorChannel final : public kpn::ChannelBase,
                                 public kpn::TokenSink,
                                 public Scrubbable {
 public:
  NReplicatorChannel(sim::Simulator& sim, std::string name,
                     std::vector<rtc::Tokens> capacities);

  [[nodiscard]] int replica_count() const { return static_cast<int>(queues_.size()); }
  [[nodiscard]] kpn::TokenSource& read_interface(int replica);

  // TokenSink (producer)
  [[nodiscard]] bool try_write(const kpn::Token& token) override;
  void await_writable(std::coroutine_handle<> writer) override;
  [[nodiscard]] std::string sink_name() const override { return name_; }

  // ChannelBase
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] kpn::ChannelStats stats() const override;

  [[nodiscard]] bool fault(int replica) const;
  [[nodiscard]] std::optional<NDetectionRecord> detection(int replica) const;
  [[nodiscard]] rtc::Tokens fill(int replica) const;
  [[nodiscard]] rtc::Tokens max_fill(int replica) const;
  [[nodiscard]] int healthy_count() const;

  void set_fault_observer(NFaultObserver observer) { observer_ = std::move(observer); }

  /// Halts reads on interface `replica` (silence-fault injection support).
  /// A parked reader's handle is retained so unfreeze_reader can resume it.
  void freeze_reader(int replica);
  /// Lifts a freeze_reader; wakes the parked reader if tokens are available.
  void unfreeze_reader(int replica);

  /// Re-admits a restarted replica: clears the fault verdict, reopens the
  /// queue at the producer's CURRENT position (stale slots are discarded —
  /// the peers delivered them while this replica was down), and bumps the
  /// wake epoch so wakes aimed at the destroyed coroutine frame are dropped.
  /// Mirrors ReplicatorChannel::reintegrate for the 2-replica channel.
  void reintegrate(int replica);

  // Scrubbable: word order is {queue_0.capacity, ..., queue_{N-1}.capacity}.
  [[nodiscard]] std::string scrub_name() const override { return name_; }
  [[nodiscard]] int control_word_count() const override { return scrub_set_.size(); }
  void corrupt_control_word(int word, int copy, std::uint64_t mask) override {
    scrub_set_.corrupt(word, copy, mask);
  }
  [[nodiscard]] ScrubReport scrub_control_state() override { return scrub_set_.scrub(); }

 private:
  struct Queue {
    Tmr<rtc::Tokens> capacity = 0;  ///< TMR-protected (see Scrubbable above)
    std::deque<kpn::Token> slots;
    std::coroutine_handle<> waiting_reader;
    bool reader_frozen = false;
    bool fault = false;
    std::optional<NDetectionRecord> detection;
    rtc::Tokens max_fill = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /// Restart generation: wakes scheduled before a reintegrate must not
    /// resume the coroutine frame the restart destroyed.
    std::uint64_t epoch = 0;
  };

  class ReadInterface final : public kpn::TokenSource {
   public:
    ReadInterface(NReplicatorChannel& owner, int replica)
        : owner_(owner), replica_(replica) {}
    [[nodiscard]] std::optional<kpn::Token> try_read() override {
      return owner_.queue_try_read(replica_);
    }
    void await_readable(std::coroutine_handle<> reader) override {
      owner_.queue_await_readable(replica_, reader);
    }
    [[nodiscard]] std::string source_name() const override {
      return owner_.name_ + ".r" + std::to_string(replica_);
    }

   private:
    NReplicatorChannel& owner_;
    int replica_;
  };

  [[nodiscard]] std::optional<kpn::Token> queue_try_read(int replica);
  void queue_await_readable(int replica, std::coroutine_handle<> reader);
  void declare_fault(int replica);
  /// Schedules an epoch-guarded resume of `reader` (re-parks it if a freeze
  /// lands before the wake fires).
  void wake_reader(Queue& queue, std::coroutine_handle<> reader);

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Queue> queues_;
  std::vector<std::unique_ptr<ReadInterface>> interfaces_;
  std::coroutine_handle<> waiting_writer_;
  NFaultObserver observer_;
  std::uint64_t dropped_ = 0;
  ScrubSet scrub_set_;
};

/// Selector channel with N writing interfaces.
class NSelectorChannel final : public kpn::ChannelBase,
                               public kpn::TokenSource,
                               public Scrubbable {
 public:
  struct Config {
    std::vector<rtc::Tokens> capacities;  // |S_i|
    std::vector<rtc::Tokens> initials;    // |S_i|_0
    rtc::Tokens divergence_threshold = 0; // D; 0 disables the divergence rule
    bool enable_stall_rule = true;
  };

  NSelectorChannel(sim::Simulator& sim, std::string name, Config config);

  [[nodiscard]] int replica_count() const { return static_cast<int>(sides_.size()); }
  [[nodiscard]] kpn::TokenSink& write_interface(int replica);

  // TokenSource (consumer)
  [[nodiscard]] std::optional<kpn::Token> try_read() override;
  void await_readable(std::coroutine_handle<> reader) override;
  [[nodiscard]] std::string source_name() const override { return name_; }

  // ChannelBase
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] kpn::ChannelStats stats() const override { return stats_; }

  [[nodiscard]] rtc::Tokens space(int replica) const;
  [[nodiscard]] std::uint64_t tokens_received(int replica) const;
  [[nodiscard]] bool fault(int replica) const;
  [[nodiscard]] std::optional<NDetectionRecord> detection(int replica) const;
  [[nodiscard]] rtc::Tokens fill() const {
    return static_cast<rtc::Tokens>(queue_.size());
  }
  [[nodiscard]] int healthy_count() const;

  void set_fault_observer(NFaultObserver observer) { observer_ = std::move(observer); }

  /// Halts writes on interface `replica` (silence-fault injection support).
  /// A parked writer's handle is retained so unfreeze_writer can resume it.
  void freeze_writer(int replica);
  /// Lifts a freeze_writer; wakes the parked writer if it can proceed.
  void unfreeze_writer(int replica);

  /// Re-admits a restarted replica: clears the fault verdict, resets the
  /// space budget to capacity - initial, and marks the side resync-pending.
  /// The side's first write then re-anchors its received counter against the
  /// most advanced peer by sequence number (and is HELD at the delivered
  /// frontier while a healthy peer still has the missing tokens in its
  /// pipeline), so duplicate-group identity stays exact despite the tokens
  /// this replica missed while down. Mirrors SelectorChannel::reintegrate.
  void reintegrate(int replica);

  // Scrubbable: word order is per side {capacity, initial, space, received,
  // last_seq} for sides 0..N-1, then {last_enqueued_seq_,
  // divergence_threshold_}.
  [[nodiscard]] std::string scrub_name() const override { return name_; }
  [[nodiscard]] int control_word_count() const override { return scrub_set_.size(); }
  void corrupt_control_word(int word, int copy, std::uint64_t mask) override {
    scrub_set_.corrupt(word, copy, mask);
  }
  [[nodiscard]] ScrubReport scrub_control_state() override { return scrub_set_.scrub(); }

 private:
  // TMR-protected like SelectorChannel::Side (see ft/scrub.hpp).
  struct Side {
    Tmr<rtc::Tokens> capacity = 0;
    Tmr<rtc::Tokens> space = 0;
    Tmr<rtc::Tokens> initial = 0;  ///< |S_i|_0, restored by reintegrate()
    Tmr<std::uint64_t> received = 0;
    Tmr<std::uint64_t> last_seq = 0;  ///< seq of the last counted token
    /// Sequence of the write last refused by the rejoin frontier hold;
    /// wake_writers only resumes the held writer once the hold has lifted.
    std::uint64_t held_seq = 0;
    std::coroutine_handle<> waiting_writer;
    bool writer_frozen = false;
    bool fault = false;
    /// Set by reintegrate(); cleared when the first post-rejoin write
    /// re-anchors the counters. While set, stall/divergence are suspended
    /// for this side (its counters refer to the pre-fault epoch).
    bool resync_pending = false;
    std::optional<NDetectionRecord> detection;
    /// Restart generation guarding scheduled wakes (see Queue::epoch).
    std::uint64_t epoch = 0;
  };

  class WriteInterface final : public kpn::TokenSink {
   public:
    WriteInterface(NSelectorChannel& owner, int replica)
        : owner_(owner), replica_(replica) {}
    [[nodiscard]] bool try_write(const kpn::Token& token) override {
      return owner_.side_try_write(replica_, token);
    }
    void await_writable(std::coroutine_handle<> writer) override {
      owner_.side_await_writable(replica_, writer);
    }
    [[nodiscard]] std::string sink_name() const override {
      return owner_.name_ + ".w" + std::to_string(replica_);
    }

   private:
    NSelectorChannel& owner_;
    int replica_;
  };

  [[nodiscard]] bool side_try_write(int replica, const kpn::Token& token);
  void side_await_writable(int replica, std::coroutine_handle<> writer);
  void declare_fault(int replica, DetectionRule rule);
  void check_divergence();
  void wake_reader();
  void wake_writers();
  [[nodiscard]] bool frontier_hold_active(std::size_t i) const;

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Side> sides_;
  std::vector<std::unique_ptr<WriteInterface>> interfaces_;
  std::deque<kpn::Token> queue_;
  /// Highest sequence number ever enqueued for delivery (-1 before the
  /// first); keeps the delivered stream strictly increasing under arrival-
  /// count skew (see side_try_write).
  Tmr<std::int64_t> last_enqueued_seq_ = -1;
  Tmr<rtc::Tokens> divergence_threshold_ = 0;
  bool enable_stall_rule_ = true;
  std::coroutine_handle<> waiting_reader_;
  kpn::ChannelStats stats_;
  NFaultObserver observer_;
  ScrubSet scrub_set_;
};

}  // namespace sccft::ft
