#include "ft/scrub.hpp"

#include <utility>

#include "trace/sinks.hpp"

namespace sccft::ft {

Scrubber::Scrubber(sim::Simulator& sim, Config config)
    : sim_(sim), config_(std::move(config)) {
  SCCFT_EXPECTS(config_.period > 0);
  subject_ = sim_.trace().intern(config_.name);
}

void Scrubber::add_target(Scrubbable* target) {
  SCCFT_EXPECTS(!started_);
  SCCFT_EXPECTS(target != nullptr);
  targets_.push_back(target);
}

void Scrubber::watch_flight_ring(trace::RingBufferSink* ring,
                                 std::function<std::uint64_t()> expected_total) {
  SCCFT_EXPECTS(!started_);
  SCCFT_EXPECTS(ring != nullptr);
  SCCFT_EXPECTS(expected_total != nullptr);
  ring_ = ring;
  expected_total_ = std::move(expected_total);
}

void Scrubber::start() {
  SCCFT_EXPECTS(!started_);
  started_ = true;
  sim_.schedule_after(config_.period, [this] { tick(); });
}

void Scrubber::tick() {
  trace::MetricsRegistry& metrics = sim_.trace().metrics();
  // Channel control words first: their kScrubRepair events must land before
  // the ring audit below, so a resync's fast-forward covers them too.
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const ScrubReport report = targets_[i]->scrub_control_state();
    metrics.add("scrub.words_checked", static_cast<std::uint64_t>(report.words));
    if (report.repairs == 0 && report.unrepairable == 0) continue;
    total_repairs_ += static_cast<std::uint64_t>(report.repairs);
    metrics.add("scrub.repairs", static_cast<std::uint64_t>(report.repairs));
    if (report.unrepairable > 0) {
      metrics.add("scrub.unrepairable",
                  static_cast<std::uint64_t>(report.unrepairable));
    }
    sim_.trace().emit(trace::EventKind::kScrubRepair, subject_, sim_.now(),
                      static_cast<std::int64_t>(i), report.repairs,
                      report.unrepairable);
  }
  // Flight-ring audit: resync FIRST (un-wedging the sink), then emit — so
  // the repair event itself is recorded by both the ring and the tally.
  if (ring_ != nullptr) {
    // Deliver any staged deferred events before auditing, so the ring total
    // and the independent tally are compared at the same event position they
    // would hold under immediate delivery.
    sim_.trace().flush();
    const std::uint64_t expected = expected_total_();
    if (expected != ring_->total_events() || ring_->wedged()) {
      ring_->force_resync(expected);
      ++ring_resyncs_;
      metrics.add("scrub.flight_ring_resyncs");
      sim_.trace().emit(trace::EventKind::kScrubRepair, subject_, sim_.now(),
                        -1, 0, 0);
    }
  }
  sim_.schedule_after(config_.period, [this] { tick(); });
}

}  // namespace sccft::ft
