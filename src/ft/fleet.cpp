#include "ft/fleet.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <utility>

#include "ft/fault_plan.hpp"
#include "ft/framework.hpp"
#include "ft/supervisor.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "rtc/sizing.hpp"
#include "rtc/online/monitor.hpp"
#include "scc/platform.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::ft {

namespace {

std::string stream_tag(int index) { return "s" + std::to_string(index); }

AppTimingSpec timing_of(const FleetStreamSpec& s) {
  AppTimingSpec timing;
  timing.producer = s.producer;
  timing.replica1_in = timing.replica2_in = s.stage;
  timing.replica1_out = timing.replica2_out = s.stage;
  timing.consumer = s.consumer;
  return timing;
}

rtc::SizingReport size_critical(const FleetStreamSpec& s) {
  const AppTimingSpec timing = timing_of(s);
  return rtc::analyze_duplicated_network(timing.to_model(),
                                         timing.default_horizon());
}

/// Eq. (3) capacity of a non-critical pipeline's FIFO: the producer's upper
/// curve against the consuming stage's lower curve.
rtc::Tokens pipeline_fifo_capacity(const FleetStreamSpec& s) {
  const rtc::PJDUpperCurve producer_upper(s.producer);
  const rtc::PJDLowerCurve stage_lower(s.stage);
  const rtc::TimeNs horizon =
      100 * std::max(s.producer.period, s.stage.period) +
      std::max(s.producer.jitter, s.stage.jitter);
  const auto capacity =
      rtc::min_fifo_capacity(producer_upper, stage_lower, horizon);
  return std::max<rtc::Tokens>(capacity.value_or(1), 1);
}

/// Traffic weight of one stream's edges: payload bytes per second.
std::uint64_t bytes_per_second(const FleetStreamSpec& s) {
  return static_cast<std::uint64_t>(s.token_bytes) *
         static_cast<std::uint64_t>(1'000'000'000 /
                                    std::max<rtc::TimeNs>(s.producer.period, 1));
}

}  // namespace

std::vector<FleetStreamSpec> FleetSpec::materialize() const {
  SCCFT_EXPECTS(streams > 0);
  SCCFT_EXPECTS(base_period > 0);
  SCCFT_EXPECTS(period_spread >= 0.0 && period_spread < 1.0);
  SCCFT_EXPECTS(jitter_fraction >= 0.0 && jitter_fraction < 0.5);
  SCCFT_EXPECTS(token_bytes > 0);
  std::vector<FleetStreamSpec> result;
  result.reserve(static_cast<std::size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    // One private RNG stream per fleet member: adding stream N+1 never
    // changes what streams 0..N drew.
    util::Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL +
                         static_cast<std::uint64_t>(i) + 1);
    FleetStreamSpec s;
    s.index = i;
    s.critical = critical_every > 0 && i % critical_every == 0;
    const double factor = rng.uniform(1.0 - period_spread, 1.0 + period_spread);
    const auto period = std::max<rtc::TimeNs>(
        static_cast<rtc::TimeNs>(static_cast<double>(base_period) * factor), 1);
    const auto jitter =
        static_cast<rtc::TimeNs>(static_cast<double>(period) * jitter_fraction);
    s.producer = rtc::PJD{period, jitter, period};
    // The middle stage tolerates twice the producer jitter (the paper's
    // Table 1 rigs give replicas looser envelopes than the producer).
    s.stage = rtc::PJD{period, 2 * jitter, period};
    s.consumer = rtc::PJD{period, jitter, period};
    s.token_bytes = token_bytes;
    s.seed = seed * 1'000'003ULL + static_cast<std::uint64_t>(i) * 7919ULL + 1;
    result.push_back(std::move(s));
  }
  return result;
}

scc::PlacementRequest build_placement_request(
    const FleetSpec& spec, const std::vector<FleetStreamSpec>& streams) {
  scc::PlacementRequest request;
  request.max_processes_per_core = spec.max_processes_per_core;
  for (const FleetStreamSpec& s : streams) {
    const int base = static_cast<int>(request.processes.size());
    const std::uint64_t weight = bytes_per_second(s);
    if (s.critical) {
      const rtc::SizingReport sizing = size_critical(s);
      // The replicator FIFO of replica i lives in the replica's tile MPB
      // (the reader-side copy target of the paper's iRCCE put); both
      // selector FIFOs live with the consumer.
      request.processes.push_back(
          {stream_tag(s.index) + ".producer", s.index, -1, 0});
      request.processes.push_back(
          {stream_tag(s.index) + ".r1", s.index, s.index,
           static_cast<std::size_t>(sizing.replicator_capacity1) * s.token_bytes});
      request.processes.push_back(
          {stream_tag(s.index) + ".r2", s.index, s.index,
           static_cast<std::size_t>(sizing.replicator_capacity2) * s.token_bytes});
      request.processes.push_back(
          {stream_tag(s.index) + ".consumer", s.index, -1,
           static_cast<std::size_t>(sizing.selector_capacity1 +
                                    sizing.selector_capacity2) *
               s.token_bytes});
      request.edges.push_back({base, base + 1, weight});
      request.edges.push_back({base, base + 2, weight});
      request.edges.push_back({base + 1, base + 3, weight});
      request.edges.push_back({base + 2, base + 3, weight});
    } else {
      const std::size_t fifo_bytes =
          static_cast<std::size_t>(pipeline_fifo_capacity(s)) * s.token_bytes;
      request.processes.push_back(
          {stream_tag(s.index) + ".producer", s.index, -1, 0});
      request.processes.push_back(
          {stream_tag(s.index) + ".worker", s.index, -1, fifo_bytes});
      request.processes.push_back(
          {stream_tag(s.index) + ".consumer", s.index, -1, fifo_bytes});
      request.edges.push_back({base, base + 1, weight});
      request.edges.push_back({base + 1, base + 2, weight});
    }
  }
  return request;
}

FleetRunResult run_fleet(const FleetSpec& spec, const FleetRunOptions& options) {
  SCCFT_EXPECTS(options.run_length > 0);
  const std::vector<FleetStreamSpec> streams = spec.materialize();
  const scc::PlacementRequest request = build_placement_request(spec, streams);
  const scc::Placement placement = scc::place_fleet(request);

  sim::Simulator simulator;
  scc::Platform platform(simulator);
  kpn::Network net(simulator);

  RestartBudgetPool pool{spec.shared_restart_budget, 0};

  // Stable per-stream storage the coroutines write into (never resized once
  // the processes capture pointers into it).
  struct Runtime {
    std::uint64_t consumed = 0;
    std::uint64_t expected_seq = 0;
    bool gap = false;
  };
  std::vector<Runtime> runtime(streams.size());

  std::vector<std::unique_ptr<FaultTolerantHarness>> harnesses(streams.size());
  std::vector<std::unique_ptr<Supervisor>> supervisors(streams.size());
  std::vector<std::unique_ptr<FaultCampaign>> campaigns(streams.size());
  std::vector<rtc::SizingReport> sizings(streams.size());
  std::vector<kpn::FifoChannel*> fifo_in(streams.size(), nullptr);
  std::vector<kpn::FifoChannel*> fifo_out(streams.size(), nullptr);
  std::vector<rtc::Tokens> fifo_caps(streams.size(), 0);

  std::vector<rtc::online::StreamSpec> monitor_specs;

  std::size_t process_cursor = 0;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const FleetStreamSpec& s = streams[i];
    const std::string tag = stream_tag(s.index);
    Runtime* rt = &runtime[i];
    const trace::SubjectId producer_subject =
        simulator.trace().intern(tag + ".producer");
    trace::TraceBus* bus = &simulator.trace();

    if (options.online_monitors) {
      rtc::online::StreamSpec ms;
      ms.subject = tag + ".producer";
      ms.name = tag;
      const auto pair = rtc::ArrivalCurvePair::from_pjd(s.producer);
      ms.design_upper = pair.upper;
      ms.design_lower = pair.lower;
      monitor_specs.push_back(std::move(ms));
    }

    if (s.critical) {
      FaultTolerantHarness::Config config;
      config.timing = timing_of(s);
      config.name_prefix = tag;
      config.platform = &platform;
      config.producer_core = placement.process_to_core[process_cursor];
      config.replica1_in_core = config.replica1_out_core =
          placement.process_to_core[process_cursor + 1];
      config.replica2_in_core = config.replica2_out_core =
          placement.process_to_core[process_cursor + 2];
      config.consumer_core = placement.process_to_core[process_cursor + 3];
      harnesses[i] = std::make_unique<FaultTolerantHarness>(net, config);
      FaultTolerantHarness* harness = harnesses[i].get();
      sizings[i] = harness->sizing();

      net.add_process(
          tag + ".producer", config.producer_core, s.seed * 10 + 1,
          [harness, s, bus, producer_subject](kpn::ProcessContext& ctx)
              -> sim::Task {
            kpn::TimingShaper shaper(s.producer, 0, ctx.rng());
            shaper.bind_trace(bus, producer_subject);
            for (std::uint64_t k = 0;; ++k) {
              const rtc::TimeNs t = shaper.next_emission(ctx.now());
              if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
              std::vector<std::uint8_t> payload(
                  s.token_bytes, static_cast<std::uint8_t>(k));
              co_await kpn::write(harness->replicator(),
                                  kpn::Token(std::move(payload), k, ctx.now()));
              shaper.commit(ctx.now());
            }
          });

      auto replica_body = [harness, s](ReplicaIndex which) {
        return [harness, s, which](kpn::ProcessContext& ctx) -> sim::Task {
          kpn::TimingShaper emit(s.stage, ctx.now(), ctx.rng());
          while (true) {
            SCCFT_FAULT_GATE(ctx);
            kpn::Token token =
                co_await kpn::read(harness->replicator().read_interface(which));
            SCCFT_FAULT_GATE(ctx);
            const rtc::TimeNs target = emit.next_emission(ctx.now());
            if (target > ctx.now()) co_await ctx.compute(target - ctx.now());
            SCCFT_FAULT_GATE(ctx);
            co_await kpn::write(harness->selector().write_interface(which),
                                token);
            emit.commit(ctx.now());
          }
        };
      };
      kpn::Process* r1 = &net.add_process(tag + ".r1", config.replica1_in_core,
                                          s.seed * 10 + 2,
                                          replica_body(ReplicaIndex::kReplica1));
      kpn::Process* r2 = &net.add_process(tag + ".r2", config.replica2_in_core,
                                          s.seed * 10 + 3,
                                          replica_body(ReplicaIndex::kReplica2));

      net.add_process(tag + ".consumer", config.consumer_core, s.seed * 10 + 4,
                      [harness, s, rt](kpn::ProcessContext& ctx) -> sim::Task {
                        kpn::TimingShaper shaper(s.consumer, 0, ctx.rng());
                        while (true) {
                          const rtc::TimeNs t = shaper.next_emission(ctx.now());
                          if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                          kpn::Token token =
                              co_await kpn::read(harness->selector());
                          shaper.commit(ctx.now());
                          if (token.seq() > rt->expected_seq) rt->gap = true;
                          rt->expected_seq = token.seq() + 1;
                          ++rt->consumed;
                        }
                      });

      std::array<ReplicaAssets, 2> assets{
          ReplicaAssets{ReplicaIndex::kReplica1, {r1}, {}},
          ReplicaAssets{ReplicaIndex::kReplica2, {r2}, {}}};
      Supervisor::Config supervisor_config;
      supervisor_config.restart_budget = spec.restart_budget;
      supervisor_config.initial_backoff = 20'000'000;
      supervisor_config.detection_latency_bound =
          std::min(sizings[i].replicator_overflow_bound,
                   sizings[i].selector_latency_bound);
      supervisor_config.name = tag + ".sup";
      supervisor_config.injection_subject = tag + ".faults";
      if (pool.capacity > 0) supervisor_config.shared_budget = &pool;
      supervisors[i] = std::make_unique<Supervisor>(
          simulator, harness->replicator(), harness->selector(), assets,
          supervisor_config);

      if (options.inject_faults) {
        FaultCampaign::Wiring wiring;
        wiring.replicator = &harness->replicator();
        wiring.selector = &harness->selector();
        wiring.processes[0] = {r1};
        wiring.processes[1] = {r2};
        campaigns[i] = std::make_unique<FaultCampaign>(simulator, wiring,
                                                       tag + ".faults");
        FaultSpec fault;
        fault.kind = FaultKind::kTransientSilence;
        fault.replica = ReplicaIndex::kReplica1;
        fault.at = options.fault_at;
        fault.duration = options.fault_duration;
        fault.seed = s.seed;
        campaigns[i]->add(fault);
        campaigns[i]->arm();
      }
    } else {
      const rtc::Tokens capacity = pipeline_fifo_capacity(s);
      fifo_caps[i] = capacity;
      const scc::CoreId producer_core = placement.process_to_core[process_cursor];
      const scc::CoreId worker_core =
          placement.process_to_core[process_cursor + 1];
      const scc::CoreId consumer_core =
          placement.process_to_core[process_cursor + 2];
      fifo_in[i] = &net.add_fifo(
          tag + ".in", capacity,
          kpn::FifoChannel::LinkModel{&platform.noc(), producer_core,
                                      worker_core});
      fifo_out[i] = &net.add_fifo(
          tag + ".out", capacity,
          kpn::FifoChannel::LinkModel{&platform.noc(), worker_core,
                                      consumer_core});
      kpn::FifoChannel* in = fifo_in[i];
      kpn::FifoChannel* out = fifo_out[i];

      net.add_process(
          tag + ".producer", producer_core, s.seed * 10 + 1,
          [in, s, bus, producer_subject](kpn::ProcessContext& ctx) -> sim::Task {
            kpn::TimingShaper shaper(s.producer, 0, ctx.rng());
            shaper.bind_trace(bus, producer_subject);
            for (std::uint64_t k = 0;; ++k) {
              const rtc::TimeNs t = shaper.next_emission(ctx.now());
              if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
              std::vector<std::uint8_t> payload(
                  s.token_bytes, static_cast<std::uint8_t>(k));
              co_await kpn::write(*in,
                                  kpn::Token(std::move(payload), k, ctx.now()));
              shaper.commit(ctx.now());
            }
          });
      net.add_process(tag + ".worker", worker_core, s.seed * 10 + 2,
                      [in, out, s](kpn::ProcessContext& ctx) -> sim::Task {
                        kpn::TimingShaper emit(s.stage, ctx.now(), ctx.rng());
                        while (true) {
                          kpn::Token token = co_await kpn::read(*in);
                          const rtc::TimeNs target = emit.next_emission(ctx.now());
                          if (target > ctx.now()) {
                            co_await ctx.compute(target - ctx.now());
                          }
                          co_await kpn::write(*out, token);
                          emit.commit(ctx.now());
                        }
                      });
      net.add_process(tag + ".consumer", consumer_core, s.seed * 10 + 3,
                      [out, s, rt](kpn::ProcessContext& ctx) -> sim::Task {
                        kpn::TimingShaper shaper(s.consumer, 0, ctx.rng());
                        while (true) {
                          const rtc::TimeNs t = shaper.next_emission(ctx.now());
                          if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                          kpn::Token token = co_await kpn::read(*out);
                          shaper.commit(ctx.now());
                          if (token.seq() > rt->expected_seq) rt->gap = true;
                          rt->expected_seq = token.seq() + 1;
                          ++rt->consumed;
                        }
                      });
    }
    process_cursor += s.critical ? 4 : 3;
  }

  std::unique_ptr<rtc::online::OnlineMonitor> monitor;
  if (options.online_monitors && !monitor_specs.empty()) {
    rtc::online::OnlineMonitor::Options monitor_options;
    // Non-escalating: every supervisor on the shared bus would see every
    // kCurveViolation, so escalation from stream A's monitor could convict
    // stream B's replicas. Conformance is still counted and reported.
    monitor_options.escalate = false;
    monitor_options.cross_advance_quantum = options.monitor_quantum;
    rtc::online::LatticeConfig lattice;
    lattice.base_delta = spec.base_period;
    monitor = std::make_unique<rtc::online::OnlineMonitor>(
        simulator.trace(), lattice, std::move(monitor_specs), monitor_options);
  }

  net.run_until(options.run_length);

  FleetRunResult result;
  result.placement_cost = placement.cost(request.edges);
  result.tiles_used = placement.tiles_used();
  result.max_core_load = placement.max_core_load();
  result.max_tile_mpb_used = placement.max_tile_mpb_used();
  result.events_processed = simulator.events_processed();
  result.noc_contention_stalls = platform.noc().contention_stalls();
  result.max_link_busy_ns = platform.noc().max_link_busy_ns();
  result.total_link_busy_ns = platform.noc().total_link_busy_ns();
  result.simulated_ns = options.run_length;
  result.pool_capacity = pool.capacity;
  result.pool_used = pool.used;

  std::vector<rtc::online::OnlineMonitor::StreamReport> monitor_reports;
  if (monitor) monitor_reports = monitor->finalize(options.run_length);

  const double simulated_sec =
      static_cast<double>(options.run_length) / 1e9;
  result.streams.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const FleetStreamSpec& s = streams[i];
    FleetStreamOutcome outcome;
    outcome.index = s.index;
    outcome.critical = s.critical;
    outcome.tokens_consumed = runtime[i].consumed;
    outcome.nominal_rate_hz =
        1e9 / static_cast<double>(std::max<rtc::TimeNs>(s.producer.period, 1));
    outcome.achieved_rate_hz =
        static_cast<double>(runtime[i].consumed) / simulated_sec;
    outcome.sequence_gap = runtime[i].gap;
    if (s.critical) {
      FaultTolerantHarness* harness = harnesses[i].get();
      Supervisor* supervisor = supervisors[i].get();
      outcome.detection_bound =
          std::min(sizings[i].replicator_overflow_bound,
                   sizings[i].selector_latency_bound);
      const auto target = supervisor->report(ReplicaIndex::kReplica1);
      const auto peer = supervisor->report(ReplicaIndex::kReplica2);
      outcome.detected = target.faults_seen > 0;
      outcome.false_conviction = peer.faults_seen > 0;
      if (!target.detection_latencies.empty()) {
        outcome.detection_latency = target.detection_latencies.front();
      }
      outcome.restarts = target.restarts + peer.restarts;
      outcome.degraded = target.health == ReplicaHealth::kDegraded ||
                         peer.health == ReplicaHealth::kDegraded;
      const kpn::ChannelStats replicator_stats = harness->replicator().stats();
      const kpn::ChannelStats selector_stats = harness->selector().stats();
      outcome.replicator_max_fill = replicator_stats.max_fill;
      outcome.replicator_capacity = std::max(sizings[i].replicator_capacity1,
                                             sizings[i].replicator_capacity2);
      outcome.selector_max_fill = selector_stats.max_fill;
      outcome.selector_capacity =
          sizings[i].selector_capacity1 + sizings[i].selector_capacity2;
      outcome.writer_blocks =
          replicator_stats.writer_blocks + selector_stats.writer_blocks;
    } else {
      const kpn::ChannelStats in_stats = fifo_in[i]->stats();
      const kpn::ChannelStats out_stats = fifo_out[i]->stats();
      outcome.replicator_max_fill = in_stats.max_fill;
      outcome.replicator_capacity = fifo_caps[i];
      outcome.selector_max_fill = out_stats.max_fill;
      outcome.selector_capacity = fifo_caps[i];
      outcome.writer_blocks = in_stats.writer_blocks + out_stats.writer_blocks;
    }
    for (const auto& report : monitor_reports) {
      if (report.name == stream_tag(s.index)) {
        outcome.upper_violations = report.upper_violations;
        outcome.lower_violations = report.lower_violations;
        break;
      }
    }
    result.streams.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace sccft::ft
