// The selector channel (paper Section 3.1, rules 1-3; Section 3.3 fault
// detection).
//
// Two writing interfaces (one per replica) and a single reading interface
// (the consumer). The selector keeps ONE physical FIFO of capacity
// |S| = max(|S1|, |S2|) and two virtual space counters:
//
//   rule 1: fill = 0, space_i = |S_i| initially (with Eq. (4) initial tokens
//           preloaded, space_i starts at |S_i| - |S_i|_0 and fill at the
//           preload count);
//   rule 2: a consumer read increments BOTH space counters and decrements
//           fill;
//   rule 3: a write on interface i blocks if space_i == 0; otherwise, if
//           space_i <= space_j the token is the FIRST of its duplicate pair
//           and is enqueued (fill++), else it is the LATE duplicate and is
//           dropped; space_i is decremented either way.
//
// Lemma 1 (isolation) holds by construction: interface j never touches
// space_i, so back-pressure on replica i is independent of replica j.
//
// Fault detection (Section 3.3):
//  (a) stall rule  — on a read, if space_i > |S_i| then replica i has fallen
//      so far behind that it would eventually stall the consumer: faulty.
//  (b) divergence rule — the difference in tokens *received* per interface
//      |W_1 - W_2| reaching the Eq. (5) threshold D implicates the replica
//      with fewer tokens. (The paper phrases this as |space_1 - space_2|;
//      with equal |S_i| - |S_i|_0 the two are identical, and the received-
//      token difference is the quantity its Eq. (6) latency analysis uses.)
//  (c) corruption rule (extension) — every arriving token's CRC-32 is
//      re-verified against its stored checksum; a mismatch is quarantined
//      (dropped without advancing the received count, so the peer's healthy
//      copy becomes the delivered first-of-pair) and reaching the configured
//      mismatch threshold convicts the replica through the same
//      fault-declaration path as (a)/(b), preserving Lemma 1 isolation.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "ft/replica.hpp"
#include "ft/scrub.hpp"
#include "kpn/channel.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"

namespace sccft::ft {

class SelectorChannel final : public kpn::ChannelBase,
                              public kpn::TokenSource,
                              public Scrubbable {
 public:
  struct Config {
    rtc::Tokens capacity1 = 1;       ///< |S1|
    rtc::Tokens capacity2 = 1;       ///< |S2|
    rtc::Tokens initial1 = 0;        ///< |S1|_0 (Eq. 4)
    rtc::Tokens initial2 = 0;        ///< |S2|_0
    rtc::Tokens divergence_threshold = 0;  ///< D (Eq. 5); 0 disables rule (b)
    bool enable_stall_rule = true;         ///< rule (a); ablatable
    bool verify_checksums = true;          ///< rule (c); ablatable
    /// CRC mismatches needed to convict a replica (rule (c)). One corrupted
    /// token could be a cosmic-ray single event; a repeat offender is a
    /// faulty core or link.
    int corruption_conviction_threshold = 3;
    /// Optional NoC links replica-output -> consumer cores.
    std::optional<kpn::FifoChannel::LinkModel> link1;
    std::optional<kpn::FifoChannel::LinkModel> link2;
  };

  /// Fault-injection hook applied to every token arriving on one interface
  /// (models corruption in the replica's core or on the output link).
  using WriteTamper = std::function<kpn::Token(const kpn::Token&)>;

  SelectorChannel(sim::Simulator& sim, std::string name, Config config);
  ~SelectorChannel() override;

  /// The writing interface of replica `r` (single writer each).
  [[nodiscard]] kpn::TokenSink& write_interface(ReplicaIndex r);

  /// Trace subjects: the channel itself and each per-replica writing side
  /// ("<name>.S1"/"<name>.S2"). Bus subscribers key their filters on these.
  [[nodiscard]] trace::SubjectId trace_subject() const { return subject_; }
  [[nodiscard]] trace::SubjectId side_subject(ReplicaIndex r) const {
    return sides_[static_cast<std::size_t>(index_of(r))].subject;
  }

  /// Optionally preloads the Eq. (4) initial tokens physically
  /// (max(|S1|_0, |S2|_0) copies of `token`) so the consumer never blocks,
  /// even at startup. The space counters are offset by |S_i|_0 either way
  /// (rule 1 with initial conditions); without physical preload the consumer
  /// simply blocks for the pipeline-fill transient, as the paper's
  /// experimental setup does. Call before the run starts.
  void preload_initial_tokens(const kpn::Token& token);

  // TokenSource (the consumer's single reading interface)
  [[nodiscard]] std::optional<kpn::Token> try_read() override;
  void await_readable(std::coroutine_handle<> reader) override;
  [[nodiscard]] std::string source_name() const override { return name_; }

  // ChannelBase
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] kpn::ChannelStats stats() const override { return stats_; }
  void publish_metrics(trace::MetricsRegistry& registry) const override;

  [[nodiscard]] rtc::Tokens space(ReplicaIndex r) const {
    return sides_[static_cast<std::size_t>(index_of(r))].space;
  }
  [[nodiscard]] rtc::Tokens fill() const { return static_cast<rtc::Tokens>(queue_.size()); }

  /// High-water mark of FIFO occupancy beyond the not-yet-consumed preload
  /// (Table 2 reports observed fills this way: initial tokens excluded).
  [[nodiscard]] rtc::Tokens max_observed_fill(ReplicaIndex r) const {
    return sides_[static_cast<std::size_t>(index_of(r))].max_virtual_fill;
  }

  [[nodiscard]] std::uint64_t tokens_received(ReplicaIndex r) const {
    return sides_[static_cast<std::size_t>(index_of(r))].tokens_received;
  }

  [[nodiscard]] bool fault(ReplicaIndex r) const {
    return sides_[static_cast<std::size_t>(index_of(r))].fault;
  }
  [[nodiscard]] std::optional<DetectionRecord> detection(ReplicaIndex r) const {
    return sides_[static_cast<std::size_t>(index_of(r))].detection;
  }

  /// Tokens quarantined on interface `r` by the CRC rule (c).
  [[nodiscard]] std::uint64_t crc_mismatches(ReplicaIndex r) const {
    return sides_[static_cast<std::size_t>(index_of(r))].crc_mismatches;
  }

  /// Replaces all registered observers with `observer`.
  void set_fault_observer(FaultObserver observer) {
    observers_.clear();
    add_fault_observer(std::move(observer));
  }
  /// Adds an observer; all registered observers see every first detection.
  void add_fault_observer(FaultObserver observer) {
    if (observer) observers_.push_back(std::move(observer));
  }

  /// Installs (or, with an empty function, removes) the fault-injection
  /// tamper applied to tokens arriving on interface `r`.
  void set_write_tamper(ReplicaIndex r, WriteTamper tamper);

  /// Models the replica's core halting: writes on interface `r` are accepted
  /// and discarded from now on (a token half-written by a crashed core never
  /// materializes). Used by silence fault injection so production stops
  /// exactly at the fault instant. A writer parked on the interface stays
  /// parked (its handle is kept; transient faults resume it via
  /// unfreeze_writer, recovery discards it via reintegrate).
  void freeze_writer(ReplicaIndex r);

  /// Ends a transient halt: writes on interface `r` flow again and a writer
  /// parked across the freeze is woken (its retried token is delivered late,
  /// not lost).
  void unfreeze_writer(ReplicaIndex r);

  /// Recovery extension: re-admits a previously faulty replica. The space
  /// counter restarts at |S_i| - |S_i|_0 and the received-token counter is
  /// re-synchronized on the replica's first write after rejoining, using the
  /// token's sequence number against the peer's last delivered sequence —
  /// this restores exact duplicate-pair alignment even though the rejoining
  /// replica skipped the tokens that were in flight while it was down.
  void reintegrate(ReplicaIndex r);

  // --- live-resize protocol (src/adapt/reconfig.hpp) ----------------------
  /// Opens a reconfiguration window. While it is open the divergence rule
  /// (b) is suspended (its threshold is in flux) and a rejoining writer's
  /// re-anchor is deferred — frontier_hold_active treats every resync-pending
  /// side as held, reusing the rejoin frontier-hold machinery, because the
  /// re-anchor reads exactly the counters a resize is about to re-baseline.
  /// Data-path writes, reads, and the stall/CRC rules flow untouched.
  void begin_reconfiguration();

  /// Closes the window: re-runs the divergence rule against the (possibly
  /// resized) threshold — detection deferred across the window, not lost —
  /// and wakes any writer the window held.
  void end_reconfiguration();

  [[nodiscard]] bool reconfiguring() const { return reconfiguring_; }

  /// Installs a new divergence threshold D and returns the value actually
  /// applied. A narrowing clamps one token above the current received-count
  /// gap |W1 - W2| so the resize itself never convicts retroactively — the
  /// divergence must genuinely deepen afterwards to reach the new threshold.
  /// 0 disables rule (b), as at construction.
  rtc::Tokens set_divergence_threshold(rtc::Tokens requested);

  [[nodiscard]] rtc::Tokens divergence_threshold() const {
    return divergence_threshold_;
  }

  /// Control-structure memory, payloads excluded (Table 2 memory overhead).
  [[nodiscard]] std::size_t control_memory_bytes() const { return sizeof(SelectorChannel); }

  // Scrubbable: TMR-protected control words, in stable index order
  //   side1 {capacity, initial, space, virtual_fill, tokens_received,
  //          last_seq}, side2 {same}, last_enqueued_seq_,
  //   divergence_threshold_  (14 words).
  [[nodiscard]] std::string scrub_name() const override { return name_; }
  [[nodiscard]] int control_word_count() const override { return scrub_set_.size(); }
  void corrupt_control_word(int word, int copy, std::uint64_t mask) override {
    scrub_set_.corrupt(word, copy, mask);
  }
  [[nodiscard]] ScrubReport scrub_control_state() override { return scrub_set_.scrub(); }

 private:
  struct Slot {
    kpn::Token token;
    rtc::TimeNs available_at = 0;
    std::optional<ReplicaIndex> origin;  ///< nullopt for preloaded tokens
  };
  // The per-side bookkeeping the detection rules read is TMR-protected
  // (Tmr<T>, ft/scrub.hpp): a kCounterCorruption flip lands in one shadow
  // copy and is outvoted until the scrubber repairs it.
  struct Side {
    Tmr<rtc::Tokens> capacity = 0;   ///< |S_i|
    trace::SubjectId subject = 0;
    Tmr<rtc::Tokens> space = 0;      ///< space_i
    Tmr<std::uint64_t> tokens_received = 0;  ///< W_i: accepted writes (queued or dropped)
    Tmr<rtc::Tokens> virtual_fill = 0;  ///< enqueued-from-i minus consumed, >= 0
    rtc::Tokens max_virtual_fill = 0;
    Tmr<rtc::Tokens> initial = 0;    ///< |S_i|_0 (kept for reintegration)
    Tmr<std::uint64_t> last_seq = 0;  ///< sequence of the most recent write
    bool resync_pending = false;     ///< first write after reintegrate()
    /// Sequence of the write last refused by the rejoin frontier hold;
    /// wake_writers consults it so a held writer is only resumed once the
    /// hold has actually lifted (try_write would succeed).
    std::uint64_t held_seq = 0;
    /// Set by a CRC quarantine: the received count no longer matches the
    /// arrival count, so it is re-anchored (by sequence number, against the
    /// peer) on the next healthy write — otherwise the offset would
    /// misclassify this replica's healthy tokens as late duplicates forever.
    bool count_resync_pending = false;
    std::coroutine_handle<> waiting_writer;
    bool writer_frozen = false;
    bool fault = false;
    std::uint64_t crc_mismatches = 0;  ///< rule (c) quarantine count
    /// Bumped on freeze/reintegrate; scheduled writer wake-ups check it so a
    /// stale event never resumes a coroutine destroyed by a restart.
    std::uint64_t epoch = 0;
    WriteTamper tamper;
    std::optional<DetectionRecord> detection;
    std::optional<kpn::FifoChannel::LinkModel> link;
  };

  class WriteInterface final : public kpn::TokenSink {
   public:
    WriteInterface(SelectorChannel& owner, ReplicaIndex replica)
        : owner_(owner), replica_(replica) {}
    [[nodiscard]] bool try_write(const kpn::Token& token) override {
      return owner_.side_try_write(replica_, token);
    }
    void await_writable(std::coroutine_handle<> writer) override {
      owner_.side_await_writable(replica_, writer);
    }
    [[nodiscard]] std::string sink_name() const override {
      return owner_.name_ + "." + to_string(replica_);
    }

   private:
    SelectorChannel& owner_;
    ReplicaIndex replica_;
  };

  /// Thin adapter keeping the FaultObserver API source-compatible: verdicts
  /// travel the trace bus as kDetection events; this sink filters for the
  /// owning channel's subject and replays them to the registered observers
  /// synchronously, in registration order — exactly the legacy semantics.
  class ObserverAdapter final : public trace::Sink {
   public:
    explicit ObserverAdapter(SelectorChannel& owner) : owner_(owner) {}
    void on_event(const trace::Event& event) override;

   private:
    SelectorChannel& owner_;
  };

  [[nodiscard]] bool side_try_write(ReplicaIndex r, const kpn::Token& token);
  void side_await_writable(ReplicaIndex r, std::coroutine_handle<> writer);
  void declare_fault(ReplicaIndex r, DetectionRule rule);
  void check_divergence();
  void wake_reader(rtc::TimeNs when);
  void wake_writers();
  [[nodiscard]] bool frontier_hold_active(std::size_t i) const;

  sim::Simulator& sim_;
  std::string name_;
  trace::SubjectId subject_;
  bool reconfiguring_ = false;
  std::array<Side, 2> sides_;
  std::array<WriteInterface, 2> write_interfaces_;
  std::deque<Slot> queue_;
  rtc::Tokens pending_preload_ = 0;  ///< preloaded tokens not yet consumed
  /// Highest sequence number ever enqueued for delivery (-1 before the
  /// first). Guards the strictly-increasing delivered stream when NoC input
  /// loss skews the replicas' arrival counts (see side_try_write).
  Tmr<std::int64_t> last_enqueued_seq_ = -1;
  Tmr<rtc::Tokens> divergence_threshold_ = 0;
  bool enable_stall_rule_ = true;
  bool verify_checksums_ = true;
  int corruption_conviction_threshold_ = 3;
  std::coroutine_handle<> waiting_reader_;
  kpn::ChannelStats stats_;
  std::vector<FaultObserver> observers_;
  ObserverAdapter observer_adapter_;
  ScrubSet scrub_set_;
};

}  // namespace sccft::ft
