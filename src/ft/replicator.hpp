// The replicator channel (paper Section 3.1, rules 1-3; Section 3.3 fault
// detection).
//
// One writing interface (the producer) and two reading interfaces (one per
// replica). Every accepted token is duplicated into both per-replica FIFO
// queues. Bookkeeping follows the paper exactly:
//
//   rule 1: two queues of capacities |R1|, |R2| with space/fill counters,
//           initially fill_i = 0, space_i = |R_i|;
//   rule 2: each reading interface destructively and blockingly reads its
//           own queue; a read increments space_i and decrements fill_i;
//   rule 3: a write enqueues into BOTH queues iff min(space_1, space_2) > 0,
//           else the writer blocks.
//
// Fault detection (Section 3.3): under fault-free conditions the queues never
// overflow (their capacities come from Eq. (3)), so if the producer attempts
// a write and finds space_i == 0, replica i is declared faulty
// (fault_i := TRUE) and the replicator stops inserting tokens into queue i —
// the producer therefore never blocks on a dead replica, which prevents the
// "deadlocked non-faulty replica" scenario of Section 1.1.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "ft/replica.hpp"
#include "ft/scrub.hpp"
#include "kpn/channel.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"

namespace sccft::ft {

class ReplicatorChannel final : public kpn::ChannelBase,
                                public kpn::TokenSink,
                                public Scrubbable {
 public:
  struct Config {
    rtc::Tokens capacity1 = 1;  ///< |R1| from Eq. (3)
    rtc::Tokens capacity2 = 1;  ///< |R2| from Eq. (3)
    /// Optional NoC links producer->replica-input cores (latency modelling).
    std::optional<kpn::FifoChannel::LinkModel> link1;
    std::optional<kpn::FifoChannel::LinkModel> link2;
  };

  ReplicatorChannel(sim::Simulator& sim, std::string name, Config config);
  ~ReplicatorChannel() override;

  /// The reading interface of replica `r` (single reader each).
  [[nodiscard]] kpn::TokenSource& read_interface(ReplicaIndex r);

  /// Trace subjects: the channel itself and each per-replica queue
  /// ("<name>.R1"/"<name>.R2"). Bus subscribers (monitor bridges, VCD) key
  /// their filters on these.
  [[nodiscard]] trace::SubjectId trace_subject() const { return subject_; }
  [[nodiscard]] trace::SubjectId queue_subject(ReplicaIndex r) const {
    return queues_[static_cast<std::size_t>(index_of(r))].subject;
  }

  // TokenSink (the producer's single writing interface)
  [[nodiscard]] bool try_write(const kpn::Token& token) override;
  void await_writable(std::coroutine_handle<> writer) override;
  [[nodiscard]] std::string sink_name() const override { return name_; }

  // ChannelBase
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] kpn::ChannelStats stats() const override;
  void publish_metrics(trace::MetricsRegistry& registry) const override;

  /// Per-queue statistics (Table 2's "Max. Observed fill" per |R_i|).
  [[nodiscard]] kpn::ChannelStats queue_stats(ReplicaIndex r) const {
    return queues_[static_cast<std::size_t>(index_of(r))].stats;
  }

  [[nodiscard]] bool fault(ReplicaIndex r) const {
    return queues_[static_cast<std::size_t>(index_of(r))].fault;
  }
  [[nodiscard]] std::optional<DetectionRecord> detection(ReplicaIndex r) const {
    return queues_[static_cast<std::size_t>(index_of(r))].detection;
  }

  /// Replaces all registered observers with `observer`.
  void set_fault_observer(FaultObserver observer) {
    observers_.clear();
    add_fault_observer(std::move(observer));
  }
  /// Adds an observer; all registered observers see every first detection.
  void add_fault_observer(FaultObserver observer) {
    if (observer) observers_.push_back(std::move(observer));
  }

  /// Models the replica's core halting: from now on, no reads are served on
  /// interface `r` (a crashed core issues no more reads, even if its process
  /// coroutine is currently parked inside a read await). Used by silence
  /// fault injection so that consumption stops exactly at the fault instant.
  /// A parked reader stays parked with its handle retained: transient faults
  /// resume it via unfreeze_reader, recovery discards it via reintegrate.
  void freeze_reader(ReplicaIndex r);

  /// Ends a transient halt: reads on interface `r` are served again and a
  /// reader parked across the freeze is woken if its queue has tokens.
  void unfreeze_reader(ReplicaIndex r);

  /// Recovery extension: re-admits a previously faulty replica. Clears the
  /// fault flag and the freeze, discards the stale queue contents (the
  /// rejoining replica resumes from the producer's current position), and
  /// resumes duplication into its queue.
  void reintegrate(ReplicaIndex r);

  // --- live-resize protocol (src/adapt/reconfig.hpp) ----------------------
  /// Opens a reconfiguration window: the overflow rule is suspended and
  /// writes beyond capacity are absorbed by the physical deque, so no token
  /// is ever dropped while capacities are in flux. Detection is deferred,
  /// not lost — see end_reconfiguration().
  void begin_reconfiguration();

  /// Closes the window: the overflow rule re-arms against the (possibly
  /// resized) capacities, and any healthy queue whose fill outran its
  /// capacity during the window is convicted now — detection latency for a
  /// fault landing inside the window is bounded by the window length.
  void end_reconfiguration();

  [[nodiscard]] bool reconfiguring() const { return reconfiguring_; }

  /// Applies a new capacity to queue `r` and returns the value actually
  /// installed. A shrink clamps at fill+1 — one slot above the current fill —
  /// so a resize by itself can never trip the overflow rule retroactively;
  /// demand is policed at the new capacity from the next write on.
  rtc::Tokens set_capacity(ReplicaIndex r, rtc::Tokens requested);

  [[nodiscard]] rtc::Tokens capacity(ReplicaIndex r) const {
    return queues_[static_cast<std::size_t>(index_of(r))].capacity;
  }

  [[nodiscard]] rtc::Tokens space(ReplicaIndex r) const {
    const auto& queue = queues_[static_cast<std::size_t>(index_of(r))];
    return queue.capacity - static_cast<rtc::Tokens>(queue.slots.size());
  }
  [[nodiscard]] rtc::Tokens fill(ReplicaIndex r) const {
    return static_cast<rtc::Tokens>(
        queues_[static_cast<std::size_t>(index_of(r))].slots.size());
  }

  /// Approximate resident memory of the channel's control structures in
  /// bytes, excluding token payload storage (Table 2 "Memory overhead").
  [[nodiscard]] std::size_t control_memory_bytes() const;

  // Scrubbable: TMR-protected control words, in stable index order
  //   {R1.capacity, R2.capacity}. The fills are implicit deque sizes, so the
  //   capacities are the only words the overflow rule reads from memory.
  [[nodiscard]] std::string scrub_name() const override { return name_; }
  [[nodiscard]] int control_word_count() const override { return scrub_set_.size(); }
  void corrupt_control_word(int word, int copy, std::uint64_t mask) override {
    scrub_set_.corrupt(word, copy, mask);
  }
  [[nodiscard]] ScrubReport scrub_control_state() override { return scrub_set_.scrub(); }

 private:
  struct Slot {
    kpn::Token token;
    rtc::TimeNs available_at = 0;
  };
  struct Queue {
    Tmr<rtc::Tokens> capacity = 0;  ///< TMR-protected (see Scrubbable above)
    trace::SubjectId subject = 0;
    std::deque<Slot> slots;
    std::coroutine_handle<> waiting_reader;
    bool reader_frozen = false;
    /// Bumped on freeze/reintegrate; scheduled reader wake-ups check it so a
    /// stale event never resumes a coroutine destroyed by a restart.
    std::uint64_t epoch = 0;
    bool fault = false;
    std::optional<DetectionRecord> detection;
    std::optional<kpn::FifoChannel::LinkModel> link;
    kpn::ChannelStats stats;
  };

  /// TokenSource adapter bound to one queue.
  class ReadInterface final : public kpn::TokenSource {
   public:
    ReadInterface(ReplicatorChannel& owner, ReplicaIndex replica)
        : owner_(owner), replica_(replica) {}
    [[nodiscard]] std::optional<kpn::Token> try_read() override {
      return owner_.queue_try_read(replica_);
    }
    void await_readable(std::coroutine_handle<> reader) override {
      owner_.queue_await_readable(replica_, reader);
    }
    [[nodiscard]] std::string source_name() const override {
      return owner_.name_ + "." + to_string(replica_);
    }

   private:
    ReplicatorChannel& owner_;
    ReplicaIndex replica_;
  };

  /// Thin adapter keeping the FaultObserver API source-compatible: verdicts
  /// travel the trace bus as kDetection events; this sink filters for the
  /// owning channel's subject and replays them to the registered observers
  /// synchronously, in registration order — exactly the legacy semantics.
  class ObserverAdapter final : public trace::Sink {
   public:
    explicit ObserverAdapter(ReplicatorChannel& owner) : owner_(owner) {}
    void on_event(const trace::Event& event) override;

   private:
    ReplicatorChannel& owner_;
  };

  [[nodiscard]] std::optional<kpn::Token> queue_try_read(ReplicaIndex r);
  void queue_await_readable(ReplicaIndex r, std::coroutine_handle<> reader);
  void declare_fault(ReplicaIndex r);
  void enqueue(Queue& queue, const kpn::Token& token);
  void wake_reader(Queue& queue, rtc::TimeNs when);
  void wake_writer();

  sim::Simulator& sim_;
  std::string name_;
  trace::SubjectId subject_;
  bool reconfiguring_ = false;
  std::array<Queue, 2> queues_;
  std::array<ReadInterface, 2> read_interfaces_;
  std::coroutine_handle<> waiting_writer_;
  std::vector<FaultObserver> observers_;
  ObserverAdapter observer_adapter_;
  ScrubSet scrub_set_;
};

}  // namespace sccft::ft
