// Facade tying the pieces together: design-time sizing + channel
// construction + detection logging.
//
// Typical use (see examples/quickstart.cpp):
//   1. describe the six interface timing models (PJD tuples as in Table 1),
//   2. construct a FaultTolerantHarness — it runs the Section 3.4 analysis
//      (Eq. 3-8) and builds a correctly-dimensioned replicator and selector,
//   3. attach the producer, the two replicas, and the consumer,
//   4. run; query the DetectionLog for what was detected when.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ft/fault_injector.hpp"
#include "ft/replica.hpp"
#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "kpn/network.hpp"
#include "rtc/pjd.hpp"
#include "rtc/sizing.hpp"
#include "scc/platform.hpp"

namespace sccft::ft {

/// Interface-level timing models of a to-be-duplicated application, one PJD
/// tuple per interface (the paper's Table 1 layout).
struct AppTimingSpec {
  rtc::PJD producer;      ///< token production of P
  rtc::PJD replica1_in;   ///< R1's consumption at I_1
  rtc::PJD replica2_in;   ///< R2's consumption at I_2
  rtc::PJD replica1_out;  ///< R1's production at O_1
  rtc::PJD replica2_out;  ///< R2's production at O_2
  rtc::PJD consumer;      ///< token consumption of C

  /// Assembles the curve bundle for rtc::analyze_duplicated_network().
  [[nodiscard]] rtc::NetworkTimingModel to_model() const;

  /// A horizon that safely covers the transient of all sup/inf computations
  /// (100x the largest period plus the largest jitter).
  [[nodiscard]] rtc::TimeNs default_horizon() const;
};

/// Chronological record of all fault detections during one run.
struct DetectionLog {
  std::vector<DetectionRecord> records;

  [[nodiscard]] std::optional<DetectionRecord> first() const;
  [[nodiscard]] std::optional<DetectionRecord> first_replicator() const;
  [[nodiscard]] std::optional<DetectionRecord> first_selector() const;
};

/// Builds the dimensioned replicator + selector pair inside a network and
/// aggregates their detections.
class FaultTolerantHarness final {
 public:
  struct Config {
    AppTimingSpec timing;
    std::string name_prefix = "ft";
    /// Optional platform for NoC latency modelling of the four channel hops.
    scc::Platform* platform = nullptr;
    scc::CoreId producer_core{};
    scc::CoreId replica1_in_core{};
    scc::CoreId replica1_out_core{};
    scc::CoreId replica2_in_core{};
    scc::CoreId replica2_out_core{};
    scc::CoreId consumer_core{};
    /// Physically preload the Eq. (4) initial tokens into the selector FIFO
    /// (guarantees a stall-free consumer from t=0). Off by default: the
    /// space-counter offsets are applied either way, and without preload the
    /// consumer just blocks through the pipeline-fill transient.
    bool preload_initial_tokens = false;
    /// Payload used for the initial tokens when preloading (empty payload =
    /// marker tokens the experiment harnesses skip during stream comparison).
    kpn::Token initial_token{};
    bool enable_selector_stall_rule = true;
    /// Selector detection rule (c): CRC-verify every arriving token.
    bool verify_selector_checksums = true;
    /// CRC mismatches needed to convict a replica under rule (c).
    int corruption_conviction_threshold = 3;
    /// Override Eq. (5)'s D (0 = use the analyzed value). For ablations.
    /// Negative values throw util::ContractViolation from the constructor.
    rtc::Tokens divergence_threshold_override = 0;
    /// Override Eq. (3)'s |R_1| = |R_2| (0 = use analyzed values). For the
    /// queue-sizing ablation. Negative values throw util::ContractViolation.
    rtc::Tokens replicator_capacity_override = 0;
  };

  FaultTolerantHarness(kpn::Network& network, Config config);

  [[nodiscard]] const rtc::SizingReport& sizing() const { return sizing_; }
  [[nodiscard]] ReplicatorChannel& replicator() { return *replicator_; }
  [[nodiscard]] SelectorChannel& selector() { return *selector_; }
  [[nodiscard]] const DetectionLog& detections() const { return log_; }
  [[nodiscard]] FaultInjector& injector() { return injector_; }

  /// Latency of the first detection relative to the injected fault, if both
  /// happened.
  [[nodiscard]] std::optional<rtc::TimeNs> first_detection_latency() const;
  [[nodiscard]] std::optional<rtc::TimeNs> replicator_detection_latency() const;
  [[nodiscard]] std::optional<rtc::TimeNs> selector_detection_latency() const;

 private:
  rtc::SizingReport sizing_;
  ReplicatorChannel* replicator_ = nullptr;
  SelectorChannel* selector_ = nullptr;
  DetectionLog log_;
  FaultInjector injector_;
};

}  // namespace sccft::ft
