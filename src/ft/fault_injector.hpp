// Timing-fault injection.
//
// Models the paper's fault hypothesis (Section 2): "the system can experience
// at most a single timing fault, which is eventually observed when the faulty
// replica either stops producing (or consuming) tokens, or does so at a rate
// lower than expected". In the experiments (Section 4.2) "the faulty replica
// stops producing (or consuming) tokens altogether" — the kSilence mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kpn/process.hpp"
#include "rtc/time.hpp"
#include "sim/simulator.hpp"

namespace sccft::ft {

enum class FaultMode {
  kSilence,          ///< the replica's processes halt permanently
  kRateDegradation,  ///< compute times inflate by a factor (> 1)
};

/// Schedules a single permanent timing fault against a set of processes (all
/// processes of one replica). For multi-fault campaigns (the taxonomy of
/// ft/fault_plan.hpp) either call reset() between faults or use FaultCampaign,
/// which manages several specs at once.
class FaultInjector final {
 public:
  explicit FaultInjector(sim::Simulator& sim) : sim_(sim) {}

  /// Injects `mode` into every process in `victims` at simulated time `at`.
  /// `rate_factor` only applies to kRateDegradation (must be > 1).
  void schedule(std::vector<kpn::Process*> victims, rtc::TimeNs at,
                FaultMode mode = FaultMode::kSilence, double rate_factor = 1.0);

  /// Revokes a scheduled fault that has not fired yet. Contract: only legal
  /// while armed and before the injection instant (a fault that already
  /// happened cannot be un-happened).
  void cancel();

  /// Re-arms the injector for the next fault of a campaign. Contract: only
  /// legal once the previous fault has fired (or none was ever scheduled) —
  /// resetting over a still-pending fault would silently break the
  /// single-pending-fault bookkeeping; cancel() it instead.
  void reset();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] rtc::TimeNs injected_at() const { return injected_at_; }
  [[nodiscard]] bool fired() const { return fired_; }

 private:
  sim::Simulator& sim_;
  bool armed_ = false;
  bool fired_ = false;
  rtc::TimeNs injected_at_ = -1;
  /// Bumped by cancel(); the scheduled event compares its captured value and
  /// becomes a no-op if the fault was revoked before firing.
  std::uint64_t generation_ = 0;
};

}  // namespace sccft::ft
