// Timing-fault injection.
//
// Models the paper's fault hypothesis (Section 2): "the system can experience
// at most a single timing fault, which is eventually observed when the faulty
// replica either stops producing (or consuming) tokens, or does so at a rate
// lower than expected". In the experiments (Section 4.2) "the faulty replica
// stops producing (or consuming) tokens altogether" — the kSilence mode.
#pragma once

#include <string>
#include <vector>

#include "kpn/process.hpp"
#include "rtc/time.hpp"
#include "sim/simulator.hpp"

namespace sccft::ft {

enum class FaultMode {
  kSilence,          ///< the replica's processes halt permanently
  kRateDegradation,  ///< compute times inflate by a factor (> 1)
};

/// Schedules a single permanent timing fault against a set of processes (all
/// processes of one replica).
class FaultInjector final {
 public:
  explicit FaultInjector(sim::Simulator& sim) : sim_(sim) {}

  /// Injects `mode` into every process in `victims` at simulated time `at`.
  /// `rate_factor` only applies to kRateDegradation (must be > 1).
  void schedule(std::vector<kpn::Process*> victims, rtc::TimeNs at,
                FaultMode mode = FaultMode::kSilence, double rate_factor = 1.0);

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] rtc::TimeNs injected_at() const { return injected_at_; }
  [[nodiscard]] bool fired() const { return fired_; }

 private:
  sim::Simulator& sim_;
  bool armed_ = false;
  bool fired_ = false;
  rtc::TimeNs injected_at_ = -1;
};

}  // namespace sccft::ft
