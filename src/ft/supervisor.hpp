// Automated fault supervision (extension beyond the paper).
//
// The paper detects faults (Section 3.3) and the recovery extension
// (ft/recovery.hpp) can repair a replica — but somebody has to connect the
// two. The Supervisor closes the loop: it subscribes to every detection
// verdict of the replicator and selector, and drives each replica through a
// small health state machine:
//
//             detection                restart fires
//   kHealthy ----------> kConvicted ----------------> kRestarting
//      ^                     |  restart budget             |
//      |                     |  exhausted                  | recover_replica
//      |                     v                             | done
//      |                kDegraded  (terminal)              |
//      +---------------------------------------------------+
//
// Restarts are spaced by exponential backoff in *simulated* time
// (initial_backoff x factor^restarts, capped), modelling the real cost of
// rebooting an SCC core plus a damping margin against restart storms on a
// flapping replica. When a replica exhausts its restart budget the
// supervisor stops repairing it and the system degrades gracefully to
// single-replica pass-through: the paper's conviction semantics already
// guarantee the producer and consumer keep running on the healthy replica,
// so degradation needs no extra mechanics — only the decision to stop
// restarting.
//
// The supervisor also keeps per-replica health accounting: faults seen,
// restarts spent, detection latencies (checked against the Eq. (6)-(8)
// analytic bound when one is configured), and mean time to repair. The
// accounting lives in the simulator's MetricsRegistry (counters
// "supervisor.R<i>.faults_seen" / ".restarts" / ".detections_within_bound",
// series ".detection_latency_ns" / ".repair_time_ns"); report() assembles the
// ReplicaReport view from the registry on demand, so harnesses can read the
// same numbers without going through the supervisor at all.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ft/fault_plan.hpp"
#include "ft/recovery.hpp"
#include "ft/replica.hpp"
#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "rtc/time.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"

namespace sccft::scc {
class WatchdogTimer;
}  // namespace sccft::scc

namespace sccft::ft {

enum class ReplicaHealth {
  kHealthy,     ///< participating in duplicate execution
  kConvicted,   ///< detected faulty, restart pending (backoff running)
  kRestarting,  ///< recovery sequence executing
  kDegraded,    ///< restart budget exhausted; permanently excluded
};

[[nodiscard]] std::string to_string(ReplicaHealth health);

/// Restart budget shared across a fleet of supervisors (ft/fleet.hpp): every
/// restart must win a unit here in addition to the replica's own budget, so
/// a handful of flapping streams cannot consume unbounded repair capacity.
/// Plain counters — deterministic in the single-threaded simulator.
struct RestartBudgetPool {
  int capacity = 0;
  int used = 0;

  [[nodiscard]] bool exhausted() const { return used >= capacity; }
  [[nodiscard]] bool try_acquire() {
    if (used >= capacity) return false;
    ++used;
    return true;
  }
};

/// One edge of the health state machine, for post-run inspection.
struct HealthTransition {
  ReplicaIndex replica = ReplicaIndex::kReplica1;
  ReplicaHealth from = ReplicaHealth::kHealthy;
  ReplicaHealth to = ReplicaHealth::kHealthy;
  rtc::TimeNs at = 0;
};

/// Watches detection verdicts and drives restart/reintegration automatically.
class Supervisor final {
 public:
  struct Config {
    /// Restarts allowed per replica before it is declared kDegraded.
    int restart_budget = 3;
    /// Backoff before the first restart of a replica.
    rtc::TimeNs initial_backoff = 20'000'000;  // 20 ms
    /// Backoff grows by this factor with every restart already spent.
    double backoff_factor = 2.0;
    /// Backoff ceiling.
    rtc::TimeNs max_backoff = 500'000'000;  // 500 ms
    /// Analytic detection-latency bound (Eq. 6-8); 0 disables the check.
    rtc::TimeNs detection_latency_bound = 0;
    /// Liveness-beacon period: every `heartbeat_period` ns the supervisor
    /// emits kHeartbeat and kicks its watchdog channel (if attached).
    /// 0 (the default) disables the tick entirely — existing rigs keep
    /// byte-identical event schedules.
    rtc::TimeNs heartbeat_period = 0;
    /// Trace-subject name and metric-prefix stem ("<name>.R<i>.faults_seen").
    /// Fleets run one supervisor per stream; distinct names keep their
    /// accounting separate in the shared MetricsRegistry.
    std::string name = "supervisor";
    /// When non-empty, only kInjection events from this trace subject seed
    /// detection-latency samples. Empty (default) accepts any injection —
    /// correct for single-stream rigs, wrong at fleet scale where another
    /// stream's campaign would contaminate this supervisor's latencies.
    std::string injection_subject;
    /// Optional fleet-shared restart pool: a conviction consumes a unit here
    /// in addition to the per-replica budget; an empty pool degrades the
    /// replica. Null (default) = per-replica budget only. Must outlive the
    /// supervisor.
    RestartBudgetPool* shared_budget = nullptr;
  };

  /// Health accounting for one replica.
  struct ReplicaReport {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    std::uint64_t faults_seen = 0;   ///< detections acted upon
    int restarts = 0;                ///< recoveries performed
    /// Detection latencies (detection minus the matching injection), for
    /// detections with a known injection time.
    std::vector<rtc::TimeNs> detection_latencies;
    std::uint64_t detections_within_bound = 0;
    /// Repair times (reintegration minus detection), one per restart.
    std::vector<rtc::TimeNs> repair_times;

    [[nodiscard]] std::optional<rtc::TimeNs> mean_time_to_repair() const;
    [[nodiscard]] std::optional<rtc::TimeNs> mean_detection_latency() const;
  };

  /// Subscribes to both channels' verdicts (kDetection events on the
  /// simulator's trace bus) and to kInjection events, which timestamp
  /// latency samples automatically. `assets` describe what recovery must
  /// touch per replica (index 0 = kReplica1); their pointers must outlive
  /// the supervisor.
  Supervisor(sim::Simulator& sim, ReplicatorChannel& replicator,
             SelectorChannel& selector, std::array<ReplicaAssets, 2> assets,
             Config config);
  Supervisor(sim::Simulator& sim, ReplicatorChannel& replicator,
             SelectorChannel& selector, std::array<ReplicaAssets, 2> assets);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Timestamps a fault injection so the next detection of `replica` gets a
  /// latency sample. Pass as FaultCampaign's injection listener:
  ///   campaign.set_injection_listener([&](const FaultInjectionRecord& rec) {
  ///     supervisor.note_fault_injected(rec.replica, rec.at);
  ///   });
  void note_fault_injected(ReplicaIndex replica, rtc::TimeNs at);

  [[nodiscard]] ReplicaHealth health(ReplicaIndex r) const {
    return replicas_[static_cast<std::size_t>(index_of(r))].health;
  }
  /// Assembled from the metrics registry on demand (the registry is the
  /// single source of truth; this is a snapshot view of it).
  [[nodiscard]] ReplicaReport report(ReplicaIndex r) const;
  [[nodiscard]] const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }
  /// True while at least one replica is not degraded (the system still
  /// delivers tokens; with both degraded only the single-fault hypothesis
  /// was violated beyond repair).
  [[nodiscard]] bool any_replica_serviceable() const;

  // --- control-plane fault tolerance (scc/watchdog, ft/scrub) --------------

  /// Ties this supervisor to `channel` of a hardware watchdog: every
  /// heartbeat tick kicks it, and the channel's ResetHandler should call
  /// on_self_watchdog_reset(). Call before the watchdog is armed.
  void attach_watchdog(scc::WatchdogTimer* watchdog, int channel);

  /// Fault hook (kSupervisorHang): while hung the supervisor swallows every
  /// bus event, scheduled restarts are dropped on fire, and the heartbeat
  /// stays silent. The tick keeps *rescheduling itself* — a hung core still
  /// burns timer interrupts; it just does no useful work in them.
  void inject_hang();
  /// Self-recovery end of a bounded hang (kSupervisorHang with duration).
  void clear_hang() { hung_ = false; }
  [[nodiscard]] bool hung() const { return hung_; }
  [[nodiscard]] std::uint64_t heartbeats() const { return heartbeats_; }

  /// Hardware watchdog fired on the *supervisor's* tile: model of the reset
  /// line un-wedging the core. Clears the hang, then repairs what the hang
  /// broke: re-schedules the restart of every convicted replica (the backoff
  /// timers that fired while hung were swallowed) and re-drives standing
  /// channel detections that were masked.
  void on_self_watchdog_reset();

  /// Hardware watchdog fired on a replica core's tile. Feeds the ordinary
  /// detection path (DetectionRule::kWatchdogTimeout), so conviction,
  /// backoff, and the restart budget all apply unchanged. Bypasses the hang
  /// gate: the watchdog is hardware, a hung supervisor cannot mask it.
  void on_core_watchdog_reset(ReplicaIndex replica);

 private:
  struct ReplicaState {
    ReplicaAssets assets;
    ReplicaHealth health = ReplicaHealth::kHealthy;
    std::string metric_prefix;         ///< "supervisor.R1" / "supervisor.R2"
    rtc::TimeNs last_injection = -1;   ///< most recent un-consumed injection
    rtc::TimeNs convicted_at = -1;     ///< detection time of the open fault
    std::uint64_t generation = 0;      ///< guards scheduled restarts
  };

  /// Bus subscription: verdicts (kDetection from either channel) drive the
  /// state machine, kInjection events timestamp latency samples.
  class BusSink final : public trace::Sink {
   public:
    explicit BusSink(Supervisor& owner) : owner_(owner) {}
    void on_event(const trace::Event& event) override;

   private:
    Supervisor& owner_;
  };

  void on_detection(const DetectionRecord& record);
  void perform_restart(ReplicaIndex r);
  void schedule_restart(ReplicaIndex r);
  void tick();
  void transition(ReplicaState& state, ReplicaIndex r, ReplicaHealth to);
  [[nodiscard]] rtc::TimeNs backoff_for(const ReplicaState& state) const;
  [[nodiscard]] trace::MetricsRegistry& metrics() const {
    return sim_.trace().metrics();
  }

  sim::Simulator& sim_;
  ReplicatorChannel& replicator_;
  SelectorChannel& selector_;
  Config config_;
  trace::SubjectId subject_;
  std::optional<trace::SubjectId> injection_filter_;
  std::array<ReplicaState, 2> replicas_;
  std::vector<HealthTransition> transitions_;
  BusSink sink_;
  bool hung_ = false;
  std::uint64_t heartbeats_ = 0;
  scc::WatchdogTimer* watchdog_ = nullptr;
  int watchdog_channel_ = -1;
};

/// Closed-form exponential backoff: min(initial * factor^restarts, max), with
/// the clamp applied before exponentiation so arbitrarily large restart
/// counts saturate to max_backoff instead of overflowing through double
/// infinity (casting an out-of-range double to TimeNs is undefined behavior).
[[nodiscard]] rtc::TimeNs backoff_duration(const Supervisor::Config& config,
                                           std::uint64_t restarts);

}  // namespace sccft::ft
