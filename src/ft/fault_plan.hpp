// Fault taxonomy and multi-fault campaigns (extension beyond the paper).
//
// The paper's fault hypothesis (Section 2) covers a single *permanent* timing
// fault. Real silicon — and the SCC in particular, whose cores the authors
// note are operated near threshold voltage — also exhibits:
//
//   * transient silence   — a core halts (SEU, watchdog reset) and comes back
//                           by itself after a bounded outage;
//   * intermittent bursts — a marginal core alternates between healthy and
//                           silent phases on a random on/off schedule;
//   * payload corruption  — a token's bytes are altered after production
//                           (bit flip in a register file, MPB or link), which
//                           the timing-only rules (a)/(b) cannot see but the
//                           CRC rule (c) convicts;
//   * NoC link faults     — chunks of a message are dropped or delayed in
//                           the mesh; the sender retransmits after a timeout,
//                           bounded by an attempt budget (scc/noc.hpp).
//
// Beyond the data path, the *protection machinery itself* can fail — the
// control plane runs on the same near-threshold cores as the replicas:
//
//   * supervisor hang     — the supervisor core wedges: detections are
//                           swallowed, scheduled restarts never fire, the
//                           heartbeat stops. Only the per-tile hardware
//                           watchdog (scc/watchdog.hpp) can recover it.
//   * counter corruption  — a bit flip lands in channel bookkeeping (space
//                           counters, sequence frontiers). TMR shadow copies
//                           plus the periodic scrubber (ft/scrub.hpp) absorb
//                           it; without scrubbing, flips accumulate until
//                           the majority vote fails.
//   * trace sink stuck    — the flight recorder stops draining (hung DMA);
//                           the scrubber's ring audit force-resyncs it.
//
// FaultCampaign schedules any number of such faults against a running
// duplicated network, lifting the single-shot restriction of FaultInjector.
// Every stochastic choice (burst lengths, corrupted bit positions, drop
// decisions) is driven by explicitly seeded xoshiro256** streams, so each
// campaign is bit-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ft/replicator.hpp"
#include "ft/scrub.hpp"
#include "ft/selector.hpp"
#include "kpn/process.hpp"
#include "rtc/time.hpp"
#include "scc/noc.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"
#include "util/rng.hpp"

namespace sccft::trace {
class RingBufferSink;
}  // namespace sccft::trace

namespace sccft::ft {

class Supervisor;

enum class FaultKind {
  kPermanentSilence,    ///< paper's model: the replica halts forever
  kTransientSilence,    ///< halt for `duration`, then self-resume
  kIntermittentSilence, ///< random on/off silence bursts within a window
  kRateDegradation,     ///< compute times inflate by `rate_factor`
  kPayloadCorruption,   ///< output tokens get post-CRC bit flips
  kNocLink,             ///< mesh chunks dropped/delayed within a window
  // Control-plane faults: the targets are the protection machinery, not the
  // replicated data path. `replica` is ignored; `tile` locates the victim.
  kSupervisorHang,      ///< supervisor core wedges for `duration` (0 = forever)
  kCounterCorruption,   ///< periodic bit flips into TMR'd channel bookkeeping
  kTraceSinkStuck,      ///< flight-recorder ring stops draining for `duration`
};

[[nodiscard]] std::string to_string(FaultKind kind);

/// True for the kinds that attack the protection machinery rather than a
/// replica. Control-plane faults have no data-path victim: lossless-plan
/// classification and conviction-justification oracles skip them.
[[nodiscard]] constexpr bool is_control_plane(FaultKind kind) {
  return kind == FaultKind::kSupervisorHang ||
         kind == FaultKind::kCounterCorruption ||
         kind == FaultKind::kTraceSinkStuck;
}

/// Parses a to_string(FaultKind) tag. Throws util::ContractViolation on an
/// unknown tag.
[[nodiscard]] FaultKind fault_kind_from_text(const std::string& tag);

/// One fault to inject. Which fields matter depends on `kind`; unused fields
/// are ignored. All times are absolute simulated times.
struct FaultSpec {
  FaultKind kind = FaultKind::kPermanentSilence;
  ReplicaIndex replica = ReplicaIndex::kReplica1;  ///< victim (ignored for kNocLink)
  rtc::TimeNs at = 0;        ///< injection instant
  /// Fault lifetime. Required (> 0) for kTransientSilence and
  /// kIntermittentSilence; optional for kRateDegradation and
  /// kPayloadCorruption (0 = lasts until the end of the run).
  rtc::TimeNs duration = 0;
  double rate_factor = 4.0;          ///< kRateDegradation slowdown (> 1)
  double corrupt_probability = 1.0;  ///< kPayloadCorruption per-token chance
  rtc::TimeNs burst_on_mean = 0;     ///< kIntermittentSilence mean silent phase
  rtc::TimeNs burst_off_mean = 0;    ///< kIntermittentSilence mean healthy phase
  std::uint64_t seed = 1;            ///< per-spec deterministic RNG stream
  scc::NocFaultPlan noc;             ///< kNocLink parameters (window set from at/duration)
  /// Victim tile for control-plane kinds (informational for kSupervisorHang /
  /// kTraceSinkStuck; ignored by data-path kinds). For kCounterCorruption the
  /// flip schedule reuses existing fields: flips repeat every `burst_on_mean`
  /// ns while inside [at, at+duration) (single flip if either is 0), and
  /// `burst_off_mean` > 0 pins every flip to global scrub word index
  /// `burst_off_mean - 1` (0 = a fresh RNG-chosen word per flip).
  int tile = 0;
};

// ---------------------------------------------------------------------------
// Text serialization — the chaos artifact / replay format (src/chaos).
//
// One line per fault, whitespace-separated, same idiom as rtc/serialize.hpp:
//
//   fault <kind> <replica:1|2> <at_ns> <duration_ns> <rate_factor>
//         <corrupt_probability> <burst_on_ns> <burst_off_ns> <seed>
//         <noc_drop_p> <noc_delay_p> <noc_delay_min_ns> <noc_delay_max_ns>
//         <noc_max_retries> <noc_retry_timeout_ns> <tile>
//
// The trailing <tile> field is optional on parse (legacy 16-token lines get
// tile = 0), always emitted on serialize.
//
// A plan is a sequence of such lines; blank lines and lines starting with '#'
// are ignored. Round-trip guarantee: parse(serialize(x)) == x field-by-field
// (the NoC window/seed are derived from at/duration/seed at arm() time and
// are deliberately not serialized).
// ---------------------------------------------------------------------------

/// Serializes one fault as a single "fault ..." line (no trailing newline).
[[nodiscard]] std::string serialize(const FaultSpec& spec);

/// Serializes a plan, one "fault ..." line per spec, trailing newline each.
[[nodiscard]] std::string serialize(const std::vector<FaultSpec>& plan);

/// Parses one "fault ..." line. Throws util::ContractViolation on malformed
/// input: wrong tag, missing/extra/garbage fields, out-of-range values, or a
/// spec that FaultCampaign::add would reject (e.g. a transient silence with
/// zero duration) — never undefined behaviour.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& line);

/// Parses a multi-line plan (blank lines and '#' comments skipped). Throws
/// util::ContractViolation on any malformed line or absurd line counts.
[[nodiscard]] std::vector<FaultSpec> parse_fault_plan(const std::string& text);

/// A recorded fault activation (one per permanent/transient/rate/corruption
/// injection; one per burst for intermittent faults).
struct FaultInjectionRecord {
  FaultKind kind = FaultKind::kPermanentSilence;
  ReplicaIndex replica = ReplicaIndex::kReplica1;
  rtc::TimeNs at = 0;
};

/// Schedules a set of FaultSpecs against one duplicated network. Unlike
/// FaultInjector (one permanent fault, matching the paper's hypothesis), a
/// campaign may carry any number of faults of any kind — the supervisor
/// (ft/supervisor.hpp) is what keeps the system live across them.
class FaultCampaign final {
 public:
  /// The campaign's handles into the system under test.
  struct Wiring {
    ReplicatorChannel* replicator = nullptr;
    SelectorChannel* selector = nullptr;
    /// Per-replica process lists (index 0 = kReplica1). Silence and rate
    /// faults touch every process of the victim replica.
    std::array<std::vector<kpn::Process*>, 2> processes;
    scc::NocModel* noc = nullptr;  ///< required only for kNocLink specs
    /// Control-plane targets. Required only for the matching kinds:
    Supervisor* supervisor = nullptr;  ///< kSupervisorHang
    /// kCounterCorruption: global scrub word index spans these targets in
    /// order (word i of target t follows every word of targets 0..t-1).
    std::vector<Scrubbable*> scrubbables;
    trace::RingBufferSink* flight_ring = nullptr;  ///< kTraceSinkStuck
  };

  /// Invoked at every fault activation (before its effects apply), so a
  /// supervisor can timestamp injections for detection-latency accounting.
  using InjectionListener = std::function<void(const FaultInjectionRecord&)>;

  /// `subject_name` is the trace subject activations are emitted under —
  /// fleets give each stream's campaign a distinct name so supervisors can
  /// filter injections to their own stream (Supervisor::Config's
  /// injection_subject).
  FaultCampaign(sim::Simulator& sim, Wiring wiring,
                std::string subject_name = "fault-campaign");
  ~FaultCampaign();

  FaultCampaign(const FaultCampaign&) = delete;
  FaultCampaign& operator=(const FaultCampaign&) = delete;

  /// Subject under which activations appear on the trace bus (kInjection,
  /// a = FaultKind, b = victim replica index).
  [[nodiscard]] trace::SubjectId trace_subject() const { return subject_; }

  /// Adds a fault to the campaign. Must be called before arm().
  void add(FaultSpec spec);

  /// Schedules every added fault. Call once, before or during the run.
  void arm();

  void set_injection_listener(InjectionListener listener) {
    listener_ = std::move(listener);
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] const std::vector<FaultInjectionRecord>& injections() const {
    return injections_;
  }

 private:
  /// A spec plus its private RNG stream (stable storage: filled at arm()
  /// time and never resized afterwards, so scheduled events may hold
  /// references into it).
  struct ArmedSpec {
    FaultSpec spec;
    util::Xoshiro256 rng;
    explicit ArmedSpec(const FaultSpec& s) : spec(s), rng(s.seed) {}
  };

  /// Thin adapter keeping the InjectionListener API source-compatible:
  /// activations travel the bus as kInjection events; this sink filters for
  /// the campaign's subject and replays them to the registered listener.
  class InjectionAdapter final : public trace::Sink {
   public:
    explicit InjectionAdapter(FaultCampaign& owner) : owner_(owner) {}
    void on_event(const trace::Event& event) override;

   private:
    FaultCampaign& owner_;
  };

  void arm_spec(ArmedSpec& armed);
  void begin_silence(const FaultSpec& spec, rtc::TimeNs until);
  void end_silence(const FaultSpec& spec);
  void schedule_burst(ArmedSpec& armed, rtc::TimeNs at);
  void schedule_flip(ArmedSpec& armed, rtc::TimeNs at, int flip_index);
  void record(const FaultSpec& spec, rtc::TimeNs at);

  [[nodiscard]] std::vector<kpn::Process*>& victims(const FaultSpec& spec) {
    return wiring_.processes[static_cast<std::size_t>(index_of(spec.replica))];
  }

  sim::Simulator& sim_;
  Wiring wiring_;
  trace::SubjectId subject_;
  std::vector<FaultSpec> pending_;
  std::vector<ArmedSpec> armed_specs_;
  bool armed_ = false;
  InjectionListener listener_;
  std::vector<FaultInjectionRecord> injections_;
  InjectionAdapter adapter_;
};

}  // namespace sccft::ft
