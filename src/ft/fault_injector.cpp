#include "ft/fault_injector.hpp"

#include "util/assert.hpp"

namespace sccft::ft {

void FaultInjector::schedule(std::vector<kpn::Process*> victims, rtc::TimeNs at,
                             FaultMode mode, double rate_factor) {
  SCCFT_EXPECTS(!armed_);  // single-fault hypothesis
  SCCFT_EXPECTS(!victims.empty());
  SCCFT_EXPECTS(at >= sim_.now());
  SCCFT_EXPECTS(mode != FaultMode::kRateDegradation || rate_factor > 1.0);
  for (auto* victim : victims) SCCFT_EXPECTS(victim != nullptr);

  armed_ = true;
  injected_at_ = at;
  sim_.schedule_at(at, [this, victims = std::move(victims), mode, rate_factor,
                        generation = generation_] {
    if (generation != generation_) return;  // cancelled before firing
    fired_ = true;
    for (auto* victim : victims) {
      kpn::FaultState& fault = victim->context().fault();
      fault.faulted_at = sim_.now();
      switch (mode) {
        case FaultMode::kSilence:
          fault.silenced = true;
          break;
        case FaultMode::kRateDegradation:
          fault.rate_factor = rate_factor;
          break;
      }
    }
  });
}

void FaultInjector::cancel() {
  SCCFT_EXPECTS(armed_ && !fired_);
  ++generation_;
  armed_ = false;
  injected_at_ = -1;
}

void FaultInjector::reset() {
  SCCFT_EXPECTS(!armed_ || fired_);
  armed_ = false;
  fired_ = false;
  injected_at_ = -1;
}

}  // namespace sccft::ft
