#include "ft/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "ft/supervisor.hpp"
#include "scc/topology.hpp"
#include "trace/sinks.hpp"
#include "util/assert.hpp"

namespace sccft::ft {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPermanentSilence: return "permanent-silence";
    case FaultKind::kTransientSilence: return "transient-silence";
    case FaultKind::kIntermittentSilence: return "intermittent-silence";
    case FaultKind::kRateDegradation: return "rate-degradation";
    case FaultKind::kPayloadCorruption: return "payload-corruption";
    case FaultKind::kNocLink: return "noc-link";
    case FaultKind::kSupervisorHang: return "supervisor-hang";
    case FaultKind::kCounterCorruption: return "counter-corruption";
    case FaultKind::kTraceSinkStuck: return "trace-sink-stuck";
  }
  return "?";
}

FaultKind fault_kind_from_text(const std::string& tag) {
  for (const FaultKind kind :
       {FaultKind::kPermanentSilence, FaultKind::kTransientSilence,
        FaultKind::kIntermittentSilence, FaultKind::kRateDegradation,
        FaultKind::kPayloadCorruption, FaultKind::kNocLink,
        FaultKind::kSupervisorHang, FaultKind::kCounterCorruption,
        FaultKind::kTraceSinkStuck}) {
    if (tag == to_string(kind)) return kind;
  }
  util::contract_failure("precondition", "tag is a known fault kind", __FILE__,
                         __LINE__);
}

// ---------------------------------------------------------------------------
// Text serialization
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMaxPlanLines = 10'000;

/// Full-precision double rendering so parse(serialize(x)) is exact.
std::string render_double(double value) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return out.str();
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::int64_t parse_int(const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  SCCFT_EXPECTS(end != nullptr && *end == '\0' && end != token.c_str());
  SCCFT_EXPECTS(errno != ERANGE);
  return static_cast<std::int64_t>(value);
}

std::uint64_t parse_uint(const std::string& token) {
  SCCFT_EXPECTS(!token.empty() && token.front() != '-');
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  SCCFT_EXPECTS(end != nullptr && *end == '\0' && end != token.c_str());
  SCCFT_EXPECTS(errno != ERANGE);
  return static_cast<std::uint64_t>(value);
}

double parse_double(const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  SCCFT_EXPECTS(end != nullptr && *end == '\0' && end != token.c_str());
  SCCFT_EXPECTS(errno != ERANGE);
  SCCFT_EXPECTS(std::isfinite(value));
  return value;
}

}  // namespace

std::string serialize(const FaultSpec& spec) {
  std::ostringstream out;
  out << "fault " << to_string(spec.kind) << ' '
      << (index_of(spec.replica) + 1) << ' ' << spec.at << ' ' << spec.duration
      << ' ' << render_double(spec.rate_factor) << ' '
      << render_double(spec.corrupt_probability) << ' ' << spec.burst_on_mean
      << ' ' << spec.burst_off_mean << ' ' << spec.seed << ' '
      << render_double(spec.noc.chunk_drop_probability) << ' '
      << render_double(spec.noc.chunk_delay_probability) << ' '
      << spec.noc.delay_min_ns << ' ' << spec.noc.delay_max_ns << ' '
      << spec.noc.max_retries << ' ' << spec.noc.retry_timeout_ns << ' '
      << spec.tile;
  return out.str();
}

std::string serialize(const std::vector<FaultSpec>& plan) {
  std::string out;
  for (const FaultSpec& spec : plan) {
    out += serialize(spec);
    out += '\n';
  }
  return out;
}

FaultSpec parse_fault_spec(const std::string& line) {
  const std::vector<std::string> tokens = tokenize(line);
  // 16 tokens is the legacy (pre-control-plane) format without the trailing
  // tile field: stored chaos artifacts stay replayable, tile defaults to 0.
  SCCFT_EXPECTS(tokens.size() == 16 || tokens.size() == 17);
  SCCFT_EXPECTS(tokens[0] == "fault");

  FaultSpec spec;
  spec.kind = fault_kind_from_text(tokens[1]);
  const std::int64_t replica = parse_int(tokens[2]);
  SCCFT_EXPECTS(replica == 1 || replica == 2);
  spec.replica = replica == 1 ? ReplicaIndex::kReplica1 : ReplicaIndex::kReplica2;
  spec.at = parse_int(tokens[3]);
  SCCFT_EXPECTS(spec.at >= 0);
  spec.duration = parse_int(tokens[4]);
  SCCFT_EXPECTS(spec.duration >= 0);
  spec.rate_factor = parse_double(tokens[5]);
  spec.corrupt_probability = parse_double(tokens[6]);
  SCCFT_EXPECTS(spec.corrupt_probability >= 0.0 && spec.corrupt_probability <= 1.0);
  spec.burst_on_mean = parse_int(tokens[7]);
  SCCFT_EXPECTS(spec.burst_on_mean >= 0);
  spec.burst_off_mean = parse_int(tokens[8]);
  SCCFT_EXPECTS(spec.burst_off_mean >= 0);
  spec.seed = parse_uint(tokens[9]);
  spec.noc.chunk_drop_probability = parse_double(tokens[10]);
  SCCFT_EXPECTS(spec.noc.chunk_drop_probability >= 0.0 &&
                spec.noc.chunk_drop_probability <= 1.0);
  spec.noc.chunk_delay_probability = parse_double(tokens[11]);
  SCCFT_EXPECTS(spec.noc.chunk_delay_probability >= 0.0 &&
                spec.noc.chunk_delay_probability <= 1.0);
  spec.noc.delay_min_ns = parse_int(tokens[12]);
  SCCFT_EXPECTS(spec.noc.delay_min_ns >= 0);
  spec.noc.delay_max_ns = parse_int(tokens[13]);
  SCCFT_EXPECTS(spec.noc.delay_max_ns >= spec.noc.delay_min_ns);
  spec.noc.max_retries = static_cast<int>(parse_int(tokens[14]));
  SCCFT_EXPECTS(spec.noc.max_retries >= 0);
  spec.noc.retry_timeout_ns = parse_int(tokens[15]);
  SCCFT_EXPECTS(spec.noc.retry_timeout_ns >= 0);
  if (tokens.size() == 17) {
    spec.tile = static_cast<int>(parse_int(tokens[16]));
    SCCFT_EXPECTS(spec.tile >= 0 && spec.tile < scc::kTileCount);
  }

  // Per-kind semantic checks, mirroring FaultCampaign::add: a plan that
  // parses is a plan that arms.
  switch (spec.kind) {
    case FaultKind::kPermanentSilence:
    case FaultKind::kNocLink:
    case FaultKind::kSupervisorHang:
    case FaultKind::kCounterCorruption:
    case FaultKind::kTraceSinkStuck:
      break;
    case FaultKind::kTransientSilence:
      SCCFT_EXPECTS(spec.duration > 0);
      break;
    case FaultKind::kIntermittentSilence:
      SCCFT_EXPECTS(spec.duration > 0);
      SCCFT_EXPECTS(spec.burst_on_mean > 0 && spec.burst_off_mean > 0);
      break;
    case FaultKind::kRateDegradation:
      SCCFT_EXPECTS(spec.rate_factor > 1.0);
      break;
    case FaultKind::kPayloadCorruption:
      SCCFT_EXPECTS(spec.corrupt_probability > 0.0);
      break;
  }
  return spec;
}

std::vector<FaultSpec> parse_fault_plan(const std::string& text) {
  std::vector<FaultSpec> plan;
  std::istringstream in(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    SCCFT_EXPECTS(++lines <= kMaxPlanLines);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    plan.push_back(parse_fault_spec(line));
  }
  return plan;
}

FaultCampaign::FaultCampaign(sim::Simulator& sim, Wiring wiring,
                             std::string subject_name)
    : sim_(sim),
      wiring_(std::move(wiring)),
      subject_(sim.trace().intern(subject_name)),
      adapter_(*this) {
  SCCFT_EXPECTS(wiring_.replicator != nullptr);
  SCCFT_EXPECTS(wiring_.selector != nullptr);
  sim_.trace().subscribe(&adapter_, trace::bit(trace::EventKind::kInjection));
}

FaultCampaign::~FaultCampaign() { sim_.trace().unsubscribe(&adapter_); }

void FaultCampaign::InjectionAdapter::on_event(const trace::Event& event) {
  if (event.subject != owner_.subject_) return;
  if (!owner_.listener_) return;
  owner_.listener_(FaultInjectionRecord{static_cast<FaultKind>(event.a),
                                        static_cast<ReplicaIndex>(event.b),
                                        event.time});
}

void FaultCampaign::add(FaultSpec spec) {
  SCCFT_EXPECTS(!armed_);
  SCCFT_EXPECTS(spec.at >= 0);
  switch (spec.kind) {
    case FaultKind::kPermanentSilence:
      break;
    case FaultKind::kTransientSilence:
      SCCFT_EXPECTS(spec.duration > 0);
      break;
    case FaultKind::kIntermittentSilence:
      SCCFT_EXPECTS(spec.duration > 0);
      SCCFT_EXPECTS(spec.burst_on_mean > 0 && spec.burst_off_mean > 0);
      break;
    case FaultKind::kRateDegradation:
      SCCFT_EXPECTS(spec.rate_factor > 1.0);
      break;
    case FaultKind::kPayloadCorruption:
      SCCFT_EXPECTS(spec.corrupt_probability > 0.0 && spec.corrupt_probability <= 1.0);
      break;
    case FaultKind::kNocLink:
      SCCFT_EXPECTS(wiring_.noc != nullptr);
      break;
    case FaultKind::kSupervisorHang:
      SCCFT_EXPECTS(wiring_.supervisor != nullptr);
      break;
    case FaultKind::kCounterCorruption:
      SCCFT_EXPECTS(!wiring_.scrubbables.empty());
      break;
    case FaultKind::kTraceSinkStuck:
      SCCFT_EXPECTS(wiring_.flight_ring != nullptr);
      break;
  }
  pending_.push_back(spec);
}

void FaultCampaign::arm() {
  SCCFT_EXPECTS(!armed_);
  armed_ = true;
  // Stable storage: scheduled events keep references into armed_specs_, so
  // it is filled once here and never resized again.
  armed_specs_.reserve(pending_.size());
  for (const FaultSpec& spec : pending_) armed_specs_.emplace_back(spec);
  pending_.clear();
  for (ArmedSpec& armed : armed_specs_) arm_spec(armed);
}

void FaultCampaign::arm_spec(ArmedSpec& armed) {
  const FaultSpec& spec = armed.spec;
  switch (spec.kind) {
    case FaultKind::kPermanentSilence:
      sim_.schedule_at(spec.at, [this, &armed] {
        record(armed.spec, sim_.now());
        begin_silence(armed.spec, -1);
      });
      break;

    case FaultKind::kTransientSilence:
      sim_.schedule_at(spec.at, [this, &armed] {
        record(armed.spec, sim_.now());
        begin_silence(armed.spec, armed.spec.at + armed.spec.duration);
      });
      sim_.schedule_at(spec.at + spec.duration,
                       [this, &armed] { end_silence(armed.spec); });
      break;

    case FaultKind::kIntermittentSilence:
      schedule_burst(armed, spec.at);
      break;

    case FaultKind::kRateDegradation:
      sim_.schedule_at(spec.at, [this, &armed] {
        record(armed.spec, sim_.now());
        for (auto* victim : victims(armed.spec)) {
          kpn::FaultState& fault = victim->context().fault();
          fault.rate_factor = armed.spec.rate_factor;
          if (fault.faulted_at < 0) fault.faulted_at = sim_.now();
        }
      });
      if (spec.duration > 0) {
        sim_.schedule_at(spec.at + spec.duration, [this, &armed] {
          for (auto* victim : victims(armed.spec)) {
            victim->context().fault().rate_factor = 1.0;
          }
        });
      }
      break;

    case FaultKind::kPayloadCorruption:
      sim_.schedule_at(spec.at, [this, &armed] {
        record(armed.spec, sim_.now());
        // The tamper models corruption between the replica's CRC stamping
        // and the selector's verification — a flip in the core's output
        // buffer or on the output link. Bit position and per-token chance
        // come from the spec's private RNG stream.
        wiring_.selector->set_write_tamper(
            armed.spec.replica, [&armed](const kpn::Token& token) {
              if (!token.valid() || token.size_bytes() == 0) return token;
              if (!armed.rng.chance(armed.spec.corrupt_probability)) return token;
              return token.corrupted(static_cast<std::size_t>(armed.rng.next()));
            });
      });
      if (spec.duration > 0) {
        sim_.schedule_at(spec.at + spec.duration, [this, &armed] {
          wiring_.selector->set_write_tamper(armed.spec.replica, nullptr);
        });
      }
      break;

    case FaultKind::kNocLink: {
      // The NoC model gates fault activity on its plan window, so the plan
      // can be installed immediately; only the window needs deriving here.
      scc::NocFaultPlan plan = spec.noc;
      plan.window_start = spec.at;
      plan.window_end = spec.duration > 0 ? spec.at + spec.duration
                                          : std::numeric_limits<rtc::TimeNs>::max();
      plan.seed = spec.seed;
      wiring_.noc->inject_faults(plan);
      sim_.schedule_at(spec.at,
                       [this, &armed] { record(armed.spec, sim_.now()); });
      break;
    }

    case FaultKind::kSupervisorHang:
      sim_.schedule_at(spec.at, [this, &armed] {
        record(armed.spec, sim_.now());
        wiring_.supervisor->inject_hang();
      });
      if (spec.duration > 0) {
        sim_.schedule_at(spec.at + spec.duration,
                         [this] { wiring_.supervisor->clear_hang(); });
      }
      break;

    case FaultKind::kCounterCorruption:
      schedule_flip(armed, spec.at, 0);
      break;

    case FaultKind::kTraceSinkStuck:
      sim_.schedule_at(spec.at, [this, &armed] {
        record(armed.spec, sim_.now());
        // Deliver staged events first so the wedge boundary falls at exactly
        // the same event position as with immediate delivery.
        sim_.trace().flush();
        wiring_.flight_ring->set_wedged(true);
      });
      if (spec.duration > 0) {
        sim_.schedule_at(spec.at + spec.duration, [this] {
          sim_.trace().flush();
          wiring_.flight_ring->set_wedged(false);
        });
      }
      break;
  }
}

void FaultCampaign::schedule_flip(ArmedSpec& armed, rtc::TimeNs at,
                                  int flip_index) {
  sim_.schedule_at(at, [this, &armed, at, flip_index] {
    const FaultSpec& spec = armed.spec;
    record(spec, sim_.now());
    std::int64_t total_words = 0;
    for (Scrubbable* target : wiring_.scrubbables) {
      total_words += target->control_word_count();
    }
    if (total_words > 0) {
      // burst_off_mean pins the victim word (1-based); otherwise a fresh
      // word is drawn per flip. The copy rotates with the flip index and the
      // mask is drawn fresh every flip: two copies must never carry the
      // *same* corruption, or they would outvote the clean copy and the
      // scrubber's majority repair could not be the defense under test.
      std::int64_t word = spec.burst_off_mean > 0
                              ? (spec.burst_off_mean - 1) % total_words
                              : armed.rng.uniform_int(0, total_words - 1);
      const int copy = flip_index % 3;
      const std::uint64_t mask = std::uint64_t{1}
                                 << armed.rng.uniform_int(0, 30);
      for (Scrubbable* target : wiring_.scrubbables) {
        const std::int64_t words = target->control_word_count();
        if (word < words) {
          target->corrupt_control_word(static_cast<int>(word), copy, mask);
          break;
        }
        word -= words;
      }
    }
    if (spec.burst_on_mean > 0 && spec.duration > 0) {
      const rtc::TimeNs next = at + spec.burst_on_mean;
      if (next < spec.at + spec.duration) {
        schedule_flip(armed, next, flip_index + 1);
      }
    }
  });
}

void FaultCampaign::begin_silence(const FaultSpec& spec, rtc::TimeNs until) {
  for (auto* victim : victims(spec)) {
    kpn::FaultState& fault = victim->context().fault();
    fault.silenced = true;
    fault.silence_until = until;
    if (fault.faulted_at < 0) fault.faulted_at = sim_.now();
  }
  // Channel-level freeze so consumption/production stops at the fault
  // instant even for a process currently parked inside a channel await.
  // Handles are retained (see freeze_reader/freeze_writer): end_silence
  // resumes them.
  wiring_.replicator->freeze_reader(spec.replica);
  wiring_.selector->freeze_writer(spec.replica);
}

void FaultCampaign::end_silence(const FaultSpec& spec) {
  for (auto* victim : victims(spec)) {
    // Idempotent: the process's own fault gate may have cleared it already.
    victim->context().fault().clear_silence();
  }
  wiring_.replicator->unfreeze_reader(spec.replica);
  wiring_.selector->unfreeze_writer(spec.replica);
}

void FaultCampaign::schedule_burst(ArmedSpec& armed, rtc::TimeNs at) {
  const FaultSpec& spec = armed.spec;
  const rtc::TimeNs window_end = spec.at + spec.duration;
  if (at >= window_end) return;
  // Burst lengths are uniform in [0.5, 1.5] x mean — bounded away from zero
  // so every burst is observable, deterministic per seed.
  const auto draw = [&armed](rtc::TimeNs mean) {
    return std::max<rtc::TimeNs>(
        1, static_cast<rtc::TimeNs>(armed.rng.uniform(0.5, 1.5) *
                                    static_cast<double>(mean)));
  };
  const rtc::TimeNs on_len = std::min(draw(spec.burst_on_mean), window_end - at);
  const rtc::TimeNs off_len = draw(spec.burst_off_mean);
  sim_.schedule_at(at, [this, &armed, at, on_len] {
    record(armed.spec, sim_.now());
    begin_silence(armed.spec, at + on_len);
  });
  sim_.schedule_at(at + on_len, [this, &armed, at, on_len, off_len] {
    end_silence(armed.spec);
    // The next burst is scheduled only now, once this one ended: burst
    // boundaries never interleave and the RNG stream stays in draw order.
    schedule_burst(armed, at + on_len + off_len);
  });
}

void FaultCampaign::record(const FaultSpec& spec, rtc::TimeNs at) {
  injections_.push_back(FaultInjectionRecord{spec.kind, spec.replica, at});
  // The activation travels the bus: the InjectionAdapter replays it to the
  // registered listener, and the supervisor's own subscription timestamps
  // its detection-latency sample without any manual wiring.
  sim_.trace().emit(trace::EventKind::kInjection, subject_, at,
                    static_cast<std::int64_t>(spec.kind), index_of(spec.replica));
}

}  // namespace sccft::ft
