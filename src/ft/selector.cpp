#include "ft/selector.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/assert.hpp"

namespace sccft::ft {

SelectorChannel::SelectorChannel(sim::Simulator& sim, std::string name, Config config)
    : sim_(sim),
      name_(std::move(name)),
      write_interfaces_{WriteInterface(*this, ReplicaIndex::kReplica1),
                        WriteInterface(*this, ReplicaIndex::kReplica2)},
      divergence_threshold_(config.divergence_threshold),
      enable_stall_rule_(config.enable_stall_rule) {
  SCCFT_EXPECTS(config.capacity1 > 0 && config.capacity2 > 0);
  SCCFT_EXPECTS(config.initial1 >= 0 && config.initial1 <= config.capacity1);
  SCCFT_EXPECTS(config.initial2 >= 0 && config.initial2 <= config.capacity2);
  SCCFT_EXPECTS(config.divergence_threshold >= 0);
  sides_[0].capacity = config.capacity1;
  sides_[0].space = config.capacity1 - config.initial1;
  sides_[0].initial = config.initial1;
  sides_[0].link = config.link1;
  sides_[1].capacity = config.capacity2;
  sides_[1].space = config.capacity2 - config.initial2;
  sides_[1].initial = config.initial2;
  sides_[1].link = config.link2;
}

kpn::TokenSink& SelectorChannel::write_interface(ReplicaIndex r) {
  return write_interfaces_[static_cast<std::size_t>(index_of(r))];
}

void SelectorChannel::preload_initial_tokens(const kpn::Token& token) {
  SCCFT_EXPECTS(queue_.empty());
  pending_preload_ =
      std::max(sides_[0].capacity - sides_[0].space, sides_[1].capacity - sides_[1].space);
  for (rtc::Tokens i = 0; i < pending_preload_; ++i) {
    queue_.push_back(Slot{token, sim_.now(), std::nullopt});
  }
}

bool SelectorChannel::side_try_write(ReplicaIndex r, const kpn::Token& token) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  Side& peer = sides_[static_cast<std::size_t>(index_of(other(r)))];

  if (side.fault || side.writer_frozen) {
    // A replica already declared faulty (or halted by fault injection) can
    // neither block nor corrupt the stream: its writes are accepted and
    // discarded.
    ++stats_.tokens_dropped;
    return true;
  }
  if (side.space == 0) {
    // Rule 3: the writer blocks. Lemma 1: this depends only on space_i.
    ++stats_.writer_blocks;
    return false;
  }

  if (side.resync_pending) {
    // Recovery: align this side's counter with the peer's using sequence
    // numbers, so duplicate-pair identity stays exact despite the tokens
    // this replica missed while down. After this, token.seq ==
    // peer.last_seq + 1 is fresh; anything at or below peer.last_seq is a
    // late duplicate. The space counter is re-anchored here too: the reads
    // that happened while the replica refilled its pipeline must not count
    // against its stall budget.
    side.resync_pending = false;
    side.space = side.capacity - side.initial;
    if (peer.tokens_received > 0) {
      const auto delta = static_cast<std::int64_t>(token.seq()) -
                         static_cast<std::int64_t>(peer.last_seq) - 1;
      const auto synced = static_cast<std::int64_t>(peer.tokens_received) + delta;
      side.tokens_received = synced > 0 ? static_cast<std::uint64_t>(synced) : 0;
    }
  }

  // First-of-pair test. The paper states this as "space_i <= space_j", which
  // equals the received-token comparison below exactly when both interfaces
  // start with the same free space (space_i(0) = space_j(0)). With per-
  // replica capacities and initial fills (|S_1|-|S_1|_0 != |S_2|-|S_2|_0 for
  // both paper applications) the raw space comparison is biased by the
  // constant offset and drops one healthy token at failover; comparing
  // received counts implements the intended semantics — interface i's k-th
  // token is the first of pair k iff the peer has delivered fewer than k —
  // exactly (KPN determinacy + FIFO order make the k-th arrival token k).
  const bool first_of_pair = side.tokens_received + 1 > peer.tokens_received;
  side.space -= 1;
  side.tokens_received += 1;
  side.last_seq = token.seq();
  ++stats_.tokens_written;

  if (first_of_pair) {
    rtc::TimeNs available_at = sim_.now();
    if (side.link) {
      available_at = side.link->noc->transfer(side.link->src, side.link->dst,
                                              token.size_bytes(), sim_.now());
    }
    queue_.push_back(Slot{token, available_at, r});
    side.virtual_fill += 1;
    side.max_virtual_fill = std::max(side.max_virtual_fill, side.virtual_fill);
    stats_.max_fill = std::max(stats_.max_fill, fill() - pending_preload_);
    if (waiting_reader_) wake_reader(available_at);
  } else {
    // Late duplicate of a token the peer already delivered: dropped.
    ++stats_.tokens_dropped;
  }

  check_divergence();
  return true;
}

void SelectorChannel::freeze_writer(ReplicaIndex r) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  side.writer_frozen = true;
  side.waiting_writer = nullptr;  // handle may soon dangle (restart)
}

void SelectorChannel::reintegrate(ReplicaIndex r) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  side.fault = false;
  side.detection.reset();
  side.writer_frozen = false;
  side.waiting_writer = nullptr;
  side.space = side.capacity - side.initial;
  side.virtual_fill = 0;
  side.resync_pending = true;
}

void SelectorChannel::side_await_writable(ReplicaIndex r, std::coroutine_handle<> writer) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  SCCFT_EXPECTS(!side.waiting_writer);
  side.waiting_writer = writer;
}

std::optional<kpn::Token> SelectorChannel::try_read() {
  if (queue_.empty()) return std::nullopt;
  if (queue_.front().available_at > sim_.now()) return std::nullopt;
  Slot slot = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.tokens_read;

  // Rule 2: a read increments ALL space variables and decrements fill.
  for (Side& side : sides_) side.space += 1;
  if (slot.origin) {
    Side& origin = sides_[static_cast<std::size_t>(index_of(*slot.origin))];
    SCCFT_ASSERT(origin.virtual_fill > 0);
    origin.virtual_fill -= 1;
  } else {
    SCCFT_ASSERT(pending_preload_ > 0);
    pending_preload_ -= 1;
  }

  // Detection rule (a): replica i is faulty once space_i exceeds |S_i|.
  // A side awaiting its post-recovery resync is immune: its counters refer
  // to the pre-fault epoch until its first write re-anchors them.
  if (enable_stall_rule_) {
    for (std::size_t i = 0; i < sides_.size(); ++i) {
      Side& side = sides_[i];
      if (!side.fault && !side.resync_pending && !sides_[1 - i].fault &&
          side.space > side.capacity) {
        declare_fault(static_cast<ReplicaIndex>(i), DetectionRule::kSelectorStall);
      }
    }
  }

  wake_writers();
  return std::move(slot.token);
}

void SelectorChannel::await_readable(std::coroutine_handle<> reader) {
  SCCFT_EXPECTS(!waiting_reader_);
  waiting_reader_ = reader;
  ++stats_.reader_blocks;
  if (!queue_.empty()) {
    wake_reader(std::max(queue_.front().available_at, sim_.now()));
  }
}

void SelectorChannel::declare_fault(ReplicaIndex r, DetectionRule rule) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  SCCFT_ASSERT(!side.fault);
  side.fault = true;
  side.detection = DetectionRecord{r, rule, sim_.now()};
  if (observer_) observer_(*side.detection);
  // If the (now-faulty) replica is blocked on this interface, release it so a
  // zombie replica cannot wedge; its retried write will be accepted-and-
  // dropped via the fault path.
  if (side.waiting_writer) {
    auto writer = side.waiting_writer;
    side.waiting_writer = nullptr;
    sim_.schedule_after(0, [writer] { writer.resume(); });
  }
}

void SelectorChannel::check_divergence() {
  if (divergence_threshold_ <= 0) return;
  if (sides_[0].fault || sides_[1].fault) return;  // single-fault hypothesis
  if (sides_[0].resync_pending || sides_[1].resync_pending) return;  // recovery grace
  const auto w1 = static_cast<std::int64_t>(sides_[0].tokens_received);
  const auto w2 = static_cast<std::int64_t>(sides_[1].tokens_received);
  if (std::abs(w1 - w2) >= divergence_threshold_) {
    declare_fault(w1 < w2 ? ReplicaIndex::kReplica1 : ReplicaIndex::kReplica2,
                  DetectionRule::kSelectorDivergence);
  }
}

void SelectorChannel::wake_reader(rtc::TimeNs when) {
  if (!waiting_reader_) return;
  auto reader = waiting_reader_;
  waiting_reader_ = nullptr;
  sim_.schedule_at(std::max(when, sim_.now()), [reader] { reader.resume(); });
}

void SelectorChannel::wake_writers() {
  for (Side& side : sides_) {
    if (side.waiting_writer && (side.space > 0 || side.fault)) {
      auto writer = side.waiting_writer;
      side.waiting_writer = nullptr;
      sim_.schedule_after(0, [writer] { writer.resume(); });
    }
  }
}

}  // namespace sccft::ft
