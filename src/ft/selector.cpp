#include "ft/selector.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/assert.hpp"

namespace sccft::ft {

SelectorChannel::SelectorChannel(sim::Simulator& sim, std::string name, Config config)
    : sim_(sim),
      name_(std::move(name)),
      subject_(sim.trace().intern(name_)),
      write_interfaces_{WriteInterface(*this, ReplicaIndex::kReplica1),
                        WriteInterface(*this, ReplicaIndex::kReplica2)},
      divergence_threshold_(config.divergence_threshold),
      enable_stall_rule_(config.enable_stall_rule),
      verify_checksums_(config.verify_checksums),
      corruption_conviction_threshold_(config.corruption_conviction_threshold),
      observer_adapter_(*this) {
  SCCFT_EXPECTS(config.capacity1 > 0 && config.capacity2 > 0);
  SCCFT_EXPECTS(config.initial1 >= 0 && config.initial1 <= config.capacity1);
  SCCFT_EXPECTS(config.initial2 >= 0 && config.initial2 <= config.capacity2);
  SCCFT_EXPECTS(config.divergence_threshold >= 0);
  SCCFT_EXPECTS(config.corruption_conviction_threshold > 0);
  sides_[0].capacity = config.capacity1;
  sides_[0].space = config.capacity1 - config.initial1;
  sides_[0].initial = config.initial1;
  sides_[0].subject = sim.trace().intern(name_ + ".S1");
  sides_[0].link = config.link1;
  sides_[1].capacity = config.capacity2;
  sides_[1].space = config.capacity2 - config.initial2;
  sides_[1].initial = config.initial2;
  sides_[1].subject = sim.trace().intern(name_ + ".S2");
  sides_[1].link = config.link2;
  // Scrubbable word order (stable, documented in the header): per side
  // {capacity, initial, space, virtual_fill, tokens_received, last_seq},
  // then the channel-level frontier and divergence threshold.
  for (Side& side : sides_) {
    scrub_set_.add(side.capacity);
    scrub_set_.add(side.initial);
    scrub_set_.add(side.space);
    scrub_set_.add(side.virtual_fill);
    scrub_set_.add(side.tokens_received);
    scrub_set_.add(side.last_seq);
  }
  scrub_set_.add(last_enqueued_seq_);
  scrub_set_.add(divergence_threshold_);
  sim_.trace().subscribe(&observer_adapter_, trace::bit(trace::EventKind::kDetection));
}

SelectorChannel::~SelectorChannel() {
  sim_.trace().unsubscribe(&observer_adapter_);
}

void SelectorChannel::ObserverAdapter::on_event(const trace::Event& event) {
  if (event.subject != owner_.subject_) return;
  const auto r = static_cast<ReplicaIndex>(event.a);
  const DetectionRecord record{r, static_cast<DetectionRule>(event.b), event.time};
  for (const auto& observer : owner_.observers_) observer(record);
}

kpn::TokenSink& SelectorChannel::write_interface(ReplicaIndex r) {
  return write_interfaces_[static_cast<std::size_t>(index_of(r))];
}

void SelectorChannel::preload_initial_tokens(const kpn::Token& token) {
  SCCFT_EXPECTS(queue_.empty());
  pending_preload_ =
      std::max(sides_[0].capacity - sides_[0].space, sides_[1].capacity - sides_[1].space);
  for (rtc::Tokens i = 0; i < pending_preload_; ++i) {
    queue_.push_back(Slot{token, sim_.now(), std::nullopt});
  }
}

bool SelectorChannel::side_try_write(ReplicaIndex r, const kpn::Token& token) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  Side& peer = sides_[static_cast<std::size_t>(index_of(other(r)))];

  if (side.fault || side.writer_frozen) {
    // A replica already declared faulty (or halted by fault injection) can
    // neither block nor corrupt the stream: its writes are accepted and
    // discarded.
    ++stats_.tokens_dropped;
    sim_.trace().emit(trace::EventKind::kTokenDrop, side.subject, sim_.now(),
                      static_cast<std::int64_t>(token.seq()));
    return true;
  }
  if (side.space == 0) {
    // Rule 3: the writer blocks. Lemma 1: this depends only on space_i.
    ++stats_.writer_blocks;
    SCCFT_TRACE(sim_.trace(), trace::EventKind::kWriterBlock, side.subject, sim_.now(),
                static_cast<std::int64_t>(token.seq()));
    return false;
  }

  // Fault-injection tamper (models corruption in the replica's core or on
  // its output link), then detection rule (c): verify the arriving token's
  // CRC-32. A mismatch is quarantined — the write succeeds from the
  // replica's view and consumes its space slot (Lemma 1: only space_i is
  // touched, and rule (a) stays quiet for a replica that is producing on
  // schedule), but the received count does NOT advance. The peer's healthy
  // copy of the same pair is therefore delivered as first-of-pair, the
  // consumer never sees the corrupted payload, and a persistently corrupting
  // replica also drifts toward the rule (b) divergence threshold.
  const kpn::Token* arriving = &token;
  kpn::Token tampered;
  if (side.tamper) {
    tampered = side.tamper(token);
    arriving = &tampered;
  }
  if (verify_checksums_ && arriving->valid() && !arriving->verify_checksum()) {
    ++side.crc_mismatches;
    ++stats_.tokens_dropped;
    side.space -= 1;
    side.count_resync_pending = true;
    sim_.trace().emit(trace::EventKind::kQuarantine, subject_, sim_.now(), index_of(r),
                      static_cast<std::int64_t>(side.crc_mismatches));
    if (side.crc_mismatches >=
        static_cast<std::uint64_t>(corruption_conviction_threshold_)) {
      // Unlike (a)/(b), a CRC mismatch is direct evidence against replica i
      // regardless of the peer's state.
      declare_fault(r, DetectionRule::kSelectorCorruption);
    }
    return true;
  }

  if (side.resync_pending) {
    // Reconfiguration window: the re-anchor below reads the peer's counters
    // and the capacity words, which a resize is about to rewrite. Defer the
    // rejoin across the window through the same hold machinery as the
    // frontier hold — end_reconfiguration() wakes the writer and the retry
    // re-anchors against settled state.
    if (reconfiguring_) {
      side.held_seq = token.seq();
      ++stats_.writer_blocks;
      return false;
    }
    // A rejoining replica may only re-enter AT the delivered frontier. If its
    // first token is ahead of peer.last_seq + 1, the missing sequence numbers
    // exist solely in the peer's pipeline (e.g. the peer is mid-burst of a
    // transient fault); enqueueing now would deliver the future before the
    // past and turn the peer's copies into dropped "late duplicates" — a
    // permanent gap. Hold the write until the peer catches up; conviction of
    // the peer lifts the hold (the stream then has a genuine gap no ordering
    // can repair, and this side must flow to keep the consumer alive).
    // A peer that is itself resync-pending has pre-fault counters and no
    // claim on the frontier (holding against it can deadlock both rejoining
    // writers); the first of the two to write re-anchors instead.
    if (!peer.fault && !peer.resync_pending && peer.tokens_received > 0 &&
        token.seq() > peer.last_seq + 1) {
      side.held_seq = token.seq();
      ++stats_.writer_blocks;
      return false;
    }
    // Recovery: align this side's counter with the peer's using sequence
    // numbers, so duplicate-pair identity stays exact despite the tokens
    // this replica missed while down. After this, token.seq ==
    // peer.last_seq + 1 is fresh; anything at or below peer.last_seq is a
    // late duplicate. The space counter is re-anchored here too: the reads
    // that happened while the replica refilled its pipeline must not count
    // against its stall budget.
    side.resync_pending = false;
    side.count_resync_pending = false;
    side.space = side.capacity - side.initial;
    if (peer.tokens_received > 0) {
      const auto delta = static_cast<std::int64_t>(token.seq()) -
                         static_cast<std::int64_t>(peer.last_seq) - 1;
      const auto synced = static_cast<std::int64_t>(peer.tokens_received) + delta;
      side.tokens_received = synced > 0 ? static_cast<std::uint64_t>(synced) : 0;
    }
  } else if (side.count_resync_pending && peer.tokens_received > 0) {
    // Quarantined tokens were arrivals that never counted as received; this
    // healthy token's sequence number restores the exact pair alignment
    // (same formula as post-recovery resync, but the space counter — which
    // tracked every arrival, quarantined or not — is left alone).
    side.count_resync_pending = false;
    const auto delta = static_cast<std::int64_t>(token.seq()) -
                       static_cast<std::int64_t>(peer.last_seq) - 1;
    const auto synced = static_cast<std::int64_t>(peer.tokens_received) + delta;
    side.tokens_received = synced > 0 ? static_cast<std::uint64_t>(synced) : 0;
  }

  // First-of-pair test. The paper states this as "space_i <= space_j", which
  // equals the received-token comparison below exactly when both interfaces
  // start with the same free space (space_i(0) = space_j(0)). With per-
  // replica capacities and initial fills (|S_1|-|S_1|_0 != |S_2|-|S_2|_0 for
  // both paper applications) the raw space comparison is biased by the
  // constant offset and drops one healthy token at failover; comparing
  // received counts implements the intended semantics — interface i's k-th
  // token is the first of pair k iff the peer has delivered fewer than k —
  // exactly (KPN determinacy + FIFO order make the k-th arrival token k).
  const bool count_fresh = side.tokens_received + 1 > peer.tokens_received;
  // Seq-monotone safety net. The count comparison assumes both replicas saw
  // the same input stream; NoC loss on a producer->replica link starves one
  // replica, skews the arrival counts, and can make BOTH copies of one
  // sequence number test fresh (each replica's k-th token need not be token
  // k any more). The delivered stream must stay strictly increasing no
  // matter what, so nothing at or below the enqueued frontier is ever
  // delivered twice — the late copy is dropped like any duplicate (the
  // count still advances, which is what rules (a)/(b) reason about).
  const bool first_of_pair =
      count_fresh && static_cast<std::int64_t>(token.seq()) > last_enqueued_seq_;
  side.space -= 1;

  rtc::TimeNs available_at = sim_.now();
  if (first_of_pair && side.link) {
    const auto outcome = side.link->noc->transfer_ex(
        side.link->src, side.link->dst, arriving->size_bytes(), sim_.now());
    if (!outcome.delivered) {
      // NoC fault exhausted its retransmission budget: the first-of-pair
      // copy is lost in transit. Handled like a quarantine — the received
      // count does not advance, so the peer's healthy copy of the same pair
      // is delivered instead: duplicate execution masks link loss.
      side.count_resync_pending = true;
      ++stats_.tokens_written;
      ++stats_.tokens_dropped;
      sim_.trace().emit(trace::EventKind::kTokenDrop, side.subject, sim_.now(),
                        static_cast<std::int64_t>(token.seq()));
      check_divergence();
      return true;
    }
    available_at = outcome.arrival;
  }

  side.tokens_received += 1;
  side.last_seq = token.seq();
  ++stats_.tokens_written;

  if (first_of_pair) {
    queue_.push_back(Slot{*arriving, available_at, r});
    last_enqueued_seq_ = static_cast<std::int64_t>(token.seq());
    side.virtual_fill += 1;
    side.max_virtual_fill =
        std::max(side.max_virtual_fill, static_cast<rtc::Tokens>(side.virtual_fill));
    stats_.max_fill = std::max(stats_.max_fill, fill() - pending_preload_);
    // Always-on: VCD fill waveforms derive from enqueue/dequeue events.
    sim_.trace().emit(trace::EventKind::kEnqueue, subject_, sim_.now(),
                      static_cast<std::int64_t>(token.seq()),
                      static_cast<std::int64_t>(fill()));
    if (waiting_reader_) wake_reader(available_at);
  } else {
    // Late duplicate of a token the peer already delivered: dropped.
    ++stats_.tokens_dropped;
    sim_.trace().emit(trace::EventKind::kTokenDrop, side.subject, sim_.now(),
                      static_cast<std::int64_t>(token.seq()));
  }
  // Always-on: the virtual fill/space levels drive the per-side VCD signals
  // (space_i is what rules (a)/(b) reason about, so it belongs on waveforms
  // even in compiled-out builds).
  sim_.trace().emit(trace::EventKind::kQueueLevel, side.subject, sim_.now(),
                    static_cast<std::int64_t>(side.virtual_fill),
                    static_cast<std::int64_t>(side.space));

  check_divergence();
  // This delivery advanced the frontier; a peer writer held at its rejoin
  // point may now be able to proceed.
  if (peer.resync_pending && peer.waiting_writer) wake_writers();
  return true;
}

void SelectorChannel::freeze_writer(ReplicaIndex r) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  side.writer_frozen = true;
  // A parked writer's handle is RETAINED: a transient fault must resume it
  // (via unfreeze_writer) with its in-flight token intact. Only reintegrate
  // — the restart path, after which the handle dangles — discards it and
  // bumps the epoch; an in-flight wake that fires mid-freeze re-parks the
  // handle instead.
}

void SelectorChannel::unfreeze_writer(ReplicaIndex r) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  if (!side.writer_frozen) return;
  side.writer_frozen = false;
  // Route through wake_writers: a writer that parked at the rejoin frontier
  // hold BEFORE the freeze landed must stay parked until the hold lifts, and
  // the wake needs the epoch guard in case a restart supersedes this thaw.
  wake_writers();
}

void SelectorChannel::set_write_tamper(ReplicaIndex r, WriteTamper tamper) {
  sides_[static_cast<std::size_t>(index_of(r))].tamper = std::move(tamper);
}

void SelectorChannel::reintegrate(ReplicaIndex r) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  side.fault = false;
  side.detection.reset();
  side.writer_frozen = false;
  side.waiting_writer = nullptr;  // restart destroyed the old coroutine frame
  ++side.epoch;                   // invalidate any wake already scheduled
  side.space = side.capacity - side.initial;
  side.virtual_fill = 0;
  side.crc_mismatches = 0;
  side.resync_pending = true;
  side.count_resync_pending = false;
  // Always-on repair boundary: together with the replicator's kReintegrate
  // this brackets recover_replica in flight-recorder dumps, so a post-mortem
  // can see exactly when a replica was re-admitted (and the chaos oracles
  // can correlate convictions with repairs).
  sim_.trace().emit(trace::EventKind::kReintegrate, subject_, sim_.now(), index_of(r));
}

void SelectorChannel::side_await_writable(ReplicaIndex r, std::coroutine_handle<> writer) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  SCCFT_EXPECTS(!side.waiting_writer);
  side.waiting_writer = writer;
}

std::optional<kpn::Token> SelectorChannel::try_read() {
  if (queue_.empty()) return std::nullopt;
  if (queue_.front().available_at > sim_.now()) return std::nullopt;
  Slot slot = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.tokens_read;
  sim_.trace().emit(trace::EventKind::kDequeue, subject_, sim_.now(),
                    static_cast<std::int64_t>(slot.token.valid() ? slot.token.seq() : 0),
                    static_cast<std::int64_t>(fill()));

  // Rule 2: a read increments ALL space variables and decrements fill.
  for (Side& side : sides_) side.space += 1;
  if (slot.origin) {
    Side& origin = sides_[static_cast<std::size_t>(index_of(*slot.origin))];
    SCCFT_ASSERT(origin.virtual_fill > 0);
    origin.virtual_fill -= 1;
  } else {
    SCCFT_ASSERT(pending_preload_ > 0);
    pending_preload_ -= 1;
  }

  // Detection rule (a): replica i is faulty once space_i exceeds |S_i|.
  // A side awaiting its post-recovery resync is immune: its counters refer
  // to the pre-fault epoch until its first write re-anchors them.
  if (enable_stall_rule_) {
    for (std::size_t i = 0; i < sides_.size(); ++i) {
      Side& side = sides_[i];
      if (!side.fault && !side.resync_pending && !sides_[1 - i].fault &&
          side.space > side.capacity) {
        declare_fault(static_cast<ReplicaIndex>(i), DetectionRule::kSelectorStall);
      }
    }
  }

  for (const Side& side : sides_) {
    sim_.trace().emit(trace::EventKind::kQueueLevel, side.subject, sim_.now(),
                      static_cast<std::int64_t>(side.virtual_fill),
                      static_cast<std::int64_t>(side.space));
  }

  wake_writers();
  return std::move(slot.token);
}

void SelectorChannel::await_readable(std::coroutine_handle<> reader) {
  SCCFT_EXPECTS(!waiting_reader_);
  waiting_reader_ = reader;
  ++stats_.reader_blocks;
  SCCFT_TRACE(sim_.trace(), trace::EventKind::kReaderBlock, subject_, sim_.now());
  if (!queue_.empty()) {
    wake_reader(std::max(queue_.front().available_at, sim_.now()));
  }
}

void SelectorChannel::declare_fault(ReplicaIndex r, DetectionRule rule) {
  Side& side = sides_[static_cast<std::size_t>(index_of(r))];
  SCCFT_ASSERT(!side.fault);
  side.fault = true;
  side.detection = DetectionRecord{r, rule, sim_.now()};
  // The verdict travels the bus; the ObserverAdapter subscription replays it
  // to the registered FaultObservers synchronously.
  sim_.trace().emit(trace::EventKind::kDetection, subject_, sim_.now(), index_of(r),
                    static_cast<std::int64_t>(rule));
  // If the (now-faulty) replica is blocked on this interface, release it so a
  // zombie replica cannot wedge; its retried write will be accepted-and-
  // dropped via the fault path. Frozen writers stay parked (they resume via
  // unfreeze or die via restart), and the wake checks the epoch so it cannot
  // touch a coroutine a restart destroyed in the meantime. This also releases
  // a peer writer held at its rejoin frontier: with this side convicted, the
  // hold no longer applies.
  wake_writers();
}

void SelectorChannel::begin_reconfiguration() {
  SCCFT_EXPECTS(!reconfiguring_);
  reconfiguring_ = true;
}

void SelectorChannel::end_reconfiguration() {
  SCCFT_EXPECTS(reconfiguring_);
  reconfiguring_ = false;
  // Deferred detection: a divergence that deepened past the (possibly new)
  // threshold during the window is convicted now. The set_divergence_threshold
  // clamp guarantees the resize alone never triggers this — only genuine
  // drift accumulated inside the window can.
  check_divergence();
  wake_writers();
}

rtc::Tokens SelectorChannel::set_divergence_threshold(rtc::Tokens requested) {
  SCCFT_EXPECTS(requested >= 0);
  rtc::Tokens applied = requested;
  if (requested > 0) {
    // No retroactive conviction: a narrowing stops one token above the
    // current gap, so the divergence must genuinely deepen after the resize
    // before rule (b) can fire.
    const auto w1 = static_cast<std::int64_t>(sides_[0].tokens_received);
    const auto w2 = static_cast<std::int64_t>(sides_[1].tokens_received);
    applied = std::max(requested, static_cast<rtc::Tokens>(std::abs(w1 - w2)) + 1);
  }
  divergence_threshold_ = applied;
  return applied;
}

void SelectorChannel::check_divergence() {
  if (reconfiguring_) return;  // deferred to end_reconfiguration()
  if (divergence_threshold_ <= 0) return;
  if (sides_[0].fault || sides_[1].fault) return;  // single-fault hypothesis
  if (sides_[0].resync_pending || sides_[1].resync_pending) return;  // recovery grace
  const auto w1 = static_cast<std::int64_t>(sides_[0].tokens_received);
  const auto w2 = static_cast<std::int64_t>(sides_[1].tokens_received);
  if (std::abs(w1 - w2) >= divergence_threshold_) {
    declare_fault(w1 < w2 ? ReplicaIndex::kReplica1 : ReplicaIndex::kReplica2,
                  DetectionRule::kSelectorDivergence);
  }
}

void SelectorChannel::publish_metrics(trace::MetricsRegistry& registry) const {
  for (std::size_t i = 0; i < sides_.size(); ++i) {
    const Side& side = sides_[i];
    const std::string prefix = name_ + ".S" + std::to_string(i + 1);
    registry.gauge_max(prefix + ".max_observed_fill",
                       static_cast<std::int64_t>(side.max_virtual_fill));
    registry.add(prefix + ".tokens_received", side.tokens_received);
    registry.add(prefix + ".crc_mismatches", side.crc_mismatches);
  }
  registry.gauge_max(name_ + ".max_fill",
                     static_cast<std::int64_t>(stats_.max_fill));
  registry.add(name_ + ".tokens_written", stats_.tokens_written);
  registry.add(name_ + ".tokens_read", stats_.tokens_read);
  registry.add(name_ + ".tokens_dropped", stats_.tokens_dropped);
  registry.add(name_ + ".writer_blocks", stats_.writer_blocks);
  registry.add(name_ + ".reader_blocks", stats_.reader_blocks);
  registry.gauge_max(name_ + ".control_bytes",
                     static_cast<std::int64_t>(control_memory_bytes()));
}

void SelectorChannel::wake_reader(rtc::TimeNs when) {
  if (!waiting_reader_) return;
  auto reader = waiting_reader_;
  waiting_reader_ = nullptr;
  sim_.schedule_at(std::max(when, sim_.now()), [reader] { reader.resume(); });
}

bool SelectorChannel::frontier_hold_active(std::size_t i) const {
  const Side& side = sides_[i];
  if (!side.resync_pending) return false;
  // Rejoin re-anchoring is deferred across a reconfiguration window (see
  // begin_reconfiguration); the hold lifts when the window closes.
  if (reconfiguring_) return true;
  const Side& peer = sides_[1 - i];
  return !peer.fault && !peer.resync_pending && peer.tokens_received > 0 &&
         side.held_seq > peer.last_seq + 1;
}

void SelectorChannel::wake_writers() {
  for (std::size_t i = 0; i < sides_.size(); ++i) {
    Side& side = sides_[i];
    // A writer refused by the rejoin frontier hold is only resumed once the
    // hold has lifted (the peer's frontier reached held_seq - 1, or the peer
    // was convicted); waking it earlier would make its try_write retry fail,
    // which the kpn WriteAwaiter treats as a contract violation.
    if (side.waiting_writer && !side.writer_frozen &&
        (side.space > 0 || side.fault) && !frontier_hold_active(i)) {
      auto writer = side.waiting_writer;
      side.waiting_writer = nullptr;
      // The epoch guard drops the wake if a restart invalidated the handle;
      // if a freeze or a re-armed frontier hold lands between scheduling and
      // firing, the handle is re-parked instead of resumed so the token
      // survives the fault.
      sim_.schedule_after(0, [this, &side, i, writer, epoch = side.epoch] {
        if (side.epoch != epoch) return;
        if (side.writer_frozen || frontier_hold_active(i)) {
          side.waiting_writer = writer;
          return;
        }
        writer.resume();
      });
    }
  }
}

}  // namespace sccft::ft
