// Replica identifiers and fault-detection records shared by the replicator
// and selector channels.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "rtc/time.hpp"

namespace sccft::ft {

enum class ReplicaIndex { kReplica1 = 0, kReplica2 = 1 };

[[nodiscard]] constexpr ReplicaIndex other(ReplicaIndex r) {
  return r == ReplicaIndex::kReplica1 ? ReplicaIndex::kReplica2
                                      : ReplicaIndex::kReplica1;
}

[[nodiscard]] constexpr int index_of(ReplicaIndex r) { return static_cast<int>(r); }

[[nodiscard]] inline std::string to_string(ReplicaIndex r) {
  return r == ReplicaIndex::kReplica1 ? "R1" : "R2";
}

/// Which detection rule fired.
enum class DetectionRule {
  kReplicatorOverflow,   ///< producer write attempt found space_i == 0
  kSelectorStall,        ///< space_i exceeded |S_i| on a consumer read
  kSelectorDivergence,   ///< |received_1 - received_2| reached D
  kSelectorCorruption,   ///< repeated CRC-32 mismatches on arriving tokens
  kCurveConformance,     ///< empirical arrival curve left the design envelope
                         ///< (online RTC monitor, Eq. 2 breach)
  kWatchdogTimeout,      ///< per-tile hardware watchdog expired (scc/watchdog)
};

[[nodiscard]] inline std::string to_string(DetectionRule rule) {
  switch (rule) {
    case DetectionRule::kReplicatorOverflow: return "replicator-overflow";
    case DetectionRule::kSelectorStall: return "selector-stall";
    case DetectionRule::kSelectorDivergence: return "selector-divergence";
    case DetectionRule::kSelectorCorruption: return "selector-corruption";
    case DetectionRule::kCurveConformance: return "curve-conformance";
    case DetectionRule::kWatchdogTimeout: return "watchdog-timeout";
  }
  return "?";
}

/// A fault-detection event: which replica, by which rule, when.
struct DetectionRecord {
  ReplicaIndex replica = ReplicaIndex::kReplica1;
  DetectionRule rule = DetectionRule::kReplicatorOverflow;
  rtc::TimeNs detected_at = 0;
};

/// Callback invoked exactly once per (channel, replica) on first detection.
using FaultObserver = std::function<void(const DetectionRecord&)>;

}  // namespace sccft::ft
