// Control-state scrubbing: TMR shadow copies + a periodic majority repairer.
//
// The channel bookkeeping that the paper's detection rules read — space and
// fill counters, sequence frontiers, capacity constants — lives in the same
// memory the faults it guards against can flip. A single corrupted space
// counter can convict a healthy replica (a false positive the Supervisor
// will happily spend restart budget on) or mask a real stall. The classical
// remedy is triple modular redundancy with periodic scrubbing: keep three
// copies of every control word, read by majority vote, and run a scrubber
// often enough that a *second* independent flip cannot land before the first
// is repaired.
//
// Pieces:
//
//  * Tmr<T>        — a TMR-protected integral scalar. Reads vote (2-of-3
//                    majority; all-distinct falls back to copy 0), writes
//                    refresh all three copies — so every read-modify-write
//                    in the channel hot path re-synchronizes the word for
//                    free. Only words that are never rewritten (capacities,
//                    thresholds, frontiers of a wedged stream) depend on the
//                    scrubber for repair.
//  * Scrubbable    — the interface a channel exposes: an ordered list of
//                    control words that can be corrupted (fault injection)
//                    and scrubbed (repair).
//  * ScrubSet      — registration helper: a channel lists its Tmr members
//                    once in its constructor and delegates Scrubbable to it.
//  * Scrubber      — the periodic process: majority-repairs every target on
//                    a configurable period, counts repairs in the
//                    MetricsRegistry, and emits always-on kScrubRepair
//                    events. It can also audit the flight recorder ring
//                    against an independent event tally and force-resync a
//                    wedged sink (kTraceSinkStuck).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace sccft::trace {
class RingBufferSink;
}  // namespace sccft::trace

namespace sccft::ft {

/// Per-word scrub outcome.
struct ScrubWordResult {
  int repairs = 0;          ///< minority copies rewritten to the majority
  bool unrepairable = false;  ///< all three copies distinct; copy 0 adopted
};

/// Aggregate scrub outcome over one Scrubbable target.
struct ScrubReport {
  int words = 0;
  int repairs = 0;
  int unrepairable = 0;
};

/// A TMR-protected integral scalar. Drop-in for the plain type in channel
/// bookkeeping: implicit conversion reads the majority vote, assignment and
/// compound ops rewrite all three copies.
template <typename T>
class Tmr {
  static_assert(std::is_integral_v<T>, "Tmr protects integral control words");

 public:
  Tmr() = default;
  Tmr(T value) { set(value); }  // NOLINT(google-explicit-constructor)

  // NOLINTNEXTLINE(google-explicit-constructor): drop-in scalar semantics
  [[nodiscard]] operator T() const { return vote(); }

  Tmr& operator=(T value) {
    set(value);
    return *this;
  }
  Tmr& operator+=(T delta) {
    set(static_cast<T>(vote() + delta));
    return *this;
  }
  Tmr& operator-=(T delta) {
    set(static_cast<T>(vote() - delta));
    return *this;
  }
  Tmr& operator++() {
    set(static_cast<T>(vote() + 1));
    return *this;
  }

  /// Majority read: any two agreeing copies win; all-distinct falls back to
  /// copy 0 (the corruption the scrubber reports as unrepairable).
  [[nodiscard]] T vote() const {
    if (copies_[0] == copies_[1] || copies_[0] == copies_[2]) return copies_[0];
    if (copies_[1] == copies_[2]) return copies_[1];
    return copies_[0];
  }

  void set(T value) { copies_[0] = copies_[1] = copies_[2] = value; }

  /// Fault-injection hook: XORs `mask` into one copy.
  void corrupt(int copy, std::uint64_t mask) {
    SCCFT_EXPECTS(copy >= 0 && copy < 3);
    using U = std::make_unsigned_t<T>;
    copies_[copy] = static_cast<T>(
        static_cast<U>(copies_[copy]) ^ static_cast<U>(mask));
  }

  /// Majority repair: rewrites minority copies; adopts copy 0 when all three
  /// disagree (and reports it, so the metric records the near-miss).
  ScrubWordResult scrub() {
    ScrubWordResult result;
    if (copies_[0] == copies_[1] && copies_[1] == copies_[2]) return result;
    const T majority = vote();
    if (copies_[0] != copies_[1] && copies_[1] != copies_[2] &&
        copies_[0] != copies_[2]) {
      result.unrepairable = true;
    }
    for (T& copy : copies_) {
      if (copy != majority) {
        copy = majority;
        ++result.repairs;
      }
    }
    return result;
  }

 private:
  T copies_[3] = {};
};

/// A channel (or any other holder of TMR control words) the scrubber can
/// walk. Word indices are stable and documented by the implementer; the
/// fault plan addresses words by global index across the registered targets.
class Scrubbable {
 public:
  virtual ~Scrubbable() = default;

  [[nodiscard]] virtual std::string scrub_name() const = 0;
  [[nodiscard]] virtual int control_word_count() const = 0;
  /// Flips `mask` into copy `copy` of word `word` (fault injection).
  virtual void corrupt_control_word(int word, int copy, std::uint64_t mask) = 0;
  /// Majority-repairs every word; returns the aggregate outcome.
  virtual ScrubReport scrub_control_state() = 0;
};

/// Type-erased list of Tmr members. Channels register their control words
/// once (order defines the stable word index) and delegate Scrubbable calls.
class ScrubSet {
 public:
  template <typename T>
  void add(Tmr<T>& word) {
    words_.push_back(Slot{
        [&word](int copy, std::uint64_t mask) { word.corrupt(copy, mask); },
        [&word] { return word.scrub(); },
    });
  }

  [[nodiscard]] int size() const { return static_cast<int>(words_.size()); }

  void corrupt(int word, int copy, std::uint64_t mask) {
    SCCFT_EXPECTS(word >= 0 && word < size());
    words_[static_cast<std::size_t>(word)].corrupt(copy, mask);
  }

  [[nodiscard]] ScrubReport scrub() {
    ScrubReport report;
    report.words = size();
    for (Slot& slot : words_) {
      const ScrubWordResult r = slot.scrub();
      report.repairs += r.repairs;
      if (r.unrepairable) ++report.unrepairable;
    }
    return report;
  }

 private:
  struct Slot {
    std::function<void(int, std::uint64_t)> corrupt;
    std::function<ScrubWordResult()> scrub;
  };
  std::vector<Slot> words_;
};

/// The periodic scrubbing process. Deterministic: one simulator event per
/// period, targets walked in registration order.
class Scrubber final {
 public:
  struct Config {
    rtc::TimeNs period = rtc::from_ms(5.0);
    std::string name = "scrubber";
  };

  explicit Scrubber(sim::Simulator& sim, Config config);

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Registers a scrub target. Must be called before start().
  void add_target(Scrubbable* target);

  /// Audits `ring` each tick against `expected_total` (an independent tally
  /// of events the ring should have recorded, e.g. a CounterSink sum). On
  /// mismatch the ring is force-resynced — which also un-wedges a stuck
  /// sink, the software analogue of the watchdog resetting a hung recorder.
  void watch_flight_ring(trace::RingBufferSink* ring,
                         std::function<std::uint64_t()> expected_total);

  /// Schedules the first tick `period` from now.
  void start();

  [[nodiscard]] rtc::TimeNs period() const { return config_.period; }
  [[nodiscard]] std::uint64_t total_repairs() const { return total_repairs_; }
  [[nodiscard]] std::uint64_t ring_resyncs() const { return ring_resyncs_; }

 private:
  void tick();

  sim::Simulator& sim_;
  Config config_;
  trace::SubjectId subject_ = 0;
  std::vector<Scrubbable*> targets_;
  trace::RingBufferSink* ring_ = nullptr;
  std::function<std::uint64_t()> expected_total_;
  bool started_ = false;
  std::uint64_t total_repairs_ = 0;
  std::uint64_t ring_resyncs_ = 0;
};

}  // namespace sccft::ft
