#include "ft/replicator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::ft {

ReplicatorChannel::ReplicatorChannel(sim::Simulator& sim, std::string name,
                                     Config config)
    : sim_(sim),
      name_(std::move(name)),
      subject_(sim.trace().intern(name_)),
      read_interfaces_{ReadInterface(*this, ReplicaIndex::kReplica1),
                       ReadInterface(*this, ReplicaIndex::kReplica2)},
      observer_adapter_(*this) {
  SCCFT_EXPECTS(config.capacity1 > 0 && config.capacity2 > 0);
  queues_[0].capacity = config.capacity1;
  queues_[0].subject = sim.trace().intern(name_ + ".R1");
  queues_[0].link = config.link1;
  queues_[1].capacity = config.capacity2;
  queues_[1].subject = sim.trace().intern(name_ + ".R2");
  queues_[1].link = config.link2;
  // Scrubbable word order (stable, documented in the header).
  scrub_set_.add(queues_[0].capacity);
  scrub_set_.add(queues_[1].capacity);
  sim_.trace().subscribe(&observer_adapter_, trace::bit(trace::EventKind::kDetection));
}

ReplicatorChannel::~ReplicatorChannel() {
  sim_.trace().unsubscribe(&observer_adapter_);
}

void ReplicatorChannel::ObserverAdapter::on_event(const trace::Event& event) {
  if (event.subject != owner_.subject_) return;
  const auto r = static_cast<ReplicaIndex>(event.a);
  const DetectionRecord record{r, static_cast<DetectionRule>(event.b), event.time};
  for (const auto& observer : owner_.observers_) observer(record);
}

kpn::TokenSource& ReplicatorChannel::read_interface(ReplicaIndex r) {
  return read_interfaces_[static_cast<std::size_t>(index_of(r))];
}

bool ReplicatorChannel::try_write(const kpn::Token& token) {
  // Section 3.3: a write attempt that finds space_i == 0 marks replica i
  // faulty; from then on queue i receives no tokens. Applied per queue so a
  // single fault never blocks the producer or starves the healthy replica.
  // Inside a reconfiguration window the rule is suspended (capacities are in
  // flux); the deferred check in end_reconfiguration() convicts any queue
  // whose fill outran its capacity meanwhile.
  if (!reconfiguring_) {
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      Queue& queue = queues_[i];
      if (!queue.fault && static_cast<rtc::Tokens>(queue.slots.size()) >= queue.capacity) {
        declare_fault(static_cast<ReplicaIndex>(i));
      }
    }
  }
  // Rule 3 on the remaining healthy queues: all of them have space now
  // (queues at capacity were just declared faulty), so the write proceeds.
  bool any_healthy = false;
  for (Queue& queue : queues_) {
    if (queue.fault) continue;
    any_healthy = true;
    SCCFT_ASSERT(reconfiguring_ ||
                 static_cast<rtc::Tokens>(queue.slots.size()) < queue.capacity);
    enqueue(queue, token);
  }
  // Both replicas faulty exceeds the single-fault hypothesis; the write is
  // still accepted (and dropped) so the producer is never wedged.
  if (!any_healthy) {
    ++queues_[0].stats.tokens_dropped;
    ++queues_[1].stats.tokens_dropped;
    sim_.trace().emit(trace::EventKind::kTokenDrop, subject_, sim_.now(),
                      static_cast<std::int64_t>(token.seq()));
  }
  return true;
}

void ReplicatorChannel::await_writable(std::coroutine_handle<> writer) {
  // try_write never returns false (faults absorb overflow), so the producer
  // never actually suspends here; kept for interface completeness.
  SCCFT_EXPECTS(!waiting_writer_);
  waiting_writer_ = writer;
}

void ReplicatorChannel::enqueue(Queue& queue, const kpn::Token& token) {
  rtc::TimeNs available_at = sim_.now();
  if (queue.link) {
    const auto outcome = queue.link->noc->transfer_ex(
        queue.link->src, queue.link->dst, token.size_bytes(), sim_.now());
    if (!outcome.delivered) {
      // NoC fault exhausted its retransmission budget: this replica's copy
      // is lost in transit. The replica simply skips one iteration; the
      // selector's divergence rule catches a persistently lossy path.
      ++queue.stats.tokens_written;
      ++queue.stats.tokens_dropped;
      sim_.trace().emit(trace::EventKind::kTokenDrop, queue.subject, sim_.now(),
                        static_cast<std::int64_t>(token.seq()));
      return;
    }
    available_at = outcome.arrival;
  }
  queue.slots.push_back(Slot{token, available_at});
  ++queue.stats.tokens_written;
  queue.stats.max_fill =
      std::max(queue.stats.max_fill, static_cast<rtc::Tokens>(queue.slots.size()));
  // Always-on (not macro-gated): the VCD sink derives fill waveforms from
  // enqueue/dequeue events even in compiled-out builds.
  sim_.trace().emit(trace::EventKind::kEnqueue, queue.subject, sim_.now(),
                    static_cast<std::int64_t>(token.seq()),
                    static_cast<std::int64_t>(queue.slots.size()));
  if (queue.waiting_reader) wake_reader(queue, available_at);
}

void ReplicatorChannel::begin_reconfiguration() {
  SCCFT_EXPECTS(!reconfiguring_);
  reconfiguring_ = true;
}

void ReplicatorChannel::end_reconfiguration() {
  SCCFT_EXPECTS(reconfiguring_);
  reconfiguring_ = false;
  // Deferred overflow check. Fill == capacity is a legal steady state (the
  // overflow rule fires on the *write attempt* that finds no space), so only
  // a fill strictly above capacity — reachable solely through window writes —
  // convicts here; anything at exactly capacity is caught by the next write.
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    Queue& queue = queues_[i];
    if (!queue.fault &&
        static_cast<rtc::Tokens>(queue.slots.size()) > queue.capacity) {
      declare_fault(static_cast<ReplicaIndex>(i));
    }
  }
}

rtc::Tokens ReplicatorChannel::set_capacity(ReplicaIndex r, rtc::Tokens requested) {
  SCCFT_EXPECTS(requested > 0);
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  // No retroactive conviction: a shrink stops one slot above the current
  // fill, so the resize itself never makes the overflow rule fire — the
  // queue must genuinely outgrow the new capacity afterwards.
  const auto fill = static_cast<rtc::Tokens>(queue.slots.size());
  const rtc::Tokens applied = std::max(requested, fill + 1);
  queue.capacity = applied;
  return applied;
}

void ReplicatorChannel::freeze_reader(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  queue.reader_frozen = true;
  sim_.trace().emit(trace::EventKind::kFreeze, subject_, sim_.now(), index_of(r));
  // The parked reader's handle is RETAINED: a transient fault must resume it
  // (via unfreeze_reader) so its blocked read completes once the halt ends.
  // Only reintegrate — the restart path — discards it and bumps the epoch;
  // an in-flight wake that fires mid-freeze re-parks the handle instead.
}

void ReplicatorChannel::unfreeze_reader(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  if (!queue.reader_frozen) return;
  queue.reader_frozen = false;
  sim_.trace().emit(trace::EventKind::kUnfreeze, subject_, sim_.now(), index_of(r));
  if (queue.waiting_reader && !queue.slots.empty()) {
    wake_reader(queue, std::max(queue.slots.front().available_at, sim_.now()));
  }
}

void ReplicatorChannel::reintegrate(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  queue.fault = false;
  queue.detection.reset();
  queue.reader_frozen = false;
  queue.waiting_reader = nullptr;  // restart destroyed the old coroutine frame
  ++queue.epoch;                   // invalidate any wake already scheduled
  queue.slots.clear();
  sim_.trace().emit(trace::EventKind::kReintegrate, subject_, sim_.now(), index_of(r));
}

std::optional<kpn::Token> ReplicatorChannel::queue_try_read(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  if (queue.reader_frozen) return std::nullopt;
  if (queue.slots.empty()) return std::nullopt;
  if (queue.slots.front().available_at > sim_.now()) return std::nullopt;
  kpn::Token token = std::move(queue.slots.front().token);
  queue.slots.pop_front();
  ++queue.stats.tokens_read;
  // Always-on: the monitor ActivationBridge observes a replica's consumption
  // stream through these dequeues, so they must survive compiled-out builds.
  sim_.trace().emit(trace::EventKind::kDequeue, queue.subject, sim_.now(),
                    static_cast<std::int64_t>(token.seq()),
                    static_cast<std::int64_t>(queue.slots.size()));
  wake_writer();
  return token;
}

void ReplicatorChannel::queue_await_readable(ReplicaIndex r,
                                             std::coroutine_handle<> reader) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  SCCFT_EXPECTS(!queue.waiting_reader);
  queue.waiting_reader = reader;
  ++queue.stats.reader_blocks;
  SCCFT_TRACE(sim_.trace(), trace::EventKind::kReaderBlock, queue.subject, sim_.now());
  if (!queue.slots.empty()) {
    wake_reader(queue, std::max(queue.slots.front().available_at, sim_.now()));
  }
}

void ReplicatorChannel::declare_fault(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  SCCFT_ASSERT(!queue.fault);
  queue.fault = true;
  queue.detection =
      DetectionRecord{r, DetectionRule::kReplicatorOverflow, sim_.now()};
  // The verdict travels the bus; the ObserverAdapter subscription replays it
  // to the registered FaultObservers synchronously.
  sim_.trace().emit(trace::EventKind::kDetection, subject_, sim_.now(), index_of(r),
                    static_cast<std::int64_t>(DetectionRule::kReplicatorOverflow));
}

void ReplicatorChannel::wake_reader(Queue& queue, rtc::TimeNs when) {
  if (queue.reader_frozen) return;  // a halted core never resumes its read
  if (!queue.waiting_reader) return;
  auto reader = queue.waiting_reader;
  queue.waiting_reader = nullptr;
  // Re-check at fire time: the replica may have been halted between the
  // write that scheduled this wake and the token's availability instant. A
  // freeze re-parks the handle (a transient unfreeze must find it again); a
  // reintegrate bumps the epoch so the stale wake cannot resume a coroutine
  // the restart destroyed.
  sim_.schedule_at(std::max(when, sim_.now()),
                   [&queue, reader, epoch = queue.epoch] {
                     if (queue.epoch != epoch) return;
                     if (queue.reader_frozen) {
                       queue.waiting_reader = reader;
                       return;
                     }
                     reader.resume();
                   });
}

void ReplicatorChannel::wake_writer() {
  if (!waiting_writer_) return;
  auto writer = waiting_writer_;
  waiting_writer_ = nullptr;
  sim_.schedule_after(0, [writer] { writer.resume(); });
}

kpn::ChannelStats ReplicatorChannel::stats() const {
  kpn::ChannelStats total;
  for (const Queue& queue : queues_) {
    total.max_fill = std::max(total.max_fill, queue.stats.max_fill);
    total.tokens_written += queue.stats.tokens_written;
    total.tokens_read += queue.stats.tokens_read;
    total.tokens_dropped += queue.stats.tokens_dropped;
    total.writer_blocks += queue.stats.writer_blocks;
    total.reader_blocks += queue.stats.reader_blocks;
  }
  return total;
}

void ReplicatorChannel::publish_metrics(trace::MetricsRegistry& registry) const {
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    const Queue& queue = queues_[i];
    const std::string prefix = name_ + ".R" + std::to_string(i + 1);
    registry.gauge_max(prefix + ".max_fill",
                       static_cast<std::int64_t>(queue.stats.max_fill));
    registry.add(prefix + ".tokens_written", queue.stats.tokens_written);
    registry.add(prefix + ".tokens_read", queue.stats.tokens_read);
    registry.add(prefix + ".tokens_dropped", queue.stats.tokens_dropped);
    registry.add(prefix + ".reader_blocks", queue.stats.reader_blocks);
  }
  registry.gauge_max(name_ + ".control_bytes",
                     static_cast<std::int64_t>(control_memory_bytes()));
}

std::size_t ReplicatorChannel::control_memory_bytes() const {
  // Control state only: counters, flags, waiters — not token payloads
  // (Table 2 reports "1.5KB + N tokens"-style figures the same way).
  return sizeof(ReplicatorChannel);
}

}  // namespace sccft::ft
