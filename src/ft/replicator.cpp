#include "ft/replicator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::ft {

ReplicatorChannel::ReplicatorChannel(sim::Simulator& sim, std::string name,
                                     Config config)
    : sim_(sim),
      name_(std::move(name)),
      read_interfaces_{ReadInterface(*this, ReplicaIndex::kReplica1),
                       ReadInterface(*this, ReplicaIndex::kReplica2)} {
  SCCFT_EXPECTS(config.capacity1 > 0 && config.capacity2 > 0);
  queues_[0].capacity = config.capacity1;
  queues_[0].link = config.link1;
  queues_[1].capacity = config.capacity2;
  queues_[1].link = config.link2;
}

kpn::TokenSource& ReplicatorChannel::read_interface(ReplicaIndex r) {
  return read_interfaces_[static_cast<std::size_t>(index_of(r))];
}

bool ReplicatorChannel::try_write(const kpn::Token& token) {
  // Section 3.3: a write attempt that finds space_i == 0 marks replica i
  // faulty; from then on queue i receives no tokens. Applied per queue so a
  // single fault never blocks the producer or starves the healthy replica.
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    Queue& queue = queues_[i];
    if (!queue.fault && static_cast<rtc::Tokens>(queue.slots.size()) >= queue.capacity) {
      declare_fault(static_cast<ReplicaIndex>(i));
    }
  }
  // Rule 3 on the remaining healthy queues: all of them have space now
  // (queues at capacity were just declared faulty), so the write proceeds.
  bool any_healthy = false;
  for (Queue& queue : queues_) {
    if (queue.fault) continue;
    any_healthy = true;
    SCCFT_ASSERT(static_cast<rtc::Tokens>(queue.slots.size()) < queue.capacity);
    enqueue(queue, token);
  }
  // Both replicas faulty exceeds the single-fault hypothesis; the write is
  // still accepted (and dropped) so the producer is never wedged.
  if (!any_healthy) {
    ++queues_[0].stats.tokens_dropped;
    ++queues_[1].stats.tokens_dropped;
  }
  return true;
}

void ReplicatorChannel::await_writable(std::coroutine_handle<> writer) {
  // try_write never returns false (faults absorb overflow), so the producer
  // never actually suspends here; kept for interface completeness.
  SCCFT_EXPECTS(!waiting_writer_);
  waiting_writer_ = writer;
}

void ReplicatorChannel::enqueue(Queue& queue, const kpn::Token& token) {
  rtc::TimeNs available_at = sim_.now();
  if (queue.link) {
    const auto outcome = queue.link->noc->transfer_ex(
        queue.link->src, queue.link->dst, token.size_bytes(), sim_.now());
    if (!outcome.delivered) {
      // NoC fault exhausted its retransmission budget: this replica's copy
      // is lost in transit. The replica simply skips one iteration; the
      // selector's divergence rule catches a persistently lossy path.
      ++queue.stats.tokens_written;
      ++queue.stats.tokens_dropped;
      return;
    }
    available_at = outcome.arrival;
  }
  queue.slots.push_back(Slot{token, available_at});
  ++queue.stats.tokens_written;
  queue.stats.max_fill =
      std::max(queue.stats.max_fill, static_cast<rtc::Tokens>(queue.slots.size()));
  if (queue.waiting_reader) wake_reader(queue, available_at);
}

void ReplicatorChannel::freeze_reader(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  queue.reader_frozen = true;
  // The parked reader's handle is RETAINED: a transient fault must resume it
  // (via unfreeze_reader) so its blocked read completes once the halt ends.
  // Only reintegrate — the restart path — discards it and bumps the epoch;
  // an in-flight wake that fires mid-freeze re-parks the handle instead.
}

void ReplicatorChannel::unfreeze_reader(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  if (!queue.reader_frozen) return;
  queue.reader_frozen = false;
  if (queue.waiting_reader && !queue.slots.empty()) {
    wake_reader(queue, std::max(queue.slots.front().available_at, sim_.now()));
  }
}

void ReplicatorChannel::reintegrate(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  queue.fault = false;
  queue.detection.reset();
  queue.reader_frozen = false;
  queue.waiting_reader = nullptr;  // restart destroyed the old coroutine frame
  ++queue.epoch;                   // invalidate any wake already scheduled
  queue.slots.clear();
}

std::optional<kpn::Token> ReplicatorChannel::queue_try_read(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  if (queue.reader_frozen) return std::nullopt;
  if (queue.slots.empty()) return std::nullopt;
  if (queue.slots.front().available_at > sim_.now()) return std::nullopt;
  kpn::Token token = std::move(queue.slots.front().token);
  queue.slots.pop_front();
  ++queue.stats.tokens_read;
  wake_writer();
  return token;
}

void ReplicatorChannel::queue_await_readable(ReplicaIndex r,
                                             std::coroutine_handle<> reader) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  SCCFT_EXPECTS(!queue.waiting_reader);
  queue.waiting_reader = reader;
  ++queue.stats.reader_blocks;
  if (!queue.slots.empty()) {
    wake_reader(queue, std::max(queue.slots.front().available_at, sim_.now()));
  }
}

void ReplicatorChannel::declare_fault(ReplicaIndex r) {
  Queue& queue = queues_[static_cast<std::size_t>(index_of(r))];
  SCCFT_ASSERT(!queue.fault);
  queue.fault = true;
  queue.detection =
      DetectionRecord{r, DetectionRule::kReplicatorOverflow, sim_.now()};
  for (const auto& observer : observers_) observer(*queue.detection);
}

void ReplicatorChannel::wake_reader(Queue& queue, rtc::TimeNs when) {
  if (queue.reader_frozen) return;  // a halted core never resumes its read
  if (!queue.waiting_reader) return;
  auto reader = queue.waiting_reader;
  queue.waiting_reader = nullptr;
  // Re-check at fire time: the replica may have been halted between the
  // write that scheduled this wake and the token's availability instant. A
  // freeze re-parks the handle (a transient unfreeze must find it again); a
  // reintegrate bumps the epoch so the stale wake cannot resume a coroutine
  // the restart destroyed.
  sim_.schedule_at(std::max(when, sim_.now()),
                   [&queue, reader, epoch = queue.epoch] {
                     if (queue.epoch != epoch) return;
                     if (queue.reader_frozen) {
                       queue.waiting_reader = reader;
                       return;
                     }
                     reader.resume();
                   });
}

void ReplicatorChannel::wake_writer() {
  if (!waiting_writer_) return;
  auto writer = waiting_writer_;
  waiting_writer_ = nullptr;
  sim_.schedule_after(0, [writer] { writer.resume(); });
}

kpn::ChannelStats ReplicatorChannel::stats() const {
  kpn::ChannelStats total;
  for (const Queue& queue : queues_) {
    total.max_fill = std::max(total.max_fill, queue.stats.max_fill);
    total.tokens_written += queue.stats.tokens_written;
    total.tokens_read += queue.stats.tokens_read;
    total.tokens_dropped += queue.stats.tokens_dropped;
    total.writer_blocks += queue.stats.writer_blocks;
    total.reader_blocks += queue.stats.reader_blocks;
  }
  return total;
}

std::size_t ReplicatorChannel::control_memory_bytes() const {
  // Control state only: counters, flags, waiters — not token payloads
  // (Table 2 reports "1.5KB + N tokens"-style figures the same way).
  return sizeof(ReplicatorChannel);
}

}  // namespace sccft::ft
