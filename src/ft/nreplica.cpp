#include "ft/nreplica.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::ft {

// ---------------------------------------------------------------------------
// Sizing
// ---------------------------------------------------------------------------

NSizingReport analyze_n_replica_network(const NReplicaTimingModel& model,
                                        rtc::TimeNs horizon) {
  const std::size_t n = model.in_upper.size();
  SCCFT_EXPECTS(n >= 2);
  SCCFT_EXPECTS(model.in_lower.size() == n);
  SCCFT_EXPECTS(model.out_upper.size() == n);
  SCCFT_EXPECTS(model.out_lower.size() == n);

  NSizingReport report;
  report.replicator_capacity.reserve(n);
  report.selector_capacity.reserve(n);
  report.selector_initial.reserve(n);

  rtc::TimeNs worst_overflow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto capacity = rtc::min_fifo_capacity(*model.producer_upper,
                                                 *model.in_lower[i], horizon);
    SCCFT_ENSURES(capacity.has_value());
    report.replicator_capacity.push_back(*capacity);

    const auto initial = rtc::min_initial_fill(*model.out_lower[i],
                                               *model.consumer_upper, horizon);
    SCCFT_ENSURES(initial.has_value());
    report.selector_initial.push_back(*initial);

    const auto lead =
        rtc::sup_difference(*model.out_upper[i], *model.consumer_lower, horizon);
    SCCFT_ENSURES(lead.bounded);
    report.selector_capacity.push_back(*initial + std::max<rtc::Tokens>(lead.value, 1));

    const rtc::ZeroCurve silent;
    const auto fill_time = rtc::first_time_difference_reaches(
        *model.producer_lower, silent, *capacity + 1, horizon);
    SCCFT_ENSURES(fill_time.has_value());
    worst_overflow = std::max(worst_overflow, *fill_time);
  }
  report.replicator_overflow_bound = worst_overflow;

  // D = 1 + max over ordered pairs of sup(alpha_i,out^u - alpha_j,out^l).
  rtc::Tokens worst_sup = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto sup =
          rtc::sup_difference(*model.out_upper[i], *model.out_lower[j], horizon);
      SCCFT_ENSURES(sup.bounded && sup.stabilized);
      worst_sup = std::max(worst_sup, sup.value);
    }
  }
  report.divergence_threshold = worst_sup + 1;

  // Eq. (7)/(8): worst silence-fault detection latency over healthy replicas.
  rtc::TimeNs worst_latency = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto bound = rtc::detection_latency_bound_silence(
        *model.out_lower[i], report.divergence_threshold, horizon);
    SCCFT_ENSURES(bound.has_value());
    worst_latency = std::max(worst_latency, *bound);
  }
  report.selector_latency_bound = worst_latency;
  return report;
}

// ---------------------------------------------------------------------------
// NReplicatorChannel
// ---------------------------------------------------------------------------

NReplicatorChannel::NReplicatorChannel(sim::Simulator& sim, std::string name,
                                       std::vector<rtc::Tokens> capacities)
    : sim_(sim), name_(std::move(name)) {
  SCCFT_EXPECTS(capacities.size() >= 2);
  queues_.resize(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    SCCFT_EXPECTS(capacities[i] > 0);
    queues_[i].capacity = capacities[i];
    interfaces_.push_back(std::make_unique<ReadInterface>(*this, static_cast<int>(i)));
  }
  // Scrubbable word order (stable, documented in the header). Registered
  // after the final resize: queues_ never reallocates afterwards.
  for (Queue& queue : queues_) scrub_set_.add(queue.capacity);
}

kpn::TokenSource& NReplicatorChannel::read_interface(int replica) {
  SCCFT_EXPECTS(replica >= 0 && replica < replica_count());
  return *interfaces_[static_cast<std::size_t>(replica)];
}

bool NReplicatorChannel::try_write(const kpn::Token& token) {
  // Overflow rule per queue (Section 3.3, generalized).
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    Queue& queue = queues_[i];
    if (!queue.fault &&
        static_cast<rtc::Tokens>(queue.slots.size()) >= queue.capacity) {
      declare_fault(static_cast<int>(i));
    }
  }
  bool any_healthy = false;
  for (Queue& queue : queues_) {
    if (queue.fault) continue;
    any_healthy = true;
    queue.slots.push_back(token);
    ++queue.writes;
    queue.max_fill =
        std::max(queue.max_fill, static_cast<rtc::Tokens>(queue.slots.size()));
    if (queue.waiting_reader && !queue.reader_frozen) {
      auto reader = queue.waiting_reader;
      queue.waiting_reader = nullptr;
      wake_reader(queue, reader);
    }
  }
  if (!any_healthy) ++dropped_;  // beyond the (N-1)-fault hypothesis
  return true;
}

void NReplicatorChannel::wake_reader(Queue& queue, std::coroutine_handle<> reader) {
  // The epoch guard drops the wake if a restart invalidated the handle; if a
  // freeze lands between scheduling and firing, the handle is re-parked
  // instead of resumed so its in-flight read survives the fault.
  Queue* q = &queue;
  sim_.schedule_after(0, [q, reader, epoch = queue.epoch] {
    if (q->epoch != epoch) return;
    if (q->reader_frozen) {
      q->waiting_reader = reader;
      return;
    }
    reader.resume();
  });
}

void NReplicatorChannel::await_writable(std::coroutine_handle<> writer) {
  SCCFT_EXPECTS(!waiting_writer_);
  waiting_writer_ = writer;  // never actually used: try_write always succeeds
}

std::optional<kpn::Token> NReplicatorChannel::queue_try_read(int replica) {
  Queue& queue = queues_[static_cast<std::size_t>(replica)];
  if (queue.reader_frozen || queue.slots.empty()) return std::nullopt;
  kpn::Token token = std::move(queue.slots.front());
  queue.slots.pop_front();
  ++queue.reads;
  return token;
}

void NReplicatorChannel::queue_await_readable(int replica,
                                              std::coroutine_handle<> reader) {
  Queue& queue = queues_[static_cast<std::size_t>(replica)];
  SCCFT_EXPECTS(!queue.waiting_reader);
  queue.waiting_reader = reader;
  if (!queue.slots.empty() && !queue.reader_frozen) {
    queue.waiting_reader = nullptr;
    wake_reader(queue, reader);
  }
}

void NReplicatorChannel::declare_fault(int replica) {
  Queue& queue = queues_[static_cast<std::size_t>(replica)];
  SCCFT_ASSERT(!queue.fault);
  queue.fault = true;
  queue.detection =
      NDetectionRecord{replica, DetectionRule::kReplicatorOverflow, sim_.now()};
  if (observer_) observer_(*queue.detection);
}

bool NReplicatorChannel::fault(int replica) const {
  return queues_[static_cast<std::size_t>(replica)].fault;
}

std::optional<NDetectionRecord> NReplicatorChannel::detection(int replica) const {
  return queues_[static_cast<std::size_t>(replica)].detection;
}

rtc::Tokens NReplicatorChannel::fill(int replica) const {
  return static_cast<rtc::Tokens>(queues_[static_cast<std::size_t>(replica)].slots.size());
}

rtc::Tokens NReplicatorChannel::max_fill(int replica) const {
  return queues_[static_cast<std::size_t>(replica)].max_fill;
}

int NReplicatorChannel::healthy_count() const {
  int healthy = 0;
  for (const Queue& queue : queues_) healthy += queue.fault ? 0 : 1;
  return healthy;
}

void NReplicatorChannel::freeze_reader(int replica) {
  queues_[static_cast<std::size_t>(replica)].reader_frozen = true;
}

void NReplicatorChannel::unfreeze_reader(int replica) {
  Queue& queue = queues_[static_cast<std::size_t>(replica)];
  if (!queue.reader_frozen) return;
  queue.reader_frozen = false;
  if (queue.waiting_reader && !queue.slots.empty()) {
    auto reader = queue.waiting_reader;
    queue.waiting_reader = nullptr;
    wake_reader(queue, reader);
  }
}

void NReplicatorChannel::reintegrate(int replica) {
  SCCFT_EXPECTS(replica >= 0 && replica < replica_count());
  Queue& queue = queues_[static_cast<std::size_t>(replica)];
  queue.fault = false;
  queue.detection.reset();
  queue.reader_frozen = false;
  queue.waiting_reader = nullptr;  // restart destroyed the old coroutine frame
  ++queue.epoch;                   // invalidate any wake already scheduled
  // Rejoin at the producer's CURRENT position: the stale backlog belongs to
  // pairs the peers already delivered (or to a gap no replay can repair).
  queue.slots.clear();
}

kpn::ChannelStats NReplicatorChannel::stats() const {
  kpn::ChannelStats total;
  for (const Queue& queue : queues_) {
    total.max_fill = std::max(total.max_fill, queue.max_fill);
    total.tokens_written += queue.writes;
    total.tokens_read += queue.reads;
  }
  total.tokens_dropped = dropped_;
  return total;
}

// ---------------------------------------------------------------------------
// NSelectorChannel
// ---------------------------------------------------------------------------

NSelectorChannel::NSelectorChannel(sim::Simulator& sim, std::string name, Config config)
    : sim_(sim),
      name_(std::move(name)),
      divergence_threshold_(config.divergence_threshold),
      enable_stall_rule_(config.enable_stall_rule) {
  const std::size_t n = config.capacities.size();
  SCCFT_EXPECTS(n >= 2);
  SCCFT_EXPECTS(config.initials.size() == n);
  SCCFT_EXPECTS(config.divergence_threshold >= 0);
  sides_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    SCCFT_EXPECTS(config.capacities[i] > 0);
    SCCFT_EXPECTS(config.initials[i] >= 0 && config.initials[i] <= config.capacities[i]);
    sides_[i].capacity = config.capacities[i];
    sides_[i].space = config.capacities[i] - config.initials[i];
    sides_[i].initial = config.initials[i];
    interfaces_.push_back(std::make_unique<WriteInterface>(*this, static_cast<int>(i)));
  }
  // Scrubbable word order (stable, documented in the header). Registered
  // after the final resize: sides_ never reallocates afterwards.
  for (Side& side : sides_) {
    scrub_set_.add(side.capacity);
    scrub_set_.add(side.initial);
    scrub_set_.add(side.space);
    scrub_set_.add(side.received);
    scrub_set_.add(side.last_seq);
  }
  scrub_set_.add(last_enqueued_seq_);
  scrub_set_.add(divergence_threshold_);
}

kpn::TokenSink& NSelectorChannel::write_interface(int replica) {
  SCCFT_EXPECTS(replica >= 0 && replica < replica_count());
  return *interfaces_[static_cast<std::size_t>(replica)];
}

bool NSelectorChannel::side_try_write(int replica, const kpn::Token& token) {
  Side& side = sides_[static_cast<std::size_t>(replica)];
  if (side.fault || side.writer_frozen) {
    ++stats_.tokens_dropped;
    return true;
  }
  if (side.space == 0) {
    ++stats_.writer_blocks;
    return false;
  }

  if (side.resync_pending) {
    // A rejoining replica may only re-enter AT the delivered frontier. The
    // frontier is defined by the most advanced non-resyncing peer; if this
    // token is ahead of that peer's last_seq + 1, the missing sequence
    // numbers exist solely in peers' pipelines, and enqueueing now would
    // deliver the future before the past — a permanent gap. Hold the write
    // while a HEALTHY peer still owns the frontier (conviction of that peer
    // lifts the hold: the gap is then genuine and this side must flow).
    const Side* leader = nullptr;  // healthy frontier owner (hold authority)
    const Side* anchor = nullptr;  // most advanced peer (resync reference)
    for (std::size_t j = 0; j < sides_.size(); ++j) {
      if (static_cast<int>(j) == replica) continue;
      const Side& candidate = sides_[j];
      if (candidate.resync_pending) continue;  // pre-fault-epoch counters
      if (!anchor || candidate.received > anchor->received) anchor = &candidate;
      if (candidate.fault) continue;
      if (!leader || candidate.received > leader->received) leader = &candidate;
    }
    if (leader && leader->received > 0 && token.seq() > leader->last_seq + 1) {
      side.held_seq = token.seq();
      ++stats_.writer_blocks;
      return false;
    }
    // Recovery: align this side's counter with the most advanced peer using
    // sequence numbers, so duplicate-group identity stays exact despite the
    // tokens this replica missed while down. The space budget was already
    // re-anchored by reintegrate(); reads during the pipeline refill must
    // not count against its stall budget.
    side.resync_pending = false;
    side.space = side.capacity - side.initial;
    if (anchor && anchor->received > 0) {
      const auto delta = static_cast<std::int64_t>(token.seq()) -
                         static_cast<std::int64_t>(anchor->last_seq) - 1;
      const auto synced = static_cast<std::int64_t>(anchor->received) + delta;
      side.received = synced > 0 ? static_cast<std::uint64_t>(synced) : 0;
    }
  }

  // First-of-group test: this is interface i's (received+1)-th token; it is
  // fresh iff no peer has delivered that many tokens yet.
  std::uint64_t best_peer = 0;
  for (std::size_t j = 0; j < sides_.size(); ++j) {
    if (static_cast<int>(j) == replica) continue;
    best_peer = std::max(best_peer, static_cast<std::uint64_t>(sides_[j].received));
  }
  // Seq-monotone safety net, mirroring the 2-replica selector: input loss
  // can skew the replicas' arrival counts until the same sequence number
  // tests fresh on more than one interface, so nothing at or below the
  // enqueued frontier is ever delivered twice.
  const bool fresh = side.received + 1 > best_peer &&
                     static_cast<std::int64_t>(token.seq()) > last_enqueued_seq_;

  side.space -= 1;
  side.received += 1;
  side.last_seq = token.seq();
  ++stats_.tokens_written;

  if (fresh) {
    queue_.push_back(token);
    last_enqueued_seq_ = static_cast<std::int64_t>(token.seq());
    stats_.max_fill = std::max(stats_.max_fill, fill());
    wake_reader();
  } else {
    ++stats_.tokens_dropped;
  }
  check_divergence();
  // This delivery advanced the frontier; a peer writer held at its rejoin
  // point may now be able to proceed.
  for (const Side& peer : sides_) {
    if (peer.resync_pending && peer.waiting_writer) {
      wake_writers();
      break;
    }
  }
  return true;
}

void NSelectorChannel::side_await_writable(int replica, std::coroutine_handle<> writer) {
  Side& side = sides_[static_cast<std::size_t>(replica)];
  SCCFT_EXPECTS(!side.waiting_writer);
  side.waiting_writer = writer;
}

std::optional<kpn::Token> NSelectorChannel::try_read() {
  if (queue_.empty()) return std::nullopt;
  kpn::Token token = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.tokens_read;
  for (Side& side : sides_) side.space += 1;
  if (enable_stall_rule_) {
    // Flag any interface whose space exceeded its bound, as long as at least
    // one healthy peer would remain ((N-1)-fault hypothesis). A side awaiting
    // its post-recovery resync is immune: its counters refer to the pre-fault
    // epoch until its first write re-anchors them.
    for (std::size_t i = 0; i < sides_.size(); ++i) {
      Side& side = sides_[i];
      if (!side.fault && !side.resync_pending && side.space > side.capacity &&
          healthy_count() > 1) {
        declare_fault(static_cast<int>(i), DetectionRule::kSelectorStall);
      }
    }
  }
  wake_writers();
  return token;
}

void NSelectorChannel::await_readable(std::coroutine_handle<> reader) {
  SCCFT_EXPECTS(!waiting_reader_);
  waiting_reader_ = reader;
  ++stats_.reader_blocks;
  if (!queue_.empty()) wake_reader();
}

void NSelectorChannel::declare_fault(int replica, DetectionRule rule) {
  Side& side = sides_[static_cast<std::size_t>(replica)];
  SCCFT_ASSERT(!side.fault);
  side.fault = true;
  side.detection = NDetectionRecord{replica, rule, sim_.now()};
  if (observer_) observer_(*side.detection);
  // Release any writer blocked on this interface so a zombie replica cannot
  // wedge; its retried write is accepted-and-dropped via the fault path.
  // This also releases a peer writer held at its rejoin frontier: with this
  // side convicted, the hold no longer applies.
  wake_writers();
}

void NSelectorChannel::check_divergence() {
  if (divergence_threshold_ <= 0) return;
  std::uint64_t best = 0;
  for (const Side& side : sides_) {
    // A resyncing side's received count is pre-fault-epoch noise: it neither
    // defines the leader nor can be convicted until its first write
    // re-anchors it (recovery grace, as in the 2-replica selector).
    if (!side.fault && !side.resync_pending) {
      best = std::max(best, static_cast<std::uint64_t>(side.received));
    }
  }
  for (std::size_t i = 0; i < sides_.size(); ++i) {
    Side& side = sides_[i];
    if (side.fault || side.resync_pending) continue;
    if (healthy_count() <= 1) break;  // never convict the last healthy replica
    if (best >= side.received + static_cast<std::uint64_t>(divergence_threshold_)) {
      declare_fault(static_cast<int>(i), DetectionRule::kSelectorDivergence);
    }
  }
}

void NSelectorChannel::wake_reader() {
  if (!waiting_reader_) return;
  auto reader = waiting_reader_;
  waiting_reader_ = nullptr;
  sim_.schedule_after(0, [reader] { reader.resume(); });
}

bool NSelectorChannel::frontier_hold_active(std::size_t i) const {
  const Side& side = sides_[i];
  if (!side.resync_pending) return false;
  const Side* leader = nullptr;
  for (std::size_t j = 0; j < sides_.size(); ++j) {
    if (j == i) continue;
    const Side& candidate = sides_[j];
    if (candidate.resync_pending || candidate.fault) continue;
    if (!leader || candidate.received > leader->received) leader = &candidate;
  }
  return leader && leader->received > 0 && side.held_seq > leader->last_seq + 1;
}

void NSelectorChannel::wake_writers() {
  for (std::size_t i = 0; i < sides_.size(); ++i) {
    Side& side = sides_[i];
    // A writer refused by the rejoin frontier hold is only resumed once the
    // hold has lifted (the frontier reached held_seq - 1, or its owner was
    // convicted); waking it earlier would make its try_write retry fail,
    // which the kpn WriteAwaiter treats as a contract violation.
    if (side.waiting_writer && !side.writer_frozen &&
        (side.space > 0 || side.fault) && !frontier_hold_active(i)) {
      auto writer = side.waiting_writer;
      side.waiting_writer = nullptr;
      Side* s = &side;
      // The epoch guard drops the wake if a restart invalidated the handle;
      // if a freeze or a re-armed frontier hold lands between scheduling and
      // firing, the handle is re-parked instead of resumed so the token
      // survives the fault.
      sim_.schedule_after(0, [this, s, i, writer, epoch = side.epoch] {
        if (s->epoch != epoch) return;
        if (s->writer_frozen || frontier_hold_active(i)) {
          s->waiting_writer = writer;
          return;
        }
        writer.resume();
      });
    }
  }
}

rtc::Tokens NSelectorChannel::space(int replica) const {
  return sides_[static_cast<std::size_t>(replica)].space;
}

std::uint64_t NSelectorChannel::tokens_received(int replica) const {
  return sides_[static_cast<std::size_t>(replica)].received;
}

bool NSelectorChannel::fault(int replica) const {
  return sides_[static_cast<std::size_t>(replica)].fault;
}

std::optional<NDetectionRecord> NSelectorChannel::detection(int replica) const {
  return sides_[static_cast<std::size_t>(replica)].detection;
}

int NSelectorChannel::healthy_count() const {
  int healthy = 0;
  for (const Side& side : sides_) healthy += side.fault ? 0 : 1;
  return healthy;
}

void NSelectorChannel::freeze_writer(int replica) {
  // The parked handle is RETAINED: a transient fault must resume it (via
  // unfreeze_writer) with its in-flight token intact. Only reintegrate — the
  // restart path, after which the handle dangles — discards it.
  sides_[static_cast<std::size_t>(replica)].writer_frozen = true;
}

void NSelectorChannel::unfreeze_writer(int replica) {
  Side& side = sides_[static_cast<std::size_t>(replica)];
  if (!side.writer_frozen) return;
  side.writer_frozen = false;
  // Route through wake_writers: a writer that parked at the rejoin frontier
  // hold BEFORE the freeze landed must stay parked until the hold lifts, and
  // the wake needs the epoch guard in case a restart supersedes this thaw.
  wake_writers();
}

void NSelectorChannel::reintegrate(int replica) {
  SCCFT_EXPECTS(replica >= 0 && replica < replica_count());
  Side& side = sides_[static_cast<std::size_t>(replica)];
  side.fault = false;
  side.detection.reset();
  side.writer_frozen = false;
  side.waiting_writer = nullptr;  // restart destroyed the old coroutine frame
  ++side.epoch;                   // invalidate any wake already scheduled
  side.space = side.capacity - side.initial;
  side.resync_pending = true;
}

}  // namespace sccft::ft
