// Fleet-scale stream simulation (extension beyond the paper).
//
// The paper validates one duplicated stream on a mostly-idle SCC. This module
// asks the production question: how many concurrent streams fit on one shared
// mesh before the Section 3.4 guarantees degrade? A FleetSpec describes N
// streams — every `critical_every`-th one duplicated and supervised exactly
// like the paper's network, the rest plain producer/worker/consumer pipelines
// — with per-stream PJD envelopes materialized deterministically from the
// fleet seed. Placement goes through scc/placement.hpp (multiple processes
// per core, replica anti-affinity, MPB accounting), all streams share one
// NoC, all supervisors may share one restart-budget pool, and per-stream
// online monitors (rtc/online) watch envelope conformance at fleet
// cardinality.
//
// run_fleet() builds the whole rig in one Simulator, runs it, and reports per
// stream: throughput against nominal, detection latency against the Eq.
// (6)-(8) bound, and observed queue fills against the Eq. (3)/(5) designed
// capacities — the saturation signals bench/fleet sweeps over stream count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtc/pjd.hpp"
#include "rtc/time.hpp"
#include "scc/placement.hpp"

namespace sccft::ft {

/// One materialized stream of the fleet: its PJD envelope (drawn
/// deterministically from the fleet seed), criticality, and payload size.
struct FleetStreamSpec {
  int index = 0;
  bool critical = false;  ///< duplicated + supervised (paper's network)
  rtc::PJD producer;      ///< producer emission envelope
  rtc::PJD stage;         ///< replica/worker emission envelope
  rtc::PJD consumer;      ///< consumer consumption envelope
  std::size_t token_bytes = 0;
  std::uint64_t seed = 0;  ///< per-stream RNG stream
};

/// Declarative description of a fleet. materialize() turns it into per-stream
/// specs; run_fleet() simulates them on one shared mesh.
struct FleetSpec {
  int streams = 8;
  /// Every k-th stream (0, k, 2k, ...) is critical (duplicated, supervised,
  /// fault-injected). 1 = all critical, 0 = none.
  int critical_every = 2;
  /// Stream periods spread deterministically across
  /// [base_period * (1 - period_spread), base_period * (1 + period_spread)].
  rtc::TimeNs base_period = 4'000'000;  // 4 ms
  double period_spread = 0.5;
  /// Jitter as a fraction of the stream's period.
  double jitter_fraction = 0.125;
  std::size_t token_bytes = 1024;
  /// Fleet-shared restart pool consulted by every stream supervisor in
  /// addition to per-replica budgets; 0 = per-replica budgets only.
  int shared_restart_budget = 0;
  /// Restarts each replica may spend (the paper rig's per-replica budget).
  int restart_budget = 3;
  /// Placement knob: hard cap on processes per core (0 = unlimited).
  int max_processes_per_core = 0;
  std::uint64_t seed = 1;

  /// Draws every stream's envelope. Deterministic: same spec, same streams.
  [[nodiscard]] std::vector<FleetStreamSpec> materialize() const;
};

/// Builds the placement request for a materialized fleet: 4 processes per
/// critical stream (producer, two replicas, consumer) with the replica pair
/// anti-affine and MPB demands from the Eq. (3)/(5) capacities; 3 processes
/// per non-critical stream with Eq. (3)-sized FIFO demands.
[[nodiscard]] scc::PlacementRequest build_placement_request(
    const FleetSpec& spec, const std::vector<FleetStreamSpec>& streams);

struct FleetRunOptions {
  rtc::TimeNs run_length = 600'000'000;  // 600 ms
  /// Inject one transient silence into replica 1 of every critical stream.
  bool inject_faults = true;
  rtc::TimeNs fault_at = 150'000'000;       // 150 ms
  rtc::TimeNs fault_duration = 60'000'000;  // 60 ms outage
  /// Attach per-stream online conformance monitors (rtc/online) to the
  /// producers. Non-escalating at fleet scale (see OnlineMonitor::Options).
  bool online_monitors = true;
  /// Cross-advance quantum for the monitors (0 = every-event advance).
  rtc::TimeNs monitor_quantum = 4'000'000;
};

/// What one stream did during the run.
struct FleetStreamOutcome {
  int index = 0;
  bool critical = false;
  std::uint64_t tokens_consumed = 0;
  double nominal_rate_hz = 0;   ///< 1e9 / producer period
  double achieved_rate_hz = 0;  ///< consumed / simulated seconds
  /// Detection latency of the injected fault (critical streams with
  /// inject_faults; empty when nothing was detected).
  std::optional<rtc::TimeNs> detection_latency;
  rtc::TimeNs detection_bound = 0;  ///< Eq. (6)-(8) analytic bound
  bool detected = false;
  bool false_conviction = false;  ///< the healthy replica was blamed
  int restarts = 0;
  bool degraded = false;
  /// Observed high-water marks vs the designed Eq. (3)/(5) capacities. For
  /// non-critical streams: the pipeline FIFO vs its Eq. (3) size.
  rtc::Tokens replicator_max_fill = 0;
  rtc::Tokens replicator_capacity = 0;
  rtc::Tokens selector_max_fill = 0;
  rtc::Tokens selector_capacity = 0;
  std::uint64_t writer_blocks = 0;  ///< back-pressure stalls
  bool sequence_gap = false;
  /// Online-monitor conformance counters for the producer stream (0 when
  /// monitors are off).
  std::uint64_t upper_violations = 0;
  std::uint64_t lower_violations = 0;
};

/// Aggregate result of one fleet run.
struct FleetRunResult {
  std::vector<FleetStreamOutcome> streams;
  // Placement shape.
  std::uint64_t placement_cost = 0;
  int tiles_used = 0;
  int max_core_load = 0;
  std::size_t max_tile_mpb_used = 0;
  // Simulation effort + NoC saturation signals.
  std::uint64_t events_processed = 0;
  std::uint64_t noc_contention_stalls = 0;
  rtc::TimeNs max_link_busy_ns = 0;
  rtc::TimeNs total_link_busy_ns = 0;
  rtc::TimeNs simulated_ns = 0;
  // Shared-pool accounting (0/0 when no pool was configured).
  int pool_capacity = 0;
  int pool_used = 0;
};

/// Materializes, places, builds and runs the fleet in a private Simulator.
/// Deterministic: same spec + options, same result (and same trace), at any
/// host parallelism. Throws scc::PlacementError when the fleet does not fit.
[[nodiscard]] FleetRunResult run_fleet(const FleetSpec& spec,
                                       const FleetRunOptions& options = {});

}  // namespace sccft::ft
