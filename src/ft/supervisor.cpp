#include "ft/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "scc/watchdog.hpp"
#include "util/assert.hpp"

namespace sccft::ft {

namespace {

std::optional<rtc::TimeNs> mean_of(const std::vector<rtc::TimeNs>& samples) {
  if (samples.empty()) return std::nullopt;
  const auto sum = std::accumulate(samples.begin(), samples.end(),
                                   static_cast<std::int64_t>(0));
  return sum / static_cast<std::int64_t>(samples.size());
}

}  // namespace

std::string to_string(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kConvicted: return "convicted";
    case ReplicaHealth::kRestarting: return "restarting";
    case ReplicaHealth::kDegraded: return "degraded";
  }
  return "?";
}

std::optional<rtc::TimeNs> Supervisor::ReplicaReport::mean_time_to_repair() const {
  return mean_of(repair_times);
}

std::optional<rtc::TimeNs> Supervisor::ReplicaReport::mean_detection_latency() const {
  return mean_of(detection_latencies);
}

Supervisor::Supervisor(sim::Simulator& sim, ReplicatorChannel& replicator,
                       SelectorChannel& selector,
                       std::array<ReplicaAssets, 2> assets)
    : Supervisor(sim, replicator, selector, std::move(assets), Config{}) {}

Supervisor::Supervisor(sim::Simulator& sim, ReplicatorChannel& replicator,
                       SelectorChannel& selector,
                       std::array<ReplicaAssets, 2> assets, Config config)
    : sim_(sim),
      replicator_(replicator),
      selector_(selector),
      config_(std::move(config)),
      subject_(sim.trace().intern(config_.name)),
      sink_(*this) {
  SCCFT_EXPECTS(config_.restart_budget >= 0);
  SCCFT_EXPECTS(!config_.name.empty());
  if (!config_.injection_subject.empty()) {
    injection_filter_ = sim.trace().intern(config_.injection_subject);
  }
  SCCFT_EXPECTS(config_.initial_backoff >= 0);
  SCCFT_EXPECTS(config_.backoff_factor >= 1.0);
  SCCFT_EXPECTS(config_.max_backoff >= config_.initial_backoff);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    SCCFT_EXPECTS(index_of(assets[i].index) == static_cast<int>(i));
    replicas_[i].assets = std::move(assets[i]);
    replicas_[i].metric_prefix = config_.name + ".R" + std::to_string(i + 1);
  }
  // Subscribed after the channels' own ObserverAdapters (construction order),
  // so externally registered FaultObservers — the framework's detection log
  // in particular — still run before the supervisor acts, exactly as they
  // did when everyone sat in the same observer list.
  sim_.trace().subscribe(&sink_, trace::bit(trace::EventKind::kDetection) |
                                     trace::bit(trace::EventKind::kInjection) |
                                     trace::bit(trace::EventKind::kCurveViolation));
  SCCFT_EXPECTS(config_.heartbeat_period >= 0);
  if (config_.heartbeat_period > 0) {
    sim_.schedule_after(config_.heartbeat_period, [this] { tick(); });
  }
}

Supervisor::~Supervisor() { sim_.trace().unsubscribe(&sink_); }

void Supervisor::BusSink::on_event(const trace::Event& event) {
  // Hang gate (kSupervisorHang): a wedged supervisor core sees nothing. The
  // events still happened — the flight recorder has them — but this observer
  // misses them, which is exactly the failure the hardware watchdog exists
  // to bound (on_self_watchdog_reset re-drives standing detections).
  if (owner_.hung_) return;
  if (event.kind == trace::EventKind::kInjection) {
    // Control-plane injections have no replica victim: operand b is
    // meaningless as a ReplicaIndex and must not seed a latency sample.
    if (is_control_plane(static_cast<FaultKind>(event.a))) return;
    // Fleet rigs run one campaign per stream; only this stream's injections
    // may seed latency samples (no filter = single-stream accept-any).
    if (owner_.injection_filter_ &&
        event.subject != *owner_.injection_filter_) {
      return;
    }
    // Injections carry the target replica in operand b; the timestamp seeds
    // the next detection-latency sample (idempotent with manual
    // note_fault_injected wiring, which records the same instant).
    owner_.note_fault_injected(static_cast<ReplicaIndex>(event.b), event.time);
    return;
  }
  if (event.kind == trace::EventKind::kCurveViolation) {
    // Online-RTC conformance breach (rtc/online). The subject is the drifted
    // stream, not the replicator/selector; operand a names the convicted
    // replica (-1: a non-replica stream such as the producer — noted but not
    // actionable by replica recovery).
    if (event.a == 0 || event.a == 1) {
      owner_.on_detection(DetectionRecord{static_cast<ReplicaIndex>(event.a),
                                          DetectionRule::kCurveConformance,
                                          event.time});
    }
    return;
  }
  if (event.subject != owner_.replicator_.trace_subject() &&
      event.subject != owner_.selector_.trace_subject()) {
    return;
  }
  owner_.on_detection(DetectionRecord{static_cast<ReplicaIndex>(event.a),
                                      static_cast<DetectionRule>(event.b),
                                      event.time});
}

void Supervisor::note_fault_injected(ReplicaIndex replica, rtc::TimeNs at) {
  replicas_[static_cast<std::size_t>(index_of(replica))].last_injection = at;
}

bool Supervisor::any_replica_serviceable() const {
  return std::any_of(replicas_.begin(), replicas_.end(), [](const ReplicaState& s) {
    return s.health != ReplicaHealth::kDegraded;
  });
}

Supervisor::ReplicaReport Supervisor::report(ReplicaIndex r) const {
  const ReplicaState& state = replicas_[static_cast<std::size_t>(index_of(r))];
  const trace::MetricsRegistry& registry = metrics();
  ReplicaReport report;
  report.health = state.health;
  report.faults_seen = registry.counter(state.metric_prefix + ".faults_seen");
  report.restarts =
      static_cast<int>(registry.counter(state.metric_prefix + ".restarts"));
  report.detections_within_bound =
      registry.counter(state.metric_prefix + ".detections_within_bound");
  if (const auto* s =
          registry.find_series(state.metric_prefix + ".detection_latency_ns")) {
    report.detection_latencies = s->samples();
  }
  if (const auto* s =
          registry.find_series(state.metric_prefix + ".repair_time_ns")) {
    report.repair_times = s->samples();
  }
  return report;
}

rtc::TimeNs backoff_duration(const Supervisor::Config& config,
                             std::uint64_t restarts) {
  // The clamp is applied *before* exponentiation: the naive multiply loop
  // overflowed to inf for large restart counts, and casting an
  // out-of-double-range value to TimeNs is undefined behavior. Any restart
  // count at or past the saturation point log_factor(max/initial) yields
  // max_backoff exactly.
  if (restarts == 0 || config.initial_backoff == 0) {
    return std::min(config.initial_backoff, config.max_backoff);
  }
  if (config.backoff_factor <= 1.0) {
    return std::min(config.initial_backoff, config.max_backoff);
  }
  const double initial = static_cast<double>(config.initial_backoff);
  const double cap = static_cast<double>(config.max_backoff);
  const double saturation =
      std::log(cap / initial) / std::log(config.backoff_factor);
  if (static_cast<double>(restarts) >= saturation) return config.max_backoff;
  const double backoff =
      initial * std::pow(config.backoff_factor, static_cast<double>(restarts));
  if (backoff >= cap) return config.max_backoff;
  return static_cast<rtc::TimeNs>(backoff);
}

rtc::TimeNs Supervisor::backoff_for(const ReplicaState& state) const {
  return backoff_duration(config_,
                          metrics().counter(state.metric_prefix + ".restarts"));
}

void Supervisor::on_detection(const DetectionRecord& record) {
  ReplicaState& state =
      replicas_[static_cast<std::size_t>(index_of(record.replica))];
  // Both channels may convict the same fault (e.g. replicator overflow then
  // selector stall); only the first verdict per fault episode acts.
  if (state.health != ReplicaHealth::kHealthy) return;

  metrics().add(state.metric_prefix + ".faults_seen");
  state.convicted_at = record.detected_at;
  if (state.last_injection >= 0 && record.detected_at >= state.last_injection) {
    const rtc::TimeNs latency = record.detected_at - state.last_injection;
    metrics().record(state.metric_prefix + ".detection_latency_ns", latency);
    if (config_.detection_latency_bound > 0 &&
        latency <= config_.detection_latency_bound) {
      metrics().add(state.metric_prefix + ".detections_within_bound");
    }
    state.last_injection = -1;  // consumed by this detection
  }

  if (metrics().counter(state.metric_prefix + ".restarts") >=
      static_cast<std::uint64_t>(config_.restart_budget)) {
    // Budget exhausted: stop repairing. Conviction semantics keep the
    // network live on the peer replica (graceful degradation).
    transition(state, record.replica, ReplicaHealth::kDegraded);
    return;
  }
  if (config_.shared_budget != nullptr && !config_.shared_budget->try_acquire()) {
    // The fleet-wide pool is dry: this replica degrades even though its own
    // budget had headroom — repair capacity is a shared resource.
    metrics().add(config_.name + ".pool_exhausted");
    transition(state, record.replica, ReplicaHealth::kDegraded);
    return;
  }

  transition(state, record.replica, ReplicaHealth::kConvicted);
  schedule_restart(record.replica);
}

void Supervisor::schedule_restart(ReplicaIndex r) {
  ReplicaState& state = replicas_[static_cast<std::size_t>(index_of(r))];
  sim_.schedule_after(backoff_for(state),
                      [this, r, generation = state.generation] {
                        ReplicaState& s =
                            replicas_[static_cast<std::size_t>(index_of(r))];
                        if (s.generation != generation) return;
                        if (s.health != ReplicaHealth::kConvicted) return;
                        // A hung supervisor core drops its own timer work:
                        // the restart is lost until the hardware watchdog
                        // resets the core and re-schedules it.
                        if (hung_) return;
                        perform_restart(r);
                      });
}

void Supervisor::perform_restart(ReplicaIndex r) {
  ReplicaState& state = replicas_[static_cast<std::size_t>(index_of(r))];
  transition(state, r, ReplicaHealth::kRestarting);
  ++state.generation;

  // Quiesce the replica before tearing down its coroutines: after the
  // freezes, no channel fires a wake into the old frames (the epoch bump in
  // reintegrate then invalidates wakes already in flight).
  replicator_.freeze_reader(r);
  selector_.freeze_writer(r);
  recover_replica(replicator_, selector_, state.assets);

  metrics().add(state.metric_prefix + ".restarts");
  sim_.trace().emit(trace::EventKind::kRestart, subject_, sim_.now(), index_of(r),
                    static_cast<std::int64_t>(
                        metrics().counter(state.metric_prefix + ".restarts")));
  if (state.convicted_at >= 0) {
    metrics().record(state.metric_prefix + ".repair_time_ns",
                     sim_.now() - state.convicted_at);
    state.convicted_at = -1;
  }
  transition(state, r, ReplicaHealth::kHealthy);
}

void Supervisor::attach_watchdog(scc::WatchdogTimer* watchdog, int channel) {
  SCCFT_EXPECTS(watchdog != nullptr);
  SCCFT_EXPECTS(channel >= 0 && channel < watchdog->channel_count());
  watchdog_ = watchdog;
  watchdog_channel_ = channel;
}

void Supervisor::inject_hang() {
  hung_ = true;
  metrics().add(config_.name + ".hangs");
}

void Supervisor::tick() {
  // The tick models the supervisor core's timer interrupt, so it always
  // re-arms — a hung core still takes interrupts, it just does nothing
  // useful in them (no heartbeat, no watchdog kick, so the deadline runs
  // out and the hardware path below fires).
  sim_.schedule_after(config_.heartbeat_period, [this] { tick(); });
  if (hung_) return;
  ++heartbeats_;
  metrics().add(config_.name + ".heartbeats");
  sim_.trace().emit(trace::EventKind::kHeartbeat, subject_, sim_.now(),
                    static_cast<std::int64_t>(heartbeats_));
  if (watchdog_ != nullptr) watchdog_->kick(watchdog_channel_);
}

void Supervisor::on_self_watchdog_reset() {
  clear_hang();
  metrics().add(config_.name + ".watchdog_resets");
  // Repair what the hang broke. Restart timers that fired while hung were
  // swallowed (schedule_restart's hung_ guard), so every still-convicted
  // replica gets a fresh one; detections the BusSink missed are still
  // latched in the channels' verdict state and can be re-driven.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const auto r = static_cast<ReplicaIndex>(i);
    ReplicaState& state = replicas_[i];
    if (state.health == ReplicaHealth::kConvicted) {
      schedule_restart(r);
    } else if (state.health == ReplicaHealth::kHealthy) {
      std::optional<DetectionRecord> standing = replicator_.detection(r);
      if (!standing) standing = selector_.detection(r);
      if (standing) on_detection(*standing);
    }
  }
}

void Supervisor::on_core_watchdog_reset(ReplicaIndex replica) {
  // The reset line is hardware: it convicts through the ordinary detection
  // path (budget, backoff, degradation all apply) but never through the
  // hung_-gated bus sink.
  const ReplicaState& state =
      replicas_[static_cast<std::size_t>(index_of(replica))];
  if (state.health != ReplicaHealth::kHealthy) return;
  on_detection(DetectionRecord{replica, DetectionRule::kWatchdogTimeout,
                               sim_.now()});
}

void Supervisor::transition(ReplicaState& state, ReplicaIndex r, ReplicaHealth to) {
  transitions_.push_back(HealthTransition{r, state.health, to, sim_.now()});
  sim_.trace().emit(trace::EventKind::kHealthTransition, subject_, sim_.now(),
                    index_of(r), static_cast<std::int64_t>(state.health),
                    static_cast<std::int64_t>(to));
  state.health = to;
}

}  // namespace sccft::ft
