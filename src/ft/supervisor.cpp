#include "ft/supervisor.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace sccft::ft {

namespace {

std::optional<rtc::TimeNs> mean_of(const std::vector<rtc::TimeNs>& samples) {
  if (samples.empty()) return std::nullopt;
  const auto sum = std::accumulate(samples.begin(), samples.end(),
                                   static_cast<std::int64_t>(0));
  return sum / static_cast<std::int64_t>(samples.size());
}

}  // namespace

std::string to_string(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kConvicted: return "convicted";
    case ReplicaHealth::kRestarting: return "restarting";
    case ReplicaHealth::kDegraded: return "degraded";
  }
  return "?";
}

std::optional<rtc::TimeNs> Supervisor::ReplicaReport::mean_time_to_repair() const {
  return mean_of(repair_times);
}

std::optional<rtc::TimeNs> Supervisor::ReplicaReport::mean_detection_latency() const {
  return mean_of(detection_latencies);
}

Supervisor::Supervisor(sim::Simulator& sim, ReplicatorChannel& replicator,
                       SelectorChannel& selector,
                       std::array<ReplicaAssets, 2> assets)
    : Supervisor(sim, replicator, selector, std::move(assets), Config{}) {}

Supervisor::Supervisor(sim::Simulator& sim, ReplicatorChannel& replicator,
                       SelectorChannel& selector,
                       std::array<ReplicaAssets, 2> assets, Config config)
    : sim_(sim), replicator_(replicator), selector_(selector), config_(config) {
  SCCFT_EXPECTS(config_.restart_budget >= 0);
  SCCFT_EXPECTS(config_.initial_backoff >= 0);
  SCCFT_EXPECTS(config_.backoff_factor >= 1.0);
  SCCFT_EXPECTS(config_.max_backoff >= config_.initial_backoff);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    SCCFT_EXPECTS(index_of(assets[i].index) == static_cast<int>(i));
    replicas_[i].assets = std::move(assets[i]);
  }
  const auto observer = [this](const DetectionRecord& record) {
    on_detection(record);
  };
  replicator_.add_fault_observer(observer);
  selector_.add_fault_observer(observer);
}

void Supervisor::note_fault_injected(ReplicaIndex replica, rtc::TimeNs at) {
  replicas_[static_cast<std::size_t>(index_of(replica))].last_injection = at;
}

bool Supervisor::any_replica_serviceable() const {
  return std::any_of(replicas_.begin(), replicas_.end(), [](const ReplicaState& s) {
    return s.report.health != ReplicaHealth::kDegraded;
  });
}

rtc::TimeNs Supervisor::backoff_for(const ReplicaState& state) const {
  double backoff = static_cast<double>(config_.initial_backoff);
  for (int i = 0; i < state.report.restarts; ++i) backoff *= config_.backoff_factor;
  backoff = std::min(backoff, static_cast<double>(config_.max_backoff));
  return static_cast<rtc::TimeNs>(backoff);
}

void Supervisor::on_detection(const DetectionRecord& record) {
  ReplicaState& state =
      replicas_[static_cast<std::size_t>(index_of(record.replica))];
  // Both channels may convict the same fault (e.g. replicator overflow then
  // selector stall); only the first verdict per fault episode acts.
  if (state.report.health != ReplicaHealth::kHealthy) return;

  state.report.faults_seen += 1;
  state.convicted_at = record.detected_at;
  if (state.last_injection >= 0 && record.detected_at >= state.last_injection) {
    const rtc::TimeNs latency = record.detected_at - state.last_injection;
    state.report.detection_latencies.push_back(latency);
    if (config_.detection_latency_bound > 0 &&
        latency <= config_.detection_latency_bound) {
      state.report.detections_within_bound += 1;
    }
    state.last_injection = -1;  // consumed by this detection
  }

  if (state.report.restarts >= config_.restart_budget) {
    // Budget exhausted: stop repairing. Conviction semantics keep the
    // network live on the peer replica (graceful degradation).
    transition(state, record.replica, ReplicaHealth::kDegraded);
    return;
  }

  transition(state, record.replica, ReplicaHealth::kConvicted);
  const auto replica = record.replica;
  sim_.schedule_after(backoff_for(state),
                      [this, replica, generation = state.generation] {
                        ReplicaState& s = replicas_[static_cast<std::size_t>(
                            index_of(replica))];
                        if (s.generation != generation) return;
                        if (s.report.health != ReplicaHealth::kConvicted) return;
                        perform_restart(replica);
                      });
}

void Supervisor::perform_restart(ReplicaIndex r) {
  ReplicaState& state = replicas_[static_cast<std::size_t>(index_of(r))];
  transition(state, r, ReplicaHealth::kRestarting);
  ++state.generation;

  // Quiesce the replica before tearing down its coroutines: after the
  // freezes, no channel fires a wake into the old frames (the epoch bump in
  // reintegrate then invalidates wakes already in flight).
  replicator_.freeze_reader(r);
  selector_.freeze_writer(r);
  recover_replica(replicator_, selector_, state.assets);

  state.report.restarts += 1;
  if (state.convicted_at >= 0) {
    state.report.repair_times.push_back(sim_.now() - state.convicted_at);
    state.convicted_at = -1;
  }
  transition(state, r, ReplicaHealth::kHealthy);
}

void Supervisor::transition(ReplicaState& state, ReplicaIndex r, ReplicaHealth to) {
  transitions_.push_back(HealthTransition{r, state.report.health, to, sim_.now()});
  state.report.health = to;
}

}  // namespace sccft::ft
