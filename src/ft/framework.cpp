#include "ft/framework.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace sccft::ft {

rtc::NetworkTimingModel AppTimingSpec::to_model() const {
  rtc::NetworkTimingModel model;
  auto fill = [](const rtc::PJD& pjd, rtc::CurveRef& upper, rtc::CurveRef& lower) {
    upper = rtc::make_curve<rtc::PJDUpperCurve>(pjd);
    lower = rtc::make_curve<rtc::PJDLowerCurve>(pjd);
  };
  fill(producer, model.producer_upper, model.producer_lower);
  fill(replica1_in, model.replica1_in_upper, model.replica1_in_lower);
  fill(replica2_in, model.replica2_in_upper, model.replica2_in_lower);
  fill(replica1_out, model.replica1_out_upper, model.replica1_out_lower);
  fill(replica2_out, model.replica2_out_upper, model.replica2_out_lower);
  fill(consumer, model.consumer_upper, model.consumer_lower);
  return model;
}

rtc::TimeNs AppTimingSpec::default_horizon() const {
  rtc::TimeNs max_period = 0;
  rtc::TimeNs max_jitter = 0;
  for (const rtc::PJD* pjd : {&producer, &replica1_in, &replica2_in, &replica1_out,
                              &replica2_out, &consumer}) {
    max_period = std::max(max_period, pjd->period);
    max_jitter = std::max(max_jitter, pjd->jitter);
  }
  return 100 * max_period + 2 * max_jitter;
}

std::optional<DetectionRecord> DetectionLog::first() const {
  if (records.empty()) return std::nullopt;
  return records.front();
}

std::optional<DetectionRecord> DetectionLog::first_replicator() const {
  for (const auto& record : records) {
    if (record.rule == DetectionRule::kReplicatorOverflow) return record;
  }
  return std::nullopt;
}

std::optional<DetectionRecord> DetectionLog::first_selector() const {
  for (const auto& record : records) {
    if (record.rule == DetectionRule::kSelectorStall ||
        record.rule == DetectionRule::kSelectorDivergence ||
        record.rule == DetectionRule::kSelectorCorruption) {
      return record;
    }
  }
  return std::nullopt;
}

FaultTolerantHarness::FaultTolerantHarness(kpn::Network& network, Config config)
    : injector_(network.simulator()) {
  // The overrides use 0 as "unset"; a negative value is neither unset nor a
  // legal size, and the `override > 0 ? override : analyzed` selection below
  // would silently discard it. Diagnose with the offending value instead.
  if (config.divergence_threshold_override < 0) {
    util::contract_failure_msg(
        "precondition",
        "divergence_threshold_override must be >= 0 (0 = use Eq. (5)), got " +
            std::to_string(config.divergence_threshold_override),
        __FILE__, __LINE__);
  }
  if (config.replicator_capacity_override < 0) {
    util::contract_failure_msg(
        "precondition",
        "replicator_capacity_override must be >= 0 (0 = use Eq. (3)), got " +
            std::to_string(config.replicator_capacity_override),
        __FILE__, __LINE__);
  }
  const rtc::TimeNs horizon = config.timing.default_horizon();
  sizing_ = rtc::analyze_duplicated_network(config.timing.to_model(), horizon);

  auto link = [&](scc::CoreId src,
                  scc::CoreId dst) -> std::optional<kpn::FifoChannel::LinkModel> {
    if (config.platform == nullptr) return std::nullopt;
    return kpn::FifoChannel::LinkModel{&config.platform->noc(), src, dst};
  };

  ReplicatorChannel::Config replicator_config{
      .capacity1 = config.replicator_capacity_override > 0
                       ? config.replicator_capacity_override
                       : sizing_.replicator_capacity1,
      .capacity2 = config.replicator_capacity_override > 0
                       ? config.replicator_capacity_override
                       : sizing_.replicator_capacity2,
      .link1 = link(config.producer_core, config.replica1_in_core),
      .link2 = link(config.producer_core, config.replica2_in_core)};
  replicator_ = &network.adopt_channel(std::make_unique<ReplicatorChannel>(
      network.simulator(), config.name_prefix + ".replicator", replicator_config));

  SelectorChannel::Config selector_config{
      .capacity1 = sizing_.selector_capacity1,
      .capacity2 = sizing_.selector_capacity2,
      .initial1 = sizing_.selector_initial1,
      .initial2 = sizing_.selector_initial2,
      .divergence_threshold = config.divergence_threshold_override > 0
                                  ? config.divergence_threshold_override
                                  : sizing_.selector_threshold,
      .enable_stall_rule = config.enable_selector_stall_rule,
      .verify_checksums = config.verify_selector_checksums,
      .corruption_conviction_threshold = config.corruption_conviction_threshold,
      .link1 = link(config.replica1_out_core, config.consumer_core),
      .link2 = link(config.replica2_out_core, config.consumer_core)};
  selector_ = &network.adopt_channel(std::make_unique<SelectorChannel>(
      network.simulator(), config.name_prefix + ".selector", selector_config));
  if (config.preload_initial_tokens) {
    selector_->preload_initial_tokens(config.initial_token);
  }

  auto observer = [this](const DetectionRecord& record) {
    log_.records.push_back(record);
  };
  replicator_->add_fault_observer(observer);
  selector_->add_fault_observer(observer);
}

std::optional<rtc::TimeNs> FaultTolerantHarness::first_detection_latency() const {
  const auto record = log_.first();
  if (!record || injector_.injected_at() < 0) return std::nullopt;
  return record->detected_at - injector_.injected_at();
}

std::optional<rtc::TimeNs> FaultTolerantHarness::replicator_detection_latency() const {
  const auto record = log_.first_replicator();
  if (!record || injector_.injected_at() < 0) return std::nullopt;
  return record->detected_at - injector_.injected_at();
}

std::optional<rtc::TimeNs> FaultTolerantHarness::selector_detection_latency() const {
  const auto record = log_.first_selector();
  if (!record || injector_.injected_at() < 0) return std::nullopt;
  return record->detected_at - injector_.injected_at();
}

}  // namespace sccft::ft
