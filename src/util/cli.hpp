// Minimal command-line flag parser for the tools and examples.
//
// Supports --flag value, --flag=value, and boolean --flag forms; collects
// unknown flags as errors and renders a usage summary. Header-only.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace sccft::util {

class CliParser final {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declares a flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help) {
    SCCFT_EXPECTS(!name.empty());
    SCCFT_EXPECTS(flags_.find(name) == flags_.end());
    flags_[name] = Flag{default_value, help, default_value};
  }

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// missing values. "--help" sets help_requested().
  bool parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_requested_ = true;
        continue;
      }
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected positional argument: " + arg;
        return false;
      }
      arg = arg.substr(2);
      std::string value;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      }
      const auto it = flags_.find(arg);
      if (it == flags_.end()) {
        error_ = "unknown flag: --" + arg;
        return false;
      }
      if (eq == std::string::npos) {
        // Boolean form (--flag) if the default is true/false; else consume
        // the next argv element as the value.
        if (it->second.default_value == "true" || it->second.default_value == "false") {
          value = "true";
        } else if (i + 1 < argc) {
          value = argv[++i];
        } else {
          error_ = "flag --" + arg + " needs a value";
          return false;
        }
      }
      it->second.value = value;
    }
    return true;
  }

  [[nodiscard]] std::string get(const std::string& name) const {
    const auto it = flags_.find(name);
    SCCFT_EXPECTS(it != flags_.end());
    return it->second.value;
  }
  [[nodiscard]] std::int64_t get_int(const std::string& name) const {
    return std::stoll(get(name));
  }
  [[nodiscard]] double get_double(const std::string& name) const {
    return std::stod(get(name));
  }
  [[nodiscard]] bool get_bool(const std::string& name) const {
    return get(name) == "true" || get(name) == "1";
  }

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] std::string usage() const {
    std::ostringstream os;
    os << program_ << " — " << description_ << "\n\nFlags:\n";
    for (const auto& [name, flag] : flags_) {
      os << "  --" << name << " (default: " << flag.default_value << ")\n      "
         << flag.help << "\n";
    }
    return os.str();
  }

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
  std::string error_;
};

/// Declares the standard `--jobs N` campaign flag (default: the hardware
/// concurrency). Campaign results are byte-identical at any job count, so
/// the flag trades wall clock only.
inline void add_jobs_flag(CliParser& cli) {
  cli.add_flag("jobs", std::to_string(default_jobs()),
               "worker threads for campaign fan-out (1 = serial; results are "
               "byte-identical at any value)");
}

/// Returns the parsed, validated `--jobs` value (>= 1).
[[nodiscard]] inline int get_jobs(const CliParser& cli) {
  const std::int64_t jobs = cli.get_int("jobs");
  SCCFT_EXPECTS(jobs >= 1);
  return static_cast<int>(jobs);
}

/// One-call form for the bench mains: parses argv accepting only `--jobs`
/// (and --help) and returns the job count. Prints usage and exits on --help
/// or a parse error.
[[nodiscard]] inline int parse_jobs_or_exit(int argc, const char* const* argv,
                                            const std::string& program,
                                            const std::string& description) {
  CliParser cli(program, description);
  add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage().c_str());
    std::exit(0);
  }
  return get_jobs(cli);
}

}  // namespace sccft::util
