// Minimal command-line flag parser for the tools and examples.
//
// Supports --flag value, --flag=value, and boolean --flag forms; collects
// unknown flags as errors and renders a usage summary. Header-only.
//
// Numeric flags should be declared with add_int_flag / add_double_flag:
// their values are validated *during parse()* with strict whole-string
// parsing (no trailing junk, range-checked, optional [min, max] bounds), so
// `--jobs garbage` travels the ordinary parse-error path — error() + usage —
// instead of aborting through an uncaught std::stoll exception.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace sccft::util {

/// Strict whole-string integer parse: optional sign, digits, nothing else.
/// Returns nullopt on empty input, non-numeric characters, trailing junk
/// ("4x", "1e3"), or values outside std::int64_t.
[[nodiscard]] inline std::optional<std::int64_t> parse_int64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

/// Strict whole-string double parse (accepts the usual fixed/scientific
/// forms; rejects empty input, trailing junk, and out-of-range values).
[[nodiscard]] inline std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

class CliParser final {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declares a string (or "true"/"false" boolean) flag with a default value
  /// and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help) {
    declare(name, default_value, help, Type::kString, 0, 0, 0.0, 0.0);
  }

  /// Declares an integer flag. The value is validated at parse() time with
  /// strict whole-string parsing and the inclusive [min, max] bounds; a
  /// non-numeric, out-of-range, or trailing-junk value fails parse() with a
  /// diagnostic instead of throwing later in get_int().
  void add_int_flag(const std::string& name, std::int64_t default_value,
                    const std::string& help,
                    std::int64_t min = std::numeric_limits<std::int64_t>::min(),
                    std::int64_t max = std::numeric_limits<std::int64_t>::max()) {
    SCCFT_EXPECTS(min <= max);
    SCCFT_EXPECTS(default_value >= min && default_value <= max);
    declare(name, std::to_string(default_value), help, Type::kInt, min, max, 0.0, 0.0);
  }

  /// Declares a double flag, validated at parse() time like add_int_flag.
  void add_double_flag(const std::string& name, double default_value,
                       const std::string& help,
                       double min = -std::numeric_limits<double>::infinity(),
                       double max = std::numeric_limits<double>::infinity()) {
    SCCFT_EXPECTS(min <= max);
    SCCFT_EXPECTS(default_value >= min && default_value <= max);
    std::ostringstream os;
    os << default_value;
    declare(name, os.str(), help, Type::kDouble, 0, 0, min, max);
  }

  /// Parses argv. Returns false (and fills error()) on unknown flags,
  /// missing values, or typed-flag values that fail validation. "--help"
  /// sets help_requested().
  bool parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_requested_ = true;
        continue;
      }
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected positional argument: " + arg;
        return false;
      }
      arg = arg.substr(2);
      std::string value;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      }
      const auto it = flags_.find(arg);
      if (it == flags_.end()) {
        error_ = "unknown flag: --" + arg;
        return false;
      }
      if (eq == std::string::npos) {
        // Boolean form (--flag) if the default is true/false; else consume
        // the next argv element as the value.
        if (it->second.default_value == "true" || it->second.default_value == "false") {
          value = "true";
        } else if (i + 1 < argc) {
          value = argv[++i];
        } else {
          error_ = "flag --" + arg + " needs a value";
          return false;
        }
      }
      if (!validate(arg, it->second, value)) return false;
      it->second.value = value;
    }
    return true;
  }

  [[nodiscard]] std::string get(const std::string& name) const {
    const auto it = flags_.find(name);
    SCCFT_EXPECTS(it != flags_.end());
    return it->second.value;
  }
  /// Pre: the flag's current value parses as an integer — guaranteed for
  /// add_int_flag flags (parse() validated it); for plain string flags a
  /// malformed value is a contract violation here, never an uncaught
  /// std::stoll abort.
  [[nodiscard]] std::int64_t get_int(const std::string& name) const {
    const std::string value = get(name);
    const auto parsed = parse_int64(value);
    if (!parsed) {
      contract_failure_msg("precondition",
                          "flag --" + name + ": '" + value + "' is not an integer",
                          __FILE__, __LINE__);
    }
    return *parsed;
  }
  [[nodiscard]] double get_double(const std::string& name) const {
    const std::string value = get(name);
    const auto parsed = parse_double(value);
    if (!parsed) {
      contract_failure_msg("precondition",
                          "flag --" + name + ": '" + value + "' is not a number",
                          __FILE__, __LINE__);
    }
    return *parsed;
  }
  [[nodiscard]] bool get_bool(const std::string& name) const {
    return get(name) == "true" || get(name) == "1";
  }

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] std::string usage() const {
    std::ostringstream os;
    os << program_ << " — " << description_ << "\n\nFlags:\n";
    for (const auto& [name, flag] : flags_) {
      os << "  --" << name << " (default: " << flag.default_value << ")\n      "
         << flag.help << "\n";
    }
    return os.str();
  }

 private:
  enum class Type { kString, kInt, kDouble };

  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
    Type type = Type::kString;
    std::int64_t int_min = 0, int_max = 0;
    double double_min = 0.0, double_max = 0.0;
  };

  void declare(const std::string& name, const std::string& default_value,
               const std::string& help, Type type, std::int64_t int_min,
               std::int64_t int_max, double double_min, double double_max) {
    SCCFT_EXPECTS(!name.empty());
    SCCFT_EXPECTS(flags_.find(name) == flags_.end());
    flags_[name] = Flag{default_value, help,       default_value, type,
                        int_min,       int_max,    double_min,    double_max};
  }

  bool validate(const std::string& name, const Flag& flag, const std::string& value) {
    if (flag.type == Type::kInt) {
      const auto parsed = parse_int64(value);
      if (!parsed) {
        error_ = "flag --" + name + ": expected an integer, got '" + value + "'";
        return false;
      }
      if (*parsed < flag.int_min || *parsed > flag.int_max) {
        error_ = "flag --" + name + ": value " + value + " out of range [" +
                 std::to_string(flag.int_min) + ", " + std::to_string(flag.int_max) + "]";
        return false;
      }
    } else if (flag.type == Type::kDouble) {
      const auto parsed = parse_double(value);
      if (!parsed) {
        error_ = "flag --" + name + ": expected a number, got '" + value + "'";
        return false;
      }
      if (*parsed < flag.double_min || *parsed > flag.double_max) {
        std::ostringstream os;
        os << "flag --" << name << ": value " << value << " out of range ["
           << flag.double_min << ", " << flag.double_max << "]";
        error_ = os.str();
        return false;
      }
    }
    return true;
  }

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
  std::string error_;
};

/// Declares the standard `--jobs N` campaign flag (default: the hardware
/// concurrency). Campaign results are byte-identical at any job count, so
/// the flag trades wall clock only. Validated at parse time: non-numeric or
/// < 1 values fail parse() with a diagnostic.
inline void add_jobs_flag(CliParser& cli) {
  cli.add_int_flag("jobs", static_cast<std::int64_t>(default_jobs()),
                   "worker threads for campaign fan-out (1 = serial; results are "
                   "byte-identical at any value)",
                   /*min=*/1, /*max=*/4096);
}

/// Returns the parsed, validated `--jobs` value (>= 1).
[[nodiscard]] inline int get_jobs(const CliParser& cli) {
  const std::int64_t jobs = cli.get_int("jobs");
  SCCFT_EXPECTS(jobs >= 1);
  return static_cast<int>(jobs);
}

/// One-call form for the bench mains: parses argv accepting only `--jobs`
/// (and --help) and returns the job count. Prints usage and exits on --help
/// or a parse error.
[[nodiscard]] inline int parse_jobs_or_exit(int argc, const char* const* argv,
                                            const std::string& program,
                                            const std::string& description) {
  CliParser cli(program, description);
  add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage().c_str());
    std::exit(0);
  }
  return get_jobs(cli);
}

}  // namespace sccft::util
