#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sccft::util {

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::min() const {
  SCCFT_EXPECTS(count_ > 0);
  return min_;
}

double StreamingStats::max() const {
  SCCFT_EXPECTS(count_ > 0);
  return max_;
}

double StreamingStats::mean() const {
  SCCFT_EXPECTS(count_ > 0);
  return mean_;
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::merge(const SampleSet& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_valid_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::min() const {
  SCCFT_EXPECTS(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double SampleSet::max() const {
  SCCFT_EXPECTS(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double SampleSet::mean() const {
  SCCFT_EXPECTS(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  SCCFT_EXPECTS(!samples_.empty());
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::percentile(double p) const {
  SCCFT_EXPECTS(!samples_.empty());
  SCCFT_EXPECTS(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string format_si(double v, const std::string& unit, int precision) {
  static constexpr const char* kPrefixes[] = {"", "k", "M", "G", "T"};
  double mag = std::fabs(v);
  std::size_t idx = 0;
  while (mag >= 1000.0 && idx + 1 < std::size(kPrefixes)) {
    mag /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  return format_double(v, precision) + " " + kPrefixes[idx] + unit;
}

}  // namespace sccft::util
