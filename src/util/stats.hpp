// Statistics collectors used by experiments and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sccft::util {

/// Streaming min/max/mean/stddev via Welford's algorithm. O(1) memory.
class StreamingStats final {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another collector into this one (parallel-reduction friendly).
  void merge(const StreamingStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; supports exact percentiles. Use for bounded-size runs
/// (e.g. 20 experiment repetitions, or per-frame latencies of one stream).
class SampleSet final {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Appends another set's samples (seed-order campaign folds pool per-run
  /// sets this way). Merging an empty side is a no-op; merging into an empty
  /// set copies.
  void merge(const SampleSet& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Exact percentile by linear interpolation, p in [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width human-readable rendering helpers.
[[nodiscard]] std::string format_double(double v, int precision = 2);
[[nodiscard]] std::string format_si(double v, const std::string& unit, int precision = 2);

}  // namespace sccft::util
