#include "util/huffman.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace sccft::util {

namespace {

/// Computes per-symbol code lengths with a standard Huffman heap, then
/// limits them to kMaxHuffmanBits with the classic bit-count adjustment
/// (shallower codes absorb the overflow while Kraft equality is preserved).
std::array<std::uint8_t, 256> compute_lengths(std::span<const std::uint64_t> freqs) {
  struct Node {
    std::uint64_t weight;
    int id;  // < 256: leaf symbol; >= 256: internal
  };
  struct Heavier {
    bool operator()(const Node& a, const Node& b) const {
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.id > b.id;  // deterministic tie-break
    }
  };

  std::vector<int> parent(512, -1);
  std::priority_queue<Node, std::vector<Node>, Heavier> heap;
  int active = 0;
  for (int s = 0; s < static_cast<int>(freqs.size()) && s < 256; ++s) {
    if (freqs[static_cast<std::size_t>(s)] > 0) {
      heap.push(Node{freqs[static_cast<std::size_t>(s)], s});
      ++active;
    }
  }
  SCCFT_EXPECTS(active >= 1);

  int next_internal = 256;
  while (heap.size() >= 2) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    const int id = next_internal++;
    SCCFT_ASSERT(id < 512);
    parent[static_cast<std::size_t>(a.id)] = id;
    parent[static_cast<std::size_t>(b.id)] = id;
    heap.push(Node{a.weight + b.weight, id});
  }

  std::array<std::uint8_t, 256> lengths{};
  std::array<std::uint8_t, 512> depth{};
  // Depths top-down: iterate ids in decreasing order (parents have larger
  // ids than children by construction).
  for (int id = next_internal - 1; id >= 0; --id) {
    const int p = parent[static_cast<std::size_t>(id)];
    if (p >= 0) {
      depth[static_cast<std::size_t>(id)] =
          static_cast<std::uint8_t>(depth[static_cast<std::size_t>(p)] + 1);
    }
    if (id < 256 && freqs[static_cast<std::size_t>(id)] > 0) {
      lengths[static_cast<std::size_t>(id)] =
          std::max<std::uint8_t>(depth[static_cast<std::size_t>(id)], 1);
    }
  }

  // Length-limit to kMaxHuffmanBits (JPEG Annex K.2 style adjustment on the
  // per-length histogram, then re-derive per-symbol lengths canonically).
  std::array<int, 64> bits{};
  for (int s = 0; s < 256; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) {
      ++bits[lengths[static_cast<std::size_t>(s)]];
    }
  }
  for (int i = 63; i > kMaxHuffmanBits; --i) {
    while (bits[i] > 0) {
      int j = i - 2;
      while (j > 0 && bits[j] == 0) --j;
      SCCFT_ASSERT(j > 0);
      bits[i] -= 2;
      bits[i - 1] += 1;
      bits[j + 1] += 2;
      bits[j] -= 1;
    }
  }
  // Re-assign lengths: symbols sorted by (original length, symbol id) get
  // the adjusted lengths in order.
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths[static_cast<std::size_t>(a)] != lengths[static_cast<std::size_t>(b)]) {
      return lengths[static_cast<std::size_t>(a)] < lengths[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  std::size_t at = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    for (int n = 0; n < bits[len]; ++n) {
      SCCFT_ASSERT(at < order.size());
      lengths[static_cast<std::size_t>(order[at++])] = static_cast<std::uint8_t>(len);
    }
  }
  SCCFT_ASSERT(at == order.size());
  return lengths;
}

}  // namespace

HuffmanTable HuffmanTable::build(std::span<const std::uint64_t> frequencies) {
  SCCFT_EXPECTS(frequencies.size() <= 256);
  const auto lengths = compute_lengths(frequencies);

  HuffmanTable table;
  // Canonical symbol order: by (length, symbol value).
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths[static_cast<std::size_t>(a)] != lengths[static_cast<std::size_t>(b)]) {
      return lengths[static_cast<std::size_t>(a)] < lengths[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  for (int s : order) {
    table.counts_[static_cast<std::size_t>(lengths[static_cast<std::size_t>(s)] - 1)]++;
    table.symbols_.push_back(static_cast<std::uint8_t>(s));
  }
  table.assign_canonical_codes();
  return table;
}

void HuffmanTable::assign_canonical_codes() {
  code_of_.fill(0);
  length_of_.fill(0);
  std::uint32_t code = 0;
  std::size_t index = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    first_code_[static_cast<std::size_t>(len)] = static_cast<std::int32_t>(code);
    first_index_[static_cast<std::size_t>(len)] = static_cast<std::int32_t>(index);
    for (int n = 0; n < counts_[static_cast<std::size_t>(len - 1)]; ++n) {
      const std::uint8_t symbol = symbols_[index];
      code_of_[symbol] = static_cast<std::uint16_t>(code);
      length_of_[symbol] = static_cast<std::uint8_t>(len);
      ++code;
      ++index;
    }
    code <<= 1;
  }
  SCCFT_ENSURES(index == symbols_.size());
}

HuffmanTable HuffmanTable::read_from(BitReader& reader) {
  HuffmanTable table;
  std::size_t total = 0;
  for (int len = 0; len < kMaxHuffmanBits; ++len) {
    table.counts_[static_cast<std::size_t>(len)] =
        static_cast<std::uint16_t>(reader.read_bits(16));
    total += table.counts_[static_cast<std::size_t>(len)];
  }
  SCCFT_EXPECTS(total >= 1 && total <= 256);
  table.symbols_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    table.symbols_.push_back(static_cast<std::uint8_t>(reader.read_bits(8)));
  }
  table.assign_canonical_codes();
  return table;
}

void HuffmanTable::write_to(BitWriter& writer) const {
  for (int len = 0; len < kMaxHuffmanBits; ++len) {
    writer.write_bits(counts_[static_cast<std::size_t>(len)], 16);
  }
  for (std::uint8_t symbol : symbols_) writer.write_bits(symbol, 8);
}

void HuffmanTable::encode(BitWriter& writer, int symbol) const {
  SCCFT_EXPECTS(symbol >= 0 && symbol < 256);
  SCCFT_EXPECTS(length_of_[static_cast<std::size_t>(symbol)] > 0);
  writer.write_bits(code_of_[static_cast<std::size_t>(symbol)],
                    length_of_[static_cast<std::size_t>(symbol)]);
}

int HuffmanTable::decode(BitReader& reader) const {
  std::int32_t code = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code << 1) | static_cast<std::int32_t>(reader.read_bits(1));
    const int count = counts_[static_cast<std::size_t>(len - 1)];
    if (count > 0) {
      const std::int32_t first = first_code_[static_cast<std::size_t>(len)];
      if (code - first < count) {
        return symbols_[static_cast<std::size_t>(
            first_index_[static_cast<std::size_t>(len)] + (code - first))];
      }
    }
  }
  SCCFT_ASSERT(false);  // corrupt bitstream
  return -1;
}

bool HuffmanTable::has_code(int symbol) const {
  return symbol >= 0 && symbol < 256 &&
         length_of_[static_cast<std::size_t>(symbol)] > 0;
}

int HuffmanTable::code_length(int symbol) const {
  SCCFT_EXPECTS(has_code(symbol));
  return length_of_[static_cast<std::size_t>(symbol)];
}

}  // namespace sccft::util
