// Deterministic pseudo-random number generation.
//
// Every experiment in this repository is seeded explicitly so that reruns are
// bit-identical. We implement xoshiro256** (Blackman & Vigna) rather than rely
// on `std::mt19937` so that the stream is stable across standard-library
// implementations, and SplitMix64 for seeding.
#pragma once

#include <array>
#include <cstdint>

namespace sccft::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 final {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, reproducible 64-bit PRNG.
///
/// Satisfies the C++ `UniformRandomBitGenerator` requirements so it can also
/// be plugged into <random> distributions if ever needed.
class Xoshiro256 final {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace sccft::util
