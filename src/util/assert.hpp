// Contract-checking macros used across the framework.
//
// Following the C++ Core Guidelines (I.6/I.8: prefer expressing preconditions
// and postconditions), every module states its contracts with these macros.
// Violations throw `sccft::util::ContractViolation` so that unit tests can
// assert on them (EXPECT_THROW) instead of aborting the whole test binary.
#pragma once

#include <stdexcept>
#include <string>

namespace sccft::util {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation final : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Invoked (if set) immediately before a ContractViolation is thrown — the
/// hook used by the trace layer's flight recorder to dump the event history
/// leading up to the failure. Must be noexcept and must not throw.
using ContractFailureHook = void (*)() noexcept;

inline ContractFailureHook& contract_failure_hook_slot() {
  static ContractFailureHook hook = nullptr;
  return hook;
}

inline void set_contract_failure_hook(ContractFailureHook hook) {
  contract_failure_hook_slot() = hook;
}

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  if (const auto hook = contract_failure_hook_slot(); hook != nullptr) hook();
  throw ContractViolation(std::string(kind) + " failed: `" + expr + "` at " +
                          file + ":" + std::to_string(line));
}

/// Like contract_failure, but with a caller-built detail string — for
/// contracts whose diagnosis needs runtime values (e.g. the simulator
/// reporting both the requested time and now() on a schedule into the past).
/// Fires the same flight-recorder hook before throwing.
[[noreturn]] inline void contract_failure_msg(const char* kind,
                                              const std::string& detail,
                                              const char* file, int line) {
  if (const auto hook = contract_failure_hook_slot(); hook != nullptr) hook();
  throw ContractViolation(std::string(kind) + " failed: " + detail + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace sccft::util

/// Precondition check: argument/state requirements at function entry.
#define SCCFT_EXPECTS(cond)                                                        \
  do {                                                                             \
    if (!(cond)) ::sccft::util::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition / invariant check.
#define SCCFT_ENSURES(cond)                                                        \
  do {                                                                             \
    if (!(cond)) ::sccft::util::contract_failure("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// General internal-consistency assertion.
#define SCCFT_ASSERT(cond)                                                         \
  do {                                                                             \
    if (!(cond)) ::sccft::util::contract_failure("assertion", #cond, __FILE__, __LINE__); \
  } while (false)
