#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace sccft::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  SCCFT_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span);
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Xoshiro256::uniform01() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  SCCFT_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double Xoshiro256::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Xoshiro256::normal(double mean, double stddev) {
  SCCFT_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Xoshiro256::chance(double p) {
  SCCFT_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

}  // namespace sccft::util
