// Canonical Huffman coding (JPEG-style).
//
// Builds length-limited canonical Huffman codes from symbol frequencies and
// encodes/decodes symbols through BitWriter/BitReader. The table serializes
// in the JPEG DHT layout: 16 counts (codes of length 1..16) followed by the
// symbols in canonical order — compact and self-describing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bitio.hpp"

namespace sccft::util {

inline constexpr int kMaxHuffmanBits = 16;

class HuffmanTable final {
 public:
  /// Builds a canonical, length-limited code for all symbols with non-zero
  /// frequency. `frequencies[s]` is the weight of symbol s. At least one
  /// symbol must have non-zero frequency.
  [[nodiscard]] static HuffmanTable build(std::span<const std::uint64_t> frequencies);

  /// Deserializes a table from the JPEG DHT layout via `reader`.
  [[nodiscard]] static HuffmanTable read_from(BitReader& reader);

  /// Serializes in the DHT-style layout: 16x u16 counts (u16 rather than
  /// JPEG's u8 so a full 256-symbol alphabet of uniform depth is legal),
  /// then the symbols (u8 each).
  void write_to(BitWriter& writer) const;

  /// Encodes `symbol` (must have been assigned a code).
  void encode(BitWriter& writer, int symbol) const;

  /// Decodes one symbol.
  [[nodiscard]] int decode(BitReader& reader) const;

  [[nodiscard]] bool has_code(int symbol) const;
  [[nodiscard]] int code_length(int symbol) const;
  [[nodiscard]] std::size_t symbol_count() const { return symbols_.size(); }

 private:
  void assign_canonical_codes();

  std::array<std::uint16_t, kMaxHuffmanBits> counts_{};  // # codes of length i+1
  std::vector<std::uint8_t> symbols_;                   // canonical order
  // Encoder view: per symbol (0..255) code and length (0 = no code).
  std::array<std::uint16_t, 256> code_of_{};
  std::array<std::uint8_t, 256> length_of_{};
  // Decoder view: first code value and first symbol index per length.
  std::array<std::int32_t, kMaxHuffmanBits + 1> first_code_{};
  std::array<std::int32_t, kMaxHuffmanBits + 1> first_index_{};
};

}  // namespace sccft::util
