#include "util/vcd.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace sccft::util {

namespace {

/// VCD identifiers are short printable-ASCII strings; generate base-94 codes.
std::string make_id(int index) {
  std::string id;
  int value = index;
  do {
    id.push_back(static_cast<char>('!' + value % 94));
    value /= 94;
  } while (value > 0);
  return id;
}

std::string to_binary(std::uint64_t value, int width) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (int b = 0; b < width; ++b) {
    if ((value >> b) & 1ULL) bits[static_cast<std::size_t>(width - 1 - b)] = '1';
  }
  return bits;
}

}  // namespace

VcdWriter::VcdWriter(std::string scope) : scope_(std::move(scope)) {}

int VcdWriter::add_signal(const std::string& name, int width) {
  SCCFT_EXPECTS(width >= 1 && width <= 64);
  SCCFT_EXPECTS(!name.empty());
  const int handle = static_cast<int>(signals_.size());
  signals_.push_back(Signal{name, width, make_id(handle)});
  return handle;
}

void VcdWriter::change(std::int64_t t_ns, int signal, std::uint64_t value) {
  SCCFT_EXPECTS(t_ns >= 0);
  SCCFT_EXPECTS(signal >= 0 && signal < static_cast<int>(signals_.size()));
  changes_.push_back(
      Change{t_ns, signal, value, static_cast<std::uint64_t>(changes_.size())});
}

std::string VcdWriter::render() const {
  std::ostringstream os;
  os << "$timescale 1ns $end\n";
  os << "$scope module " << scope_ << " $end\n";
  for (const auto& signal : signals_) {
    os << "$var wire " << signal.width << " " << signal.id << " " << signal.name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<Change> sorted = changes_;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Change& a, const Change& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });

  std::int64_t current_time = -1;
  for (const auto& change : sorted) {
    if (change.time != current_time) {
      os << "#" << change.time << "\n";
      current_time = change.time;
    }
    const auto& signal = signals_[static_cast<std::size_t>(change.signal)];
    if (signal.width == 1) {
      os << (change.value ? '1' : '0') << signal.id << "\n";
    } else {
      os << "b" << to_binary(change.value, signal.width) << " " << signal.id << "\n";
    }
  }
  return os.str();
}

bool VcdWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace sccft::util
