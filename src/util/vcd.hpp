// Minimal VCD (Value Change Dump, IEEE 1364) writer.
//
// The experiments can dump channel fill levels, space counters, and fault
// flags as waveforms viewable in GTKWave & friends — the natural debugging
// format for an EDA-flavoured simulator. Only the features needed here are
// implemented: scalar integer signals in one scope, nanosecond timescale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sccft::util {

class VcdWriter final {
 public:
  /// `scope` names the VCD module scope; timescale is fixed at 1 ns.
  explicit VcdWriter(std::string scope = "sccft");

  /// Registers a signal of `width` bits (1..64); returns its handle.
  [[nodiscard]] int add_signal(const std::string& name, int width);

  /// Records a value change at time `t_ns` (monotone non-decreasing per
  /// call order is not required; changes are sorted on render).
  void change(std::int64_t t_ns, int signal, std::uint64_t value);

  /// Renders the complete VCD document.
  [[nodiscard]] std::string render() const;

  /// Writes the document to `path` (returns false on I/O failure).
  bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t change_count() const { return changes_.size(); }

 private:
  struct Signal {
    std::string name;
    int width = 1;
    std::string id;  // VCD short identifier
  };
  struct Change {
    std::int64_t time;
    int signal;
    std::uint64_t value;
    std::uint64_t seq;  // stable sort tiebreak
  };

  std::string scope_;
  std::vector<Signal> signals_;
  std::vector<Change> changes_;
};

}  // namespace sccft::util
