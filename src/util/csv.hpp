// Tiny CSV writer for experiment time-series and sweep outputs.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace sccft::util {

class CsvWriter final {
 public:
  explicit CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
    SCCFT_EXPECTS(!header_.empty());
  }

  void add_row(std::vector<std::string> row) {
    SCCFT_EXPECTS(row.size() == header_.size());
    rows_.push_back(std::move(row));
  }

  /// Adds a `# ...` comment line emitted before the column header — used to
  /// record run provenance (e.g. the RNG seeds) inside the file itself.
  /// Embedded newlines would escape the `# ` framing and corrupt the header
  /// block, so control characters are stored escaped (`\n`, `\r`).
  void add_comment(std::string comment) {
    std::string safe;
    safe.reserve(comment.size());
    for (const char c : comment) {
      if (c == '\n') {
        safe += "\\n";
      } else if (c == '\r') {
        safe += "\\r";
      } else {
        safe += c;
      }
    }
    comments_.push_back(std::move(safe));
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  [[nodiscard]] std::string render() const {
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) os << ',';
        // Quote cells containing separators/quotes (RFC 4180).
        const std::string& cell = cells[i];
        if (cell.find_first_of(",\"\n") != std::string::npos) {
          os << '"';
          for (char c : cell) {
            if (c == '"') os << '"';
            os << c;
          }
          os << '"';
        } else {
          os << cell;
        }
      }
      os << '\n';
    };
    for (const auto& comment : comments_) os << "# " << comment << '\n';
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return os.str();
  }

  bool write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << render();
    return static_cast<bool>(out);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::string> comments_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sccft::util
