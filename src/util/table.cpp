#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace sccft::util {

void Table::set_header(std::vector<std::string> header) {
  SCCFT_EXPECTS(!header.empty());
  header_ = std::move(header);
}

void Table::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> row) {
  SCCFT_EXPECTS(!header_.empty());
  SCCFT_EXPECTS(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(Row{false, std::move(row)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

namespace {

std::string pad(const std::string& s, std::size_t width, Align align) {
  if (s.size() >= width) return s;
  const std::size_t total = width - s.size();
  switch (align) {
    case Align::kLeft:
      return s + std::string(total, ' ');
    case Align::kRight:
      return std::string(total, ' ') + s;
    case Align::kCenter: {
      const std::size_t left = total / 2;
      return std::string(left, ' ') + s + std::string(total - left, ' ');
    }
  }
  return s;
}

}  // namespace

std::string Table::render() const {
  SCCFT_EXPECTS(!header_.empty());
  const std::size_t cols = header_.size();

  std::vector<std::size_t> width(cols);
  for (std::size_t c = 0; c < cols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < cols; ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto align_of = [&](std::size_t c) {
    if (c < alignment_.size()) return alignment_[c];
    return c == 0 ? Align::kLeft : Align::kRight;
  };

  auto hline = [&] {
    std::string line = "+";
    for (std::size_t c = 0; c < cols; ++c) {
      line += std::string(width[c] + 2, '-') + "+";
    }
    return line + "\n";
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << hline();
  os << "|";
  for (std::size_t c = 0; c < cols; ++c) {
    os << ' ' << pad(header_[c], width[c], Align::kCenter) << " |";
  }
  os << "\n" << hline();
  for (const auto& row : rows_) {
    if (row.separator) {
      os << hline();
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < cols; ++c) {
      os << ' ' << pad(row.cells[c], width[c], align_of(c)) << " |";
    }
    os << "\n";
  }
  os << hline();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

}  // namespace sccft::util
