// Deterministic fan-out for embarrassingly parallel campaign workloads.
//
// parallel_for_ordered runs fn(0..n-1) on a fixed-size worker pool. Workers
// pull indices from a shared counter, so completion order is nondeterministic
// — determinism is the *caller's* obligation and the API is shaped to make it
// easy to honor: every task writes only into its own index-addressed slot,
// and the caller folds the slots in index order after join. With jobs <= 1
// the loop degenerates to the exact serial path (no threads, no pool), so a
// `--jobs 1` run is byte-identical to the pre-parallel code by construction.
//
// Exceptions: if tasks throw, the exception thrown by the *lowest index* is
// rethrown after all workers join (again: reproducible at any job count).
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace sccft::util {

/// Default worker count for `--jobs`: the hardware concurrency, at least 1.
[[nodiscard]] inline int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Runs fn(i) for every i in [0, n) on min(jobs, n) threads (serially, on the
/// calling thread, when jobs <= 1). Blocks until all tasks finish.
inline void parallel_for_ordered(int n, int jobs, const std::function<void(int)>& fn) {
  SCCFT_EXPECTS(n >= 0);
  SCCFT_EXPECTS(fn != nullptr);
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;   // from the lowest-index failing task
  int first_error_index = n;

  auto worker = [&] {
    for (int i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  const int workers = std::min(jobs, n);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sccft::util
