#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace sccft::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes whole lines to stderr so concurrent campaign workers can't
// interleave mid-line.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

thread_local ScopedLogCapture* t_capture = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (level < g_level.load()) return;
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  line += '\n';
  if (t_capture != nullptr) {
    t_capture->buffer_ += line;
    return;
  }
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << line;
}

ScopedLogCapture::ScopedLogCapture() : previous_(t_capture) { t_capture = this; }

ScopedLogCapture::~ScopedLogCapture() { t_capture = previous_; }

std::string ScopedLogCapture::take() {
  std::string out;
  out.swap(buffer_);
  return out;
}

void flush_captured(const std::string& text) {
  if (text.empty()) return;
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << text;
}

}  // namespace sccft::util
