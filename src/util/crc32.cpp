#include "util/crc32.hpp"

#include <array>

namespace sccft::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace sccft::util
