#include "util/crc32.hpp"

#include <array>

namespace sccft::util {

namespace {

// Slice-by-8: table[0] is the classic byte-at-a-time CRC-32 table; table[k]
// advances a byte through k additional zero bytes. Eight input bytes then
// fold into the CRC with eight independent lookups per iteration instead of
// eight serial ones — the values produced are bit-identical to the byte-wise
// algorithm (it is the same polynomial division, just reassociated).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFU] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  while (len >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables[7][lo & 0xFFU] ^ kTables[6][(lo >> 8) & 0xFFU] ^
          kTables[5][(lo >> 16) & 0xFFU] ^ kTables[4][lo >> 24] ^
          kTables[3][p[4]] ^ kTables[2][p[5]] ^ kTables[1][p[6]] ^ kTables[0][p[7]];
    p += 8;
    len -= 8;
  }
  for (; len > 0; ++p, --len) {
    crc = kTables[0][(crc ^ *p) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace sccft::util
