// CRC-32 (ISO-HDLC / zlib polynomial) for token payload integrity checks.
//
// The fault-tolerance experiments verify Theorem 2's *functional* equivalence
// by comparing output streams; tokens carry a payload checksum so mismatches
// are detected in O(1) space per token.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sccft::util {

/// CRC-32 of `data`, with optional chaining through `seed` (pass a previous
/// result to continue a running checksum).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);

}  // namespace sccft::util
