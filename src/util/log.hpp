// Minimal leveled logger. Experiments default to kWarn so bench output stays
// clean; tests can raise verbosity per-case.
#pragma once

#include <sstream>
#include <string>

namespace sccft::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line if `level` passes the threshold. Thread-safe: lines from
/// concurrent campaign workers never interleave mid-line. If the calling
/// thread holds a ScopedLogCapture the line is buffered there instead of
/// going to stderr, so parallel campaigns can flush per-run logs in seed
/// order.
void log_line(LogLevel level, const std::string& component, const std::string& message);

/// RAII capture of this thread's log lines. While alive, log_line appends to
/// an in-memory buffer instead of stderr; the owner decides when (and in
/// which order) the buffered text reaches the real sink — the campaign
/// executor flushes one capture per run, in seed order. Captures nest per
/// thread (inner capture shadows the outer until destroyed).
class ScopedLogCapture final {
 public:
  ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;
  ~ScopedLogCapture();

  /// The lines captured so far, concatenated (each ends in '\n').
  [[nodiscard]] std::string take();

 private:
  std::string buffer_;
  ScopedLogCapture* previous_ = nullptr;
  friend void log_line(LogLevel, const std::string&, const std::string&);
};

/// Writes previously captured log text to stderr, atomically with respect to
/// concurrent log_line calls.
void flush_captured(const std::string& text);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void logf(LogLevel level, const std::string& component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, component, os.str());
}

}  // namespace sccft::util
