// Minimal leveled logger. Experiments default to kWarn so bench output stays
// clean; tests can raise verbosity per-case.
#pragma once

#include <sstream>
#include <string>

namespace sccft::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void logf(LogLevel level, const std::string& component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, component, os.str());
}

}  // namespace sccft::util
