// ASCII table renderer for the benchmark harnesses.
//
// The DAC'14 paper reports its evaluation as tables (Tables 1-3); every bench
// binary in bench/ regenerates its table through this renderer so the output
// is directly comparable with the paper.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace sccft::util {

enum class Align { kLeft, kRight, kCenter };

/// Simple column-aligned ASCII table with a title, header row, optional
/// separator rows, and per-column alignment.
class Table final {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; the number of header cells fixes the column count.
  void set_header(std::vector<std::string> header);

  /// Per-column alignment; defaults to left for col 0, right otherwise.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a data row. Must match the header's column count (short rows are
  /// padded with empty cells).
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

}  // namespace sccft::util
