#include "util/bitio.hpp"

#include "util/assert.hpp"

namespace sccft::util {

void BitWriter::write_bits(std::uint32_t value, int bits) {
  SCCFT_EXPECTS(bits >= 0 && bits <= 32);
  if (bits == 0) return;
  if (bits < 32) value &= (1U << bits) - 1U;
  bit_count_ += static_cast<std::size_t>(bits);
  for (int i = bits - 1; i >= 0; --i) {
    const std::uint32_t bit = (value >> i) & 1U;
    acc_ = (acc_ << 1) | bit;
    if (++acc_bits_ == 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      acc_bits_ = 0;
    }
  }
}

void BitWriter::write_ue(std::uint32_t value) {
  // codeNum = value; write (leadingZeroBits) zeros, then (value+1) in
  // (leadingZeroBits + 1) bits.
  const std::uint64_t code = static_cast<std::uint64_t>(value) + 1;
  int len = 0;
  while ((code >> len) > 1) ++len;  // floor(log2(code))
  write_bits(0, len);
  // code has (len + 1) significant bits; top bit is 1.
  write_bits(static_cast<std::uint32_t>(code), len + 1);
}

void BitWriter::write_se(std::int32_t value) {
  // Mapping per H.264 9.1.1: v>0 -> 2v-1, v<=0 -> -2v.
  const std::uint32_t mapped =
      value > 0 ? static_cast<std::uint32_t>(2 * static_cast<std::int64_t>(value) - 1)
                : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(value));
  write_ue(mapped);
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_ << (8 - acc_bits_)));
    acc_ = 0;
    acc_bits_ = 0;
  }
  return std::move(bytes_);
}

std::uint32_t BitReader::read_bits(int bits) {
  SCCFT_EXPECTS(bits >= 0 && bits <= 32);
  SCCFT_EXPECTS(pos_ + static_cast<std::size_t>(bits) <= data_.size() * 8);
  std::uint32_t result = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ >> 3;
    const int offset = 7 - static_cast<int>(pos_ & 7);
    result = (result << 1) | ((data_[byte] >> offset) & 1U);
    ++pos_;
  }
  return result;
}

std::uint32_t BitReader::read_ue() {
  int zeros = 0;
  while (!read_bit()) {
    ++zeros;
    SCCFT_ASSERT(zeros <= 32);
  }
  std::uint32_t suffix = zeros > 0 ? read_bits(zeros) : 0;
  return ((1U << zeros) - 1U) + suffix;
}

std::int32_t BitReader::read_se() {
  const std::uint32_t mapped = read_ue();
  const auto half = static_cast<std::int64_t>((mapped + 1) / 2);
  return static_cast<std::int32_t>((mapped & 1U) ? half : -half);
}

}  // namespace sccft::util
