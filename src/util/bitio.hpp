// Bit-level I/O used by the application codecs (MJPEG Huffman coding,
// H.264-style Exp-Golomb coding).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sccft::util {

/// MSB-first bit writer into a growable byte vector.
class BitWriter final {
 public:
  /// Writes the lowest `bits` bits of `value`, most-significant bit first.
  /// Requires 0 <= bits <= 32.
  void write_bits(std::uint32_t value, int bits);

  /// Writes a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1U : 0U, 1); }

  /// Writes an unsigned Exp-Golomb code (H.264 ue(v)).
  void write_ue(std::uint32_t value);

  /// Writes a signed Exp-Golomb code (H.264 se(v)).
  void write_se(std::int32_t value);

  /// Pads the current byte with zero bits and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t acc_ = 0;   // bits accumulated, aligned to MSB side of a byte
  int acc_bits_ = 0;        // number of valid bits in acc_ (0..7)
  std::size_t bit_count_ = 0;
};

/// MSB-first bit reader over a byte span. The span must outlive the reader.
class BitReader final {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Reads `bits` bits (0..32), MSB first. Throws ContractViolation past end.
  [[nodiscard]] std::uint32_t read_bits(int bits);

  [[nodiscard]] bool read_bit() { return read_bits(1) != 0; }

  /// Reads an unsigned Exp-Golomb code.
  [[nodiscard]] std::uint32_t read_ue();

  /// Reads a signed Exp-Golomb code.
  [[nodiscard]] std::int32_t read_se();

  [[nodiscard]] std::size_t bits_consumed() const { return pos_; }
  [[nodiscard]] std::size_t bits_remaining() const {
    return data_.size() * 8 - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;  // bit position
};

}  // namespace sccft::util
