#include "chaos/artifact.hpp"

#include <sstream>
#include <stdexcept>

#include "ft/fault_plan.hpp"
#include "util/assert.hpp"

namespace sccft::chaos {
namespace {

[[noreturn]] void malformed(const char* what) {
  util::contract_failure("precondition", what, __FILE__, __LINE__);
}

std::uint64_t parse_u64(const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) malformed("artifact number has trailing garbage");
    return value;
  } catch (const std::logic_error&) {
    malformed("artifact field is not a number");
  }
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Consumes lines up to (excluding) the exact terminator line; advances `i`
/// past the terminator. Throws if the terminator never arrives.
std::string take_section(const std::vector<std::string>& lines, std::size_t& i,
                         const std::string& terminator) {
  std::string body;
  while (i < lines.size()) {
    if (lines[i] == terminator) {
      ++i;
      return body;
    }
    body += lines[i];
    body += '\n';
    ++i;
  }
  malformed("artifact section is truncated");
}

std::vector<ft::FaultSpec> parse_plan_section(const std::vector<std::string>& lines,
                                              std::size_t& i,
                                              const std::string& terminator) {
  return ft::parse_fault_plan(take_section(lines, i, terminator));
}

}  // namespace

FailureArtifact make_artifact(const StormPlan& plan, const RunOptions& options,
                              const RunObservation& obs,
                              std::vector<Violation> violations) {
  SCCFT_EXPECTS(!violations.empty());
  FailureArtifact artifact;
  artifact.seed = plan.seed;
  artifact.run_length = plan.run_length;
  artifact.planted = options.planted;
  artifact.control_plane = options.control_plane;
  artifact.reconfig = options.reconfig;
  artifact.violations = std::move(violations);
  artifact.plan = plan.faults;
  artifact.flight_csv = obs.render_flight_csv();
  artifact.registry_csv = obs.metrics.render_csv();
  return artifact;
}

std::string serialize(const FailureArtifact& artifact) {
  std::ostringstream out;
  out << "sccft-chaos-artifact v1\n";
  out << "seed " << artifact.seed << '\n';
  out << "run-length-ns " << artifact.run_length << '\n';
  out << "planted " << to_string(artifact.planted) << '\n';
  out << "control-plane " << (artifact.control_plane.enabled ? 1 : 0) << ' '
      << (artifact.control_plane.watchdog ? 1 : 0) << ' '
      << (artifact.control_plane.scrubber ? 1 : 0) << ' '
      << artifact.control_plane.heartbeat_period << ' '
      << artifact.control_plane.watchdog_deadline << ' '
      << artifact.control_plane.scrub_period << '\n';
  out << "reconfigure " << (artifact.reconfig.enabled ? 1 : 0) << ' '
      << artifact.reconfig.period << ' ' << artifact.reconfig.quiesce_window
      << ' ' << artifact.reconfig.grow << '\n';
  for (const Violation& violation : artifact.violations) {
    out << "violation " << to_string(violation.code) << ' ' << violation.detail
        << '\n';
  }
  out << "plan-begin\n" << ft::serialize(artifact.plan) << "plan-end\n";
  if (artifact.shrunk) {
    out << "shrunk-begin\n" << ft::serialize(*artifact.shrunk) << "shrunk-end\n";
  }
  out << "flight-begin\n" << artifact.flight_csv;
  if (!artifact.flight_csv.empty() && artifact.flight_csv.back() != '\n') out << '\n';
  out << "flight-end\n";
  out << "registry-begin\n" << artifact.registry_csv;
  if (!artifact.registry_csv.empty() && artifact.registry_csv.back() != '\n') {
    out << '\n';
  }
  out << "registry-end\n";
  return out.str();
}

FailureArtifact parse_artifact(const std::string& text) {
  const std::vector<std::string> lines = split_lines(text);
  std::size_t i = 0;
  if (i >= lines.size() || lines[i] != "sccft-chaos-artifact v1") {
    malformed("artifact header missing or wrong version");
  }
  ++i;

  FailureArtifact artifact;
  bool seen_seed = false;
  bool seen_run_length = false;
  bool seen_plan = false;
  while (i < lines.size()) {
    const std::string& line = lines[i];
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key.empty()) {  // blank separator lines are tolerated between sections
      ++i;
      continue;
    }
    if (key == "seed") {
      std::string value;
      fields >> value;
      artifact.seed = parse_u64(value);
      seen_seed = true;
      ++i;
    } else if (key == "run-length-ns") {
      std::string value;
      fields >> value;
      artifact.run_length = static_cast<rtc::TimeNs>(parse_u64(value));
      seen_run_length = true;
      ++i;
    } else if (key == "planted") {
      std::string tag;
      fields >> tag;
      artifact.planted = planted_bug_from_text(tag);
      ++i;
    } else if (key == "control-plane") {
      std::string enabled, watchdog, scrubber, heartbeat, deadline, scrub;
      fields >> enabled >> watchdog >> scrubber >> heartbeat >> deadline >> scrub;
      const auto parse_bool = [](const std::string& token) {
        if (token == "1") return true;
        if (token == "0") return false;
        malformed("control-plane flag must be 0 or 1");
      };
      artifact.control_plane.enabled = parse_bool(enabled);
      artifact.control_plane.watchdog = parse_bool(watchdog);
      artifact.control_plane.scrubber = parse_bool(scrubber);
      artifact.control_plane.heartbeat_period =
          static_cast<rtc::TimeNs>(parse_u64(heartbeat));
      artifact.control_plane.watchdog_deadline =
          static_cast<rtc::TimeNs>(parse_u64(deadline));
      artifact.control_plane.scrub_period =
          static_cast<rtc::TimeNs>(parse_u64(scrub));
      ++i;
    } else if (key == "reconfigure") {
      std::string enabled, period, quiesce, grow;
      fields >> enabled >> period >> quiesce >> grow;
      if (enabled != "0" && enabled != "1") {
        malformed("reconfigure flag must be 0 or 1");
      }
      artifact.reconfig.enabled = enabled == "1";
      artifact.reconfig.period = static_cast<rtc::TimeNs>(parse_u64(period));
      artifact.reconfig.quiesce_window =
          static_cast<rtc::TimeNs>(parse_u64(quiesce));
      artifact.reconfig.grow = static_cast<rtc::Tokens>(parse_u64(grow));
      ++i;
    } else if (key == "violation") {
      std::string tag;
      fields >> tag;
      Violation violation;
      violation.code = violation_code_from_text(tag);
      std::getline(fields, violation.detail);
      if (!violation.detail.empty() && violation.detail.front() == ' ') {
        violation.detail.erase(0, 1);
      }
      artifact.violations.push_back(std::move(violation));
      ++i;
    } else if (line == "plan-begin") {
      ++i;
      artifact.plan = parse_plan_section(lines, i, "plan-end");
      seen_plan = true;
    } else if (line == "shrunk-begin") {
      ++i;
      artifact.shrunk = parse_plan_section(lines, i, "shrunk-end");
    } else if (line == "flight-begin") {
      ++i;
      artifact.flight_csv = take_section(lines, i, "flight-end");
    } else if (line == "registry-begin") {
      ++i;
      artifact.registry_csv = take_section(lines, i, "registry-end");
    } else {
      malformed("artifact contains an unknown directive");
    }
  }
  if (!seen_seed) malformed("artifact is missing its seed");
  if (!seen_run_length) malformed("artifact is missing its run length");
  if (!seen_plan) malformed("artifact is missing its fault plan");
  if (artifact.violations.empty()) malformed("artifact records no violations");
  if (artifact.run_length <= 0) malformed("artifact run length must be positive");
  return artifact;
}

}  // namespace sccft::chaos
