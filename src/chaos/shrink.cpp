#include "chaos/shrink.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace sccft::chaos {
namespace {

/// Splits `faults` into `n` contiguous chunks of near-equal size.
std::vector<std::vector<ft::FaultSpec>> chunked(
    const std::vector<ft::FaultSpec>& faults, int n) {
  std::vector<std::vector<ft::FaultSpec>> chunks;
  const std::size_t size = faults.size();
  std::size_t start = 0;
  for (int c = 0; c < n; ++c) {
    const std::size_t end = size * static_cast<std::size_t>(c + 1) /
                            static_cast<std::size_t>(n);
    chunks.emplace_back(faults.begin() + static_cast<std::ptrdiff_t>(start),
                        faults.begin() + static_cast<std::ptrdiff_t>(end));
    start = end;
  }
  return chunks;
}

std::vector<ft::FaultSpec> complement_of(
    const std::vector<std::vector<ft::FaultSpec>>& chunks, std::size_t skip) {
  std::vector<ft::FaultSpec> rest;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (c == skip) continue;
    rest.insert(rest.end(), chunks[c].begin(), chunks[c].end());
  }
  return rest;
}

}  // namespace

ShrinkResult shrink_plan(const StormPlan& plan, const RunOptions& options,
                         const std::vector<Violation>& original) {
  SCCFT_EXPECTS(!original.empty());

  std::set<ViolationCode> wanted;
  for (const Violation& violation : original) wanted.insert(violation.code);

  const RunObservation golden =
      run_golden(plan.seed, plan.run_length, options.reconfig);

  ShrinkResult result;
  // Probes a candidate fault list; on reproduction returns true and leaves
  // the reproduced violations in `last_violations`.
  std::vector<Violation> last_violations;
  auto reproduces = [&](const std::vector<ft::FaultSpec>& faults) {
    StormPlan candidate = plan;
    candidate.faults = faults;
    ++result.probes;
    const RunObservation obs = run_storm(candidate, options);
    std::vector<Violation> found = check_invariants(candidate, obs, golden);
    const bool hit = std::any_of(found.begin(), found.end(), [&](const Violation& v) {
      return wanted.count(v.code) > 0;
    });
    if (hit) last_violations = std::move(found);
    return hit;
  };

  // A fault-independent failure shrinks all the way to the empty plan.
  if (reproduces({})) {
    result.violations = std::move(last_violations);
    return result;
  }

  std::vector<ft::FaultSpec> current = plan.faults;
  int n = 2;
  while (static_cast<int>(current.size()) >= 2) {
    const auto chunks = chunked(current, std::min<int>(n, static_cast<int>(current.size())));
    bool reduced = false;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (reproduces(chunks[c])) {  // reduce to subset
        current = chunks[c];
        n = 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      for (std::size_t c = 0; c < chunks.size() && chunks.size() > 2; ++c) {
        if (reproduces(complement_of(chunks, c))) {  // reduce to complement
          current = complement_of(chunks, c);
          n = std::max(n - 1, 2);
          reduced = true;
          break;
        }
      }
    }
    if (!reduced) {
      if (n >= static_cast<int>(current.size())) break;  // 1-minimal
      n = std::min(2 * n, static_cast<int>(current.size()));
    }
  }

  result.faults = std::move(current);
  // Re-derive the minimal plan's verdicts (the last probe may have been a
  // failed complement, so last_violations can be stale).
  if (!reproduces(result.faults)) {
    // The full plan itself is the only reproducer at this granularity; the
    // probe above re-ran it, so reproduction is guaranteed by determinism.
    util::contract_failure("assertion", "minimal plan must still reproduce",
                           __FILE__, __LINE__);
  }
  result.violations = std::move(last_violations);
  return result;
}

}  // namespace sccft::chaos
