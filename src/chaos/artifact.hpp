// Failure artifact bundle: everything needed to reproduce and diagnose one
// invariant violation, in one line-oriented text file.
//
// When the soak driver hits its first violating run, it serializes the seed,
// the full fault plan, the oracle verdicts, the flight-recorder dump, and the
// metrics-registry snapshot into an artifact. `chaos_soak --replay <file>`
// re-executes the plan byte-for-byte (RepTFD-style deterministic replay), and
// the ddmin shrinker appends the minimal reproducer plan it finds.
//
// Format (version tag first, parse rejects anything else):
//
//   sccft-chaos-artifact v1
//   seed <u64>
//   run-length-ns <i64>
//   planted <planted-bug-tag>
//   control-plane <enabled:0|1> <watchdog:0|1> <scrubber:0|1>
//                 <heartbeat_ns> <deadline_ns> <scrub_ns>
//                                               (optional; legacy artifacts
//                                                omit it = defenses off)
//   reconfigure <enabled:0|1> <period_ns> <quiesce_ns> <grow>
//                                               (optional; legacy artifacts
//                                                omit it = no resize windows)
//   violation <code-tag> <free-text detail>     (repeated, >= 1)
//   plan-begin
//   fault ...                                   (ft/fault_plan.hpp lines)
//   plan-end
//   shrunk-begin                                (optional section)
//   fault ...
//   shrunk-end
//   flight-begin
//   <flight-recorder CSV>
//   flight-end
//   registry-begin
//   <metrics-registry CSV>
//   registry-end
//
// parse_artifact throws util::ContractViolation on malformed input (missing
// header, unknown section, truncated section, bad numbers) — the same
// contract discipline as ft::parse_fault_plan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/oracle.hpp"
#include "chaos/runner.hpp"
#include "chaos/storm.hpp"

namespace sccft::chaos {

struct FailureArtifact {
  std::uint64_t seed = 0;
  rtc::TimeNs run_length = 0;
  PlantedBug planted = PlantedBug::kNone;
  /// Defense configuration of the failing run, replayed verbatim.
  ControlPlaneOptions control_plane;
  /// Live-resize window cadence of the failing run, replayed verbatim.
  ReconfigOptions reconfig;
  std::vector<Violation> violations;
  std::vector<ft::FaultSpec> plan;
  /// Minimal reproducer, present once the shrinker has run.
  std::optional<std::vector<ft::FaultSpec>> shrunk;
  std::string flight_csv;
  std::string registry_csv;
};

/// Bundles a violating run into an artifact (shrunk plan left empty; attach
/// it after running shrink_plan).
[[nodiscard]] FailureArtifact make_artifact(const StormPlan& plan,
                                            const RunOptions& options,
                                            const RunObservation& obs,
                                            std::vector<Violation> violations);

[[nodiscard]] std::string serialize(const FailureArtifact& artifact);
/// Parses a serialize() artifact; throws util::ContractViolation on
/// malformed input.
[[nodiscard]] FailureArtifact parse_artifact(const std::string& text);

}  // namespace sccft::chaos
