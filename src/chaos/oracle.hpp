// Invariant oracles: the chaos soak's judgment layer.
//
// After every storm the oracles re-derive, from the RunObservation alone,
// whether the run respected the framework's proven properties. Each check is
// deliberately phrased against a DIFFERENT view of the run than the
// mechanism it audits (the consumed stream audits the selector, the
// transition log audits the supervisor, the metrics registry audits the
// trace spine), so a bug cannot hide by corrupting its own bookkeeping.
//
//   * Ordering / duplicate-freedom   — the consumed sequence numbers must be
//     strictly increasing (selector no-duplicate + in-order, uncondition-
//     ally: not even a NoC storm may reorder or re-deliver).
//   * Output equivalence (Theorem 2) — every delivered token must carry the
//     byte-identical payload fingerprint the fault-free golden run delivered
//     for that sequence number, and no token may fail its CRC.
//   * Conviction evidence (Lemma 1)  — a replica may only be convicted if a
//     fault was actually injected against it before the conviction (any NoC
//     fault in the plan excuses convictions wholesale: mesh loss starves
//     innocent cores by design).
//   * Supervisor legality            — only the documented health-machine
//     edges, in nondecreasing time, within the restart budget.
//   * Spine consistency              — the flight recorder's lifetime event
//     count must equal the CounterSink totals, and the supervisor's restart/
//     fault counters must equal the transition log.
//   * No-loss + liveness             — ONLY for lossless plans (see
//     chaos/storm.hpp): no sequence gap, and the stream still delivering at
//     the end of the run. Cross-replica and NoC storms can create genuine,
//     designed gaps, so these two checks are gated on the guarantee's
//     precondition.
//   * Supervisor liveness (heartbeat) — ONLY for control-plane runs with a
//     heartbeat configured: the beacon must still be firing near the end of
//     the run (a hung supervisor that nothing reset goes silent forever),
//     and the observed beacon count must match the supervisor's own counter
//     (audited views again: bus observer vs. metrics registry).
#pragma once

#include <string>
#include <vector>

#include "chaos/runner.hpp"
#include "chaos/storm.hpp"

namespace sccft::chaos {

enum class ViolationCode {
  kContractViolation,    ///< run died on SCCFT_EXPECTS/ENSURES/ASSERT
  kDuplicateDelivery,    ///< consumed seq repeated or regressed
  kCorruptDelivery,      ///< consumed token failed its CRC
  kGoldenMismatch,       ///< payload differs from the fault-free run
  kUnjustifiedConviction,///< replica convicted with no fault against it
  kIllegalTransition,    ///< health edge outside the documented machine
  kBudgetExceeded,       ///< more restarts than the configured budget
  kSpineInconsistent,    ///< flight recorder / metrics registry disagree
  kSequenceGap,          ///< lossless plan lost a token
  kStalledStream,        ///< lossless plan stopped delivering
  kSilentSupervisor,     ///< heartbeat beacon stopped (control-plane runs)
};

[[nodiscard]] const char* to_string(ViolationCode code);
/// Parses a to_string(ViolationCode) tag; throws util::ContractViolation on
/// an unknown tag.
[[nodiscard]] ViolationCode violation_code_from_text(const std::string& tag);

struct Violation {
  ViolationCode code = ViolationCode::kContractViolation;
  std::string detail;
};

/// Runs every oracle over `obs`; `golden` is the fault-free reference run for
/// the same seed. Returns the violations found, in check order (empty =
/// clean run).
[[nodiscard]] std::vector<Violation> check_invariants(const StormPlan& plan,
                                                      const RunObservation& obs,
                                                      const RunObservation& golden);

}  // namespace sccft::chaos
