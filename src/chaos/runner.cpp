#include "chaos/runner.hpp"

#include <algorithm>
#include <array>
#include <functional>

#include "adapt/reconfig.hpp"
#include "ft/framework.hpp"
#include "ft/scrub.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "scc/platform.hpp"
#include "scc/watchdog.hpp"
#include "trace/sinks.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"

namespace sccft::chaos {
namespace {

/// Counts supervisor restarts as they happen, so the planted bugs can key
/// their misbehaviour off the recovery lifecycle.
struct RestartCounter final : trace::Sink {
  int restarts = 0;
  void on_event(const trace::Event&) override { ++restarts; }
};

/// Observes the supervisor's kHeartbeat beacons for the silent-supervisor
/// oracle: an independent count plus the time the beacon last fired.
struct HeartbeatMonitor final : trace::Sink {
  std::uint64_t count = 0;
  rtc::TimeNs last = -1;
  void on_event(const trace::Event& event) override {
    ++count;
    last = event.time;
  }
};

/// A replica task loop's handle onto its per-tile watchdog channel; null
/// until the control-plane rig wires one up.
struct WatchdogHook {
  scc::WatchdogTimer* watchdog = nullptr;
  int channel = -1;
};

}  // namespace

const char* to_string(PlantedBug bug) {
  switch (bug) {
    case PlantedBug::kNone: return "none";
    case PlantedBug::kDropAfterSecondRestart: return "drop-after-second-restart";
    case PlantedBug::kCorruptAfterRestart: return "corrupt-after-restart";
  }
  return "?";
}

PlantedBug planted_bug_from_text(const std::string& tag) {
  for (const PlantedBug bug :
       {PlantedBug::kNone, PlantedBug::kDropAfterSecondRestart,
        PlantedBug::kCorruptAfterRestart}) {
    if (tag == to_string(bug)) return bug;
  }
  util::contract_failure("precondition", "tag is a known planted bug", __FILE__,
                         __LINE__);
}

std::string RunObservation::render_flight_csv() const {
  util::CsvWriter csv({"time_ns", "kind", "subject", "a", "b", "c"});
  csv.add_comment("flight recorder: last " + std::to_string(flight_events.size()) +
                  " events (" + std::to_string(flight_dropped) + " older dropped)");
  static const std::string kUnknownSubject = "?";
  for (const trace::Event& event : flight_events) {
    const std::string& subject = event.subject < flight_subjects.size()
                                     ? flight_subjects[event.subject]
                                     : kUnknownSubject;
    csv.add_row({std::to_string(event.time), trace::to_string(event.kind), subject,
                 std::to_string(event.a), std::to_string(event.b),
                 std::to_string(event.c)});
  }
  return csv.render();
}

RunObservation run_storm(const StormPlan& plan, const RunOptions& options) {
  SCCFT_EXPECTS(plan.run_length > 0);
  sim::Simulator simulator;
  kpn::Network net(simulator);
  const bool with_noc =
      std::any_of(plan.faults.begin(), plan.faults.end(), [](const ft::FaultSpec& s) {
        return s.kind == ft::FaultKind::kNocLink;
      });
  std::optional<scc::Platform> platform;
  if (with_noc) platform.emplace(simulator);

  ft::AppTimingSpec timing;
  timing.producer = rtc::PJD::from_ms(10, 1, 10);
  timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
  timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
  timing.consumer = rtc::PJD::from_ms(10, 1, 10);

  ft::FaultTolerantHarness::Config config{.timing = timing};
  if (with_noc) {
    config.platform = &*platform;
    config.producer_core = scc::CoreId{0};
    config.replica1_in_core = config.replica1_out_core = scc::CoreId{2};
    config.replica2_in_core = config.replica2_out_core = scc::CoreId{4};
    config.consumer_core = scc::CoreId{6};
  }
  ft::FaultTolerantHarness harness(net, config);

  RunObservation obs;

  // The redundant observers: the ring keeps the recent event history for the
  // failure artifact, the counter sink keeps lifetime per-kind totals in the
  // registry — the consistency oracle cross-checks the two. Both subscribe
  // the same mask, so their counts must agree exactly. (The global
  // install_flight_recorder hook is deliberately NOT used: it is
  // process-wide state and chaos runs execute many simulators in parallel.)
  // Both are passive recorders, so they take the bus's deferred/batched path;
  // they lag by exactly the same staged events, which keeps the scrubber's
  // ring-vs-tally cross-check consistent at every flush point.
  trace::RingBufferSink ring(options.ring_capacity);
  trace::CounterSink counters(simulator.trace().metrics());
  simulator.trace().subscribe(&ring, trace::kFlightRecorderMask,
                              trace::DeliveryMode::kDeferred);
  simulator.trace().subscribe(&counters, trace::kFlightRecorderMask,
                              trace::DeliveryMode::kDeferred);
  RestartCounter restart_counter;
  simulator.trace().subscribe(&restart_counter,
                              trace::bit(trace::EventKind::kRestart));
  HeartbeatMonitor heartbeat_monitor;
  simulator.trace().subscribe(&heartbeat_monitor,
                              trace::bit(trace::EventKind::kHeartbeat));

  const std::uint64_t seed = plan.seed;
  net.add_process("producer", scc::CoreId{0}, seed * 10 + 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(timing.producer, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(4, static_cast<std::uint8_t>(k));
                      co_await kpn::write(harness.replicator(),
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });

  // Per-replica watchdog hooks: filled in only when the control-plane rig
  // arms the watchdog (below), read from inside the task loops. Lives in
  // this frame, which outlives the simulation.
  std::array<WatchdogHook, 2> watchdog_hooks{};

  auto replica_body = [&](ft::ReplicaIndex which, rtc::PJD model) {
    WatchdogHook* hook =
        &watchdog_hooks[static_cast<std::size_t>(ft::index_of(which))];
    return [&harness, which, model, hook](kpn::ProcessContext& ctx) -> sim::Task {
      kpn::TimingShaper emit(model, ctx.now(), ctx.rng());
      rtc::TimeNs last_emit = -1;
      while (true) {
        SCCFT_FAULT_GATE(ctx);
        kpn::Token token =
            co_await kpn::read(harness.replicator().read_interface(which));
        SCCFT_FAULT_GATE(ctx);
        rtc::TimeNs target = emit.next_emission(ctx.now());
        if (ctx.fault().rate_factor > 1.0 && last_emit >= 0) {
          target = std::max(target,
                            last_emit + static_cast<rtc::TimeNs>(
                                            ctx.fault().rate_factor *
                                            static_cast<double>(model.period)));
        }
        if (target > ctx.now()) co_await ctx.compute(target - ctx.now());
        SCCFT_FAULT_GATE(ctx);
        co_await kpn::write(harness.selector().write_interface(which), token);
        emit.commit(ctx.now());
        last_emit = ctx.now();
        // One heartbeat per completed iteration: a frozen or wedged loop
        // stops kicking and the per-tile deadline does the convicting.
        if (hook->watchdog != nullptr) hook->watchdog->kick(hook->channel);
      }
    };
  };
  std::vector<kpn::Process*> replicas;
  replicas.push_back(&net.add_process(
      "r1", scc::CoreId{2}, seed * 10 + 2,
      replica_body(ft::ReplicaIndex::kReplica1, timing.replica1_out)));
  replicas.push_back(&net.add_process(
      "r2", scc::CoreId{4}, seed * 10 + 3,
      replica_body(ft::ReplicaIndex::kReplica2, timing.replica2_out)));

  bool planted_fired = false;
  net.add_process(
      "consumer", scc::CoreId{6}, seed * 10 + 4,
      [&](kpn::ProcessContext& ctx) -> sim::Task {
        kpn::TimingShaper shaper(timing.consumer, 0, ctx.rng());
        while (true) {
          const rtc::TimeNs t = shaper.next_emission(ctx.now());
          if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
          kpn::Token token = co_await kpn::read(harness.selector());
          shaper.commit(ctx.now());
          if (!token.verify_checksum()) ++obs.corrupt_delivered;
          std::uint32_t fingerprint = token.checksum();
          // Test-only defect hooks (see PlantedBug).
          if (options.planted == PlantedBug::kDropAfterSecondRestart &&
              !planted_fired && restart_counter.restarts >= 2) {
            planted_fired = true;
            continue;  // the token vanishes: a manufactured sequence gap
          }
          if (options.planted == PlantedBug::kCorruptAfterRestart &&
              !planted_fired && restart_counter.restarts >= 1) {
            planted_fired = true;
            fingerprint ^= 1;  // a manufactured golden-run divergence
          }
          obs.consumed_seqs.push_back(token.seq());
          obs.consumed_times.push_back(ctx.now());
          obs.consumed_fingerprints.push_back(fingerprint);
        }
      });

  std::array<ft::ReplicaAssets, 2> assets{
      ft::ReplicaAssets{ft::ReplicaIndex::kReplica1, {replicas[0]}, {}},
      ft::ReplicaAssets{ft::ReplicaIndex::kReplica2, {replicas[1]}, {}}};
  const ControlPlaneOptions& cp = options.control_plane;
  ft::Supervisor::Config supervisor_config;
  supervisor_config.restart_budget = 3;
  supervisor_config.initial_backoff = rtc::from_ms(20.0);
  if (cp.enabled) supervisor_config.heartbeat_period = cp.heartbeat_period;
  ft::Supervisor supervisor(simulator, harness.replicator(), harness.selector(),
                            assets, supervisor_config);
  obs.restart_budget = supervisor_config.restart_budget;

  // --- benign live-resize windows (adapt/) ---------------------------------
  const ReconfigOptions& rc = options.reconfig;
  std::optional<adapt::ReconfigurationController> reconfigurator;
  std::uint64_t reconfig_round = 0;
  std::function<void()> reconfig_tick;
  if (rc.enabled) {
    reconfigurator.emplace(
        simulator, simulator.trace(), harness.replicator(), harness.selector(),
        adapt::ReconfigurationController::Config{.quiesce_window = rc.quiesce_window});
    const rtc::Tokens base_f1 = harness.sizing().replicator_capacity1;
    const rtc::Tokens base_f2 = harness.sizing().replicator_capacity2;
    const rtc::Tokens base_d = harness.sizing().selector_threshold;
    reconfig_tick = [&, base_f1, base_f2, base_d] {
      ++reconfig_round;
      adapt::ReconfigurationController::Request request;
      const rtc::Tokens delta = reconfig_round % 2 == 1 ? rc.grow : 0;
      request.fifo1 = base_f1 + delta;
      request.fifo2 = base_f2 + delta;
      request.divergence = base_d + delta;
      (void)reconfigurator->request(request);
      simulator.schedule_after(rc.period, [&] { reconfig_tick(); });
    };
    simulator.schedule_after(rc.period, [&] { reconfig_tick(); });
  }

  // --- last-line defense: per-tile watchdog + control-state scrubber -------
  std::optional<scc::WatchdogTimer> watchdog;
  std::optional<ft::Scrubber> scrubber;
  if (cp.enabled && cp.watchdog) {
    watchdog.emplace(simulator,
                     scc::WatchdogTimer::Config{.deadline = cp.watchdog_deadline});
    const int supervisor_channel = watchdog->add_channel(
        "supervisor", scc::CoreId{6}.tile(),
        [&supervisor] { supervisor.on_self_watchdog_reset(); });
    supervisor.attach_watchdog(&*watchdog, supervisor_channel);
    watchdog_hooks[0] = WatchdogHook{
        &*watchdog,
        watchdog->add_channel("core.r1", scc::CoreId{2}.tile(), [&supervisor] {
          supervisor.on_core_watchdog_reset(ft::ReplicaIndex::kReplica1);
        })};
    watchdog_hooks[1] = WatchdogHook{
        &*watchdog,
        watchdog->add_channel("core.r2", scc::CoreId{4}.tile(), [&supervisor] {
          supervisor.on_core_watchdog_reset(ft::ReplicaIndex::kReplica2);
        })};
    watchdog->arm_all();
  }
  if (cp.enabled && cp.scrubber) {
    scrubber.emplace(simulator, ft::Scrubber::Config{.period = cp.scrub_period});
    scrubber->add_target(&harness.replicator());
    scrubber->add_target(&harness.selector());
    // The controller's pending-target words join the scrub walk strictly
    // AFTER the channels', so the channels' pinned global word indices (which
    // fault plans address) are unchanged.
    if (reconfigurator) scrubber->add_target(&*reconfigurator);
    // The ring audit's independent tally: the CounterSink subscribes the
    // same mask, so its per-kind totals are what the ring should have seen.
    scrubber->watch_flight_ring(&ring, [&simulator] {
      std::uint64_t total = 0;
      for (std::size_t k = 0; k < trace::kEventKindCount; ++k) {
        const auto kind = static_cast<trace::EventKind>(k);
        if ((trace::kFlightRecorderMask & trace::bit(kind)) == 0) continue;
        total += simulator.trace().metrics().counter(
            std::string("trace.events.") + trace::to_string(kind));
      }
      return total;
    });
    scrubber->start();
  }

  ft::FaultCampaign::Wiring wiring;
  wiring.replicator = &harness.replicator();
  wiring.selector = &harness.selector();
  wiring.processes[0] = {replicas[0]};
  wiring.processes[1] = {replicas[1]};
  if (with_noc) wiring.noc = &platform->noc();
  // Control-plane targets are wired unconditionally: a storm may attack the
  // protection machinery whether or not the defenses are armed — that
  // asymmetry is exactly what the ablation demos measure.
  wiring.supervisor = &supervisor;
  wiring.scrubbables = {&harness.replicator(), &harness.selector()};
  // Appended last (like the scrub walk) so pinned global word indices hold.
  if (reconfigurator) wiring.scrubbables.push_back(&*reconfigurator);
  wiring.flight_ring = &ring;
  ft::FaultCampaign campaign(simulator, wiring);
  campaign.set_injection_listener([&](const ft::FaultInjectionRecord& rec) {
    supervisor.note_fault_injected(rec.replica, rec.at);
  });
  for (const ft::FaultSpec& spec : plan.faults) campaign.add(spec);
  campaign.arm();

  try {
    net.run_until(plan.run_length);
  } catch (const util::ContractViolation& violation) {
    // The run died mid-simulation. Capture what we have — the artifact's
    // flight recorder is most valuable exactly here.
    obs.contract_violation = violation.what();
  }

  // Harvest. Deliver staged deferred events first so the ring and counter
  // totals reflect the complete run.
  simulator.trace().flush();
  obs.transitions = supervisor.transitions();
  obs.final_health[0] = supervisor.health(ft::ReplicaIndex::kReplica1);
  obs.final_health[1] = supervisor.health(ft::ReplicaIndex::kReplica2);
  obs.injections = campaign.injections();
  obs.events_processed = simulator.events_processed();
  obs.flight_total_events = ring.total_events();
  obs.flight_events = ring.events();
  obs.flight_dropped = ring.dropped();
  obs.flight_subjects.reserve(simulator.trace().subject_count());
  for (std::size_t id = 0; id < simulator.trace().subject_count(); ++id) {
    obs.flight_subjects.push_back(
        simulator.trace().subject_name(static_cast<trace::SubjectId>(id)));
  }
  harness.replicator().publish_metrics(simulator.trace().metrics());
  harness.selector().publish_metrics(simulator.trace().metrics());
  obs.metrics = simulator.trace().metrics();

  obs.reconfig = rc;
  if (reconfigurator) {
    obs.reconfig_windows = reconfigurator->stats().windows_completed;
    obs.reconfig_targets = reconfigurator->stats().targets_applied;
    obs.reconfig_clamped = reconfigurator->stats().clamped;
  }

  obs.control_plane = cp;
  obs.heartbeats = heartbeat_monitor.count;
  obs.last_heartbeat = heartbeat_monitor.last;
  obs.watchdog_resets = watchdog ? watchdog->total_resets() : 0;
  obs.scrub_repairs = scrubber ? scrubber->total_repairs() : 0;
  obs.flight_ring_resyncs = scrubber ? scrubber->ring_resyncs() : 0;

  simulator.trace().unsubscribe(&ring);
  simulator.trace().unsubscribe(&counters);
  simulator.trace().unsubscribe(&restart_counter);
  simulator.trace().unsubscribe(&heartbeat_monitor);
  return obs;
}

RunObservation run_golden(std::uint64_t seed, rtc::TimeNs run_length,
                          const ReconfigOptions& reconfig) {
  StormPlan golden;
  golden.seed = seed;
  golden.run_length = run_length;
  RunOptions options;
  options.reconfig = reconfig;
  return run_storm(golden, options);
}

}  // namespace sccft::chaos
