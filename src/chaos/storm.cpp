#include "chaos/storm.hpp"

#include <algorithm>

#include "scc/topology.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::chaos {
namespace {

/// Uniform simulated duration in [lo_ms, hi_ms).
rtc::TimeNs ms_between(util::Xoshiro256& rng, double lo_ms, double hi_ms) {
  return rtc::from_ms(rng.uniform(lo_ms, hi_ms));
}

ft::ReplicaIndex pick_replica(util::Xoshiro256& rng) {
  return rng.chance(0.5) ? ft::ReplicaIndex::kReplica1 : ft::ReplicaIndex::kReplica2;
}

/// A random fault of any replica-targeting kind at `at` against `victim`.
/// Durations are chosen so every kind can complete (and be detected) well
/// within a multi-second run.
ft::FaultSpec replica_fault(util::Xoshiro256& rng, ft::ReplicaIndex victim,
                            rtc::TimeNs at) {
  ft::FaultSpec spec;
  spec.replica = victim;
  spec.at = at;
  spec.seed = rng.next();
  switch (rng.uniform_int(0, 4)) {
    case 0:
      spec.kind = ft::FaultKind::kPermanentSilence;
      break;
    case 1:
      spec.kind = ft::FaultKind::kTransientSilence;
      spec.duration = ms_between(rng, 30.0, 300.0);
      break;
    case 2:
      spec.kind = ft::FaultKind::kIntermittentSilence;
      spec.duration = ms_between(rng, 200.0, 600.0);
      spec.burst_on_mean = ms_between(rng, 20.0, 60.0);
      spec.burst_off_mean = ms_between(rng, 80.0, 200.0);
      break;
    case 3:
      spec.kind = ft::FaultKind::kRateDegradation;
      spec.rate_factor = rng.uniform(2.0, 6.0);
      spec.duration = ms_between(rng, 100.0, 400.0);
      break;
    default:
      spec.kind = ft::FaultKind::kPayloadCorruption;
      spec.corrupt_probability = rng.uniform(0.3, 1.0);
      spec.duration = ms_between(rng, 100.0, 400.0);
      break;
  }
  return spec;
}

ft::FaultSpec silence_fault(util::Xoshiro256& rng, ft::ReplicaIndex victim,
                            rtc::TimeNs at) {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kTransientSilence;
  spec.replica = victim;
  spec.at = at;
  spec.duration = ms_between(rng, 150.0, 400.0);
  spec.seed = rng.next();
  return spec;
}

int pick_tile(util::Xoshiro256& rng) {
  return static_cast<int>(rng.uniform_int(0, scc::kTileCount - 1));
}

/// A bounded supervisor wedge: long enough that conviction/backoff/restart
/// windows fall inside it, short enough that a self-clearing hang still
/// leaves the run time to recover when no watchdog is wired.
ft::FaultSpec supervisor_hang_fault(util::Xoshiro256& rng, rtc::TimeNs at) {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kSupervisorHang;
  spec.at = at;
  spec.duration = ms_between(rng, 100.0, 400.0);
  spec.tile = pick_tile(rng);
  spec.seed = rng.next();
  return spec;
}

/// Periodic single-bit flips into random TMR control words. The 40-80 ms
/// flip period sits far above any sane scrub period, so a running scrubber
/// repairs each flip before the next can land on the same word.
ft::FaultSpec counter_flip_fault(util::Xoshiro256& rng, rtc::TimeNs at) {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kCounterCorruption;
  spec.at = at;
  spec.duration = ms_between(rng, 200.0, 600.0);
  spec.burst_on_mean = ms_between(rng, 40.0, 80.0);
  spec.tile = pick_tile(rng);
  spec.seed = rng.next();
  return spec;
}

ft::FaultSpec sink_stuck_fault(util::Xoshiro256& rng, rtc::TimeNs at) {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kTraceSinkStuck;
  spec.at = at;
  spec.duration = ms_between(rng, 100.0, 500.0);
  spec.tile = pick_tile(rng);
  spec.seed = rng.next();
  return spec;
}

ft::FaultSpec control_plane_fault(util::Xoshiro256& rng, rtc::TimeNs at) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return supervisor_hang_fault(rng, at);
    case 1: return counter_flip_fault(rng, at);
    default: return sink_stuck_fault(rng, at);
  }
}

ft::FaultSpec noc_fault(util::Xoshiro256& rng, rtc::TimeNs at) {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kNocLink;
  spec.at = at;
  spec.duration = ms_between(rng, 300.0, 800.0);
  spec.seed = rng.next();
  spec.noc.chunk_drop_probability = rng.uniform(0.05, 0.4);
  spec.noc.chunk_delay_probability = rng.uniform(0.0, 0.3);
  spec.noc.delay_min_ns = 10'000;
  spec.noc.delay_max_ns = static_cast<rtc::TimeNs>(rng.uniform_int(50'000, 200'000));
  return spec;
}

}  // namespace

bool plan_is_lossless(const std::vector<ft::FaultSpec>& faults) {
  bool saw_replica_fault = false;
  ft::ReplicaIndex victim = ft::ReplicaIndex::kReplica1;
  for (const ft::FaultSpec& spec : faults) {
    // Control-plane faults have no data-path victim: with the watchdog and
    // scrubber standing, they must not cost a single token — that is the
    // last-line-defense acceptance bar, so they do not soften the guarantee.
    if (ft::is_control_plane(spec.kind)) continue;
    if (spec.kind == ft::FaultKind::kNocLink) return false;
    if (saw_replica_fault && spec.replica != victim) return false;
    victim = spec.replica;
    saw_replica_fault = true;
  }
  return true;
}

StormGenerator::StormGenerator(StormConfig config) : config_(config) {
  SCCFT_EXPECTS(config_.run_length >= rtc::from_sec(1.0));
  SCCFT_EXPECTS(config_.min_faults >= 1);
  SCCFT_EXPECTS(config_.max_faults >= config_.min_faults);
  SCCFT_EXPECTS(config_.adversarial_probability >= 0.0 &&
                config_.adversarial_probability <= 1.0);
}

StormPlan StormGenerator::generate(std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  StormPlan plan;
  plan.seed = seed;
  plan.run_length = config_.run_length;

  // Onsets land in the steady-state window: past the start-up transient and
  // early enough that detection + restart can still play out before the end.
  const double onset_lo = 200.0;
  const double onset_hi = rtc::to_ms(config_.run_length) - 300.0;
  auto onset = [&] { return ms_between(rng, onset_lo, onset_hi); };

  const int n_faults =
      static_cast<int>(rng.uniform_int(config_.min_faults, config_.max_faults));

  if (!rng.chance(config_.adversarial_probability)) {
    // Guarded storm: every fault hits ONE victim, so the untouched peer keeps
    // the no-loss guarantee alive no matter how badly the victim flaps.
    const ft::ReplicaIndex victim = pick_replica(rng);
    for (int i = 0; i < n_faults; ++i) {
      plan.faults.push_back(replica_fault(rng, victim, onset()));
    }
  } else {
    // Adversarial template: a hand-picked cross-replica interleaving seeds
    // the storm, then random faults fill it up to n_faults.
    const ft::ReplicaIndex a = pick_replica(rng);
    const ft::ReplicaIndex b = ft::other(a);
    // Template ids draw from an explicit list so optional families (NoC,
    // control-plane) extend it without renumbering: with both off the draw
    // is bit-identical to the historical uniform_int(0, 3) / (0, 4).
    std::vector<int> templates{0, 1, 2, 3};
    if (config_.allow_noc) templates.push_back(4);
    if (config_.control_plane) {
      templates.push_back(5);
      templates.push_back(6);
    }
    if (config_.reconfigure) templates.push_back(7);
    switch (templates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(templates.size()) - 1))]) {
      case 0: {
        // Second fault during the first one's reintegration: the follow-up
        // onset is drawn across conviction + backoff + resync of fault A.
        const ft::FaultSpec first = silence_fault(rng, a, onset());
        plan.faults.push_back(first);
        plan.faults.push_back(replica_fault(
            rng, b, first.at + ms_between(rng, 150.0, 500.0)));
        break;
      }
      case 1: {
        // Corruption while the peer's restart backoff leaves this replica as
        // the sole deliverer.
        const ft::FaultSpec first = silence_fault(rng, a, onset());
        ft::FaultSpec corrupt;
        corrupt.kind = ft::FaultKind::kPayloadCorruption;
        corrupt.replica = b;
        corrupt.at = first.at + ms_between(rng, 50.0, 200.0);
        corrupt.duration = ms_between(rng, 100.0, 400.0);
        corrupt.corrupt_probability = rng.uniform(0.3, 1.0);
        corrupt.seed = rng.next();
        plan.faults.push_back(first);
        plan.faults.push_back(corrupt);
        break;
      }
      case 2: {
        // Rate drift on one replica plus silence on the other: the drifting
        // side must carry the stream while convicted-and-slow.
        ft::FaultSpec drift;
        drift.kind = ft::FaultKind::kRateDegradation;
        drift.replica = a;
        drift.at = onset();
        drift.rate_factor = rng.uniform(2.0, 6.0);
        drift.duration = ms_between(rng, 300.0, 800.0);
        drift.seed = rng.next();
        plan.faults.push_back(drift);
        plan.faults.push_back(
            silence_fault(rng, b, drift.at + ms_between(rng, 100.0, 400.0)));
        break;
      }
      case 3: {
        // Plain cross-replica mix; the fill loop below does the work.
        plan.faults.push_back(replica_fault(rng, a, onset()));
        break;
      }
      case 4:
      default: {
        // Mesh loss stacked on a replica outage: retransmissions fight for a
        // window in which only one replica produces.
        const ft::FaultSpec mesh = noc_fault(rng, onset());
        plan.faults.push_back(mesh);
        plan.faults.push_back(silence_fault(
            rng, a, mesh.at + ms_between(rng, 50.0, 200.0)));
        break;
      }
      case 5: {
        // Supervisor hang during reintegration: the silence convicts the
        // victim, then the supervisor core wedges inside the conviction +
        // backoff window — the scheduled restart fires into a hung core and
        // is lost unless the hardware watchdog resets it.
        const ft::FaultSpec first = silence_fault(rng, a, onset());
        plan.faults.push_back(first);
        plan.faults.push_back(supervisor_hang_fault(
            rng, first.at + ms_between(rng, 10.0, 60.0)));
        break;
      }
      case 6: {
        // Counter flips with the flight recorder wedged on top: the scrubber
        // must repair the bookkeeping AND resync the ring while blind-spot
        // windows overlap.
        const ft::FaultSpec flips = counter_flip_fault(rng, onset());
        plan.faults.push_back(flips);
        plan.faults.push_back(sink_stuck_fault(
            rng, flips.at + ms_between(rng, 20.0, 100.0)));
        break;
      }
      case 7: {
        // Fault inside a reconfiguration window: the onset lands between
        // quiesce and resume of one of the runner's periodic live-resize
        // windows, while verdict rules are suspended and detection is
        // deferred — then a cross-replica follow-up arrives once the window
        // has closed.
        const std::int64_t last_window = std::max<std::int64_t>(
            1, (config_.run_length - rtc::from_ms(300.0)) / kReconfigPeriodNs);
        const std::int64_t k = rng.uniform_int(1, last_window);
        const rtc::TimeNs at =
            k * kReconfigPeriodNs +
            static_cast<rtc::TimeNs>(rng.uniform_int(0, kReconfigWindowNs - 1));
        plan.faults.push_back(silence_fault(rng, a, at));
        plan.faults.push_back(
            replica_fault(rng, b, at + ms_between(rng, 150.0, 500.0)));
        break;
      }
    }
    while (static_cast<int>(plan.faults.size()) < n_faults) {
      plan.faults.push_back(replica_fault(rng, pick_replica(rng), onset()));
    }
  }
  if (config_.control_plane) {
    // Every control-plane storm carries 1-2 attacks on the protection
    // machinery itself, on top of whatever the data-path draw produced.
    const int extra = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < extra; ++i) {
      plan.faults.push_back(control_plane_fault(rng, onset()));
    }
  }
  return plan;
}

}  // namespace sccft::chaos
