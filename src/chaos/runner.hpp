// Executes one chaos storm against a fresh duplicated network and records
// everything the invariant oracles (chaos/oracle.hpp) need for their verdict.
//
// The rig mirrors the fault-campaign harness (bench/fault_campaign.cpp): a
// producer, two supervised replicas, a consumer, and a FaultCampaign armed
// with the storm's fault plan; NoC storms additionally route the duplicated
// channels over the SCC mesh model. Every run owns an isolated Simulator and
// derives all randomness from the storm seed, so run_storm is a pure
// function of (plan, options) — the property the soak driver's --jobs
// determinism and the shrinker's re-execution both stand on.
//
// The observation deliberately captures REDUNDANT views of the same run —
// the consumed stream, the supervisor's transition log, the flight-recorder
// ring, and the metrics registry — because several oracles work by
// cross-checking one view against another.
//
// PlantedBug is the test-only defect hook the acceptance criteria call for:
// it wires a deliberate invariant violation into the consumer so the whole
// pipeline (oracle -> artifact -> ddmin shrink -> replay) can be exercised
// end to end against a KNOWN bug, without touching production code paths.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/storm.hpp"
#include "ft/supervisor.hpp"
#include "trace/event.hpp"
#include "trace/metrics.hpp"

namespace sccft::chaos {

/// Deliberate, test-only defects injected at the consumer boundary.
enum class PlantedBug {
  kNone,
  /// Silently drop one delivered token once two restarts have happened:
  /// manufactures a sequence gap, which the no-loss oracle must catch on a
  /// lossless plan (and ddmin must shrink to the <= 2 faults that force the
  /// two restarts).
  kDropAfterSecondRestart,
  /// Record a wrong payload fingerprint for one token after the first
  /// restart: manufactures a divergence from the fault-free golden run,
  /// which the output-equivalence oracle catches on ANY plan.
  kCorruptAfterRestart,
};

[[nodiscard]] const char* to_string(PlantedBug bug);
/// Parses a to_string(PlantedBug) tag; throws util::ContractViolation on an
/// unknown tag.
[[nodiscard]] PlantedBug planted_bug_from_text(const std::string& tag);

/// The last-line-defense configuration of a run: per-tile hardware watchdog
/// (scc/watchdog.hpp), control-state scrubber (ft/scrub.hpp), and the
/// supervisor heartbeat they monitor. Disabled by default so existing rigs
/// keep byte-identical schedules; the control-plane soak enables all three,
/// and the ablation demos disable exactly one to show the planted storms
/// fail without it.
struct ControlPlaneOptions {
  bool enabled = false;
  bool watchdog = true;   ///< arm the hardware watchdog (needs enabled)
  bool scrubber = true;   ///< run the periodic scrubber (needs enabled)
  /// Supervisor liveness-beacon period (kHeartbeat cadence).
  rtc::TimeNs heartbeat_period = rtc::from_ms(25.0);
  /// Watchdog deadline: must exceed every benign kick gap of the rig
  /// (rate-degraded emission stretches to ~60 ms, intermittent silence
  /// bursts to ~90 ms), so only genuine hangs trip it.
  rtc::TimeNs watchdog_deadline = rtc::from_ms(120.0);
  /// Scrub period: far below the storm generator's 40-80 ms flip period, so
  /// a second flip cannot land on a word before the first is repaired.
  rtc::TimeNs scrub_period = rtc::from_ms(5.0);
};

/// Benign periodic live-resize windows driven by the adaptation layer's
/// ReconfigurationController (src/adapt/reconfig.hpp): every `period` a
/// quiesce -> resize -> resume window opens; odd windows grow both FIFO
/// capacities and the divergence threshold by `grow` tokens, even windows
/// restore the designed sizes — so both the grow path and the shrink clamps
/// run under storm fire. Off by default: existing rigs keep byte-identical
/// schedules (a larger |F| changes when a blocked producer wakes even in
/// fault-free runs, so the golden reference must share these options —
/// run_golden takes them).
struct ReconfigOptions {
  bool enabled = false;
  rtc::TimeNs period = kReconfigPeriodNs;
  rtc::TimeNs quiesce_window = kReconfigWindowNs;
  rtc::Tokens grow = 8;
};

struct RunOptions {
  PlantedBug planted = PlantedBug::kNone;
  /// Flight-recorder ring capacity (events retained for the artifact).
  std::size_t ring_capacity = 4096;
  ControlPlaneOptions control_plane;
  ReconfigOptions reconfig;
};

/// Everything observed about one run, in the redundant views the oracles
/// cross-check.
struct RunObservation {
  // --- the delivered stream, in consumption order -------------------------
  std::vector<std::uint64_t> consumed_seqs;
  std::vector<rtc::TimeNs> consumed_times;
  /// CRC-32 fingerprint per consumed token (golden-run equivalence).
  std::vector<std::uint32_t> consumed_fingerprints;
  std::uint64_t corrupt_delivered = 0;  ///< tokens failing verify_checksum()

  // --- supervisor ----------------------------------------------------------
  std::vector<ft::HealthTransition> transitions;
  ft::ReplicaHealth final_health[2] = {ft::ReplicaHealth::kHealthy,
                                       ft::ReplicaHealth::kHealthy};
  int restart_budget = 0;  ///< config echoed for the budget oracle

  // --- fault campaign ------------------------------------------------------
  std::vector<ft::FaultInjectionRecord> injections;

  // --- trace spine ---------------------------------------------------------
  std::uint64_t events_processed = 0;     ///< simulator events dispatched
  std::uint64_t flight_total_events = 0;  ///< ring's lifetime count
  std::vector<trace::Event> flight_events;  ///< retained ring contents, oldest first
  std::uint64_t flight_dropped = 0;       ///< events the ring aged out
  /// Subject-name table snapshot (index = SubjectId) so the flight recorder
  /// can be rendered after the run's TraceBus is gone.
  std::vector<std::string> flight_subjects;
  trace::MetricsRegistry metrics;         ///< end-of-run registry snapshot

  /// Renders the retained flight-recorder events as CSV, byte-identical to
  /// RingBufferSink::render_csv. Rendering is deferred to the failure path
  /// (artifact construction): formatting several thousand rows per run was a
  /// measurable fraction of soak wall-clock, and passing runs never read it.
  [[nodiscard]] std::string render_flight_csv() const;

  // --- control plane (last-line defense) -----------------------------------
  ControlPlaneOptions control_plane;      ///< options echoed for the oracles
  std::uint64_t heartbeats = 0;           ///< kHeartbeat events observed
  rtc::TimeNs last_heartbeat = -1;        ///< time of the final heartbeat
  std::uint64_t watchdog_resets = 0;      ///< reset-line firings (all channels)
  std::uint64_t scrub_repairs = 0;        ///< TMR minority copies rewritten
  std::uint64_t flight_ring_resyncs = 0;  ///< wedged-ring force resyncs

  // --- reconfiguration (adapt/ live-resize windows) ------------------------
  ReconfigOptions reconfig;               ///< options echoed
  std::uint64_t reconfig_windows = 0;     ///< completed quiesce->resume windows
  std::uint64_t reconfig_targets = 0;     ///< capacity/threshold applications
  std::uint64_t reconfig_clamped = 0;     ///< requests adjusted by safety clamps

  /// Set when the run died on a SCCFT_EXPECTS/ENSURES/ASSERT failure instead
  /// of completing (the message); itself an unconditional violation.
  std::optional<std::string> contract_violation;
};

/// Runs `plan` to its run_length and returns the observation. Deterministic:
/// identical (plan, options) give identical observations.
[[nodiscard]] RunObservation run_storm(const StormPlan& plan,
                                       const RunOptions& options = {});

/// The fault-free reference for Theorem-2 output equivalence: the same rig
/// and seed with an empty fault plan. Reconfiguration windows perturb even
/// the fault-free schedule, so a reference for a reconfiguring run must open
/// the same windows — pass the run's ReconfigOptions.
[[nodiscard]] RunObservation run_golden(std::uint64_t seed, rtc::TimeNs run_length,
                                        const ReconfigOptions& reconfig = {});

}  // namespace sccft::chaos
