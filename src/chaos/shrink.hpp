// Automatic fault-plan shrinking: ddmin over the storm's fault set.
//
// Given a plan whose run violated an invariant, the shrinker searches for a
// minimal sub-plan (same seed, same run length, same planted bug) that still
// reproduces at least one of the ORIGINAL violation codes. It is the classic
// delta-debugging minimization loop (Zeller & Hildebrandt's ddmin): try ever
// finer subsets and complements of the fault list, restart the granularity
// whenever a smaller reproducer is found, and stop at 1-minimality — no
// single remaining fault can be removed without losing the failure.
//
// Every probe is a full deterministic re-execution via run_storm, so the
// result is a true reproducer, not a heuristic guess. Probes of a plan reuse
// one golden run per (seed, run_length): the reference does not depend on
// the fault subset.
#pragma once

#include <vector>

#include "chaos/oracle.hpp"
#include "chaos/runner.hpp"
#include "chaos/storm.hpp"

namespace sccft::chaos {

struct ShrinkResult {
  /// Minimal reproducing fault list (possibly empty if the violation does
  /// not depend on the faults at all).
  std::vector<ft::FaultSpec> faults;
  /// Violations the minimal plan produces (all drawn from the original codes).
  std::vector<Violation> violations;
  int probes = 0;  ///< number of full re-executions the search spent
};

/// Shrinks `plan.faults` to a 1-minimal reproducer of any violation code in
/// `original` (the verdicts of the full plan's run). Precondition: `original`
/// is non-empty — there must be a failure to preserve.
[[nodiscard]] ShrinkResult shrink_plan(const StormPlan& plan,
                                       const RunOptions& options,
                                       const std::vector<Violation>& original);

}  // namespace sccft::chaos
