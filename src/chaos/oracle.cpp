#include "chaos/oracle.hpp"

#include <algorithm>
#include <string>

#include "trace/bus.hpp"
#include "util/assert.hpp"

namespace sccft::chaos {
namespace {

std::string replica_tag(ft::ReplicaIndex r) {
  return "R" + std::to_string(ft::index_of(r) + 1);
}

bool legal_edge(ft::ReplicaHealth from, ft::ReplicaHealth to) {
  using H = ft::ReplicaHealth;
  return (from == H::kHealthy && to == H::kConvicted) ||
         (from == H::kHealthy && to == H::kDegraded) ||
         (from == H::kConvicted && to == H::kRestarting) ||
         (from == H::kRestarting && to == H::kHealthy);
}

}  // namespace

const char* to_string(ViolationCode code) {
  switch (code) {
    case ViolationCode::kContractViolation: return "contract-violation";
    case ViolationCode::kDuplicateDelivery: return "duplicate-delivery";
    case ViolationCode::kCorruptDelivery: return "corrupt-delivery";
    case ViolationCode::kGoldenMismatch: return "golden-mismatch";
    case ViolationCode::kUnjustifiedConviction: return "unjustified-conviction";
    case ViolationCode::kIllegalTransition: return "illegal-transition";
    case ViolationCode::kBudgetExceeded: return "budget-exceeded";
    case ViolationCode::kSpineInconsistent: return "spine-inconsistent";
    case ViolationCode::kSequenceGap: return "sequence-gap";
    case ViolationCode::kStalledStream: return "stalled-stream";
    case ViolationCode::kSilentSupervisor: return "silent-supervisor";
  }
  return "?";
}

ViolationCode violation_code_from_text(const std::string& tag) {
  for (const ViolationCode code :
       {ViolationCode::kContractViolation, ViolationCode::kDuplicateDelivery,
        ViolationCode::kCorruptDelivery, ViolationCode::kGoldenMismatch,
        ViolationCode::kUnjustifiedConviction, ViolationCode::kIllegalTransition,
        ViolationCode::kBudgetExceeded, ViolationCode::kSpineInconsistent,
        ViolationCode::kSequenceGap, ViolationCode::kStalledStream,
        ViolationCode::kSilentSupervisor}) {
    if (tag == to_string(code)) return code;
  }
  util::contract_failure("precondition", "tag is a known violation code",
                         __FILE__, __LINE__);
}

std::vector<Violation> check_invariants(const StormPlan& plan,
                                        const RunObservation& obs,
                                        const RunObservation& golden) {
  std::vector<Violation> violations;
  auto flag = [&](ViolationCode code, std::string detail) {
    violations.push_back(Violation{code, std::move(detail)});
  };

  if (obs.contract_violation) {
    flag(ViolationCode::kContractViolation, *obs.contract_violation);
  }

  // --- selector ordering and duplicate-freedom (unconditional) -------------
  bool gap_seen = false;
  rtc::TimeNs first_gap_prev = 0;
  for (std::size_t i = 1; i < obs.consumed_seqs.size(); ++i) {
    const std::uint64_t prev = obs.consumed_seqs[i - 1];
    const std::uint64_t seq = obs.consumed_seqs[i];
    if (seq <= prev) {
      flag(ViolationCode::kDuplicateDelivery,
           "seq " + std::to_string(seq) + " delivered after seq " +
               std::to_string(prev));
      break;
    }
    if (!gap_seen && seq > prev + 1) {
      gap_seen = true;
      first_gap_prev = static_cast<rtc::TimeNs>(prev);
    }
  }
  if (!obs.consumed_seqs.empty() && obs.consumed_seqs.front() > 0) {
    gap_seen = true;
    first_gap_prev = -1;
  }

  // --- Theorem-2 output equivalence against the golden run -----------------
  if (obs.corrupt_delivered > 0) {
    flag(ViolationCode::kCorruptDelivery,
         std::to_string(obs.corrupt_delivered) + " token(s) failed CRC");
  }
  {
    // Fingerprints keyed by sequence number; the golden run delivers each
    // seq exactly once, so the table is a direct index.
    std::vector<std::uint32_t> table;
    std::vector<bool> present;
    for (std::size_t i = 0; i < golden.consumed_seqs.size(); ++i) {
      const std::uint64_t seq = golden.consumed_seqs[i];
      if (seq >= table.size()) {
        table.resize(seq + 1, 0);
        present.resize(seq + 1, false);
      }
      table[seq] = golden.consumed_fingerprints[i];
      present[seq] = true;
    }
    for (std::size_t i = 0; i < obs.consumed_seqs.size(); ++i) {
      const std::uint64_t seq = obs.consumed_seqs[i];
      if (seq >= present.size() || !present[seq]) continue;  // beyond reference
      if (obs.consumed_fingerprints[i] != table[seq]) {
        flag(ViolationCode::kGoldenMismatch,
             "seq " + std::to_string(seq) + " payload differs from golden run");
        break;
      }
    }
  }

  // --- Lemma-1 conviction evidence -----------------------------------------
  const bool noc_in_plan =
      std::any_of(plan.faults.begin(), plan.faults.end(), [](const ft::FaultSpec& s) {
        return s.kind == ft::FaultKind::kNocLink;
      });
  if (!noc_in_plan) {
    for (const ft::HealthTransition& transition : obs.transitions) {
      const bool conviction =
          transition.to == ft::ReplicaHealth::kConvicted ||
          (transition.from == ft::ReplicaHealth::kHealthy &&
           transition.to == ft::ReplicaHealth::kDegraded);
      if (!conviction) continue;
      const bool justified = std::any_of(
          obs.injections.begin(), obs.injections.end(),
          [&](const ft::FaultInjectionRecord& record) {
            // Control-plane injections carry no meaningful replica: they
            // attack the machinery, not a core, so they justify nothing — a
            // conviction caused by corrupted bookkeeping must be flagged.
            return !ft::is_control_plane(record.kind) &&
                   record.replica == transition.replica &&
                   record.at <= transition.at;
          });
      if (!justified) {
        flag(ViolationCode::kUnjustifiedConviction,
             replica_tag(transition.replica) + " convicted at " +
                 std::to_string(transition.at) + " ns with no fault against it");
      }
    }
  }

  // --- supervisor health-machine legality ----------------------------------
  ft::ReplicaHealth tracked[2] = {ft::ReplicaHealth::kHealthy,
                                  ft::ReplicaHealth::kHealthy};
  rtc::TimeNs last_at = 0;
  int restarts_per_replica[2] = {0, 0};
  std::uint64_t faults_seen_per_replica[2] = {0, 0};
  for (const ft::HealthTransition& transition : obs.transitions) {
    const auto r = static_cast<std::size_t>(ft::index_of(transition.replica));
    if (transition.at < last_at) {
      flag(ViolationCode::kIllegalTransition,
           "transition log runs backwards in time at " +
               std::to_string(transition.at) + " ns");
      break;
    }
    last_at = transition.at;
    if (transition.from != tracked[r] || !legal_edge(transition.from, transition.to)) {
      flag(ViolationCode::kIllegalTransition,
           replica_tag(transition.replica) + ": " + ft::to_string(transition.from) +
               " -> " + ft::to_string(transition.to) + " (tracked state " +
               ft::to_string(tracked[r]) + ")");
      break;
    }
    tracked[r] = transition.to;
    if (transition.to == ft::ReplicaHealth::kRestarting) ++restarts_per_replica[r];
    if (transition.to == ft::ReplicaHealth::kConvicted ||
        (transition.from == ft::ReplicaHealth::kHealthy &&
         transition.to == ft::ReplicaHealth::kDegraded)) {
      ++faults_seen_per_replica[r];
    }
  }
  for (int r = 0; r < 2; ++r) {
    if (obs.final_health[r] != tracked[r]) {
      flag(ViolationCode::kIllegalTransition,
           std::string("R") + std::to_string(r + 1) + " final health " +
               ft::to_string(obs.final_health[r]) +
               " does not match its transition log (" + ft::to_string(tracked[r]) +
               ")");
    }
    if (restarts_per_replica[r] > obs.restart_budget) {
      flag(ViolationCode::kBudgetExceeded,
           std::string("R") + std::to_string(r + 1) + " restarted " +
               std::to_string(restarts_per_replica[r]) + "x against a budget of " +
               std::to_string(obs.restart_budget));
    }
  }

  // --- trace-spine consistency ---------------------------------------------
  std::uint64_t counted = 0;
  for (std::size_t k = 0; k < trace::kEventKindCount; ++k) {
    const auto kind = static_cast<trace::EventKind>(k);
    if ((trace::kFlightRecorderMask & trace::bit(kind)) == 0) continue;
    counted += obs.metrics.counter(std::string("trace.events.") + trace::to_string(kind));
  }
  if (counted != obs.flight_total_events) {
    flag(ViolationCode::kSpineInconsistent,
         "flight recorder saw " + std::to_string(obs.flight_total_events) +
             " events but the counter sink totals " + std::to_string(counted));
  }
  for (int r = 0; r < 2; ++r) {
    const std::string prefix = "supervisor.R" + std::to_string(r + 1);
    const std::uint64_t restarts = obs.metrics.counter(prefix + ".restarts");
    if (restarts != static_cast<std::uint64_t>(restarts_per_replica[r])) {
      flag(ViolationCode::kSpineInconsistent,
           prefix + ".restarts = " + std::to_string(restarts) + " but the " +
               "transition log shows " + std::to_string(restarts_per_replica[r]));
    }
    const std::uint64_t faults_seen = obs.metrics.counter(prefix + ".faults_seen");
    if (faults_seen != faults_seen_per_replica[r]) {
      flag(ViolationCode::kSpineInconsistent,
           prefix + ".faults_seen = " + std::to_string(faults_seen) +
               " but the transition log shows " +
               std::to_string(faults_seen_per_replica[r]));
    }
  }

  // --- no-loss + liveness, gated on the Theorem-2 precondition -------------
  if (plan_is_lossless(plan.faults)) {
    if (gap_seen) {
      flag(ViolationCode::kSequenceGap,
           first_gap_prev < 0
               ? std::string("stream does not start at seq 0")
               : "gap after seq " + std::to_string(first_gap_prev) +
                     " on a lossless plan");
    }
    const rtc::TimeNs liveness_floor = plan.run_length - rtc::from_ms(100.0);
    if (obs.consumed_times.empty() || obs.consumed_times.back() < liveness_floor) {
      flag(ViolationCode::kStalledStream,
           obs.consumed_times.empty()
               ? std::string("nothing was ever delivered")
               : "last delivery at " + std::to_string(obs.consumed_times.back()) +
                     " ns, liveness floor " + std::to_string(liveness_floor) + " ns");
    }
  }

  // --- supervisor liveness (heartbeat), gated on a configured beacon -------
  if (obs.control_plane.enabled && obs.control_plane.heartbeat_period > 0) {
    // A healthy supervisor beats every heartbeat_period; a hung one that the
    // watchdog reset resumes within deadline + period. The floor allows both
    // plus slack — only a hang nothing ever cleared can undershoot it.
    const rtc::TimeNs heartbeat_floor =
        plan.run_length - (obs.control_plane.heartbeat_period +
                           obs.control_plane.watchdog_deadline + rtc::from_ms(50.0));
    if (obs.last_heartbeat < heartbeat_floor) {
      flag(ViolationCode::kSilentSupervisor,
           obs.last_heartbeat < 0
               ? std::string("no heartbeat was ever observed")
               : "last heartbeat at " + std::to_string(obs.last_heartbeat) +
                     " ns, floor " + std::to_string(heartbeat_floor) + " ns");
    }
    const std::uint64_t counted_beats = obs.metrics.counter("supervisor.heartbeats");
    if (counted_beats != obs.heartbeats) {
      flag(ViolationCode::kSpineInconsistent,
           "supervisor.heartbeats = " + std::to_string(counted_beats) +
               " but the bus observer saw " + std::to_string(obs.heartbeats));
    }
  }
  return violations;
}

}  // namespace sccft::chaos
