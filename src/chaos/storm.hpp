// Randomized multi-fault storm generation (the chaos soak's input side).
//
// A *storm* is a seeded-random fault plan drawn from the full FaultKind
// taxonomy of ft/fault_plan.hpp: several faults per run, hitting both
// replicas, the NoC links, and the channels, with randomized onsets and
// durations. Beyond uniform sampling, the generator deliberately composes
// the adversarial interleavings that single-fault campaigns never reach:
// a second fault landing during a reintegration window, corruption during a
// restart backoff, rate drift on one replica while the other goes silent,
// and mesh loss stacked on top of a replica outage (StreamGuard-style
// perturbation campaigns, arXiv:2606.30848).
//
// Every stochastic choice comes from one xoshiro256** stream seeded by the
// storm seed, so plan generation is bit-reproducible: the seed alone
// recreates the plan, and the serialized plan (ft/fault_plan.hpp) recreates
// the run without the generator.
//
// Storms are classified on generation: a plan is *lossless* iff the no-loss
// guarantee of the paper's Theorem 2 applies to it — every fault targets the
// SAME replica and the mesh is untouched, so the healthy peer covers the
// whole stream (even through restart-budget exhaustion, which degrades to
// single-replica pass-through). The invariant oracles (chaos/oracle.hpp) run
// the no-gap and liveness checks only on lossless plans; cross-replica and
// NoC storms keep the ordering, duplicate-freedom, and output-equivalence
// oracles, where genuine gaps are part of the designed semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "ft/fault_plan.hpp"
#include "rtc/time.hpp"

namespace sccft::chaos {

/// One generated chaos run input: the seed recreates `faults` exactly.
struct StormPlan {
  std::uint64_t seed = 0;
  rtc::TimeNs run_length = 0;
  std::vector<ft::FaultSpec> faults;
};

/// True iff the Theorem-2 no-loss guarantee applies: no NoC faults and all
/// replica faults hit one victim, leaving the peer to cover the stream.
[[nodiscard]] bool plan_is_lossless(const std::vector<ft::FaultSpec>& faults);

/// Reconfiguration-window cadence, shared by the soak runner (which opens a
/// benign live-resize window every period) and the adversarial template that
/// aims fault onsets into the quiesce->resume gap. One set of constants so
/// the generator's aim and the runner's windows cannot drift apart.
inline constexpr rtc::TimeNs kReconfigPeriodNs = 250'000'000;  ///< 250 ms
inline constexpr rtc::TimeNs kReconfigWindowNs = 2'000'000;    ///< 2 ms

struct StormConfig {
  rtc::TimeNs run_length = rtc::from_sec(2.0);
  /// Faults per storm, inclusive bounds.
  int min_faults = 1;
  int max_faults = 4;
  /// Permit kNocLink faults in adversarial storms.
  bool allow_noc = true;
  /// Probability of drawing an adversarial cross-replica template instead of
  /// a guarded single-victim (lossless) storm.
  double adversarial_probability = 0.5;
  /// Extend the taxonomy with control-plane faults (kSupervisorHang,
  /// kCounterCorruption, kTraceSinkStuck): every storm gains 1-2 attacks on
  /// the protection machinery, and two extra adversarial templates target
  /// the hang-during-reintegration and flip-plus-wedge interleavings. Off by
  /// default so existing soak lanes keep byte-identical plans.
  bool control_plane = false;
  /// Add the reconfiguration-window adversarial template: a fault whose
  /// onset lands between quiesce and resume of a live-resize window (the
  /// soak runner opens one every kReconfigPeriodNs when its ReconfigOptions
  /// are enabled), so deferred detection and held-writer wakeups run under
  /// fire. Off by default: existing lanes keep byte-identical plans.
  bool reconfigure = false;
};

/// Seeded storm factory. Stateless between calls: generate(seed) is a pure
/// function of (config, seed).
class StormGenerator final {
 public:
  explicit StormGenerator(StormConfig config = {});

  [[nodiscard]] StormPlan generate(std::uint64_t seed) const;

 private:
  StormConfig config_;
};

}  // namespace sccft::chaos
