#include "scc/messaging.hpp"

#include "util/assert.hpp"

namespace sccft::scc {

rtc::TimeNs MessagePassing::send(CoreId src, CoreId dst, std::size_t bytes,
                                 rtc::TimeNs now) {
  SCCFT_EXPECTS(src.valid() && dst.valid());
  ++messages_sent_;
  bytes_sent_ += static_cast<std::uint64_t>(bytes);
  per_pair_[{src.value, dst.value}] += 1;
  return noc_.transfer(src, dst, bytes, now);
}

std::uint64_t MessagePassing::messages_between(CoreId src, CoreId dst) const {
  const auto it = per_pair_.find({src.value, dst.value});
  return it == per_pair_.end() ? 0 : it->second;
}

}  // namespace sccft::scc
