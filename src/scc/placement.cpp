#include "scc/placement.hpp"

#include <algorithm>
#include <limits>

namespace sccft::scc {

namespace {

/// Candidate-scoring tuple compared lexicographically: weighted hop sum to
/// placed neighbours, then core load (balance), then distance from the mesh
/// center (cluster), then core id (determinism).
struct Score {
  std::uint64_t hop_cost = 0;
  int load = 0;
  int center_distance = 0;
  int core = 0;

  [[nodiscard]] bool operator<(const Score& other) const {
    if (hop_cost != other.hop_cost) return hop_cost < other.hop_cost;
    if (load != other.load) return load < other.load;
    if (center_distance != other.center_distance) {
      return center_distance < other.center_distance;
    }
    return core < other.core;
  }
};

}  // namespace

std::uint64_t Placement::cost(const std::vector<TrafficEdge>& edges) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& edge = edges[i];
    const int n = static_cast<int>(process_to_core.size());
    if (edge.from_process < 0 || edge.from_process >= n || edge.to_process < 0 ||
        edge.to_process >= n) {
      throw PlacementError("placement cost: TrafficEdge " + std::to_string(i) +
                           " references processes " +
                           std::to_string(edge.from_process) + " -> " +
                           std::to_string(edge.to_process) + " but placement has " +
                           std::to_string(n) + " processes");
    }
    const auto from = process_to_core[static_cast<std::size_t>(edge.from_process)];
    const auto to = process_to_core[static_cast<std::size_t>(edge.to_process)];
    total += edge.bytes_per_period *
             static_cast<std::uint64_t>(hop_count(from.tile(), to.tile()));
  }
  return total;
}

int Placement::tiles_used() const {
  std::array<bool, kTileCount> used{};
  for (const CoreId core : process_to_core) {
    used[static_cast<std::size_t>(core.tile().value)] = true;
  }
  return static_cast<int>(std::count(used.begin(), used.end(), true));
}

int Placement::max_core_load() const {
  return *std::max_element(core_load.begin(), core_load.end());
}

std::size_t Placement::max_tile_mpb_used() const {
  return *std::max_element(tile_mpb_used.begin(), tile_mpb_used.end());
}

Placement place_fleet(const PlacementRequest& request) {
  const auto n = request.processes.size();
  if (n == 0) {
    throw PlacementError("placement request has no processes");
  }
  const int process_count = static_cast<int>(n);
  for (std::size_t i = 0; i < request.edges.size(); ++i) {
    const auto& edge = request.edges[i];
    if (edge.from_process < 0 || edge.from_process >= process_count ||
        edge.to_process < 0 || edge.to_process >= process_count) {
      throw PlacementError("placement request: TrafficEdge " + std::to_string(i) +
                           " references processes " +
                           std::to_string(edge.from_process) + " -> " +
                           std::to_string(edge.to_process) +
                           " but the request has " + std::to_string(process_count) +
                           " processes");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (request.processes[i].mpb_bytes > request.tile_mpb_capacity) {
      throw PlacementError(
          "placement request: process " + std::to_string(i) + " ('" +
          request.processes[i].name + "') demands " +
          std::to_string(request.processes[i].mpb_bytes) +
          " MPB bytes but a tile holds only " +
          std::to_string(request.tile_mpb_capacity));
    }
  }

  // Sparse adjacency + traffic degree (dense N^2 matrices stop scaling at
  // fleet process counts).
  std::vector<std::vector<std::pair<int, std::uint64_t>>> adjacency(n);
  std::vector<std::uint64_t> degree(n, 0);
  for (const auto& edge : request.edges) {
    const auto a = static_cast<std::size_t>(edge.from_process);
    const auto b = static_cast<std::size_t>(edge.to_process);
    adjacency[a].emplace_back(edge.to_process, edge.bytes_per_period);
    adjacency[b].emplace_back(edge.from_process, edge.bytes_per_period);
    degree[a] += edge.bytes_per_period;
    degree[b] += edge.bytes_per_period;
  }

  // Placement order: heaviest communicators first (their neighbourhood is
  // still unconstrained), index-ascending among equals for determinism.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&degree](std::size_t a, std::size_t b) {
    return degree[a] > degree[b];
  });

  const TileId center = TileId::at(kMeshColumns / 2, kMeshRows / 2);
  Placement placement;
  placement.process_to_core.assign(n, CoreId{0});
  std::vector<bool> placed(n, false);
  // Per-tile set of anti-affinity groups already hosted there.
  std::array<std::vector<int>, kTileCount> tile_groups;

  for (const std::size_t p : order) {
    const PlacementProcess& process = request.processes[p];
    bool found = false;
    Score best{};
    for (int c = 0; c < kCoreCount; ++c) {
      const CoreId core{c};
      const auto tile = static_cast<std::size_t>(core.tile().value);
      if (request.max_processes_per_core > 0 &&
          placement.core_load[static_cast<std::size_t>(c)] >=
              request.max_processes_per_core) {
        continue;
      }
      if (placement.tile_mpb_used[tile] + process.mpb_bytes >
          request.tile_mpb_capacity) {
        continue;
      }
      if (process.anti_affinity_group >= 0 &&
          std::find(tile_groups[tile].begin(), tile_groups[tile].end(),
                    process.anti_affinity_group) != tile_groups[tile].end()) {
        continue;
      }
      Score score;
      score.core = c;
      score.load = placement.core_load[static_cast<std::size_t>(c)];
      score.center_distance = hop_count(core.tile(), center);
      for (const auto& [neighbour, weight] : adjacency[p]) {
        if (!placed[static_cast<std::size_t>(neighbour)]) continue;
        const TileId other =
            placement.process_to_core[static_cast<std::size_t>(neighbour)].tile();
        score.hop_cost +=
            weight * static_cast<std::uint64_t>(hop_count(core.tile(), other));
      }
      if (!found || score < best) {
        found = true;
        best = score;
      }
    }
    if (!found) {
      throw PlacementError(
          "placement infeasible: no core admits process " + std::to_string(p) +
          " ('" + process.name + "', stream " + std::to_string(process.stream) +
          ", group " + std::to_string(process.anti_affinity_group) + ", " +
          std::to_string(process.mpb_bytes) + " MPB bytes) — " +
          std::to_string(n) + " processes on " + std::to_string(kCoreCount) +
          " cores, max " + std::to_string(request.max_processes_per_core) +
          " per core, tile MPB capacity " +
          std::to_string(request.tile_mpb_capacity));
    }
    const CoreId core{best.core};
    const auto tile = static_cast<std::size_t>(core.tile().value);
    placement.process_to_core[p] = core;
    placement.core_load[static_cast<std::size_t>(best.core)] += 1;
    placement.tile_mpb_used[tile] += process.mpb_bytes;
    if (process.anti_affinity_group >= 0) {
      tile_groups[tile].push_back(process.anti_affinity_group);
    }
    placed[p] = true;
  }
  return placement;
}

}  // namespace sccft::scc
