#include "scc/noc.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::scc {

NocModel::NocModel(NocConfig config) : config_(config) {
  SCCFT_EXPECTS(config_.max_chunk_bytes > 0);
  SCCFT_EXPECTS(config_.router_frequency_hz > 0.0);
  SCCFT_EXPECTS(config_.link_bandwidth_bytes_per_sec > 0.0);
  link_busy_until_.fill(0);
}

TimeNs NocModel::transfer_chunk(TileId from, TileId to, std::size_t bytes,
                                TimeNs start) {
  ++chunks_sent_;
  const TimeNs serialization = config_.serialization_latency(bytes);
  if (from == to) {
    return start + serialization;
  }
  const auto route = xy_route(from, to);
  TimeNs t = start;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const Link link{route[i], route[i + 1]};
    const int idx = link_index(link);
    if (config_.model_contention) {
      TimeNs& busy_until = link_busy_until_[static_cast<std::size_t>(idx)];
      if (busy_until > t) {
        contention_stalls_++;
        t = busy_until;
      }
      // The chunk occupies the link for its serialization time (wormhole
      // pipelining: the head moves on after one hop latency, but the body
      // streams through for the serialization duration).
      busy_until = t + config_.hop_latency() + serialization;
      link_busy_ns_[static_cast<std::size_t>(idx)] +=
          config_.hop_latency() + serialization;
    }
    t += config_.hop_latency();
  }
  return t + serialization;
}

TimeNs NocModel::transfer_chunks_fault_free(TileId from, TileId to, std::size_t chunks,
                                            std::size_t last_chunk_bytes, TimeNs start) {
  // Closed form for the tail chunks of one fault-free message (all full-size
  // except the last). Chunk k+1 reaches each link of the XY route strictly
  // no earlier than chunk k's reservation on it expires: chunk k+1 starts at
  // chunk k's arrival (hops*t_hop + s later than chunk k started), while the
  // reservation at link j only extends t_hop + s past chunk k's passage — so
  // after the first chunk cleared any foreign reservations, the rest of the
  // message streams through stall-free and only the *final* chunk's link
  // reservations survive. That makes per-chunk link walking equivalent to
  // one sized event: identical arrival, identical final link state,
  // identical counters (zero stalls).
  chunks_sent_ += chunks;
  const TimeNs s_full = config_.serialization_latency(config_.max_chunk_bytes);
  const TimeNs s_last =
      config_.serialization_latency(std::max<std::size_t>(last_chunk_bytes, 1));
  if (from == to) {
    return start + static_cast<TimeNs>(chunks - 1) * s_full + s_last;
  }
  const auto route = xy_route(from, to);
  const auto hops = static_cast<TimeNs>(route.size() - 1);
  const TimeNs hop = config_.hop_latency();
  const TimeNs last_start =
      start + static_cast<TimeNs>(chunks - 1) * (hops * hop + s_full);
  if (config_.model_contention) {
    TimeNs t = last_start;
    // Busy-time accounting matches the per-chunk walk it replaces: every
    // chunk occupied each route link for hop + serialization.
    const TimeNs occupancy =
        static_cast<TimeNs>(chunks - 1) * (hop + s_full) + (hop + s_last);
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      const Link link{route[i], route[i + 1]};
      const auto idx = static_cast<std::size_t>(link_index(link));
      link_busy_until_[idx] = t + hop + s_last;
      link_busy_ns_[idx] += occupancy;
      t += hop;
    }
  }
  return last_start + hops * hop + s_last;
}

TimeNs NocModel::max_link_busy_ns() const {
  return *std::max_element(link_busy_ns_.begin(), link_busy_ns_.end());
}

TimeNs NocModel::total_link_busy_ns() const {
  TimeNs total = 0;
  for (const TimeNs busy : link_busy_ns_) total += busy;
  return total;
}

TimeNs NocModel::transfer(CoreId src, CoreId dst, std::size_t bytes, TimeNs start) {
  return transfer_ex(src, dst, bytes, start).arrival;
}

NocTransferOutcome NocModel::transfer_ex(CoreId src, CoreId dst, std::size_t bytes,
                                         TimeNs start) {
  SCCFT_EXPECTS(src.valid() && dst.valid());
  SCCFT_EXPECTS(start >= 0);
  NocTransferOutcome outcome;
  const bool faulted = faults_active(start);
  TimeNs t = start + config_.software_overhead_ns;
  if (!faulted) {
    // Fault-free fast path: the first chunk walks the route normally (it may
    // stall on other messages' reservations); the remainder of the message is
    // a single closed-form event (see transfer_chunks_fault_free).
    const std::size_t first = std::min(bytes, config_.max_chunk_bytes);
    t = transfer_chunk(src.tile(), dst.tile(), std::max<std::size_t>(first, 1), t);
    const std::size_t remaining = bytes - first;
    if (remaining > 0) {
      const std::size_t rest_chunks =
          (remaining + config_.max_chunk_bytes - 1) / config_.max_chunk_bytes;
      const std::size_t last =
          remaining - (rest_chunks - 1) * config_.max_chunk_bytes;
      t = transfer_chunks_fault_free(src.tile(), dst.tile(), rest_chunks, last, t);
    }
    outcome.arrival = t;
    return outcome;
  }
  std::size_t remaining = bytes;
  do {
    const std::size_t chunk = std::min(remaining, config_.max_chunk_bytes);
    // Bounded retransmission: a dropped chunk is resent after the sender's
    // timeout; once the attempt budget is exhausted the whole message is
    // lost (healthy traffic degrades to extra latency, not silence).
    bool chunk_delivered = false;
    for (int attempt = 0; attempt <= fault_plan_->max_retries; ++attempt) {
      if (attempt > 0) {
        ++retransmissions_;
        ++outcome.retransmissions;
      }
      const TimeNs arrival = transfer_chunk(src.tile(), dst.tile(),
                                            std::max<std::size_t>(chunk, 1), t);
      if (fault_rng_.chance(fault_plan_->chunk_drop_probability)) {
        ++chunks_dropped_;
        t += fault_plan_->retry_timeout_ns;
        continue;
      }
      t = arrival;
      if (fault_plan_->chunk_delay_probability > 0.0 &&
          fault_rng_.chance(fault_plan_->chunk_delay_probability)) {
        ++chunks_delayed_;
        t += fault_rng_.uniform_int(fault_plan_->delay_min_ns,
                                    std::max(fault_plan_->delay_min_ns,
                                             fault_plan_->delay_max_ns));
      }
      chunk_delivered = true;
      break;
    }
    if (!chunk_delivered) {
      ++messages_lost_;
      outcome.delivered = false;
      outcome.arrival = t;
      return outcome;
    }
    remaining -= chunk;
  } while (remaining > 0);
  outcome.arrival = t;
  return outcome;
}

void NocModel::inject_faults(const NocFaultPlan& plan) {
  SCCFT_EXPECTS(plan.chunk_drop_probability >= 0.0 && plan.chunk_drop_probability <= 1.0);
  SCCFT_EXPECTS(plan.chunk_delay_probability >= 0.0 && plan.chunk_delay_probability <= 1.0);
  SCCFT_EXPECTS(plan.max_retries >= 0);
  SCCFT_EXPECTS(plan.retry_timeout_ns >= 0);
  SCCFT_EXPECTS(plan.window_start <= plan.window_end);
  fault_plan_ = plan;
  fault_rng_ = util::Xoshiro256(plan.seed);
}

void NocModel::clear_faults() { fault_plan_.reset(); }

TimeNs NocModel::estimate_latency(CoreId src, CoreId dst, std::size_t bytes) const {
  SCCFT_EXPECTS(src.valid() && dst.valid());
  const std::size_t chunks = std::max<std::size_t>(
      1, (bytes + config_.max_chunk_bytes - 1) / config_.max_chunk_bytes);
  const int hops = hop_count(src.tile(), dst.tile());
  TimeNs latency = config_.software_overhead_ns;
  latency += static_cast<TimeNs>(chunks) *
             (static_cast<TimeNs>(hops) * config_.hop_latency() +
              config_.serialization_latency(
                  std::max<std::size_t>(1, std::min(bytes, config_.max_chunk_bytes))));
  return latency;
}

}  // namespace sccft::scc
