// Low-contention process-to-tile mapping.
//
// The paper maps "only one process per tile in a way which reduces cross
// traffic at the routers" (Section 4.1, citing Zimmer et al., RTAS 2012).
// This module reproduces that policy: given the process communication graph
// (edges weighted by traffic volume), it greedily places processes on
// distinct tiles so that heavily-communicating processes end up on adjacent
// tiles, minimizing weighted hop counts and hence shared-link contention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scc/topology.hpp"

namespace sccft::scc {

struct TrafficEdge {
  int from_process = 0;
  int to_process = 0;
  std::uint64_t bytes_per_period = 0;  ///< traffic weight
};

/// Result of mapping: process index -> core (core 0 of its assigned tile).
struct Mapping {
  std::vector<CoreId> process_to_core;

  /// Total cost = sum over edges of weight * hop_count.
  [[nodiscard]] std::uint64_t cost(const std::vector<TrafficEdge>& edges) const;
};

/// Greedy low-contention placement of `process_count` processes (each gets
/// its own tile; process_count <= kTileCount — for multi-stream fleets with
/// more processes than tiles, see scc/placement.hpp).
///
/// Strategy: seed the process with the largest total traffic at the mesh
/// center; then repeatedly place the unplaced process with the strongest ties
/// to already-placed ones on the free tile minimizing its weighted hop sum.
/// Deterministic tie-breaks (lowest process index / lowest tile id).
/// Precondition failures (process_count outside [1, kTileCount], an edge
/// referencing an out-of-range process) throw ContractViolation with the
/// offending counts in the message.
[[nodiscard]] Mapping map_low_contention(int process_count,
                                         const std::vector<TrafficEdge>& edges);

/// Baseline used for the mapping ablation: processes placed on tiles in
/// simple row-major order.
[[nodiscard]] Mapping map_row_major(int process_count);

}  // namespace sccft::scc
