#include "scc/baremetal.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/assert.hpp"

namespace sccft::scc {

BootReport baremetal_boot(Platform& platform, BaremetalConfig config) {
  SCCFT_EXPECTS(config.core_release_stagger >= 0);
  SCCFT_EXPECTS(config.per_core_init >= 0);
  SCCFT_EXPECTS(config.barrier_margin >= 0);

  sim::Simulator& sim = platform.simulator();
  BootReport report;
  report.core_ready_at.assign(kCoreCount, 0);

  // The bootloader releases cores one after another; each runs its init
  // (cache/interrupt configuration, MPB clear, kernel entry).
  rtc::TimeNs last_ready = sim.now();
  for (int core = 0; core < kCoreCount; ++core) {
    const rtc::TimeNs release =
        sim.now() + static_cast<rtc::TimeNs>(core) * config.core_release_stagger;
    const rtc::TimeNs ready = release + config.per_core_init;
    report.core_ready_at[static_cast<std::size_t>(core)] = ready;
    last_ready = std::max(last_ready, ready);
    sim.schedule_at(ready, [] { /* core is up */ });
  }

  // Barrier: once the last core is up (plus margin), synchronize all TSCs.
  const rtc::TimeNs barrier = last_ready + config.barrier_margin;
  sim.schedule_at(barrier, [&platform] { platform.synchronize_clocks(); });
  const bool ok = sim.run_until(barrier);
  SCCFT_ENSURES(ok);
  report.sync_barrier_at = barrier;

  // Measure the residual skew right after synchronization.
  rtc::TimeNs max_skew = 0;
  for (int core = 0; core < kCoreCount; ++core) {
    const rtc::TimeNs skew = std::abs(platform.local_time(CoreId{core}) - sim.now());
    max_skew = std::max(max_skew, skew);
  }
  report.max_skew_after_sync = max_skew;
  report.l2_disabled = !platform.config().l2_cache_enabled;
  report.interrupts_disabled = !platform.config().interrupts_enabled;
  return report;
}

}  // namespace sccft::scc
