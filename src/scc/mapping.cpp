#include "scc/mapping.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace sccft::scc {

namespace {

/// Diagnostic-carrying precondition failures: a mapping request that names a
/// process outside [0, process_count) or asks for more processes than tiles
/// must die with the offending numbers in the message, not a bare `cond`
/// string (and must never index out of bounds in release builds).
void check_edge_in_range(const TrafficEdge& edge, std::size_t edge_index,
                         int process_count) {
  if (edge.from_process < 0 || edge.from_process >= process_count ||
      edge.to_process < 0 || edge.to_process >= process_count) {
    util::contract_failure_msg(
        "precondition",
        "TrafficEdge " + std::to_string(edge_index) + " references processes " +
            std::to_string(edge.from_process) + " -> " +
            std::to_string(edge.to_process) + " but process_count is " +
            std::to_string(process_count),
        __FILE__, __LINE__);
  }
}

void check_process_count_fits(int process_count) {
  if (process_count <= 0 || process_count > kTileCount) {
    util::contract_failure_msg(
        "precondition",
        "process_count " + std::to_string(process_count) +
            " outside the one-process-per-tile range [1, " +
            std::to_string(kTileCount) +
            "] (use scc::place_fleet for multi-stream placement)",
        __FILE__, __LINE__);
  }
}

}  // namespace

std::uint64_t Mapping::cost(const std::vector<TrafficEdge>& edges) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& edge = edges[i];
    check_edge_in_range(edge, i, static_cast<int>(process_to_core.size()));
    const auto from = process_to_core[static_cast<std::size_t>(edge.from_process)];
    const auto to = process_to_core[static_cast<std::size_t>(edge.to_process)];
    total += edge.bytes_per_period *
             static_cast<std::uint64_t>(hop_count(from.tile(), to.tile()));
  }
  return total;
}

Mapping map_low_contention(int process_count, const std::vector<TrafficEdge>& edges) {
  check_process_count_fits(process_count);
  const auto n = static_cast<std::size_t>(process_count);

  // Dense symmetric traffic matrix.
  std::vector<std::vector<std::uint64_t>> traffic(n, std::vector<std::uint64_t>(n, 0));
  std::vector<std::uint64_t> degree(n, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& edge = edges[i];
    check_edge_in_range(edge, i, process_count);
    const auto a = static_cast<std::size_t>(edge.from_process);
    const auto b = static_cast<std::size_t>(edge.to_process);
    traffic[a][b] += edge.bytes_per_period;
    traffic[b][a] += edge.bytes_per_period;
    degree[a] += edge.bytes_per_period;
    degree[b] += edge.bytes_per_period;
  }

  std::vector<int> process_tile(n, -1);
  std::vector<bool> tile_used(kTileCount, false);

  // Seed: heaviest-traffic process at the mesh center.
  std::size_t seed = 0;
  for (std::size_t p = 1; p < n; ++p) {
    if (degree[p] > degree[seed]) seed = p;
  }
  const TileId center = TileId::at(kMeshColumns / 2, kMeshRows / 2);
  process_tile[seed] = center.value;
  tile_used[static_cast<std::size_t>(center.value)] = true;

  for (std::size_t placed = 1; placed < n; ++placed) {
    // Pick the unplaced process with the strongest ties to placed processes.
    std::size_t best_process = n;
    std::uint64_t best_tie = 0;
    for (std::size_t p = 0; p < n; ++p) {
      if (process_tile[p] >= 0) continue;
      std::uint64_t tie = 0;
      for (std::size_t q = 0; q < n; ++q) {
        if (process_tile[q] >= 0) tie += traffic[p][q];
      }
      if (best_process == n || tie > best_tie) {
        best_process = p;
        best_tie = tie;
      }
    }
    SCCFT_ASSERT(best_process < n);

    // Place it on the free tile minimizing its weighted hop sum (falling back
    // to distance-from-center for isolated processes).
    int best_tile = -1;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    for (int t = 0; t < kTileCount; ++t) {
      if (tile_used[static_cast<std::size_t>(t)]) continue;
      std::uint64_t cost = 0;
      for (std::size_t q = 0; q < n; ++q) {
        if (process_tile[q] < 0) continue;
        cost += traffic[best_process][q] *
                static_cast<std::uint64_t>(hop_count(TileId{t}, TileId{process_tile[q]}));
      }
      // Deterministic tie-break: prefer tiles closer to the center, then
      // lower tile id.
      const std::uint64_t tiebreak =
          cost * 1000 + static_cast<std::uint64_t>(hop_count(TileId{t}, center)) * 10 +
          static_cast<std::uint64_t>(t) % 10;
      if (best_tile < 0 || tiebreak < best_cost) {
        best_tile = t;
        best_cost = tiebreak;
      }
    }
    SCCFT_ASSERT(best_tile >= 0);
    process_tile[best_process] = best_tile;
    tile_used[static_cast<std::size_t>(best_tile)] = true;
  }

  Mapping mapping;
  mapping.process_to_core.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    mapping.process_to_core.push_back(
        CoreId{process_tile[p] * kCoresPerTile});  // core 0 of the tile
  }
  return mapping;
}

Mapping map_row_major(int process_count) {
  check_process_count_fits(process_count);
  Mapping mapping;
  mapping.process_to_core.reserve(static_cast<std::size_t>(process_count));
  for (int p = 0; p < process_count; ++p) {
    mapping.process_to_core.push_back(CoreId{p * kCoresPerTile});
  }
  return mapping;
}

}  // namespace sccft::scc
