#include "scc/platform.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::scc {

Platform::Platform(sim::Simulator& sim, BootConfig config)
    : sim_(sim),
      config_(config),
      noc_(NocConfig{.router_frequency_hz = config.router_frequency_hz,
                     .cycles_per_hop = 4,
                     .software_overhead_ns = 2'000,
                     .link_bandwidth_bytes_per_sec = config.tile_frequency_hz,
                     .max_chunk_bytes = 3 * 1024,
                     .model_contention = true}) {
  SCCFT_EXPECTS(config_.tile_frequency_hz > 0.0);
  util::Xoshiro256 rng(config_.clock_seed);
  clocks_.reserve(kCoreCount);
  for (int core = 0; core < kCoreCount; ++core) {
    const double drift_ppm =
        rng.uniform(-config_.max_clock_drift_ppm, config_.max_clock_drift_ppm);
    const auto offset_ns = static_cast<rtc::TimeNs>(rng.uniform_int(0, 1'000'000));
    clocks_.emplace_back(config_.tile_frequency_hz, drift_ppm, offset_ns);
  }
}

sim::TscClock& Platform::clock(CoreId core) {
  SCCFT_EXPECTS(core.valid());
  return clocks_[static_cast<std::size_t>(core.value)];
}

const sim::TscClock& Platform::clock(CoreId core) const {
  SCCFT_EXPECTS(core.valid());
  return clocks_[static_cast<std::size_t>(core.value)];
}

void Platform::synchronize_clocks() {
  for (auto& clock : clocks_) clock.synchronize(sim_.now());
}

rtc::TimeNs Platform::local_time(CoreId core) const {
  return clock(core).local_time_at(sim_.now());
}

}  // namespace sccft::scc
