// Off-chip DRAM path model.
//
// The SCC has four DDR3 memory controllers at the mesh edges; messages that
// do not fit the MPB go through shared DRAM. The paper's setup explicitly
// avoids this path ("all data was sent/received in chunk sizes not exceeding
// 3KB, ensuring that all messages are routed exclusively via the message
// passing buffers") because DRAM access is a shared, contended resource that
// ruins timing predictability. This module models that alternative so the
// avoidance can be quantified: each core is affine to its quadrant's
// controller; a transfer pays mesh hops to the controller, a queued DRAM
// service time at the controller (FCFS, one request at a time), and hops to
// the destination.
#pragma once

#include <array>
#include <cstddef>

#include "rtc/time.hpp"
#include "scc/noc.hpp"
#include "scc/topology.hpp"

namespace sccft::scc {

struct DramConfig {
  double ddr_frequency_hz = 800e6;
  double bandwidth_bytes_per_sec = 1.6e9;  ///< effective per-controller
  rtc::TimeNs access_latency = rtc::from_us(1);  ///< row activation etc.
};

inline constexpr int kMemoryControllerCount = 4;

/// The memory controller serving a tile (quadrant affinity, as on the SCC).
[[nodiscard]] int controller_of(TileId tile);

/// Mesh tile adjacent to a controller (where its traffic enters the mesh).
[[nodiscard]] TileId controller_tile(int controller);

/// DRAM-path transfers: source core writes to DRAM through its controller,
/// destination core reads it back through the same controller. Controllers
/// are serially-reusable (FCFS): concurrent requests queue, which is exactly
/// the unpredictability the paper's MPB-only policy avoids.
class DramModel final {
 public:
  DramModel(NocModel& noc, DramConfig config = {});

  /// Full transfer src -> DRAM -> dst; returns completion time and occupies
  /// the controller for the service duration.
  [[nodiscard]] rtc::TimeNs transfer(CoreId src, CoreId dst, std::size_t bytes,
                                     rtc::TimeNs start);

  /// Contention-free latency estimate (for comparison/planning).
  [[nodiscard]] rtc::TimeNs estimate_latency(CoreId src, CoreId dst, std::size_t bytes) const;

  [[nodiscard]] std::uint64_t queued_requests() const { return queued_; }
  [[nodiscard]] const DramConfig& config() const { return config_; }

 private:
  [[nodiscard]] rtc::TimeNs service_time(std::size_t bytes) const;

  NocModel& noc_;
  DramConfig config_;
  std::array<rtc::TimeNs, kMemoryControllerCount> busy_until_{};
  std::uint64_t queued_ = 0;
};

}  // namespace sccft::scc
