// The simulated SCC platform: boot configuration, per-core clocks, NoC.
//
// Mirrors the paper's experimental setup (Section 4.1): baremetal mode, L2
// caches off, interrupts disabled, tile frequency 533 MHz, router frequency
// 800 MHz, DDR3 at 800 MHz, all core clocks synchronized at application boot.
#pragma once

#include <memory>
#include <vector>

#include "rtc/time.hpp"
#include "scc/noc.hpp"
#include "scc/topology.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace sccft::scc {

/// Boot parameters, defaulting to the paper's configuration.
struct BootConfig {
  double tile_frequency_hz = 533e6;
  double router_frequency_hz = 800e6;
  double ddr_frequency_hz = 800e6;
  bool l2_cache_enabled = false;   ///< paper: switched off for predictability
  bool interrupts_enabled = false; ///< paper: disabled
  double max_clock_drift_ppm = 5.0;  ///< crystal tolerance across tiles
  std::uint64_t clock_seed = 42;     ///< seed for per-core drift/offset draws
};

/// A booted SCC: owns the NoC model and one TSC clock per core.
class Platform final {
 public:
  explicit Platform(sim::Simulator& sim, BootConfig config = {});

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const BootConfig& config() const { return config_; }
  [[nodiscard]] NocModel& noc() { return noc_; }
  [[nodiscard]] const NocModel& noc() const { return noc_; }

  [[nodiscard]] sim::TscClock& clock(CoreId core);
  [[nodiscard]] const sim::TscClock& clock(CoreId core) const;

  /// Boot-time barrier: synchronizes every core's TSC to the current
  /// simulated time (paper: "All clocks are synchronized at application boot
  /// time in order to get valid timing results").
  void synchronize_clocks();

  /// Local TSC-derived timestamp on `core` at the current simulated time.
  [[nodiscard]] rtc::TimeNs local_time(CoreId core) const;

 private:
  sim::Simulator& sim_;
  BootConfig config_;
  NocModel noc_;
  std::vector<sim::TscClock> clocks_;
};

}  // namespace sccft::scc
