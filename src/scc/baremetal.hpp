// Baremetal boot sequence model (paper Section 4.1 / reference [14],
// BareMichael).
//
// The paper's experimental setup boots the SCC without an OS: cores come up
// staggered (the bootloader releases them one after another), caches and
// interrupts are configured per core, and all time-stamp counters are
// synchronized at a barrier before the application starts — "All clocks are
// synchronized at application boot time in order to get valid timing
// results". This module reproduces that sequence on the simulated platform
// so experiments start from a faithful initial state, and exposes the boot
// report (per-core release times, post-sync clock skew) for validation.
#pragma once

#include <vector>

#include "scc/platform.hpp"

namespace sccft::scc {

struct BaremetalConfig {
  /// Delay between consecutive core releases by the bootloader.
  rtc::TimeNs core_release_stagger = rtc::from_us(50);
  /// Per-core init (cache config, MPB clear, baremetal kernel entry).
  rtc::TimeNs per_core_init = rtc::from_us(200);
  /// Barrier slop: how long after the last core the sync point fires.
  rtc::TimeNs barrier_margin = rtc::from_us(20);
};

struct BootReport {
  std::vector<rtc::TimeNs> core_ready_at;  ///< per-core init completion time
  rtc::TimeNs sync_barrier_at = 0;         ///< when clocks were synchronized
  rtc::TimeNs max_skew_after_sync = 0;     ///< |local - global| right after sync
  bool l2_disabled = false;
  bool interrupts_disabled = false;
};

/// Runs the boot sequence on `platform` (advancing its simulator) and
/// returns the report. Postconditions: simulator time == sync_barrier_at,
/// and every core's TSC-derived local time agrees with global time to within
/// a few nanoseconds.
[[nodiscard]] BootReport baremetal_boot(Platform& platform,
                                        BaremetalConfig config = {});

}  // namespace sccft::scc
