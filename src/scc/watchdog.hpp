// Per-tile hardware watchdog timer — the last line of defense.
//
// On real SCC silicon every software layer of the fault-tolerance stack —
// the selector's detection rules, the Supervisor's restart machinery, even
// the trace spine — runs on the same cores it protects. A hung core takes
// its defenses down with it. The classical answer (cf. "Fault Tolerant Real
// Time Systems", arXiv:1001.3756) is a hardware timer that software can only
// *delay*, never stop: the task loop kicks it every iteration, and if the
// deadline passes without a kick the timer force-resets the core through a
// path no software hang can block.
//
// This model keeps that independence in simulated time:
//
//  * `kick(channel)` only records the kick timestamp — no trace event, no
//    allocation, nothing on the simulator queue. It is cheap enough to call
//    once per task-loop iteration.
//  * `arm_all()` schedules one deadline check per channel. A check fired at
//    time t re-arms itself at `last_kick + deadline + 1`; a kick landing
//    *exactly* at `last_kick + deadline` therefore still counts as alive
//    (the check runs one tick later and sees it). Exactly one check event
//    per channel is outstanding at any time, so the watchdog's load on the
//    event queue is O(channels), independent of kick rate.
//  * On expiry the watchdog emits an always-on kWatchdogReset event, bumps
//    the per-channel `watchdog.<label>.resets` metric, and invokes the
//    channel's ResetHandler — which feeds the Supervisor's existing
//    restart-budget accounting (see Supervisor::on_core_watchdog_reset).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scc/topology.hpp"
#include "sim/simulator.hpp"

namespace sccft::scc {

class WatchdogTimer final {
 public:
  /// Invoked from the watchdog's own timer context when a channel expires.
  /// The handler models the hardware reset line: it must not assume any
  /// software on the watched core is still making progress.
  using ResetHandler = std::function<void()>;

  struct Config {
    /// Maximum time between kicks before the reset line fires.
    rtc::TimeNs deadline = rtc::from_ms(100.0);
    /// Subject-name prefix for trace events and metrics.
    std::string name = "watchdog";
  };

  explicit WatchdogTimer(sim::Simulator& sim, Config config);

  WatchdogTimer(const WatchdogTimer&) = delete;
  WatchdogTimer& operator=(const WatchdogTimer&) = delete;

  /// Registers a watched heartbeat source on `tile`. Returns the channel
  /// index used with kick(). Must be called before arm_all().
  int add_channel(std::string label, TileId tile, ResetHandler on_reset);

  /// Records a heartbeat on `channel` at the current simulated time.
  void kick(int channel);

  /// Starts the deadline checks. Every channel's kick clock begins at the
  /// current simulated time.
  void arm_all();

  [[nodiscard]] rtc::TimeNs deadline() const { return config_.deadline; }
  [[nodiscard]] int channel_count() const { return static_cast<int>(channels_.size()); }
  [[nodiscard]] std::uint64_t resets(int channel) const;
  [[nodiscard]] std::uint64_t total_resets() const;
  [[nodiscard]] rtc::TimeNs last_kick(int channel) const;

 private:
  struct Channel {
    std::string label;
    TileId tile;
    ResetHandler on_reset;
    trace::SubjectId subject = 0;
    rtc::TimeNs last_kick = 0;
    std::uint64_t resets = 0;
  };

  void check(int index);
  void schedule_check(int index, rtc::TimeNs at);

  sim::Simulator& sim_;
  Config config_;
  std::vector<Channel> channels_;
  bool armed_ = false;
};

}  // namespace sccft::scc
