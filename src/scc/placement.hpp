// Fleet-scale process placement onto the shared SCC mesh.
//
// The paper's mapper (scc/mapping.hpp) places one process per tile — fine
// for a single stream's six processes, useless for a fleet of dozens of
// concurrent KPN streams whose processes outnumber the 24 tiles several
// times over. This module promotes placement to a first-class, testable
// component:
//
//   * multiple processes per tile/core, load-balanced with deterministic
//     tie-breaks (cost, then core load, then distance from the mesh center,
//     then lowest core id — same request, same placement, always);
//   * replica anti-affinity: processes sharing an `anti_affinity_group`
//     (a critical stream's replica pair) are never placed on the same tile,
//     so one tile-level fault cannot silence both replicas;
//   * MPB-space accounting: each process declares the message-passing-buffer
//     bytes its input FIFOs pin on its tile; a tile whose 16 KiB MPB cannot
//     hold another process's demand is not a candidate. Placement fails
//     loudly (PlacementError with the offending numbers) when no feasible
//     core exists, instead of silently oversubscribing the buffers.
//
// The greedy strategy generalizes map_low_contention: processes are placed
// in order of descending traffic degree (index-ascending among equals), each
// on the feasible core minimizing its weighted hop sum to already-placed
// neighbours, with the load/center/id tiebreak chain breaking cost ties.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "scc/mapping.hpp"
#include "scc/topology.hpp"

namespace sccft::scc {

/// One process of a fleet placement request.
struct PlacementProcess {
  std::string name;             ///< diagnostics only
  int stream = -1;              ///< owning stream index (diagnostics/reporting)
  /// Processes with the same non-negative group never share a tile (replica
  /// anti-affinity). -1 = unconstrained.
  int anti_affinity_group = -1;
  /// MPB bytes this process's input FIFOs pin on its tile (Eq. (3)/(4)
  /// capacities x token size for replicator/selector queues).
  std::size_t mpb_bytes = 0;
};

struct PlacementRequest {
  std::vector<PlacementProcess> processes;
  /// Traffic edges between process indices (same weights as scc::Mapping).
  std::vector<TrafficEdge> edges;
  /// Hard cap on processes per core; 0 = unlimited (load still enters the
  /// tiebreak chain, so placement balances even without a cap).
  int max_processes_per_core = 0;
  /// Per-tile MPB capacity the per-process demands are accounted against.
  std::size_t tile_mpb_capacity = static_cast<std::size_t>(kMpbBytesPerTile);
};

/// Thrown when a request is malformed (edge referencing an out-of-range
/// process) or infeasible (no core satisfies anti-affinity + MPB + load for
/// some process). The message carries the offending counts.
class PlacementError final : public std::runtime_error {
 public:
  explicit PlacementError(const std::string& what) : std::runtime_error(what) {}
};

/// Result of a fleet placement.
struct Placement {
  std::vector<CoreId> process_to_core;
  std::array<std::size_t, kTileCount> tile_mpb_used{};
  std::array<int, kCoreCount> core_load{};

  /// Total cost = sum over edges of weight * hop_count (same metric as
  /// Mapping::cost, so fleet placements compare against the paper's mapper).
  [[nodiscard]] std::uint64_t cost(const std::vector<TrafficEdge>& edges) const;

  [[nodiscard]] int tiles_used() const;
  [[nodiscard]] int max_core_load() const;
  [[nodiscard]] std::size_t max_tile_mpb_used() const;
};

/// Deterministic greedy fleet placement. Throws PlacementError on malformed
/// or infeasible requests (see class comment).
[[nodiscard]] Placement place_fleet(const PlacementRequest& request);

}  // namespace sccft::scc
