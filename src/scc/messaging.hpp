// iRCCE-style message-passing facade over the NoC model.
//
// The paper uses the iRCCE non-blocking communication library on the
// baremetal SCC. The KPN channel layer needs only its interface-level
// contract: a message of B bytes handed to the library at time t on core s is
// fully available to core d at t + L(s, d, B), with L given by the chunked
// MPB transfer model in noc.hpp. This facade exposes exactly that, plus send
// counters per endpoint pair for experiment bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "rtc/time.hpp"
#include "scc/noc.hpp"
#include "scc/topology.hpp"

namespace sccft::scc {

class MessagePassing final {
 public:
  explicit MessagePassing(NocModel& noc) : noc_(noc) {}

  /// Initiates a non-blocking send of `bytes` at time `now`; returns the time
  /// the payload is fully visible in the receiver's MPB.
  [[nodiscard]] rtc::TimeNs send(CoreId src, CoreId dst, std::size_t bytes, rtc::TimeNs now);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_between(CoreId src, CoreId dst) const;

 private:
  NocModel& noc_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::map<std::pair<int, int>, std::uint64_t> per_pair_;
};

}  // namespace sccft::scc
