// Cycle-approximate model of the SCC's 2D-mesh network-on-chip.
//
// Transfers between cores go through per-tile message-passing buffers (MPB).
// Following the paper's setup (Section 4.1): router frequency 800 MHz, tile
// frequency 533 MHz, payloads chunked so no message exceeds 3 KiB ("ensuring
// that all messages are routed exclusively via the message passing buffers").
//
// The latency model per chunk is
//   t_chunk = t_sw + hops * t_hop + bytes / bw_link
// where t_sw is the software send/receive overhead of the iRCCE-style
// library, t_hop the per-router forwarding latency, and bw_link the effective
// MPB-to-MPB copy bandwidth. Links are modelled as serially-reusable
// resources: a chunk occupies every link of its XY route for its
// serialization time, so concurrent transfers crossing the same link are
// delayed (the paper avoids exactly this by low-contention mapping, which the
// mapper in mapping.hpp reproduces).
#pragma once

#include <array>
#include <cstdint>

#include "rtc/time.hpp"
#include "scc/topology.hpp"

namespace sccft::scc {

using rtc::TimeNs;

/// Tunable latency/bandwidth parameters of the NoC model.
struct NocConfig {
  double router_frequency_hz = 800e6;
  int cycles_per_hop = 4;            ///< router forwarding latency per hop
  TimeNs software_overhead_ns = 2'000;  ///< iRCCE send+recv software path
  double link_bandwidth_bytes_per_sec = 533e6;  ///< MPB copy bandwidth
  int max_chunk_bytes = 3 * 1024;    ///< paper: chunk size <= 3 KiB
  bool model_contention = true;      ///< serialize chunks on shared links

  [[nodiscard]] TimeNs hop_latency() const {
    return static_cast<TimeNs>(static_cast<double>(cycles_per_hop) /
                               router_frequency_hz * 1e9);
  }
  [[nodiscard]] TimeNs serialization_latency(int bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) /
                               link_bandwidth_bytes_per_sec * 1e9);
  }
};

/// Stateful NoC: computes message arrival times, accounting for chunking and
/// (optionally) link contention. Deterministic: same call sequence, same
/// results.
class NocModel final {
 public:
  explicit NocModel(NocConfig config = {});

  /// Computes when a `bytes`-sized message sent at `start` from `src` to
  /// `dst` is fully received, updating link occupancy. Same-tile transfers
  /// cost only the software overhead plus one MPB copy.
  [[nodiscard]] TimeNs transfer(CoreId src, CoreId dst, int bytes, TimeNs start);

  /// Pure latency query that does not reserve links (used for planning).
  [[nodiscard]] TimeNs estimate_latency(CoreId src, CoreId dst, int bytes) const;

  [[nodiscard]] const NocConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t chunks_sent() const { return chunks_sent_; }
  [[nodiscard]] std::uint64_t contention_stalls() const { return contention_stalls_; }

 private:
  [[nodiscard]] TimeNs transfer_chunk(TileId from, TileId to, int bytes, TimeNs start);

  NocConfig config_;
  std::array<TimeNs, kLinkTableSize> link_busy_until_{};
  std::uint64_t chunks_sent_ = 0;
  std::uint64_t contention_stalls_ = 0;
};

}  // namespace sccft::scc
