// Cycle-approximate model of the SCC's 2D-mesh network-on-chip.
//
// Transfers between cores go through per-tile message-passing buffers (MPB).
// Following the paper's setup (Section 4.1): router frequency 800 MHz, tile
// frequency 533 MHz, payloads chunked so no message exceeds 3 KiB ("ensuring
// that all messages are routed exclusively via the message passing buffers").
//
// The latency model per chunk is
//   t_chunk = t_sw + hops * t_hop + bytes / bw_link
// where t_sw is the software send/receive overhead of the iRCCE-style
// library, t_hop the per-router forwarding latency, and bw_link the effective
// MPB-to-MPB copy bandwidth. Links are modelled as serially-reusable
// resources: a chunk occupies every link of its XY route for its
// serialization time, so concurrent transfers crossing the same link are
// delayed (the paper avoids exactly this by low-contention mapping, which the
// mapper in mapping.hpp reproduces).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>

#include "rtc/time.hpp"
#include "scc/topology.hpp"
#include "util/rng.hpp"

namespace sccft::scc {

using rtc::TimeNs;

/// Tunable latency/bandwidth parameters of the NoC model.
struct NocConfig {
  double router_frequency_hz = 800e6;
  int cycles_per_hop = 4;            ///< router forwarding latency per hop
  TimeNs software_overhead_ns = 2'000;  ///< iRCCE send+recv software path
  double link_bandwidth_bytes_per_sec = 533e6;  ///< MPB copy bandwidth
  std::size_t max_chunk_bytes = 3 * 1024;  ///< paper: chunk size <= 3 KiB
  bool model_contention = true;      ///< serialize chunks on shared links

  [[nodiscard]] TimeNs hop_latency() const {
    return static_cast<TimeNs>(static_cast<double>(cycles_per_hop) /
                               router_frequency_hz * 1e9);
  }
  [[nodiscard]] TimeNs serialization_latency(std::size_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) /
                               link_bandwidth_bytes_per_sec * 1e9);
  }
};

/// Injected NoC-level message faults (extension beyond the paper's fault
/// hypothesis): within the active window, each chunk may be dropped (and
/// retransmitted after a timeout, up to `max_retries` attempts) or delayed by
/// a uniformly-drawn extra latency. Deterministic under a fixed seed.
struct NocFaultPlan {
  double chunk_drop_probability = 0.0;   ///< per-attempt drop chance
  double chunk_delay_probability = 0.0;  ///< per-chunk extra-delay chance
  TimeNs delay_min_ns = 0;               ///< extra delay lower bound
  TimeNs delay_max_ns = 0;               ///< extra delay upper bound
  TimeNs window_start = 0;               ///< faults active from here ...
  TimeNs window_end = std::numeric_limits<TimeNs>::max();  ///< ... to here
  int max_retries = 3;                   ///< retransmissions after the first try
  TimeNs retry_timeout_ns = 50'000;      ///< sender timeout before a resend
  std::uint64_t seed = 1;
};

/// Outcome of one message transfer under the fault model. `delivered` is
/// false only when every retransmission attempt of some chunk was dropped —
/// the message is then lost for good and `arrival` is the give-up time.
struct NocTransferOutcome {
  TimeNs arrival = 0;
  bool delivered = true;
  int retransmissions = 0;
};

/// Stateful NoC: computes message arrival times, accounting for chunking and
/// (optionally) link contention. Deterministic: same call sequence, same
/// results.
class NocModel final {
 public:
  explicit NocModel(NocConfig config = {});

  /// Computes when a `bytes`-sized message sent at `start` from `src` to
  /// `dst` is fully received, updating link occupancy. Same-tile transfers
  /// cost only the software overhead plus one MPB copy.
  /// With an active fault plan this includes retransmission delays; a message
  /// lost for good still returns its give-up time (use transfer_ex to tell
  /// the two apart).
  [[nodiscard]] TimeNs transfer(CoreId src, CoreId dst, std::size_t bytes, TimeNs start);

  /// Like transfer(), but reports delivery status and retransmission count so
  /// channels can drop lost tokens instead of delivering them late.
  [[nodiscard]] NocTransferOutcome transfer_ex(CoreId src, CoreId dst,
                                               std::size_t bytes, TimeNs start);

  /// Pure latency query that does not reserve links (used for planning).
  [[nodiscard]] TimeNs estimate_latency(CoreId src, CoreId dst, std::size_t bytes) const;

  /// Installs (replacing any previous) the message-fault plan. Faults apply
  /// to all transfers whose send time falls inside the plan's window.
  void inject_faults(const NocFaultPlan& plan);

  /// Removes the fault plan; subsequent transfers are fault-free.
  void clear_faults();

  [[nodiscard]] bool faults_active(TimeNs at) const {
    return fault_plan_ && at >= fault_plan_->window_start && at < fault_plan_->window_end;
  }

  [[nodiscard]] const NocConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t chunks_sent() const { return chunks_sent_; }
  [[nodiscard]] std::uint64_t contention_stalls() const { return contention_stalls_; }

  /// Cumulative occupancy (ns) of one directed link — the time chunks held
  /// it for forwarding + serialization. Only accounted with
  /// `model_contention`; divide by elapsed simulated time for utilization.
  [[nodiscard]] rtc::TimeNs link_busy_ns(int link) const {
    return link_busy_ns_[static_cast<std::size_t>(link)];
  }
  /// Occupancy of the hottest link — the fleet-saturation signal: as
  /// concurrent streams pile onto shared mesh links, the maximum
  /// link-utilization approaches 1 and contention stalls take over.
  [[nodiscard]] rtc::TimeNs max_link_busy_ns() const;
  [[nodiscard]] rtc::TimeNs total_link_busy_ns() const;
  [[nodiscard]] std::uint64_t chunks_dropped() const { return chunks_dropped_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t messages_lost() const { return messages_lost_; }
  [[nodiscard]] std::uint64_t chunks_delayed() const { return chunks_delayed_; }

 private:
  [[nodiscard]] TimeNs transfer_chunk(TileId from, TileId to, std::size_t bytes,
                                      TimeNs start);
  [[nodiscard]] TimeNs transfer_chunks_fault_free(TileId from, TileId to,
                                                  std::size_t chunks,
                                                  std::size_t last_chunk_bytes,
                                                  TimeNs start);

  NocConfig config_;
  std::array<TimeNs, kLinkTableSize> link_busy_until_{};
  std::array<TimeNs, kLinkTableSize> link_busy_ns_{};
  std::uint64_t chunks_sent_ = 0;
  std::uint64_t contention_stalls_ = 0;
  std::optional<NocFaultPlan> fault_plan_;
  util::Xoshiro256 fault_rng_;
  std::uint64_t chunks_dropped_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t chunks_delayed_ = 0;
};

}  // namespace sccft::scc
