// Intel SCC topology model.
//
// The Single-chip Cloud Computer (Howard et al., ISSCC 2010) is a 48-core
// IA-32 message-passing processor: 24 dual-core tiles arranged in a 6x4 mesh,
// each tile with a router and a 16 KiB message-passing buffer (MPB, 8 KiB per
// core), four DDR3 memory controllers at the mesh corners.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace sccft::scc {

inline constexpr int kMeshColumns = 6;
inline constexpr int kMeshRows = 4;
inline constexpr int kTileCount = kMeshColumns * kMeshRows;  // 24
inline constexpr int kCoresPerTile = 2;
inline constexpr int kCoreCount = kTileCount * kCoresPerTile;  // 48
inline constexpr int kMpbBytesPerTile = 16 * 1024;
inline constexpr int kMpbBytesPerCore = 8 * 1024;

/// Strongly-typed tile identifier, 0..23, row-major from the mesh origin.
struct TileId {
  int value = 0;

  [[nodiscard]] int column() const { return value % kMeshColumns; }
  [[nodiscard]] int row() const { return value / kMeshColumns; }
  [[nodiscard]] static TileId at(int column, int row) {
    SCCFT_EXPECTS(column >= 0 && column < kMeshColumns);
    SCCFT_EXPECTS(row >= 0 && row < kMeshRows);
    return TileId{row * kMeshColumns + column};
  }
  [[nodiscard]] bool valid() const { return value >= 0 && value < kTileCount; }
  friend bool operator==(const TileId&, const TileId&) = default;
};

/// Strongly-typed core identifier, 0..47. Cores 2t and 2t+1 live on tile t.
struct CoreId {
  int value = 0;

  [[nodiscard]] TileId tile() const { return TileId{value / kCoresPerTile}; }
  [[nodiscard]] int local_index() const { return value % kCoresPerTile; }
  [[nodiscard]] bool valid() const { return value >= 0 && value < kCoreCount; }
  [[nodiscard]] std::string name() const { return "core" + std::to_string(value); }
  friend bool operator==(const CoreId&, const CoreId&) = default;
};

/// Manhattan distance between two tiles — the hop count of the SCC's
/// dimension-ordered (X-then-Y) routing.
[[nodiscard]] int hop_count(TileId from, TileId to);

/// The sequence of tiles an X-then-Y routed packet traverses, inclusive of
/// both endpoints.
[[nodiscard]] std::vector<TileId> xy_route(TileId from, TileId to);

/// A directed mesh link between adjacent tiles, identified by its endpoints.
struct Link {
  TileId from;
  TileId to;
  friend bool operator==(const Link&, const Link&) = default;
};

/// Index of a directed link in a dense per-link table (4 directions per tile).
[[nodiscard]] int link_index(const Link& link);
inline constexpr int kLinkTableSize = kTileCount * 4;

}  // namespace sccft::scc
