#include "scc/dram.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::scc {

int controller_of(TileId tile) {
  SCCFT_EXPECTS(tile.valid());
  // Quadrant affinity: west/east half x bottom/top half.
  const int west = tile.column() < kMeshColumns / 2 ? 0 : 1;
  const int south = tile.row() < kMeshRows / 2 ? 0 : 1;
  return south * 2 + west;
}

TileId controller_tile(int controller) {
  SCCFT_EXPECTS(controller >= 0 && controller < kMemoryControllerCount);
  // Controllers sit at the mesh corners.
  switch (controller) {
    case 0: return TileId::at(0, 0);
    case 1: return TileId::at(kMeshColumns - 1, 0);
    case 2: return TileId::at(0, kMeshRows - 1);
    default: return TileId::at(kMeshColumns - 1, kMeshRows - 1);
  }
}

DramModel::DramModel(NocModel& noc, DramConfig config) : noc_(noc), config_(config) {
  SCCFT_EXPECTS(config_.bandwidth_bytes_per_sec > 0.0);
  SCCFT_EXPECTS(config_.access_latency >= 0);
  busy_until_.fill(0);
}

rtc::TimeNs DramModel::service_time(std::size_t bytes) const {
  return config_.access_latency +
         static_cast<rtc::TimeNs>(static_cast<double>(bytes) /
                                  config_.bandwidth_bytes_per_sec * 1e9);
}

rtc::TimeNs DramModel::transfer(CoreId src, CoreId dst, std::size_t bytes,
                                rtc::TimeNs start) {
  SCCFT_EXPECTS(src.valid() && dst.valid());
  // The writer's controller serves the write; the reader fetches through the
  // same controller (the data lives in that bank).
  const int controller = controller_of(src.tile());
  const CoreId gateway{controller_tile(controller).value * kCoresPerTile};

  // Leg 1: src -> controller over the mesh (chunked like any NoC transfer).
  rtc::TimeNs t = noc_.transfer(src, gateway, bytes, start);
  // DRAM write+read service, FCFS at the controller.
  rtc::TimeNs& busy = busy_until_[static_cast<std::size_t>(controller)];
  if (busy > t) {
    ++queued_;
    t = busy;
  }
  t += 2 * service_time(bytes);  // write then read back
  busy = t;
  // Leg 2: controller -> dst.
  return noc_.transfer(gateway, dst, bytes, t);
}

rtc::TimeNs DramModel::estimate_latency(CoreId src, CoreId dst,
                                        std::size_t bytes) const {
  const int controller = controller_of(src.tile());
  const CoreId gateway{controller_tile(controller).value * kCoresPerTile};
  return noc_.estimate_latency(src, gateway, bytes) + 2 * service_time(bytes) +
         noc_.estimate_latency(gateway, dst, bytes);
}

}  // namespace sccft::scc
