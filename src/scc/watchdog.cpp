#include "scc/watchdog.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sccft::scc {

WatchdogTimer::WatchdogTimer(sim::Simulator& sim, Config config)
    : sim_(sim), config_(std::move(config)) {
  SCCFT_EXPECTS(config_.deadline > 0);
}

int WatchdogTimer::add_channel(std::string label, TileId tile,
                               ResetHandler on_reset) {
  SCCFT_EXPECTS(!armed_);
  SCCFT_EXPECTS(tile.valid());
  SCCFT_EXPECTS(on_reset != nullptr);
  Channel channel;
  channel.subject = sim_.trace().intern(config_.name + "." + label);
  channel.label = std::move(label);
  channel.tile = tile;
  channel.on_reset = std::move(on_reset);
  channels_.push_back(std::move(channel));
  return static_cast<int>(channels_.size()) - 1;
}

void WatchdogTimer::kick(int channel) {
  SCCFT_EXPECTS(channel >= 0 && channel < channel_count());
  channels_[static_cast<std::size_t>(channel)].last_kick = sim_.now();
}

void WatchdogTimer::arm_all() {
  SCCFT_EXPECTS(!armed_);
  armed_ = true;
  for (int i = 0; i < channel_count(); ++i) {
    Channel& channel = channels_[static_cast<std::size_t>(i)];
    channel.last_kick = sim_.now();
    schedule_check(i, channel.last_kick + config_.deadline + 1);
  }
}

void WatchdogTimer::schedule_check(int index, rtc::TimeNs at) {
  sim_.schedule_at(at, [this, index] { check(index); });
}

void WatchdogTimer::check(int index) {
  Channel& channel = channels_[static_cast<std::size_t>(index)];
  const rtc::TimeNs now = sim_.now();
  if (channel.last_kick + config_.deadline >= now) {
    // Alive: a kick moved the deadline forward since this check was armed.
    schedule_check(index, channel.last_kick + config_.deadline + 1);
    return;
  }
  // Expired: pull the reset line. The event and metric are always-on — a
  // watchdog firing is a verdict, not data-path telemetry.
  ++channel.resets;
  sim_.trace().metrics().add(config_.name + "." + channel.label + ".resets");
  sim_.trace().emit(trace::EventKind::kWatchdogReset, channel.subject, now,
                    index, channel.tile.value,
                    static_cast<std::int64_t>(channel.resets));
  channel.on_reset();
  channel.last_kick = now;
  schedule_check(index, channel.last_kick + config_.deadline + 1);
}

std::uint64_t WatchdogTimer::resets(int channel) const {
  SCCFT_EXPECTS(channel >= 0 && channel < channel_count());
  return channels_[static_cast<std::size_t>(channel)].resets;
}

std::uint64_t WatchdogTimer::total_resets() const {
  std::uint64_t total = 0;
  for (const Channel& channel : channels_) total += channel.resets;
  return total;
}

rtc::TimeNs WatchdogTimer::last_kick(int channel) const {
  SCCFT_EXPECTS(channel >= 0 && channel < channel_count());
  return channels_[static_cast<std::size_t>(channel)].last_kick;
}

}  // namespace sccft::scc
