#include "scc/topology.hpp"

#include <cstdlib>

namespace sccft::scc {

int hop_count(TileId from, TileId to) {
  SCCFT_EXPECTS(from.valid() && to.valid());
  return std::abs(from.column() - to.column()) + std::abs(from.row() - to.row());
}

std::vector<TileId> xy_route(TileId from, TileId to) {
  SCCFT_EXPECTS(from.valid() && to.valid());
  std::vector<TileId> route;
  route.push_back(from);
  int col = from.column();
  int row = from.row();
  while (col != to.column()) {
    col += (to.column() > col) ? 1 : -1;
    route.push_back(TileId::at(col, row));
  }
  while (row != to.row()) {
    row += (to.row() > row) ? 1 : -1;
    route.push_back(TileId::at(col, row));
  }
  return route;
}

int link_index(const Link& link) {
  SCCFT_EXPECTS(link.from.valid() && link.to.valid());
  SCCFT_EXPECTS(hop_count(link.from, link.to) == 1);
  const int dc = link.to.column() - link.from.column();
  const int dr = link.to.row() - link.from.row();
  int direction = 0;
  if (dc == 1) direction = 0;        // east
  else if (dc == -1) direction = 1;  // west
  else if (dr == 1) direction = 2;   // north
  else direction = 3;                // south
  return link.from.value * 4 + direction;
}

}  // namespace sccft::scc
