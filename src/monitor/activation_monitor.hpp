// Common interface of the baseline activation monitors the paper compares
// against (Section 4.3 "Brief Comparison to the State-of-the-Art").
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "rtc/time.hpp"

namespace sccft::monitor {

/// A monitor observing one event stream (e.g. a replica's token-consumption
/// events) and judging its timing conformance.
///
/// Two entry points: on_event() is called at each observed activation;
/// poll() is called by a periodic timer (granularity = the monitor's polling
/// interval) and is the only way a *silent* stream can be convicted —
/// exactly the runtime-timer dependence the paper's approach avoids.
class ActivationMonitor {
 public:
  virtual ~ActivationMonitor() = default;

  /// Records an activation at time `t`; returns a detection timestamp if the
  /// event itself violates the model (too early / burst).
  virtual std::optional<rtc::TimeNs> on_event(rtc::TimeNs t) = 0;

  /// Timer tick at time `now`; returns a detection timestamp if the stream
  /// has fallen silent / behind the model.
  virtual std::optional<rtc::TimeNs> poll(rtc::TimeNs now) = 0;

  [[nodiscard]] virtual std::string describe() const = 0;

  /// Monitor state size in bytes (for the memory-overhead comparison).
  [[nodiscard]] virtual std::size_t state_bytes() const = 0;

  /// Number of hardware/OS timers the monitor needs at runtime (the paper's
  /// approach needs 0; the distance-function setup of Section 4.3 needs 4 —
  /// two per channel).
  [[nodiscard]] virtual int timers_required() const = 0;
};

}  // namespace sccft::monitor
