// Glue for running baseline monitors inside a simulated process network:
// a trace-bus bridge that feeds token events to a monitor, and a polling
// process body that drives the monitor's timer (the runtime-timer cost our
// framework avoids).
//
// Monitors used to be attached by wrapping a channel interface in a tap;
// with the trace spine they simply subscribe to the channel's enqueue or
// dequeue events — observation without touching the data path at all.
#pragma once

#include <optional>

#include "kpn/channel.hpp"
#include "kpn/process.hpp"
#include "monitor/activation_monitor.hpp"
#include "sim/task.hpp"
#include "trace/bus.hpp"

namespace sccft::monitor {

/// Feeds every matching trace event of one subject to an ActivationMonitor
/// as an activation. Watch a channel's kDequeue events to observe a
/// replica's consumption stream, or kEnqueue for its production stream.
/// Subscribes on construction, unsubscribes on destruction; `bus` must
/// outlive the bridge. Multiple bridges on the same subject are dispatched
/// in subscription order.
class ActivationBridge final : public trace::Sink {
 public:
  ActivationBridge(trace::TraceBus& bus, trace::SubjectId subject,
                   ActivationMonitor& monitor,
                   trace::EventKind kind = trace::EventKind::kDequeue)
      : bus_(bus), subject_(subject), kind_(kind), monitor_(monitor) {
    bus_.subscribe(this, trace::bit(kind_));
  }
  ~ActivationBridge() override { bus_.unsubscribe(this); }

  ActivationBridge(const ActivationBridge&) = delete;
  ActivationBridge& operator=(const ActivationBridge&) = delete;

  void on_event(const trace::Event& event) override {
    if (event.subject != subject_ || event.kind != kind_) return;
    (void)monitor_.on_event(event.time);
  }

 private:
  trace::TraceBus& bus_;
  trace::SubjectId subject_;
  trace::EventKind kind_;
  ActivationMonitor& monitor_;
};

/// Process body that fires the monitor's poll() every `interval` until a
/// fault is detected (writing the detection time to `*detection_out`) or the
/// simulation ends.
[[nodiscard]] inline kpn::Process::BodyFactory make_polling_body(
    ActivationMonitor& monitor, rtc::TimeNs interval,
    std::optional<rtc::TimeNs>* detection_out) {
  return [&monitor, interval, detection_out](kpn::ProcessContext& ctx) -> sim::Task {
    while (true) {
      co_await ctx.delay(interval);
      if (const auto detected = monitor.poll(ctx.now())) {
        if (detection_out != nullptr) *detection_out = *detected;
        co_return;
      }
    }
  };
}

}  // namespace sccft::monitor
