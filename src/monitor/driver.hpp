// Glue for running baseline monitors inside a simulated process network:
// a transparent tap that feeds token events to a monitor, and a polling
// process body that drives the monitor's timer (the runtime-timer cost our
// framework avoids).
#pragma once

#include <optional>

#include "kpn/channel.hpp"
#include "kpn/process.hpp"
#include "monitor/activation_monitor.hpp"
#include "sim/task.hpp"

namespace sccft::monitor {

/// Wraps a TokenSource; every successful read is reported to the monitor as
/// an activation (used to observe a replica's consumption stream).
class TapSource final : public kpn::TokenSource {
 public:
  TapSource(kpn::TokenSource& inner, ActivationMonitor& monitor, sim::Simulator& sim)
      : inner_(inner), monitor_(monitor), sim_(sim) {}

  [[nodiscard]] std::optional<kpn::Token> try_read() override {
    auto token = inner_.try_read();
    if (token) (void)monitor_.on_event(sim_.now());
    return token;
  }
  void await_readable(std::coroutine_handle<> reader) override {
    inner_.await_readable(reader);
  }
  [[nodiscard]] std::string source_name() const override {
    return inner_.source_name() + "+tap";
  }

 private:
  kpn::TokenSource& inner_;
  ActivationMonitor& monitor_;
  sim::Simulator& sim_;
};

/// Wraps a TokenSink; every accepted write is reported as an activation
/// (used to observe a replica's production stream).
class TapSink final : public kpn::TokenSink {
 public:
  TapSink(kpn::TokenSink& inner, ActivationMonitor& monitor, sim::Simulator& sim)
      : inner_(inner), monitor_(monitor), sim_(sim) {}

  [[nodiscard]] bool try_write(const kpn::Token& token) override {
    const bool accepted = inner_.try_write(token);
    if (accepted) (void)monitor_.on_event(sim_.now());
    return accepted;
  }
  void await_writable(std::coroutine_handle<> writer) override {
    inner_.await_writable(writer);
  }
  [[nodiscard]] std::string sink_name() const override {
    return inner_.sink_name() + "+tap";
  }

 private:
  kpn::TokenSink& inner_;
  ActivationMonitor& monitor_;
  sim::Simulator& sim_;
};

/// Process body that fires the monitor's poll() every `interval` until a
/// fault is detected (writing the detection time to `*detection_out`) or the
/// simulation ends.
[[nodiscard]] inline kpn::Process::BodyFactory make_polling_body(
    ActivationMonitor& monitor, rtc::TimeNs interval,
    std::optional<rtc::TimeNs>* detection_out) {
  return [&monitor, interval, detection_out](kpn::ProcessContext& ctx) -> sim::Task {
    while (true) {
      co_await ctx.delay(interval);
      if (const auto detected = monitor.poll(ctx.now())) {
        if (detection_out != nullptr) *detection_out = *detected;
        co_return;
      }
    }
  };
}

}  // namespace sccft::monitor
