#include "monitor/statistical.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sccft::monitor {

StatisticalMonitor::StatisticalMonitor(Config config) : config_(config) {
  SCCFT_EXPECTS(config_.sigma_threshold > 0.0);
  SCCFT_EXPECTS(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  SCCFT_EXPECTS(config_.warmup_events >= 2);
  SCCFT_EXPECTS(config_.polling_interval > 0);
}

double StatisticalMonitor::stddev_gap_ns() const { return std::sqrt(variance_); }

double StatisticalMonitor::threshold_ns() const {
  return mean_ + config_.sigma_threshold * stddev_gap_ns();
}

std::optional<rtc::TimeNs> StatisticalMonitor::on_event(rtc::TimeNs t) {
  if (detected_) return std::nullopt;
  if (events_seen_ > 0) {
    const auto gap = static_cast<double>(t - last_event_);
    if (events_seen_ <= config_.warmup_events) {
      // Warm-up: plain running mean/variance seed.
      const double delta = gap - mean_;
      mean_ += delta / static_cast<double>(events_seen_);
      variance_ += (delta * (gap - mean_) - variance_) /
                   static_cast<double>(events_seen_);
    } else {
      // Armed: check, then update the EWMA.
      if (gap > threshold_ns()) {
        detected_ = t;
        return detected_;
      }
      const double delta = gap - mean_;
      mean_ += config_.ewma_alpha * delta;
      variance_ = (1.0 - config_.ewma_alpha) *
                  (variance_ + config_.ewma_alpha * delta * delta);
    }
  }
  last_event_ = t;
  ++events_seen_;
  return std::nullopt;
}

std::optional<rtc::TimeNs> StatisticalMonitor::poll(rtc::TimeNs now) {
  if (detected_ || !armed()) return std::nullopt;
  const auto gap = static_cast<double>(now - last_event_);
  if (gap > threshold_ns()) {
    detected_ = now;
    return detected_;
  }
  return std::nullopt;
}

std::string StatisticalMonitor::describe() const {
  std::ostringstream os;
  os << "statistical(EWMA, k=" << config_.sigma_threshold
     << ", alpha=" << config_.ewma_alpha << ")";
  return os.str();
}

}  // namespace sccft::monitor
