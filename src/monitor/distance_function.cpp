#include "monitor/distance_function.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace sccft::monitor {

DistanceFunctionMonitor::DistanceFunctionMonitor(Config config) : config_(config) {
  SCCFT_EXPECTS(config_.model.period > 0);
  SCCFT_EXPECTS(config_.l >= 1);
  SCCFT_EXPECTS(config_.polling_interval > 0);
}

rtc::TimeNs DistanceFunctionMonitor::min_span(int k) const {
  SCCFT_EXPECTS(k >= 1);
  if (k == 1) return 0;
  // Smallest Delta with eta+(Delta) >= k: for eta+(Delta) = ceil((Delta+J)/P)
  // that is Delta = (k-1)*P - J (clamped at 0).
  const rtc::TimeNs by_jitter =
      (static_cast<rtc::TimeNs>(k) - 1) * config_.model.period - config_.model.jitter;
  return std::max<rtc::TimeNs>(by_jitter, 0);
}

rtc::TimeNs DistanceFunctionMonitor::max_span(int k) const {
  SCCFT_EXPECTS(k >= 1);
  // Smallest Delta with eta-(Delta) >= k: floor((Delta - J)/P) >= k at
  // Delta = J + k*P.
  return config_.model.jitter + static_cast<rtc::TimeNs>(k) * config_.model.period;
}

std::optional<rtc::TimeNs> DistanceFunctionMonitor::on_event(rtc::TimeNs t) {
  if (detected_) return std::nullopt;
  if (!config_.fail_silent_only) {
    // Too-fast check against each remembered predecessor: the span covering
    // (k+1) events (this one plus k history entries) must be >= min_span(k+1).
    int k = 1;
    for (rtc::TimeNs prev : history_) {
      if (t - prev < min_span(k + 1)) {
        detected_ = t;
        return detected_;
      }
      ++k;
    }
  }
  if (!seen_any_) {
    seen_any_ = true;
    first_event_ = t;
  }
  history_.push_front(t);
  while (static_cast<int>(history_.size()) > config_.l) history_.pop_back();
  return std::nullopt;
}

std::optional<rtc::TimeNs> DistanceFunctionMonitor::poll(rtc::TimeNs now) {
  if (detected_) return std::nullopt;
  // Silence check: by now, at least k more events must have followed each
  // remembered event within max_span(k).
  int k = 1;
  for (rtc::TimeNs prev : history_) {
    // history_[0] is the most recent event; k-1 events are known to have
    // followed history_[k-1], so one more (the k-th) is due by max_span(k).
    if (now - prev > max_span(k)) {
      detected_ = now;
      return detected_;
    }
    ++k;
  }
  if (!seen_any_) {
    // No event yet at all: the first is due by the stream's phase delay plus
    // jitter; allow one extra period of startup slack.
    if (now > config_.model.delay + max_span(1)) {
      detected_ = now;
      return detected_;
    }
  }
  return std::nullopt;
}

std::string DistanceFunctionMonitor::describe() const {
  std::ostringstream os;
  os << "distance-function(l=" << config_.l << ", poll="
     << rtc::to_ms(config_.polling_interval) << "ms, " << config_.model.to_string()
     << ")";
  return os.str();
}

std::size_t DistanceFunctionMonitor::state_bytes() const {
  return sizeof(*this) + history_.size() * sizeof(rtc::TimeNs);
}

}  // namespace sccft::monitor
