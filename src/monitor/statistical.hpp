// Statistical (inexact) anomaly monitor — the class of approaches the
// paper's introduction dismisses for hard real-time use ("statistical or
// probabilistic in nature, see [4,5] ... not suitable for embedded real time
// systems").
//
// An EWMA-based detector: tracks the exponentially-weighted mean and
// variance of inter-arrival gaps and flags a fault when the current gap
// exceeds mean + k * stddev (checked at poll time for silence). Cheap and
// model-free — but *inexact*: k trades false positives under legal bursty
// jitter against detection latency, and no choice of k gives the guarantee
// the paper's arrival-curve approach provides. The ablation/comparison
// benches quantify exactly that.
#pragma once

#include "monitor/activation_monitor.hpp"

namespace sccft::monitor {

class StatisticalMonitor final : public ActivationMonitor {
 public:
  struct Config {
    double sigma_threshold = 4.0;  ///< k in mean + k*stddev
    double ewma_alpha = 0.1;       ///< smoothing factor for mean/variance
    int warmup_events = 10;        ///< gaps observed before arming
    rtc::TimeNs polling_interval = rtc::from_ms(1.0);
  };

  explicit StatisticalMonitor(Config config);

  std::optional<rtc::TimeNs> on_event(rtc::TimeNs t) override;
  std::optional<rtc::TimeNs> poll(rtc::TimeNs now) override;

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t state_bytes() const override { return sizeof(*this); }
  [[nodiscard]] int timers_required() const override { return 1; }

  [[nodiscard]] bool fault_detected() const { return detected_.has_value(); }
  [[nodiscard]] std::optional<rtc::TimeNs> detection_time() const { return detected_; }
  [[nodiscard]] double mean_gap_ns() const { return mean_; }
  [[nodiscard]] double stddev_gap_ns() const;
  [[nodiscard]] bool armed() const { return events_seen_ > config_.warmup_events; }

 private:
  [[nodiscard]] double threshold_ns() const;

  Config config_;
  rtc::TimeNs last_event_ = 0;
  int events_seen_ = 0;
  double mean_ = 0.0;
  double variance_ = 0.0;
  std::optional<rtc::TimeNs> detected_;
};

}  // namespace sccft::monitor
