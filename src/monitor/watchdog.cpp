#include "monitor/watchdog.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace sccft::monitor {

WatchdogMonitor::WatchdogMonitor(Config config) : config_(config) {
  SCCFT_EXPECTS(config_.timeout > 0);
  SCCFT_EXPECTS(config_.polling_interval > 0);
}

std::optional<rtc::TimeNs> WatchdogMonitor::on_event(rtc::TimeNs t) {
  if (detected_) return std::nullopt;
  last_event_ = t;
  seen_any_ = true;
  return std::nullopt;
}

std::optional<rtc::TimeNs> WatchdogMonitor::poll(rtc::TimeNs now) {
  if (detected_) return std::nullopt;
  const rtc::TimeNs reference = seen_any_ ? last_event_ : 0;
  if (now - reference > config_.timeout) {
    detected_ = now;
    return detected_;
  }
  return std::nullopt;
}

std::string WatchdogMonitor::describe() const {
  std::ostringstream os;
  os << "watchdog(timeout=" << rtc::to_ms(config_.timeout) << "ms, poll="
     << rtc::to_ms(config_.polling_interval) << "ms)";
  return os.str();
}

}  // namespace sccft::monitor
