// Watchdog (heartbeat) monitor — the "simple timeout based solution" the
// paper's introduction dismisses for bursty streams. Included as the second
// baseline: it either needs a conservative timeout (slow detection) or
// produces false positives under legal jitter, which the ablation bench
// quantifies.
#pragma once

#include "monitor/activation_monitor.hpp"
#include "rtc/pjd.hpp"

namespace sccft::monitor {

class WatchdogMonitor final : public ActivationMonitor {
 public:
  struct Config {
    /// The watchdog timeout. For a PJD stream a *sound* timeout is
    /// period + jitter (any smaller value can misfire on legal jitter).
    rtc::TimeNs timeout = 0;
    rtc::TimeNs polling_interval = rtc::from_ms(1.0);
  };

  explicit WatchdogMonitor(Config config);

  /// Sound timeout for a PJD stream: P + J (the max legal gap successor).
  [[nodiscard]] static rtc::TimeNs sound_timeout(const rtc::PJD& model) {
    return model.period + model.jitter;
  }

  std::optional<rtc::TimeNs> on_event(rtc::TimeNs t) override;
  std::optional<rtc::TimeNs> poll(rtc::TimeNs now) override;

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t state_bytes() const override { return sizeof(*this); }
  [[nodiscard]] int timers_required() const override { return 1; }

  [[nodiscard]] bool fault_detected() const { return detected_.has_value(); }
  [[nodiscard]] std::optional<rtc::TimeNs> detection_time() const { return detected_; }

 private:
  Config config_;
  rtc::TimeNs last_event_ = 0;
  bool seen_any_ = false;
  std::optional<rtc::TimeNs> detected_;
};

}  // namespace sccft::monitor
