// l-repetitive distance-function monitor (Neukirchner et al., RTSS 2012,
// "Monitoring arbitrary activation patterns in real-time systems" — the
// paper's reference [11] and its Table 3 baseline).
//
// The monitor keeps the last l activation timestamps. Conformance of a
// stream to an arrival-curve pair is expressed through distance functions:
//
//   d_min(k) = minimum span allowed for k consecutive events
//            = smallest Delta with eta+(Delta) >= k  (too-fast detection),
//   d_max(k) = maximum span allowed before k further events must have
//              arrived = smallest Delta with eta-(Delta) >= k
//              (silence detection; for PJD, d_max(k) = J + k*P).
//
// An activation at time t is checked against every remembered predecessor
// (l-repetitive approximation of the general distance function: only the l
// most recent events are retained). Silence can only be convicted by the
// polling timer — the approach's intrinsic cost versus the paper's: it needs
// runtime timekeeping, and its detection latency is quantized by the polling
// interval (the effect Table 3 and the "Brief Discussion" highlight).
#pragma once

#include <deque>
#include <vector>

#include "monitor/activation_monitor.hpp"
#include "rtc/pjd.hpp"

namespace sccft::monitor {

class DistanceFunctionMonitor final : public ActivationMonitor {
 public:
  struct Config {
    rtc::PJD model;                     ///< event model to enforce
    int l = 1;                          ///< history depth (l-repetitive)
    rtc::TimeNs polling_interval = rtc::from_ms(1.0);  ///< paper: 1 ms
    /// Fail-silent modification (Section 4.3): only convict silence, do not
    /// flag early events (the paper's fault model has no early events).
    bool fail_silent_only = true;
  };

  explicit DistanceFunctionMonitor(Config config);

  std::optional<rtc::TimeNs> on_event(rtc::TimeNs t) override;
  std::optional<rtc::TimeNs> poll(rtc::TimeNs now) override;

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  [[nodiscard]] int timers_required() const override { return 1; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] bool fault_detected() const { return detected_.has_value(); }
  [[nodiscard]] std::optional<rtc::TimeNs> detection_time() const { return detected_; }

  /// d_min(k): smallest window that may contain k events (k >= 1).
  [[nodiscard]] rtc::TimeNs min_span(int k) const;
  /// d_max(k): latest window by which k further events must have appeared.
  [[nodiscard]] rtc::TimeNs max_span(int k) const;

 private:
  Config config_;
  std::deque<rtc::TimeNs> history_;  ///< most recent first, size <= l
  bool seen_any_ = false;
  rtc::TimeNs first_event_ = 0;
  std::optional<rtc::TimeNs> detected_;
};

}  // namespace sccft::monitor
