#include "trace/bus.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSimSchedule: return "sim-schedule";
    case EventKind::kSimDispatch: return "sim-dispatch";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kTokenDrop: return "token-drop";
    case EventKind::kWriterBlock: return "writer-block";
    case EventKind::kReaderBlock: return "reader-block";
    case EventKind::kQueueLevel: return "queue-level";
    case EventKind::kEmission: return "emission";
    case EventKind::kDetection: return "detection";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kInjection: return "injection";
    case EventKind::kFreeze: return "freeze";
    case EventKind::kUnfreeze: return "unfreeze";
    case EventKind::kReintegrate: return "reintegrate";
    case EventKind::kRestart: return "restart";
    case EventKind::kHealthTransition: return "health-transition";
    case EventKind::kCurveViolation: return "curve-violation";
    case EventKind::kWatchdogReset: return "watchdog-reset";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kScrubRepair: return "scrub-repair";
    case EventKind::kCount: break;
  }
  return "?";
}

TraceBus::TraceBus() {
  subjects_.emplace_back();  // SubjectId 0: the empty subject
  subject_index_.emplace(std::string(), 0);
}

SubjectId TraceBus::intern(std::string_view name) {
  if (const auto it = subject_index_.find(std::string(name));
      it != subject_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<SubjectId>(subjects_.size());
  subjects_.emplace_back(name);
  subject_index_.emplace(subjects_.back(), id);
  return id;
}

const std::string& TraceBus::subject_name(SubjectId id) const {
  SCCFT_EXPECTS(id < subjects_.size());
  return subjects_[id];
}

void TraceBus::subscribe(Sink* sink, std::uint32_t mask) {
  SCCFT_EXPECTS(sink != nullptr);
  assert_owning_thread();
  for (auto& subscriber : subscribers_) {
    if (subscriber.sink == sink) {
      subscriber.mask = mask;
      recompute_mask();
      return;
    }
  }
  subscribers_.push_back(Subscriber{sink, mask});
  recompute_mask();
}

void TraceBus::unsubscribe(Sink* sink) {
  assert_owning_thread();
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [sink](const Subscriber& s) { return s.sink == sink; }),
      subscribers_.end());
  recompute_mask();
}

void TraceBus::recompute_mask() {
  active_mask_ = 0;
  for (const auto& subscriber : subscribers_) active_mask_ |= subscriber.mask;
}

void TraceBus::dispatch(const Event& event) {
  assert_owning_thread();
  const std::uint32_t kind_bit = bit(event.kind);
  // Index loop: a sink's on_event may emit further (nested) events but must
  // not subscribe/unsubscribe, so indices stay valid.
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if ((subscribers_[i].mask & kind_bit) != 0) subscribers_[i].sink->on_event(event);
  }
}

}  // namespace sccft::trace
