#include "trace/bus.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSimSchedule: return "sim-schedule";
    case EventKind::kSimDispatch: return "sim-dispatch";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kTokenDrop: return "token-drop";
    case EventKind::kWriterBlock: return "writer-block";
    case EventKind::kReaderBlock: return "reader-block";
    case EventKind::kQueueLevel: return "queue-level";
    case EventKind::kEmission: return "emission";
    case EventKind::kDetection: return "detection";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kInjection: return "injection";
    case EventKind::kFreeze: return "freeze";
    case EventKind::kUnfreeze: return "unfreeze";
    case EventKind::kReintegrate: return "reintegrate";
    case EventKind::kRestart: return "restart";
    case EventKind::kHealthTransition: return "health-transition";
    case EventKind::kCurveViolation: return "curve-violation";
    case EventKind::kWatchdogReset: return "watchdog-reset";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kScrubRepair: return "scrub-repair";
    case EventKind::kReconfig: return "reconfig";
    case EventKind::kAcceptanceMiss: return "acceptance-miss";
    case EventKind::kCount: break;
  }
  return "?";
}

TraceBus::TraceBus() {
  subjects_.emplace_back();  // SubjectId 0: the empty subject
  subject_index_.emplace(std::string(), 0);
  staged_.reserve(kStagingCapacity);  // the staging store never reallocates
}

SubjectId TraceBus::intern(std::string_view name) {
  if (const auto it = subject_index_.find(std::string(name));
      it != subject_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<SubjectId>(subjects_.size());
  subjects_.emplace_back(name);
  subject_index_.emplace(subjects_.back(), id);
  return id;
}

const std::string& TraceBus::subject_name(SubjectId id) const {
  SCCFT_EXPECTS(id < subjects_.size());
  return subjects_[id];
}

void TraceBus::subscribe(Sink* sink, std::uint32_t mask, DeliveryMode mode) {
  SCCFT_EXPECTS(sink != nullptr);
  assert_owning_thread();
  flush();  // staged events belong to the subscription epoch that emitted them
  for (auto& subscriber : subscribers_) {
    if (subscriber.sink == sink) {
      subscriber.mask = mask;
      subscriber.mode = mode;
      recompute_mask();
      return;
    }
  }
  subscribers_.push_back(Subscriber{sink, mask, mode});
  recompute_mask();
}

void TraceBus::unsubscribe(Sink* sink) {
  assert_owning_thread();
  flush();  // the departing sink must not miss its staged tail
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [sink](const Subscriber& s) { return s.sink == sink; }),
      subscribers_.end());
  recompute_mask();
}

void TraceBus::recompute_mask() {
  immediate_mask_ = 0;
  deferred_mask_ = 0;
  for (const auto& subscriber : subscribers_) {
    if (subscriber.mode == DeliveryMode::kImmediate) {
      immediate_mask_ |= subscriber.mask;
    } else {
      deferred_mask_ |= subscriber.mask;
    }
  }
  active_mask_ = immediate_mask_ | deferred_mask_;
}

void TraceBus::flush() {
  if (staged_.empty()) return;
  assert_owning_thread();
  // Deliver to each deferred subscriber in subscription order. When a
  // subscriber's mask covers every staged kind (the common case: one
  // flight-recorder mask), the whole staging buffer goes over in a single
  // on_batch call with no per-event mask test; otherwise chunk consecutive
  // accepted events.
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if (subscribers_[i].mode != DeliveryMode::kDeferred) continue;
    const std::uint32_t mask = subscribers_[i].mask;
    if ((staged_kinds_ & ~mask) == 0) {
      subscribers_[i].sink->on_batch(staged_.data(), staged_.size());
      continue;
    }
    if ((staged_kinds_ & mask) == 0) continue;
    std::size_t begin = 0;
    while (begin < staged_.size()) {
      if ((mask & bit(staged_[begin].kind)) == 0) {
        ++begin;
        continue;
      }
      std::size_t end = begin + 1;
      while (end < staged_.size() && (mask & bit(staged_[end].kind)) != 0) ++end;
      subscribers_[i].sink->on_batch(staged_.data() + begin, end - begin);
      begin = end;
    }
  }
  staged_.clear();
  staged_kinds_ = 0;
}

void TraceBus::dispatch_immediate(const Event& event, std::uint32_t kind_bit) {
  assert_owning_thread();
  // Index loop: a sink's on_event may emit further (nested) events but must
  // not subscribe/unsubscribe, so indices stay valid.
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if (subscribers_[i].mode == DeliveryMode::kImmediate &&
        (subscribers_[i].mask & kind_bit) != 0) {
      subscribers_[i].sink->on_event(event);
    }
  }
}

}  // namespace sccft::trace
