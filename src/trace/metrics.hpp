// The metrics registry: named counters, max-gauges, and sample series.
//
// Unlike trace events (optional, compile-time removable), the registry is the
// *always-on* quantitative record: channels publish their occupancy and
// traffic totals into it, the supervisor accounts MTTR / detection latencies
// / restarts through it, and the bench harnesses aggregate whole campaigns
// by merging per-run registries. Everything the paper's Tables 2/3/4 report
// flows through here, so the numbers are identical whether or not event
// recording is compiled in.
//
// Determinism: storage is name-ordered (std::map), so iteration, merging,
// and CSV rendering are reproducible byte-for-byte across identical runs.
// References returned by counter_ref()/series_ref() are stable for the
// registry's lifetime (node-based map), so hot paths hoist the name lookup
// out of their loops.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sccft::trace {

/// An append-only sample series (integer-valued; callers pick the unit and
/// encode it in the metric name, e.g. "consumer.interarrival_ns").
class Series final {
 public:
  void add(std::int64_t v) { samples_.push_back(v); }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] const std::vector<std::int64_t>& samples() const { return samples_; }
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] std::int64_t sum() const;
  [[nodiscard]] double mean() const;

  void append(const Series& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  }

 private:
  std::vector<std::int64_t> samples_;
};

class MetricsRegistry final {
 public:
  // --- writes --------------------------------------------------------------
  /// Adds `delta` to counter `name` (creating it at 0).
  void add(std::string name, std::uint64_t delta = 1) { counters_[std::move(name)] += delta; }

  /// Raises gauge `name` to `v` if `v` exceeds its current value.
  void gauge_max(std::string name, std::int64_t v) {
    auto [it, inserted] = gauges_.try_emplace(std::move(name), v);
    if (!inserted && v > it->second) it->second = v;
  }

  /// Appends `v` to series `name`.
  void record(std::string name, std::int64_t v) { series_[std::move(name)].add(v); }

  /// Stable reference for hot paths (hoist the lookup out of the loop).
  [[nodiscard]] std::uint64_t& counter_ref(std::string name) {
    return counters_[std::move(name)];
  }
  [[nodiscard]] Series& series_ref(std::string name) { return series_[std::move(name)]; }

  // --- reads ---------------------------------------------------------------
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::int64_t gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }
  /// nullptr when the series does not exist.
  [[nodiscard]] const Series* find_series(const std::string& name) const {
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Series>& all_series() const { return series_; }

  // --- aggregation ---------------------------------------------------------
  /// Campaign aggregation: counters add, gauges take the max, series append
  /// (in call order, so pooled statistics reproduce the per-run sweep).
  void merge(const MetricsRegistry& other);

  void clear();

  /// Renders "name,kind,value" rows (series as count/min/mean/max), sorted by
  /// name — the machine-readable form of a run's entire quantitative record.
  [[nodiscard]] std::string render_csv() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, Series> series_;
};

}  // namespace sccft::trace
