// Pluggable trace sinks.
//
//  * RingBufferSink — fixed-capacity flight recorder; keeps the last N
//    events with no allocation per event. install_flight_recorder() arranges
//    for its contents to be dumped to a file the moment a contract violation
//    (util/assert.hpp) fires, so every SCCFT_EXPECTS/ASSERT failure comes
//    with the event history that led up to it.
//  * BinarySink — fixed-layout little-endian serialization; two identical
//    runs produce byte-identical streams (the determinism oracle, and the
//    RepTFD-style replay log).
//  * CsvSink — human/tool-readable rows via util/csv.hpp.
//  * CounterSink — per-kind event counts into a MetricsRegistry.
//  * VcdSink — change-driven waveforms via util/vcd.hpp (fill levels, space
//    counters, fault flags), replacing the old polling VCD sampler process.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/bus.hpp"
#include "util/vcd.hpp"

namespace sccft::trace {

/// Keeps the most recent `capacity` events in a preallocated ring.
class RingBufferSink final : public Sink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void on_event(const Event& event) override {
    if (wedged_) return;  // a stuck sink silently loses events (kTraceSinkStuck)
    ring_[next_ % ring_.size()] = event;
    ++next_;
  }

  void on_batch(const Event* events, std::size_t count) override {
    if (wedged_) return;
    const std::size_t cap = ring_.size();
    // Only the last `cap` events of the batch can survive in the ring; the
    // survivors land as (at most) two contiguous copies.
    const std::size_t skip = count > cap ? count - cap : 0;
    const Event* src = events + skip;
    const std::size_t n = count - skip;
    const std::size_t pos = static_cast<std::size_t>((next_ + skip) % cap);
    const std::size_t first = std::min(n, cap - pos);
    std::copy(src, src + first, ring_.begin() + static_cast<std::ptrdiff_t>(pos));
    std::copy(src + first, src + n, ring_.begin());
    next_ += count;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t total_events() const { return next_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return next_ > ring_.size() ? next_ - ring_.size() : 0;
  }
  /// The retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  void clear() { next_ = 0; }

  /// Renders the retained events as CSV (subject names resolved via `bus`).
  [[nodiscard]] std::string render_csv(const TraceBus& bus) const;

  /// Fault hook: while wedged the sink drops every event (models a hung
  /// recorder core whose DMA stopped draining).
  void set_wedged(bool wedged) { wedged_ = wedged; }
  [[nodiscard]] bool wedged() const { return wedged_; }

  /// Scrubber repair: un-wedges the sink and fast-forwards the event total
  /// to `total` (the count an independent tally says should have arrived).
  /// Retained ring *contents* may interleave pre-wedge history; consumers of
  /// a resynced ring must trust only the totals.
  void force_resync(std::uint64_t total) {
    wedged_ = false;
    next_ = total;
  }

 private:
  std::vector<Event> ring_;
  std::uint64_t next_ = 0;
  bool wedged_ = false;
};

/// Serializes every event as a fixed 37-byte little-endian record:
/// time(8) kind(1) subject(4) a(8) b(8) c(8).
class BinarySink final : public Sink {
 public:
  void on_event(const Event& event) override;

  [[nodiscard]] const std::string& data() const { return data_; }
  [[nodiscard]] std::size_t event_count() const { return count_; }
  void clear() {
    data_.clear();
    count_ = 0;
  }

 private:
  std::string data_;
  std::size_t count_ = 0;
};

/// Collects events as CSV rows: time_ns,kind,subject,a,b,c.
class CsvSink final : public Sink {
 public:
  /// `bus` resolves subject names at render time; must outlive the sink's use.
  explicit CsvSink(const TraceBus& bus) : bus_(&bus) {}

  void on_event(const Event& event) override { events_.push_back(event); }

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::string render() const;
  bool write_file(const std::string& path) const;
  void clear() { events_.clear(); }

 private:
  const TraceBus* bus_;
  std::vector<Event> events_;
};

/// Counts events per kind (metric "trace.events.<kind>") into a registry.
class CounterSink final : public Sink {
 public:
  explicit CounterSink(MetricsRegistry& registry);

  void on_event(const Event& event) override {
    ++*counters_[static_cast<std::size_t>(event.kind)];
  }

  void on_batch(const Event* events, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      ++*counters_[static_cast<std::size_t>(events[i].kind)];
    }
  }

 private:
  std::array<std::uint64_t*, kEventKindCount> counters_{};
};

/// Change-driven VCD waveforms. Watched subjects map onto VCD signals:
///  * watch_fill  — tracks a queue's fill level (kEnqueue/kDequeue operand b,
///    kQueueLevel operand a);
///  * watch_space — tracks a space counter (kQueueLevel operand b);
///  * watch_fault — a 1-bit flag latched by kDetection and cleared by
///    kReintegrate for the given replica index, on any subject.
class VcdSink final : public Sink {
 public:
  explicit VcdSink(std::string scope);

  void watch_fill(SubjectId subject, const std::string& signal_name, int width = 8);
  void watch_space(SubjectId subject, const std::string& signal_name, int width = 8);
  void watch_fault(int replica_index, const std::string& signal_name);

  void on_event(const Event& event) override;

  [[nodiscard]] std::size_t change_count() const { return vcd_.change_count(); }
  [[nodiscard]] std::string render() const { return vcd_.render(); }
  bool write_file(const std::string& path) const { return vcd_.write_file(path); }

 private:
  struct Watch {
    SubjectId subject = 0;
    int signal = -1;
  };

  util::VcdWriter vcd_;
  std::vector<Watch> fill_watches_;
  std::vector<Watch> space_watches_;
  std::vector<Watch> fault_watches_;  ///< subject field holds the replica index
};

/// Arms the contract-violation hook (util/assert.hpp): when any
/// SCCFT_EXPECTS/ENSURES/ASSERT fails, `sink`'s contents are written to
/// `path` before the ContractViolation propagates. One recorder may be armed
/// at a time; `sink` and `bus` must stay alive while armed.
void install_flight_recorder(const RingBufferSink& sink, const TraceBus& bus,
                             std::string path);

/// Disarms the flight recorder (safe to call when none is armed).
void uninstall_flight_recorder();

}  // namespace sccft::trace
