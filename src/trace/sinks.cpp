#include "trace/sinks.hpp"

#include <fstream>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace sccft::trace {

// ---- RingBufferSink --------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity) : ring_(capacity) {
  SCCFT_EXPECTS(capacity > 0);
}

std::vector<Event> RingBufferSink::events() const {
  std::vector<Event> out;
  const std::size_t kept = next_ < ring_.size() ? static_cast<std::size_t>(next_)
                                                : ring_.size();
  out.reserve(kept);
  const std::uint64_t first = next_ - kept;
  for (std::uint64_t i = first; i < next_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

namespace {

void append_event_rows(util::CsvWriter& csv, const std::vector<Event>& events,
                       const TraceBus& bus) {
  for (const Event& event : events) {
    csv.add_row({std::to_string(event.time), to_string(event.kind),
                 bus.subject_name(event.subject), std::to_string(event.a),
                 std::to_string(event.b), std::to_string(event.c)});
  }
}

}  // namespace

std::string RingBufferSink::render_csv(const TraceBus& bus) const {
  util::CsvWriter csv({"time_ns", "kind", "subject", "a", "b", "c"});
  csv.add_comment("flight recorder: last " + std::to_string(events().size()) +
                  " events (" + std::to_string(dropped()) + " older dropped)");
  append_event_rows(csv, events(), bus);
  return csv.render();
}

// ---- BinarySink ------------------------------------------------------------

namespace {

void append_le(std::string& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

}  // namespace

void BinarySink::on_event(const Event& event) {
  append_le(data_, static_cast<std::uint64_t>(event.time), 8);
  data_.push_back(static_cast<char>(event.kind));
  append_le(data_, event.subject, 4);
  append_le(data_, static_cast<std::uint64_t>(event.a), 8);
  append_le(data_, static_cast<std::uint64_t>(event.b), 8);
  append_le(data_, static_cast<std::uint64_t>(event.c), 8);
  ++count_;
}

// ---- CsvSink ---------------------------------------------------------------

std::string CsvSink::render() const {
  util::CsvWriter csv({"time_ns", "kind", "subject", "a", "b", "c"});
  append_event_rows(csv, events_, *bus_);
  return csv.render();
}

bool CsvSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

// ---- CounterSink -----------------------------------------------------------

CounterSink::CounterSink(MetricsRegistry& registry) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    counters_[k] = &registry.counter_ref(
        std::string("trace.events.") + to_string(static_cast<EventKind>(k)));
  }
}

// ---- VcdSink ---------------------------------------------------------------

VcdSink::VcdSink(std::string scope) : vcd_(std::move(scope)) {}

void VcdSink::watch_fill(SubjectId subject, const std::string& signal_name, int width) {
  const int signal = vcd_.add_signal(signal_name, width);
  vcd_.change(0, signal, 0);
  fill_watches_.push_back(Watch{subject, signal});
}

void VcdSink::watch_space(SubjectId subject, const std::string& signal_name, int width) {
  const int signal = vcd_.add_signal(signal_name, width);
  vcd_.change(0, signal, 0);
  space_watches_.push_back(Watch{subject, signal});
}

void VcdSink::watch_fault(int replica_index, const std::string& signal_name) {
  const int signal = vcd_.add_signal(signal_name, 1);
  vcd_.change(0, signal, 0);
  fault_watches_.push_back(Watch{static_cast<SubjectId>(replica_index), signal});
}

void VcdSink::on_event(const Event& event) {
  switch (event.kind) {
    case EventKind::kEnqueue:
    case EventKind::kDequeue:
      for (const Watch& watch : fill_watches_) {
        if (watch.subject == event.subject) {
          vcd_.change(event.time, watch.signal, static_cast<std::uint64_t>(event.b));
        }
      }
      break;
    case EventKind::kQueueLevel:
      for (const Watch& watch : fill_watches_) {
        if (watch.subject == event.subject) {
          vcd_.change(event.time, watch.signal, static_cast<std::uint64_t>(event.a));
        }
      }
      for (const Watch& watch : space_watches_) {
        if (watch.subject == event.subject) {
          vcd_.change(event.time, watch.signal, static_cast<std::uint64_t>(event.b));
        }
      }
      break;
    case EventKind::kDetection:
    case EventKind::kReintegrate:
      for (const Watch& watch : fault_watches_) {
        if (static_cast<std::int64_t>(watch.subject) == event.a) {
          vcd_.change(event.time, watch.signal,
                      event.kind == EventKind::kDetection ? 1u : 0u);
        }
      }
      break;
    default:
      break;
  }
}

// ---- flight recorder -------------------------------------------------------

namespace {

struct FlightRecorder {
  const RingBufferSink* sink = nullptr;
  const TraceBus* bus = nullptr;
  std::string path;
};

FlightRecorder& flight_recorder() {
  static FlightRecorder recorder;
  return recorder;
}

void dump_flight_recorder() noexcept {
  const FlightRecorder& recorder = flight_recorder();
  if (recorder.sink == nullptr || recorder.bus == nullptr) return;
  try {
    std::ofstream out(recorder.path);
    if (out) out << recorder.sink->render_csv(*recorder.bus);
  } catch (...) {
    // A failed dump must never mask the original contract violation.
  }
}

}  // namespace

void install_flight_recorder(const RingBufferSink& sink, const TraceBus& bus,
                             std::string path) {
  flight_recorder() = FlightRecorder{&sink, &bus, std::move(path)};
  util::set_contract_failure_hook(&dump_flight_recorder);
}

void uninstall_flight_recorder() {
  flight_recorder() = FlightRecorder{};
  util::set_contract_failure_hook(nullptr);
}

}  // namespace sccft::trace
