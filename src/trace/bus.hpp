// The trace bus: one audited code path for every observation the framework
// makes about itself.
//
// Design goals, in priority order:
//
//  1. Near-zero cost when nobody listens. emit() is a single load + AND +
//     branch against the OR of all subscriber masks; with no subscribers the
//     entire data-path firehose costs one predictable branch per call site.
//     Defining SCCFT_TRACE_COMPILED_OUT removes even that (macro below).
//  2. Deterministic. Emission is passive: dispatch never schedules simulator
//     events, never draws randomness, and subject interning is insertion-
//     ordered — identical runs produce byte-identical event streams.
//  3. Synchronous. Sinks see an event inside the emitting call, in
//     subscription order, so behavioural subscribers (the supervisor, the
//     detection log, monitor bridges) observe verdicts at exactly the
//     instant the legacy observer callbacks did.
//
// The bus also owns the MetricsRegistry (trace/metrics.hpp) — the always-on
// counter/series store the experiment harvests read — so "the trace spine"
// is one object hanging off the Simulator.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"

namespace sccft::trace {

/// A trace-event consumer. on_event must be passive with respect to the
/// simulation (no scheduling, no RNG) and must not (un)subscribe sinks.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& event) = 0;

  /// Batched delivery used for deferred subscribers (see DeliveryMode): the
  /// bus hands over a contiguous run of events in emission order. The default
  /// forwards each event to on_event; high-volume sinks override it to
  /// amortize the per-event virtual dispatch away.
  virtual void on_batch(const Event* events, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) on_event(events[i]);
  }
};

/// How a subscriber receives events.
///
///  * kImmediate — inside the emitting call, in subscription order. Required
///    for behavioural subscribers (supervisor adapters, monitor bridges,
///    anything whose reaction feeds back into the simulation) and for sinks
///    whose state is read back mid-run at arbitrary points.
///  * kDeferred — staged by the bus and delivered in batches via on_batch().
///    Only for passive recorders (flight-recorder rings, counters): events
///    still arrive in exact emission order, but possibly later than they were
///    emitted. The bus flushes on subscribe/unsubscribe, on explicit flush(),
///    and when the staging buffer fills; code that mutates or inspects a
///    deferred sink mid-run must call TraceBus::flush() first.
enum class DeliveryMode { kImmediate, kDeferred };

class TraceBus final {
 public:
  TraceBus();
  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;

  /// Returns a stable id for `name`, creating it on first use. Ids are
  /// assigned in insertion order (determinism), and interning the same name
  /// twice returns the same id.
  [[nodiscard]] SubjectId intern(std::string_view name);

  [[nodiscard]] const std::string& subject_name(SubjectId id) const;
  [[nodiscard]] std::size_t subject_count() const { return subjects_.size(); }

  /// Registers `sink` for every kind whose bit is set in `mask`. A sink may
  /// be subscribed at most once; re-subscribing updates its mask and mode.
  /// Subscribing or unsubscribing flushes any staged deferred events first.
  void subscribe(Sink* sink, std::uint32_t mask = kAllEvents,
                 DeliveryMode mode = DeliveryMode::kImmediate);
  void unsubscribe(Sink* sink);

  /// Delivers all staged events to the deferred subscribers, in emission
  /// order. Pending events that are never flushed (e.g. the bus is destroyed
  /// mid-run) are dropped — unsubscribe before tearing down a deferred sink.
  void flush();

  [[nodiscard]] bool wants(EventKind kind) const {
    return (active_mask_ & bit(kind)) != 0;
  }

  /// The emission fast path: one branch when no sink wants `kind`. When only
  /// deferred sinks listen, dispatch inlines to a store into the staging
  /// buffer plus an occasional batched flush.
  void emit(EventKind kind, SubjectId subject, rtc::TimeNs time, std::int64_t a = 0,
            std::int64_t b = 0, std::int64_t c = 0) {
    if (wants(kind)) [[unlikely]] {
      const std::uint32_t kind_bit = bit(kind);
      if ((immediate_mask_ & kind_bit) != 0) {
        dispatch_immediate(Event{time, kind, subject, a, b, c}, kind_bit);
      }
      if ((deferred_mask_ & kind_bit) != 0) {
        staged_kinds_ |= kind_bit;
        staged_.push_back(Event{time, kind, subject, a, b, c});
        if (staged_.size() >= kStagingCapacity) flush();
      }
    }
  }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

 private:
  void dispatch_immediate(const Event& event, std::uint32_t kind_bit);
  void recompute_mask();

  /// The bus is single-threaded state owned by one simulation. Parallel
  /// campaigns run one Simulator (and thus one bus) per worker; any sink
  /// subscription or dispatched event from a foreign thread is a wiring bug
  /// (e.g. a shared cross-run sink) and trips this contract. Checked on
  /// immediate dispatch, flush, and subscribe/unsubscribe — not on the
  /// deferred staging store, which keeps the batched path to a few
  /// instructions (a foreign-thread emitter still trips within one staging
  /// window, at its first flush).
  void assert_owning_thread() const {
    SCCFT_ASSERT(std::this_thread::get_id() == owner_thread_);
  }

  struct Subscriber {
    Sink* sink = nullptr;
    std::uint32_t mask = 0;
    DeliveryMode mode = DeliveryMode::kImmediate;
  };

  /// Staged events stop accumulating past this size; the batch is then
  /// delivered inline (deterministic: the same event sequence always flushes
  /// at the same points).
  static constexpr std::size_t kStagingCapacity = 1024;

  std::thread::id owner_thread_ = std::this_thread::get_id();
  std::uint32_t active_mask_ = 0;
  std::uint32_t immediate_mask_ = 0;
  std::uint32_t deferred_mask_ = 0;
  std::uint32_t staged_kinds_ = 0;  ///< OR of bit(kind) over staged_
  std::vector<Event> staged_;
  std::vector<Subscriber> subscribers_;
  std::vector<std::string> subjects_;
  std::unordered_map<std::string, SubjectId> subject_index_;
  MetricsRegistry metrics_;
};

}  // namespace sccft::trace

/// Emission macro for high-frequency data-path events. Compiled out entirely
/// (arguments unevaluated — keep them side-effect free) when the build
/// defines SCCFT_TRACE_COMPILED_OUT; verdict-class events (see
/// trace/event.hpp) are emitted via TraceBus::emit directly and survive.
#if defined(SCCFT_TRACE_COMPILED_OUT)
#define SCCFT_TRACE(bus, ...) ((void)0)
#else
#define SCCFT_TRACE(bus, ...) (bus).emit(__VA_ARGS__)
#endif
