// The trace bus: one audited code path for every observation the framework
// makes about itself.
//
// Design goals, in priority order:
//
//  1. Near-zero cost when nobody listens. emit() is a single load + AND +
//     branch against the OR of all subscriber masks; with no subscribers the
//     entire data-path firehose costs one predictable branch per call site.
//     Defining SCCFT_TRACE_COMPILED_OUT removes even that (macro below).
//  2. Deterministic. Emission is passive: dispatch never schedules simulator
//     events, never draws randomness, and subject interning is insertion-
//     ordered — identical runs produce byte-identical event streams.
//  3. Synchronous. Sinks see an event inside the emitting call, in
//     subscription order, so behavioural subscribers (the supervisor, the
//     detection log, monitor bridges) observe verdicts at exactly the
//     instant the legacy observer callbacks did.
//
// The bus also owns the MetricsRegistry (trace/metrics.hpp) — the always-on
// counter/series store the experiment harvests read — so "the trace spine"
// is one object hanging off the Simulator.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"

namespace sccft::trace {

/// A trace-event consumer. on_event must be passive with respect to the
/// simulation (no scheduling, no RNG) and must not (un)subscribe sinks.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& event) = 0;
};

class TraceBus final {
 public:
  TraceBus();
  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;

  /// Returns a stable id for `name`, creating it on first use. Ids are
  /// assigned in insertion order (determinism), and interning the same name
  /// twice returns the same id.
  [[nodiscard]] SubjectId intern(std::string_view name);

  [[nodiscard]] const std::string& subject_name(SubjectId id) const;
  [[nodiscard]] std::size_t subject_count() const { return subjects_.size(); }

  /// Registers `sink` for every kind whose bit is set in `mask`. A sink may
  /// be subscribed at most once; re-subscribing updates its mask.
  void subscribe(Sink* sink, std::uint32_t mask = kAllEvents);
  void unsubscribe(Sink* sink);

  [[nodiscard]] bool wants(EventKind kind) const {
    return (active_mask_ & bit(kind)) != 0;
  }

  /// The emission fast path: one branch when no sink wants `kind`.
  void emit(EventKind kind, SubjectId subject, rtc::TimeNs time, std::int64_t a = 0,
            std::int64_t b = 0, std::int64_t c = 0) {
    if (wants(kind)) [[unlikely]] {
      dispatch(Event{time, kind, subject, a, b, c});
    }
  }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

 private:
  void dispatch(const Event& event);
  void recompute_mask();

  /// The bus is single-threaded state owned by one simulation. Parallel
  /// campaigns run one Simulator (and thus one bus) per worker; any sink
  /// subscription or dispatched event from a foreign thread is a wiring bug
  /// (e.g. a shared cross-run sink) and trips this contract. Checked off the
  /// emit fast path only — dispatch runs when somebody listens, and
  /// subscribe/unsubscribe are setup-time.
  void assert_owning_thread() const {
    SCCFT_ASSERT(std::this_thread::get_id() == owner_thread_);
  }

  struct Subscriber {
    Sink* sink = nullptr;
    std::uint32_t mask = 0;
  };

  std::thread::id owner_thread_ = std::this_thread::get_id();
  std::uint32_t active_mask_ = 0;
  std::vector<Subscriber> subscribers_;
  std::vector<std::string> subjects_;
  std::unordered_map<std::string, SubjectId> subject_index_;
  MetricsRegistry metrics_;
};

}  // namespace sccft::trace

/// Emission macro for high-frequency data-path events. Compiled out entirely
/// (arguments unevaluated — keep them side-effect free) when the build
/// defines SCCFT_TRACE_COMPILED_OUT; verdict-class events (see
/// trace/event.hpp) are emitted via TraceBus::emit directly and survive.
#if defined(SCCFT_TRACE_COMPILED_OUT)
#define SCCFT_TRACE(bus, ...) ((void)0)
#else
#define SCCFT_TRACE(bus, ...) (bus).emit(__VA_ARGS__)
#endif
