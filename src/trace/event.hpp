// Typed trace events: the vocabulary of the observability spine.
//
// Every layer of the framework reports what it does as one of these fixed
// event kinds, stamped with *simulated* time and tagged with an interned
// subject (a channel, a queue, a process, the supervisor...). The record is
// a fixed-size POD so emission is a handful of stores and recording layers
// (ring buffer, binary stream) need no allocation per event.
//
// Two classes of events exist, with different removal guarantees:
//
//  * data-path events (scheduling, enqueue/dequeue, fill levels, shaper
//    emissions) are high-frequency and purely observational. They are
//    emitted through the SCCFT_TRACE macro (trace/bus.hpp) and vanish
//    entirely when the build defines SCCFT_TRACE_COMPILED_OUT.
//  * verdict events (detections, injections, quarantines, freezes,
//    restarts, health transitions) are rare and *semantically load-bearing*:
//    the supervisor, the detection log, and the monitor bridges subscribe to
//    them. They are emitted unconditionally so behaviour is identical with
//    tracing compiled out — only the high-frequency firehose is removable.
#pragma once

#include <cstdint>

#include "rtc/time.hpp"

namespace sccft::trace {

/// Interned subject handle (see TraceBus::intern). 0 is the empty subject.
using SubjectId = std::uint32_t;

enum class EventKind : std::uint8_t {
  // --- sim/ (data-path) ----------------------------------------------------
  kSimSchedule = 0,   ///< a: scheduled time, b: event seq
  kSimDispatch,       ///< a: event seq
  // --- kpn/ and ft/ channel data path --------------------------------------
  kEnqueue,           ///< a: token seq, b: fill after the enqueue
  kDequeue,           ///< a: token seq, b: fill after the dequeue
  kTokenDrop,         ///< a: token seq (late duplicate / NoC loss / fault drop)
  kWriterBlock,       ///< writer found the channel full and suspended
  kReaderBlock,       ///< reader found the channel empty and suspended
  kQueueLevel,        ///< a: fill, b: space (virtual counters included)
  kEmission,          ///< TimingShaper commit; a: emissions so far
  // --- ft/ verdicts and fault lifecycle ------------------------------------
  kDetection,         ///< a: replica index, b: detection rule
  kQuarantine,        ///< a: replica index, b: CRC mismatches so far
  kInjection,         ///< a: fault kind, b: replica index
  kFreeze,            ///< a: replica index (core halt begins)
  kUnfreeze,          ///< a: replica index (transient halt ends)
  kReintegrate,       ///< a: replica index (recovery re-admission)
  kRestart,           ///< a: replica index, b: restarts spent so far
  kHealthTransition,  ///< a: replica index, b: from-health, c: to-health
  kCurveViolation,    ///< empirical curve left the design envelope;
                      ///< a: replica index (-1: none), b: 0 upper / 1 lower,
                      ///< c: lattice level
  // --- scc/ and ft/ control-plane last-line defense ------------------------
  kWatchdogReset,     ///< hardware watchdog fired; a: channel index,
                      ///< b: tile id, c: resets on this channel so far
  kHeartbeat,         ///< supervisor liveness beacon; a: heartbeats so far
  kScrubRepair,       ///< scrubber repaired control state; a: target index
                      ///< (-1: flight-ring resync), b: repaired words,
                      ///< c: unrepairable words
  // --- adapt/ reconfiguration and weakly-hard acceptance -------------------
  kReconfig,          ///< live-resize protocol phase; a: 0 quiesce / 1 apply /
                      ///< 2 resume, b: target (0 |F1|, 1 |F2|, 2 D; -1 none),
                      ///< c: applied value (apply phase only)
  kAcceptanceMiss,    ///< weakly-hard (m,K) window recorded a miss;
                      ///< a: replica index (-1: none), b: misses in window,
                      ///< c: window length K
  kCount,
};

inline constexpr std::size_t kEventKindCount = static_cast<std::size_t>(EventKind::kCount);
static_assert(kEventKindCount <= 32, "EventKind must fit a 32-bit mask");

/// One bit per event kind; sinks subscribe with an OR of these.
[[nodiscard]] constexpr std::uint32_t bit(EventKind kind) {
  return 1u << static_cast<std::uint32_t>(kind);
}

inline constexpr std::uint32_t kAllEvents = (1u << kEventKindCount) - 1u;

/// Everything except the simulator's scheduling firehose — the default mask
/// for the flight recorder: channel traffic plus the full fault lifecycle.
inline constexpr std::uint32_t kFlightRecorderMask =
    kAllEvents & ~(bit(EventKind::kSimSchedule) | bit(EventKind::kSimDispatch));

/// The rare, always-on fault-lifecycle events.
inline constexpr std::uint32_t kVerdictEvents =
    bit(EventKind::kDetection) | bit(EventKind::kQuarantine) |
    bit(EventKind::kInjection) | bit(EventKind::kFreeze) |
    bit(EventKind::kUnfreeze) | bit(EventKind::kReintegrate) |
    bit(EventKind::kRestart) | bit(EventKind::kHealthTransition) |
    bit(EventKind::kCurveViolation) | bit(EventKind::kWatchdogReset) |
    bit(EventKind::kHeartbeat) | bit(EventKind::kScrubRepair) |
    bit(EventKind::kReconfig) | bit(EventKind::kAcceptanceMiss);

[[nodiscard]] const char* to_string(EventKind kind);

/// A single trace record. Interpretation of a/b/c depends on `kind` (see the
/// EventKind comments); unused operands are 0.
struct Event {
  rtc::TimeNs time = 0;
  EventKind kind = EventKind::kSimSchedule;
  SubjectId subject = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

}  // namespace sccft::trace
