#include "trace/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace sccft::trace {

std::int64_t Series::min() const {
  SCCFT_EXPECTS(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

std::int64_t Series::max() const {
  SCCFT_EXPECTS(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

std::int64_t Series::sum() const {
  std::int64_t total = 0;
  for (const auto v : samples_) total += v;
  return total;
}

double Series::mean() const {
  SCCFT_EXPECTS(!samples_.empty());
  return static_cast<double>(sum()) / static_cast<double>(samples_.size());
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauge_max(name, value);
  for (const auto& [name, series] : other.series_) series_[name].append(series);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  series_.clear();
}

std::string MetricsRegistry::render_csv() const {
  util::CsvWriter csv({"metric", "kind", "value"});
  for (const auto& [name, value] : counters_) {
    csv.add_row({name, "counter", std::to_string(value)});
  }
  for (const auto& [name, value] : gauges_) {
    csv.add_row({name, "gauge", std::to_string(value)});
  }
  for (const auto& [name, series] : series_) {
    if (series.empty()) {
      csv.add_row({name, "series", "0"});
      continue;
    }
    csv.add_row({name + ".count", "series", std::to_string(series.count())});
    csv.add_row({name + ".min", "series", std::to_string(series.min())});
    csv.add_row({name + ".mean", "series", util::format_double(series.mean(), 3)});
    csv.add_row({name + ".max", "series", std::to_string(series.max())});
  }
  return csv.render();
}

}  // namespace sccft::trace
