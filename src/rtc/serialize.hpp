// Text (de)serialization of timing models and curves.
//
// A small line-oriented format so designs can be stored next to the code,
// exchanged between the CLI tools, and diffed in review:
//
//   pjd <period_ns> <jitter_ns> <delay_ns>
//   pjd-upper <period_ns> <jitter_ns> <delay_ns>
//   pjd-lower <period_ns> <jitter_ns> <delay_ns>
//   rate-latency <token_period_ns> <latency_ns>
//   zero
//   staircase <base> <jump_count> {<at_ns> <step>}... <tail_start> <tail_period> <tail_step>
//   empirical <at_ns> <events> <first_event_ns> <point_count> {<delta_ns> <upper> <lower> <lower_valid>}...
//   adapt-policy <enabled> <m> <K> <deadband> <cooldown_ns> <redimension_period_ns>
//                <quiesce_window_ns> <widen_at> <resize_at> <widen_percent>
//                <grow_percent> <headroom> <max_capacity> <max_divergence>
//   mk-window <m> <K> <mask> <filled> <cursor>
//
// Round-trip guarantee: parse(serialize(x)) evaluates identically to x (for
// empirical snapshots, adaptation configs and (m,K) windows: compares equal
// field-by-field).
#pragma once

#include <memory>
#include <string>

#include "rtc/curve.hpp"
#include "rtc/online/snapshot.hpp"
#include "rtc/online/weakly_hard.hpp"
#include "rtc/pjd.hpp"

namespace sccft::rtc {

/// Serializes a PJD model ("pjd P J d").
[[nodiscard]] std::string to_text(const PJD& model);

/// Parses a "pjd ..." line. Throws util::ContractViolation on malformed input.
[[nodiscard]] PJD pjd_from_text(const std::string& text);

/// Serializes any supported curve type (PJD upper/lower, rate-latency, zero,
/// staircase). Throws for unknown curve types.
[[nodiscard]] std::string curve_to_text(const Curve& curve);

/// Parses any curve line produced by curve_to_text.
[[nodiscard]] std::unique_ptr<Curve> curve_from_text(const std::string& text);

/// Serializes an empirical curve snapshot ("empirical ..." line).
[[nodiscard]] std::string snapshot_to_text(const online::EmpiricalCurveSnapshot& snapshot);

/// Parses an "empirical ..." line. Throws util::ContractViolation on
/// malformed input (wrong tag, missing/garbage fields, absurd point counts,
/// non-increasing deltas, out-of-range flags) — never undefined behaviour.
[[nodiscard]] online::EmpiricalCurveSnapshot snapshot_from_text(const std::string& text);

/// Serializes an adaptation-policy configuration ("adapt-policy ..." line).
[[nodiscard]] std::string to_text(const online::AdaptationConfig& config);

/// Parses an "adapt-policy ..." line. Throws util::ContractViolation on
/// malformed input (wrong tag, missing/garbage fields, out-of-range ladder
/// thresholds or window parameters).
[[nodiscard]] online::AdaptationConfig adaptation_from_text(const std::string& text);

/// Serializes a weakly-hard window's live state ("mk-window ..." line). The
/// miss count is not stored — it is recomputed from the mask on parse.
[[nodiscard]] std::string to_text(const online::WeaklyHardWindow& window);

/// Parses an "mk-window ..." line. Throws util::ContractViolation on
/// malformed input (m/K out of range, mask bits beyond K, cursor/filled
/// outside the ring, more mask bits than checks seen).
[[nodiscard]] online::WeaklyHardWindow window_from_text(const std::string& text);

}  // namespace sccft::rtc
