// Text (de)serialization of timing models and curves.
//
// A small line-oriented format so designs can be stored next to the code,
// exchanged between the CLI tools, and diffed in review:
//
//   pjd <period_ns> <jitter_ns> <delay_ns>
//   pjd-upper <period_ns> <jitter_ns> <delay_ns>
//   pjd-lower <period_ns> <jitter_ns> <delay_ns>
//   rate-latency <token_period_ns> <latency_ns>
//   zero
//   staircase <base> <jump_count> {<at_ns> <step>}... <tail_start> <tail_period> <tail_step>
//   empirical <at_ns> <events> <first_event_ns> <point_count> {<delta_ns> <upper> <lower> <lower_valid>}...
//
// Round-trip guarantee: parse(serialize(x)) evaluates identically to x (for
// empirical snapshots: compares equal field-by-field).
#pragma once

#include <memory>
#include <string>

#include "rtc/curve.hpp"
#include "rtc/online/snapshot.hpp"
#include "rtc/pjd.hpp"

namespace sccft::rtc {

/// Serializes a PJD model ("pjd P J d").
[[nodiscard]] std::string to_text(const PJD& model);

/// Parses a "pjd ..." line. Throws util::ContractViolation on malformed input.
[[nodiscard]] PJD pjd_from_text(const std::string& text);

/// Serializes any supported curve type (PJD upper/lower, rate-latency, zero,
/// staircase). Throws for unknown curve types.
[[nodiscard]] std::string curve_to_text(const Curve& curve);

/// Parses any curve line produced by curve_to_text.
[[nodiscard]] std::unique_ptr<Curve> curve_from_text(const std::string& text);

/// Serializes an empirical curve snapshot ("empirical ..." line).
[[nodiscard]] std::string snapshot_to_text(const online::EmpiricalCurveSnapshot& snapshot);

/// Parses an "empirical ..." line. Throws util::ContractViolation on
/// malformed input (wrong tag, missing/garbage fields, absurd point counts,
/// non-increasing deltas, out-of-range flags) — never undefined behaviour.
[[nodiscard]] online::EmpiricalCurveSnapshot snapshot_from_text(const std::string& text);

}  // namespace sccft::rtc
