#include "rtc/online/conformance.hpp"

namespace sccft::rtc::online {

ConformanceChecker::ConformanceChecker(const CurveEstimator& estimator,
                                       const Curve& design_lower,
                                       const Curve& design_upper) {
  const int n = estimator.levels();
  upper_bound_.reserve(static_cast<std::size_t>(n));
  lower_bound_.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const TimeNs delta = estimator.delta(j);
    upper_bound_.push_back(design_upper.value_at(delta));
    lower_bound_.push_back(design_lower.value_at(delta));
  }
  lower_reported_.assign(static_cast<std::size_t>(n), 0);
  lower_reported_valid_.assign(static_cast<std::size_t>(n), 0);
}

}  // namespace sccft::rtc::online
