#include "rtc/online/conformance.hpp"

#include "util/assert.hpp"

namespace sccft::rtc::online {

ConformanceChecker::ConformanceChecker(const CurveEstimator& estimator,
                                       const Curve& design_lower,
                                       const Curve& design_upper) {
  const int n = estimator.levels();
  upper_bound_.reserve(static_cast<std::size_t>(n));
  lower_bound_.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const TimeNs delta = estimator.delta(j);
    upper_bound_.push_back(design_upper.value_at(delta));
    lower_bound_.push_back(design_lower.value_at(delta));
  }
  lower_reported_.assign(static_cast<std::size_t>(n), 0);
  lower_reported_valid_.assign(static_cast<std::size_t>(n), false);
}

std::optional<ConformanceChecker::Violation> ConformanceChecker::check(
    const CurveEstimator& estimator) {
  SCCFT_EXPECTS(estimator.levels() == static_cast<int>(upper_bound_.size()));
  ++checks_;
  std::optional<Violation> found;
  const TimeNs at = estimator.instant();

  for (int j = 0; j < estimator.levels(); ++j) {
    const auto idx = static_cast<std::size_t>(j);

    // Upper breach: the window ending right now holds more events than the
    // design curve allows. Evaluated on the live count (not the running max)
    // so a sustained burst is counted per offending event, not per check.
    const Tokens count = estimator.window_count(j);
    if (count > upper_bound_[idx]) {
      ++upper_violations_;
      Violation v{.at = at, .level = j, .upper = true, .observed = count,
                  .bound = upper_bound_[idx]};
      if (!first_) first_ = v;
      if (!found) found = v;
    }

    // Lower breach: the running minimum dropped below the design curve. The
    // minimum is sticky, so only count when it deepens past what was already
    // reported.
    if (estimator.lower_valid(j)) {
      const Tokens low = estimator.lower_record(j);
      if (low < lower_bound_[idx] &&
          (!lower_reported_valid_[idx] || low < lower_reported_[idx])) {
        lower_reported_valid_[idx] = true;
        lower_reported_[idx] = low;
        ++lower_violations_;
        Violation v{.at = at, .level = j, .upper = false, .observed = low,
                    .bound = lower_bound_[idx]};
        if (!first_) first_ = v;
        if (!found) found = v;
      }
    }
  }
  return found;
}

}  // namespace sccft::rtc::online
