// Online empirical arrival-curve estimation (the measurement half of the
// runtime-conformance subsystem).
//
// A CurveEstimator watches one token stream — a sequence of emission
// timestamps in nondecreasing virtual time — and maintains, for every window
// length Delta_j of a power-of-two lattice
//
//     Delta_j = base_delta * 2^j,   j = 0 .. levels-1,
//
// two records:
//
//   upper_[j] = max over observed event instants t of  G(t - Delta_j, t]
//   lower_[j] = min over observed instants t of        G[t - Delta_j, t)
//               (only windows lying fully inside the observed span count)
//
// where G(I) is the number of events in interval I. These are the empirical
// staircases alpha-hat^u / alpha-hat^l of the paper's Eq. (2), sampled on the
// lattice.
//
// Soundness (the property the subsystem's tests pin down): every recorded
// count is the count of a *real* window of the stream, so for a stream that
// conforms to a design curve pair (alpha^l, alpha^u),
//
//     upper_[j] <= alpha^u(Delta_j)   and   lower_[j] >= alpha^l(Delta_j).
//
// The max over (t-Delta, t] windows is restricted to event instants because
// the supremum of the right-closed window count is attained when the window
// ends exactly at an event; polling between events can only lower it. The min
// over [t-Delta, t) windows is updated at every observation (events *and*
// advance_to polls) because the infimum can occur between events — e.g. a
// silent stream's minimum is witnessed by polling, never by an event. Windows
// reaching before the first event are skipped (the stream's span starts at
// its first emission; counting the idle prefix would record spurious zeros).
//
// Mechanics: timestamps live in a contiguous vector consumed from the front
// via a start offset (compacted amortized-O(1), so indexing is plain array
// arithmetic — this estimator sits on the monitor's per-emission hot path,
// where a deque's segmented indexing and out-of-line calls were measurable).
// Per level a pair of monotone pointers marks the first buffered event inside
// the current window's half-open/closed variants. Pointers only move forward,
// and events older than the largest lattice window are evicted from the
// front, so the cost is O(levels) amortized per event and the buffer holds at
// most the events of the largest window. Everything is keyed to virtual
// time — snapshots are pure functions of the event stream and therefore
// byte-identical across repeated runs and across `--jobs` values.
//
// ConformanceChecker is a friend: its fused observe-and-check entry points
// (the OnlineMonitor hot path) interleave the per-level pointer maintenance
// here with the Eq. (2) comparisons, and are allowed to let the strict
// pointers lag during cross-stream advances (see advance_lower below).
#pragma once

#include <cstdint>
#include <vector>

#include "rtc/online/snapshot.hpp"
#include "rtc/time.hpp"
#include "util/assert.hpp"

namespace sccft::rtc::online {

class ConformanceChecker;

/// The power-of-two window lattice the estimator samples on.
struct LatticeConfig {
  TimeNs base_delta = 0;  ///< Delta_0, must be > 0 (typically the stream period)
  int levels = 8;         ///< lattice size; Delta_max = base_delta << (levels-1)
};

class CurveEstimator {
 public:
  explicit CurveEstimator(const LatticeConfig& config);

  /// Record one emission at virtual time `at` (nondecreasing across calls,
  /// and not before the last advance_to).
  void add_event(TimeNs at) {
    push_event(at);
    observe(at, /*is_event=*/true);
  }

  /// Advance the observation instant without an event — lets the lower-curve
  /// minima witness silent stretches. Idempotent for equal `at`.
  void advance_to(TimeNs at) {
    SCCFT_EXPECTS(at >= instant_);
    observe(at, /*is_event=*/false);
  }

  [[nodiscard]] int levels() const { return static_cast<int>(deltas_.size()); }
  [[nodiscard]] TimeNs delta(int level) const { return deltas_[static_cast<std::size_t>(level)]; }
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] TimeNs instant() const { return instant_; }
  [[nodiscard]] TimeNs first_event() const { return first_event_; }

  /// Current count of events in (instant - Delta_level, instant].
  [[nodiscard]] Tokens window_count(int level) const {
    const std::uint64_t end = base_ + live_count();
    return static_cast<Tokens>(end - strict_[static_cast<std::size_t>(level)]);
  }

  /// Running records per level (what snapshot() freezes).
  [[nodiscard]] Tokens upper_record(int level) const {
    return upper_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] bool lower_valid(int level) const {
    return lower_valid_[static_cast<std::size_t>(level)] != 0;
  }
  [[nodiscard]] Tokens lower_record(int level) const {
    return lower_[static_cast<std::size_t>(level)];
  }

  /// Events currently buffered (bounded by the largest window's content).
  [[nodiscard]] std::size_t buffered_events() const { return live_count(); }

  /// Advance to `at` and freeze the empirical staircases.
  [[nodiscard]] EmpiricalCurveSnapshot snapshot(TimeNs at);

 private:
  friend class ConformanceChecker;

  [[nodiscard]] std::size_t live_count() const { return times_.size() - start_; }

  /// add_event's bookkeeping preamble: appends the timestamp without moving
  /// the observation instant (observe / observe_with completes the step).
  void push_event(TimeNs at) {
    SCCFT_EXPECTS(at >= instant_);
    SCCFT_EXPECTS(at >= 0);
    if (first_event_ < 0) first_event_ = at;
    tail_equal_ = (live_count() != 0 && times_.back() == at) ? tail_equal_ + 1 : 1;
    times_.push_back(at);
    ++events_;
  }

  void observe(TimeNs at, bool is_event) {
    observe_with(at, is_event, [](std::size_t, Tokens) {}, [](std::size_t, Tokens) {});
  }

  /// One full observation step. `on_count(j, count)` fires per level with the
  /// post-advance (instant - Delta_j, instant] count; `on_lower_update(j, low)`
  /// fires only when level j's lower record improves (the only instants at
  /// which a new lower breach can appear — see ConformanceChecker). Hooks are
  /// invoked in ascending level order, on_count before on_lower_update.
  template <class CountHook, class LowerHook>
  void observe_with(TimeNs at, bool is_event, CountHook&& on_count,
                    LowerHook&& on_lower_update) {
    instant_ = at;
    const std::size_t n = live_count();
    const std::uint64_t end = base_ + n;
    // Buffered timestamps indexed by absolute event number: abs index k lives
    // at ts[k - base_].
    const TimeNs* const ts = times_.data() + start_;
    const std::uint64_t base = base_;
    // Events at exactly `at` belong to (lo, at] windows but not [lo, at) ones —
    // and only [lo, at) windows are complete (later calls may still add events
    // at time `at`).
    const std::uint64_t at_tail =
        (n != 0 && times_.back() == at) ? tail_equal_ : 0;
    const TimeNs span_from = first_event_;

    const std::size_t level_count = deltas_.size();
    for (std::size_t j = 0; j < level_count; ++j) {
      const TimeNs lo = at - deltas_[j];

      std::uint64_t strict = strict_[j];
      while (strict < end && ts[strict - base] <= lo) ++strict;
      strict_[j] = strict;
      std::uint64_t closed = closed_[j];
      while (closed < end && ts[closed - base] < lo) ++closed;
      closed_[j] = closed;

      const auto count = static_cast<Tokens>(end - strict);
      if (is_event && count > upper_[j]) upper_[j] = count;
      on_count(j, count);
      if (span_from >= 0 && lo >= span_from) {
        const auto low = static_cast<Tokens>(end - closed - at_tail);
        if (lower_valid_[j] == 0 || low < lower_[j]) {
          lower_valid_[j] = 1;
          lower_[j] = low;
          on_lower_update(j, low);
        }
      }
    }
    evict();
  }

  /// Reduced observation step for the monitor's cross-stream advances while
  /// no upper breach is live: maintains only the closed pointers and lower
  /// records. The strict pointers are left to lag — with no event added,
  /// every (lo, at] count is nonincreasing in `at`, so a level that was
  /// within its upper bound at the previous check stays within it until the
  /// next own event catches the pointers up. Lag never outlives eviction:
  /// evict() clamps strict pointers to the retained range.
  template <class LowerHook>
  void advance_lower(TimeNs at, LowerHook&& on_lower_update) {
    SCCFT_EXPECTS(at >= instant_);
    instant_ = at;
    const std::size_t n = live_count();
    const std::uint64_t end = base_ + n;
    const TimeNs* const ts = times_.data() + start_;
    const std::uint64_t base = base_;
    const std::uint64_t at_tail =
        (n != 0 && times_.back() == at) ? tail_equal_ : 0;
    const TimeNs span_from = first_event_;

    const std::size_t level_count = deltas_.size();
    for (std::size_t j = 0; j < level_count; ++j) {
      const TimeNs lo = at - deltas_[j];
      std::uint64_t closed = closed_[j];
      while (closed < end && ts[closed - base] < lo) ++closed;
      closed_[j] = closed;
      if (span_from >= 0 && lo >= span_from) {
        const auto low = static_cast<Tokens>(end - closed - at_tail);
        if (lower_valid_[j] == 0 || low < lower_[j]) {
          lower_valid_[j] = 1;
          lower_[j] = low;
          on_lower_update(j, low);
        }
      }
    }
    evict();
  }

  /// Drops events older than the largest window: no pointer can reference
  /// them again (closed_ of the top level is monotone and already past them;
  /// strict pointers are >= it when current, and get clamped when lagging —
  /// the clamp target never overshoots a pointer's true position because
  /// strict_j >= closed_{top} holds for fully-advanced pointers).
  void evict() {
    const std::uint64_t keep_from = closed_.back();
    if (base_ >= keep_from) return;
    for (auto& strict : strict_) {
      if (strict < keep_from) strict = keep_from;
    }
    start_ += static_cast<std::size_t>(keep_from - base_);
    base_ = keep_from;
    if (start_ == times_.size()) {
      times_.clear();
      start_ = 0;
    } else if (start_ >= 4096 && start_ * 2 >= times_.size()) {
      // Amortized compaction keeps indexing contiguous without unbounded
      // front garbage.
      times_.erase(times_.begin(), times_.begin() + static_cast<std::ptrdiff_t>(start_));
      start_ = 0;
    }
  }

  std::vector<TimeNs> deltas_;

  std::vector<TimeNs> times_;  ///< buffered event timestamps; live from start_
  std::size_t start_ = 0;      ///< first live element of times_
  std::uint64_t base_ = 0;     ///< absolute index of times_[start_]
  std::uint64_t tail_equal_ = 0;  ///< trailing events with ts == times_.back()

  // Per level: absolute index of the first buffered event with
  //   ts >  instant - Delta  (strict_: the (lo, instant] window), and
  //   ts >= instant - Delta  (closed_: the [lo, instant) window).
  std::vector<std::uint64_t> strict_;
  std::vector<std::uint64_t> closed_;

  std::vector<Tokens> upper_;
  std::vector<Tokens> lower_;
  std::vector<std::uint8_t> lower_valid_;

  TimeNs instant_ = 0;
  TimeNs first_event_ = -1;
  std::uint64_t events_ = 0;
};

}  // namespace sccft::rtc::online
