// Online empirical arrival-curve estimation (the measurement half of the
// runtime-conformance subsystem).
//
// A CurveEstimator watches one token stream — a sequence of emission
// timestamps in nondecreasing virtual time — and maintains, for every window
// length Delta_j of a power-of-two lattice
//
//     Delta_j = base_delta * 2^j,   j = 0 .. levels-1,
//
// two records:
//
//   upper_[j] = max over observed event instants t of  G(t - Delta_j, t]
//   lower_[j] = min over observed instants t of        G[t - Delta_j, t)
//               (only windows lying fully inside the observed span count)
//
// where G(I) is the number of events in interval I. These are the empirical
// staircases alpha-hat^u / alpha-hat^l of the paper's Eq. (2), sampled on the
// lattice.
//
// Soundness (the property the subsystem's tests pin down): every recorded
// count is the count of a *real* window of the stream, so for a stream that
// conforms to a design curve pair (alpha^l, alpha^u),
//
//     upper_[j] <= alpha^u(Delta_j)   and   lower_[j] >= alpha^l(Delta_j).
//
// The max over (t-Delta, t] windows is restricted to event instants because
// the supremum of the right-closed window count is attained when the window
// ends exactly at an event; polling between events can only lower it. The min
// over [t-Delta, t) windows is updated at every observation (events *and*
// advance_to polls) because the infimum can occur between events — e.g. a
// silent stream's minimum is witnessed by polling, never by an event. Windows
// reaching before the first event are skipped (the stream's span starts at
// its first emission; counting the idle prefix would record spurious zeros).
//
// Mechanics: timestamps are buffered in a deque; per level a pair of
// monotone pointers marks the first buffered event inside the current
// window's half-open/closed variants. Pointers only move forward, and events
// older than the largest lattice window are evicted from the front, so the
// cost is O(levels) amortized per event and the buffer holds at most the
// events of the largest window. Everything is keyed to virtual time —
// snapshots are pure functions of the event stream and therefore
// byte-identical across repeated runs and across `--jobs` values.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rtc/online/snapshot.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc::online {

/// The power-of-two window lattice the estimator samples on.
struct LatticeConfig {
  TimeNs base_delta = 0;  ///< Delta_0, must be > 0 (typically the stream period)
  int levels = 8;         ///< lattice size; Delta_max = base_delta << (levels-1)
};

class CurveEstimator {
 public:
  explicit CurveEstimator(const LatticeConfig& config);

  /// Record one emission at virtual time `at` (nondecreasing across calls,
  /// and not before the last advance_to).
  void add_event(TimeNs at);

  /// Advance the observation instant without an event — lets the lower-curve
  /// minima witness silent stretches. Idempotent for equal `at`.
  void advance_to(TimeNs at);

  [[nodiscard]] int levels() const { return static_cast<int>(deltas_.size()); }
  [[nodiscard]] TimeNs delta(int level) const { return deltas_[static_cast<std::size_t>(level)]; }
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] TimeNs instant() const { return instant_; }
  [[nodiscard]] TimeNs first_event() const { return first_event_; }

  /// Current count of events in (instant - Delta_level, instant].
  [[nodiscard]] Tokens window_count(int level) const;

  /// Running records per level (what snapshot() freezes).
  [[nodiscard]] Tokens upper_record(int level) const {
    return upper_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] bool lower_valid(int level) const {
    return lower_valid_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] Tokens lower_record(int level) const {
    return lower_[static_cast<std::size_t>(level)];
  }

  /// Events currently buffered (bounded by the largest window's content).
  [[nodiscard]] std::size_t buffered_events() const { return times_.size(); }

  /// Advance to `at` and freeze the empirical staircases.
  [[nodiscard]] EmpiricalCurveSnapshot snapshot(TimeNs at);

 private:
  void observe(TimeNs at, bool is_event);

  std::vector<TimeNs> deltas_;

  std::deque<TimeNs> times_;   ///< buffered event timestamps, nondecreasing
  std::uint64_t base_ = 0;     ///< absolute index of times_.front()
  std::uint64_t tail_equal_ = 0;  ///< trailing events with ts == times_.back()

  // Per level: absolute index of the first buffered event with
  //   ts >  instant - Delta  (strict_: the (lo, instant] window), and
  //   ts >= instant - Delta  (closed_: the [lo, instant) window).
  std::vector<std::uint64_t> strict_;
  std::vector<std::uint64_t> closed_;

  std::vector<Tokens> upper_;
  std::vector<Tokens> lower_;
  std::vector<bool> lower_valid_;

  TimeNs instant_ = 0;
  TimeNs first_event_ = -1;
  std::uint64_t events_ = 0;
};

}  // namespace sccft::rtc::online
