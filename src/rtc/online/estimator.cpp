#include "rtc/online/estimator.hpp"

#include <limits>

#include "util/assert.hpp"

namespace sccft::rtc::online {

CurveEstimator::CurveEstimator(const LatticeConfig& config) {
  SCCFT_EXPECTS(config.base_delta > 0);
  SCCFT_EXPECTS(config.levels >= 1);
  SCCFT_EXPECTS(config.levels <= 48);
  // The largest window must fit in TimeNs.
  SCCFT_EXPECTS(config.base_delta <=
                (std::numeric_limits<TimeNs>::max() >> (config.levels - 1)));

  deltas_.reserve(static_cast<std::size_t>(config.levels));
  for (int j = 0; j < config.levels; ++j) {
    deltas_.push_back(config.base_delta << j);
  }
  const auto n = deltas_.size();
  strict_.assign(n, 0);
  closed_.assign(n, 0);
  upper_.assign(n, 0);
  lower_.assign(n, 0);
  lower_valid_.assign(n, 0);
}

EmpiricalCurveSnapshot CurveEstimator::snapshot(TimeNs at) {
  advance_to(at);
  EmpiricalCurveSnapshot snap;
  snap.at = instant_;
  snap.events = events_;
  snap.first_event = first_event_;
  snap.points.reserve(deltas_.size());
  for (std::size_t j = 0; j < deltas_.size(); ++j) {
    snap.points.push_back({.delta = deltas_[j],
                           .upper = upper_[j],
                           .lower = lower_[j],
                           .lower_valid = lower_valid_[j] != 0});
  }
  return snap;
}

}  // namespace sccft::rtc::online
