#include "rtc/online/estimator.hpp"

#include <limits>

#include "util/assert.hpp"

namespace sccft::rtc::online {

CurveEstimator::CurveEstimator(const LatticeConfig& config) {
  SCCFT_EXPECTS(config.base_delta > 0);
  SCCFT_EXPECTS(config.levels >= 1);
  SCCFT_EXPECTS(config.levels <= 48);
  // The largest window must fit in TimeNs.
  SCCFT_EXPECTS(config.base_delta <=
                (std::numeric_limits<TimeNs>::max() >> (config.levels - 1)));

  deltas_.reserve(static_cast<std::size_t>(config.levels));
  for (int j = 0; j < config.levels; ++j) {
    deltas_.push_back(config.base_delta << j);
  }
  const auto n = deltas_.size();
  strict_.assign(n, 0);
  closed_.assign(n, 0);
  upper_.assign(n, 0);
  lower_.assign(n, 0);
  lower_valid_.assign(n, false);
}

void CurveEstimator::add_event(TimeNs at) {
  SCCFT_EXPECTS(at >= instant_);
  SCCFT_EXPECTS(at >= 0);
  if (first_event_ < 0) first_event_ = at;
  tail_equal_ = (!times_.empty() && times_.back() == at) ? tail_equal_ + 1 : 1;
  times_.push_back(at);
  ++events_;
  observe(at, /*is_event=*/true);
}

void CurveEstimator::advance_to(TimeNs at) {
  SCCFT_EXPECTS(at >= instant_);
  observe(at, /*is_event=*/false);
}

Tokens CurveEstimator::window_count(int level) const {
  SCCFT_EXPECTS(level >= 0 && level < levels());
  const std::uint64_t end = base_ + times_.size();
  return static_cast<Tokens>(end - strict_[static_cast<std::size_t>(level)]);
}

void CurveEstimator::observe(TimeNs at, bool is_event) {
  instant_ = at;
  const std::uint64_t end = base_ + times_.size();
  // Events at exactly `at` belong to (lo, at] windows but not [lo, at) ones —
  // and only [lo, at) windows are complete (later calls may still add events
  // at time `at`).
  const std::uint64_t at_tail =
      (!times_.empty() && times_.back() == at) ? tail_equal_ : 0;

  for (std::size_t j = 0; j < deltas_.size(); ++j) {
    const TimeNs lo = at - deltas_[j];

    auto& strict = strict_[j];
    while (strict < end && times_[static_cast<std::size_t>(strict - base_)] <= lo) ++strict;
    auto& closed = closed_[j];
    while (closed < end && times_[static_cast<std::size_t>(closed - base_)] < lo) ++closed;

    if (is_event) {
      const auto count = static_cast<Tokens>(end - strict);
      if (count > upper_[j]) upper_[j] = count;
    }
    if (first_event_ >= 0 && lo >= first_event_) {
      const auto count = static_cast<Tokens>(end - closed - at_tail);
      if (!lower_valid_[j] || count < lower_[j]) {
        lower_valid_[j] = true;
        lower_[j] = count;
      }
    }
  }

  // Events older than the largest window can no longer be referenced by any
  // pointer (all pointers are monotone and already past them).
  const std::uint64_t keep_from = closed_.back();
  while (base_ < keep_from) {
    times_.pop_front();
    ++base_;
  }
}

EmpiricalCurveSnapshot CurveEstimator::snapshot(TimeNs at) {
  advance_to(at);
  EmpiricalCurveSnapshot snap;
  snap.at = instant_;
  snap.events = events_;
  snap.first_event = first_event_;
  snap.points.reserve(deltas_.size());
  for (std::size_t j = 0; j < deltas_.size(); ++j) {
    snap.points.push_back({.delta = deltas_[j],
                           .upper = upper_[j],
                           .lower = lower_[j],
                           .lower_valid = lower_valid_[j]});
  }
  return snap;
}

}  // namespace sccft::rtc::online
