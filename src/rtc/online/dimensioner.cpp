#include "rtc/online/dimensioner.hpp"

#include <algorithm>

namespace sccft::rtc::online {

OnlineMargins redimension(const EmpiricalCurveSnapshot& producer,
                          const EmpiricalCurveSnapshot& replica1_out,
                          const EmpiricalCurveSnapshot& replica2_out,
                          const NetworkTimingModel& design,
                          const SizingReport& designed) {
  OnlineMargins margins;
  margins.designed_fifo1 = designed.replicator_capacity1;
  margins.designed_fifo2 = designed.replicator_capacity2;
  margins.designed_divergence = designed.selector_threshold;
  margins.designed_latency = designed.selector_latency_bound;

  // Sound horizon: the largest window any of the snapshots fully certifies.
  const TimeNs horizon = std::min({empirical_horizon(producer),
                                   empirical_horizon(replica1_out),
                                   empirical_horizon(replica2_out)});
  margins.horizon = horizon;
  if (horizon <= 0) return margins;

  // The sizing sups run over twice the certified span. Past `horizon` the
  // empirical curves are flat by construction while the design curves keep
  // growing, so every difference is non-increasing there and the sup lands in
  // the certified half — which is exactly what sup_difference's stabilization
  // check (argmax <= horizon/2) verifies. Evaluating only up to `horizon`
  // would hide the flat tail from the oracle and spuriously reject sups that
  // peak late in the span.
  const TimeNs sup_horizon = 2 * horizon;

  // Eq. (3): measured producer burstiness against each replica's *design*
  // input service (the consuming side is a scheduling property, not visible
  // to the emission taps).
  const StaircaseCurve producer_upper = empirical_upper_curve(producer);
  margins.measured_fifo1 =
      min_fifo_capacity(producer_upper, design.replica1_in_lower.get(), sup_horizon);
  margins.measured_fifo2 =
      min_fifo_capacity(producer_upper, design.replica2_in_lower.get(), sup_horizon);

  // Eq. (5): divergence threshold from the measured output curves of both
  // replicas.
  const StaircaseCurve out1_upper = empirical_upper_curve(replica1_out);
  const StaircaseCurve out1_lower = empirical_lower_curve(replica1_out);
  const StaircaseCurve out2_upper = empirical_upper_curve(replica2_out);
  const StaircaseCurve out2_lower = empirical_lower_curve(replica2_out);
  margins.measured_divergence = divergence_threshold(out1_upper, out1_lower,
                                                     out2_upper, out2_lower, sup_horizon);

  // Eq. (8): silence-fault latency at the *designed* threshold, taking the
  // slower (worse) replica's measured lower curve. nullopt when neither
  // measured lower curve accumulates 2D-1 tokens within the horizon.
  const Tokens d = designed.selector_threshold;
  const auto lat1 = detection_latency_bound_silence(out1_lower, d, horizon);
  const auto lat2 = detection_latency_bound_silence(out2_lower, d, horizon);
  if (lat1 && lat2) {
    margins.measured_latency = std::max(*lat1, *lat2);
  } else {
    margins.measured_latency = std::nullopt;
  }

  return margins;
}

}  // namespace sccft::rtc::online
