// Weakly-hard (m,K) acceptance and the adaptation-policy knobs.
//
// The paper's detection rules are binary: the first conformance breach is a
// verdict. Following "Leveraging Weakly-hard Constraints for Improving System
// Fault Tolerance" (arXiv:2008.06192), a stream is instead allowed to *miss*
// its design envelope up to m times in any window of K consecutive checks
// before the breach escalates. Misses below the threshold are reported as
// kAcceptanceMiss events — graduated pressure the AdaptationPolicy
// (src/adapt/policy.hpp) converts into re-dimensioning actions (widen D,
// grow FIFOs) long before the Supervisor would convict.
//
// The window state and the policy configuration are plain integer PODs so
// rtc/serialize can round-trip them in the same line-oriented text format as
// the empirical curve snapshots ("adapt-policy ...", "mk-window ...").
#pragma once

#include <cstdint>

#include "rtc/time.hpp"
#include "util/assert.hpp"

namespace sccft::rtc::online {

/// Tolerate up to `m` misses in any sliding window of `K` checks.
/// m == 0 degenerates to first-miss escalation; K is capped at 64 so the
/// window fits one machine word (and one serialized integer).
struct WeaklyHardParams {
  int m = 2;
  int K = 10;

  friend bool operator==(const WeaklyHardParams&, const WeaklyHardParams&) = default;
};

/// Sliding window of the last K hit/miss outcomes, O(1) per record.
///
/// The window is a K-bit ring held in one word: bit i set = the check at
/// (cursor - K + i) was a miss. `record` pushes the newest outcome, evicts
/// the oldest once K checks have been seen, and reports whether the window
/// now holds strictly more than m misses (the weakly-hard breach condition).
class WeaklyHardWindow {
 public:
  WeaklyHardWindow() : WeaklyHardWindow(WeaklyHardParams{}) {}

  explicit WeaklyHardWindow(WeaklyHardParams params) : params_(params) {
    SCCFT_EXPECTS(params.K >= 1 && params.K <= 64);
    SCCFT_EXPECTS(params.m >= 0 && params.m < params.K);
  }

  /// Restores a serialized window (rtc/serialize "mk-window"). `mask` holds
  /// the outcome bits, `filled` how many checks have been seen (saturating at
  /// K), `cursor` the ring position of the next write. The miss count is
  /// recomputed from the mask — it is not independent state.
  static WeaklyHardWindow from_state(WeaklyHardParams params, std::uint64_t mask,
                                     int filled, int cursor) {
    WeaklyHardWindow window(params);
    SCCFT_EXPECTS(filled >= 0 && filled <= params.K);
    SCCFT_EXPECTS(cursor >= 0 && cursor < params.K);
    SCCFT_EXPECTS(params.K == 64 || (mask >> params.K) == 0);
    window.mask_ = mask;
    window.filled_ = filled;
    window.cursor_ = cursor;
    window.misses_ = 0;
    for (int i = 0; i < params.K; ++i) {
      if ((mask >> i) & 1u) ++window.misses_;
    }
    SCCFT_EXPECTS(window.misses_ <= filled);
    return window;
  }

  /// Pushes the outcome of one check. Returns true when the window now
  /// breaches its weakly-hard constraint (more than m misses among the last
  /// K checks).
  bool record(bool miss) {
    const std::uint64_t slot = std::uint64_t{1} << cursor_;
    if (filled_ == params_.K && (mask_ & slot) != 0) --misses_;
    mask_ &= ~slot;
    if (miss) {
      mask_ |= slot;
      ++misses_;
    }
    if (filled_ < params_.K) ++filled_;
    cursor_ = (cursor_ + 1) % params_.K;
    return breached();
  }

  [[nodiscard]] bool breached() const { return misses_ > params_.m; }
  [[nodiscard]] int misses() const { return misses_; }
  [[nodiscard]] int filled() const { return filled_; }
  [[nodiscard]] int cursor() const { return cursor_; }
  [[nodiscard]] std::uint64_t mask() const { return mask_; }
  [[nodiscard]] const WeaklyHardParams& params() const { return params_; }

  friend bool operator==(const WeaklyHardWindow&, const WeaklyHardWindow&) = default;

 private:
  WeaklyHardParams params_;
  std::uint64_t mask_ = 0;  ///< K-bit miss ring
  int filled_ = 0;          ///< checks seen, saturating at K
  int cursor_ = 0;          ///< ring position of the next outcome
  int misses_ = 0;          ///< popcount of the valid mask bits
};

/// Everything the AdaptationPolicy (src/adapt) decides with — all integers so
/// the config serializes losslessly ("adapt-policy" line, rtc/serialize).
///
/// Hysteresis has two independent guards: `deadband` (tokens of slack a
/// measured demand must clear before the policy re-dimensions — measurement
/// noise inside the band never acts) and `cooldown` (minimum simulated time
/// between two actuations — even sustained pressure reconfigures at a bounded
/// rate, so the protocol's quiesce windows cannot thrash the channels).
struct AdaptationConfig {
  bool enabled = false;

  /// Weakly-hard acceptance applied per monitored stream.
  WeaklyHardParams window;

  /// Hysteresis.
  Tokens deadband = 2;
  TimeNs cooldown = 50'000'000;  ///< 50 ms

  /// Margin-sensing cadence (OnlineDimensioner snapshot per tick) and the
  /// length of each quiesce→resume reconfiguration window.
  TimeNs redimension_period = 20'000'000;  ///< 20 ms
  TimeNs quiesce_window = 1'000'000;       ///< 1 ms

  /// Degradation-ladder rungs, as misses-in-window thresholds: at
  /// `widen_at` misses the policy widens D (rung 1), at `resize_at` it grows
  /// the replicator FIFOs (rung 2). Beyond m the monitor escalates
  /// kCurveViolation and the Supervisor convicts (rung 3). Must satisfy
  /// widen_at <= resize_at <= m for the ladder to precede conviction.
  int widen_at = 1;
  int resize_at = 2;

  /// Actuation steps (percent growth per action) and absolute demand
  /// headroom (tokens above the measured requirement). The headroom doubles
  /// as the slack of the policy's live-occupancy floors, so it must cover
  /// the worst-case occupancy growth within one redimension_period — burst
  /// drift can add a few tokens of backlog between two ticks.
  int widen_percent = 50;
  int grow_percent = 50;
  Tokens headroom = 4;

  /// Actuation ceilings — adaptation degrades gracefully, it never buys
  /// unbounded memory or an unbounded detection threshold.
  Tokens max_capacity = 4096;
  Tokens max_divergence = 4096;

  friend bool operator==(const AdaptationConfig&, const AdaptationConfig&) = default;
};

}  // namespace sccft::rtc::online
