// The runtime glue of the online-RTC subsystem: a TraceBus sink that feeds
// token-emission events into per-stream CurveEstimators, runs the
// ConformanceChecker after every observation, and escalates the first breach
// per stream as a kCurveViolation verdict event — which the ft::Supervisor
// subscribes to and treats like any other detection.
//
// Data flow (ARCHITECTURE.md "Layer 2.6"):
//
//     TimingShaper --kEmission--> TraceBus --> OnlineMonitor
//         OnlineMonitor --> CurveEstimator (per stream)
//                       --> ConformanceChecker --kCurveViolation--> Supervisor
//         finalize()    --> snapshots + counters --> MetricsRegistry
//                           (snapshots feed the OnlineDimensioner offline)
//
// The monitor is an optional observer: it costs nothing when not constructed,
// and because its only input is the kEmission data-path event (emitted via
// the SCCFT_TRACE macro) it receives *no events at all* when the build
// defines SCCFT_TRACE_COMPILED_OUT — the zero-cost discipline doubles as a
// zero-function guarantee, which the micro_overhead gate pins down.
//
// Every stream's estimator is advanced on *every* tracked emission (not just
// its own): a starving stream's lower-curve minima are witnessed by the
// traffic of its healthy peers, so under-run drift is detected while the
// stream is still (too) quiet, not only at finalize time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtc/curve.hpp"
#include "rtc/online/conformance.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/online/snapshot.hpp"
#include "rtc/online/weakly_hard.hpp"
#include "rtc/time.hpp"
#include "trace/bus.hpp"

namespace sccft::rtc::online {

/// One stream to watch: which trace subject carries its emissions, what the
/// design envelope is, and which replica to convict when it drifts.
struct StreamSpec {
  std::string subject;  ///< trace subject of the stream's kEmission events
  std::string name;     ///< short name for metrics/reports ("producer", "r1.out")
  int replica = -1;     ///< ft replica index for escalation (-1: not a replica)
  CurveRef design_lower;
  CurveRef design_upper;
};

class OnlineMonitor final : public trace::Sink {
 public:
  /// Fleet-scale tuning knobs. Defaults reproduce the original behavior
  /// exactly (escalating monitor, cross-advance on every emission).
  struct Options {
    /// Emit kCurveViolation verdicts onto the bus. Fleet rigs monitoring
    /// many independent streams on one bus set this false: every supervisor
    /// on the bus sees every kCurveViolation, so escalation from stream A's
    /// monitor would convict replicas of stream B. The conformance counters
    /// and snapshots still accumulate for finalize().
    bool escalate = true;
    /// Cross-stream advance is O(streams) per tracked emission — quadratic
    /// in fleet cardinality. A non-zero quantum (ns) amortizes it: a peer
    /// emission only advances this stream's clock when it is at least
    /// `cross_advance_quantum` ahead of the stream's estimator instant.
    /// Starvation detection coarsens by at most the quantum; 0 keeps the
    /// every-event advance.
    TimeNs cross_advance_quantum = 0;
    /// Weakly-hard (m,K) acceptance (rtc/online/weakly_hard.hpp). When set,
    /// each stream tolerates m conformance misses per sliding window of K
    /// checks: every miss is reported as a kAcceptanceMiss event (graduated
    /// pressure for the adaptation policy), and kCurveViolation escalates
    /// only once the window breaches — instead of on the first miss. Unset
    /// (the default) keeps first-breach escalation byte-identical.
    std::optional<WeaklyHardParams> weakly_hard;
  };

  OnlineMonitor(trace::TraceBus& bus, const LatticeConfig& lattice,
                std::vector<StreamSpec> specs);
  OnlineMonitor(trace::TraceBus& bus, const LatticeConfig& lattice,
                std::vector<StreamSpec> specs, Options options);
  ~OnlineMonitor() override;
  OnlineMonitor(const OnlineMonitor&) = delete;
  OnlineMonitor& operator=(const OnlineMonitor&) = delete;

  void on_event(const trace::Event& event) override;

  /// Everything the harvest needs about one stream after a run.
  struct StreamReport {
    std::string name;
    int replica = -1;
    std::uint64_t events = 0;
    std::uint64_t upper_violations = 0;
    std::uint64_t lower_violations = 0;
    /// Weakly-hard misses recorded (0 unless Options::weakly_hard was set).
    std::uint64_t acceptance_misses = 0;
    std::optional<ConformanceChecker::Violation> first;
    EmpiricalCurveSnapshot snapshot;
  };

  /// Advance all streams to `at` (witnessing any terminal starvation), run a
  /// final conformance check, publish per-stream counters into the bus's
  /// MetricsRegistry (`online.<name>.*`), and return the reports. Call once,
  /// after the simulation finishes and before the registry is harvested.
  std::vector<StreamReport> finalize(TimeNs at);

  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }

  /// Mid-run empirical snapshot of stream `index` — what the adaptation loop
  /// polls periodically to re-run the sizing analyses on live curves. Unlike
  /// finalize() this neither advances conformance checking nor publishes
  /// metrics; `at` is clamped up to the estimator's current instant.
  [[nodiscard]] EmpiricalCurveSnapshot snapshot_stream(std::size_t index, TimeNs at);

  /// Emission events stream `index` has absorbed so far.
  [[nodiscard]] std::uint64_t stream_events(std::size_t index) const;

 private:
  struct Stream {
    trace::SubjectId subject = 0;
    std::string name;
    int replica = -1;
    CurveEstimator estimator;
    ConformanceChecker checker;
    bool escalated = false;
    /// Weakly-hard acceptance state (engaged when Options::weakly_hard set).
    std::optional<WeaklyHardWindow> window;
    std::uint64_t misses = 0;
  };

  /// Routes a check result through the weakly-hard window when one is
  /// configured (miss events, breach-gated escalation), or straight to
  /// escalate() otherwise. `own` distinguishes the stream's own emissions
  /// (which record hits as well) from peer-driven advances (misses only, so
  /// cross-stream chatter cannot dilute the window).
  void observe(Stream& stream, TimeNs at,
               const std::optional<ConformanceChecker::Violation>& violation,
               bool own);

  /// One-shot verdict escalation of a check's result.
  void escalate(Stream& stream, TimeNs at,
                const std::optional<ConformanceChecker::Violation>& violation);

  trace::TraceBus& bus_;
  Options options_;
  std::vector<Stream> streams_;
};

}  // namespace sccft::rtc::online
