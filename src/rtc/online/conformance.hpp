// Online verification of the paper's Eq. (2) conformance condition
//
//     alpha^l(t - s)  <=  G[s, t)  <=  alpha^u(t - s)
//
// against a configured design curve pair, evaluated on a CurveEstimator's
// lattice. The checker pre-samples the design curves at every lattice point
// at construction, so a check is a handful of integer comparisons with no
// curve evaluation on the hot path.
//
// Two kinds of breach:
//   * upper breach — the estimator's current (instant-ending) window count
//     exceeds alpha^u(Delta_j): the stream bursts beyond its design model
//     (rate creep, jitter creep). Detected at the event that overflows the
//     window, so detection latency is one event.
//   * lower breach — some fully-observed window held fewer events than
//     alpha^l(Delta_j): the stream starved beyond its design model. Witnessed
//     by the estimator's running minima, which advance on polls as well as on
//     events (a silent stream still gets caught).
//
// The checker records every breach (counters for the dimensioning report) but
// exposes `first()` separately so callers can escalate exactly once per
// stream — the ft::Supervisor treats the first conformance violation like any
// other detection and re-checks are redundant while recovery is in flight.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rtc/curve.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc::online {

class ConformanceChecker {
 public:
  struct Violation {
    TimeNs at = 0;        ///< virtual time of the breach
    int level = 0;        ///< lattice level that tripped
    bool upper = false;   ///< true: upper breach, false: lower breach
    Tokens observed = 0;  ///< the offending window count
    Tokens bound = 0;     ///< the design-curve value it crossed

    friend bool operator==(const Violation&, const Violation&) = default;
  };

  /// Samples `design_lower` / `design_upper` on the lattice of `estimator`.
  /// The estimator reference is only used for its deltas; any estimator with
  /// the same LatticeConfig may be passed to check().
  ConformanceChecker(const CurveEstimator& estimator, const Curve& design_lower,
                     const Curve& design_upper);

  /// Evaluate Eq. (2) on the estimator's current records. Returns the breach
  /// found this call (if any); all breaches are also counted.
  std::optional<Violation> check(const CurveEstimator& estimator);

  [[nodiscard]] const std::optional<Violation>& first() const { return first_; }
  [[nodiscard]] std::uint64_t upper_violations() const { return upper_violations_; }
  [[nodiscard]] std::uint64_t lower_violations() const { return lower_violations_; }
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

  [[nodiscard]] Tokens upper_bound(int level) const {
    return upper_bound_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] Tokens lower_bound(int level) const {
    return lower_bound_[static_cast<std::size_t>(level)];
  }

 private:
  std::vector<Tokens> upper_bound_;
  std::vector<Tokens> lower_bound_;
  // A lower breach at level j stays visible in the estimator's running
  // minimum forever; remember the worst value already reported so only a
  // *deepening* starvation re-counts.
  std::vector<Tokens> lower_reported_;
  std::vector<bool> lower_reported_valid_;

  std::optional<Violation> first_;
  std::uint64_t upper_violations_ = 0;
  std::uint64_t lower_violations_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace sccft::rtc::online
