// Online verification of the paper's Eq. (2) conformance condition
//
//     alpha^l(t - s)  <=  G[s, t)  <=  alpha^u(t - s)
//
// against a configured design curve pair, evaluated on a CurveEstimator's
// lattice. The checker pre-samples the design curves at every lattice point
// at construction, so a check is a handful of integer comparisons with no
// curve evaluation on the hot path.
//
// Two kinds of breach:
//   * upper breach — the estimator's current (instant-ending) window count
//     exceeds alpha^u(Delta_j): the stream bursts beyond its design model
//     (rate creep, jitter creep). Detected at the event that overflows the
//     window, so detection latency is one event.
//   * lower breach — some fully-observed window held fewer events than
//     alpha^l(Delta_j): the stream starved beyond its design model. Witnessed
//     by the estimator's running minima, which advance on polls as well as on
//     events (a silent stream still gets caught).
//
// The checker records every breach (counters for the dimensioning report) but
// exposes `first()` separately so callers can escalate exactly once per
// stream — the ft::Supervisor treats the first conformance violation like any
// other detection and re-checks are redundant while recovery is in flight.
//
// Two entry styles share the counting semantics:
//   * check(estimator) — evaluate the estimator's current records (the
//     estimator must have been advanced with add_event/advance_to first).
//   * add_and_check / advance_and_check — the OnlineMonitor hot path: one
//     fused pass interleaves the estimator's per-level pointer maintenance
//     with the comparisons, and while no upper breach is live a cross-stream
//     advance skips the strict-pointer work entirely (counts are
//     nonincreasing between events, so an in-bounds level cannot newly breach
//     its upper bound without an own event). The fused lower test fires only
//     when a level's running minimum improves — equivalent to re-testing
//     every check, because a breach that does not deepen was already either
//     counted or in-bounds at the previous check of the same stream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rtc/curve.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/time.hpp"
#include "util/assert.hpp"

namespace sccft::rtc::online {

class ConformanceChecker {
 public:
  struct Violation {
    TimeNs at = 0;        ///< virtual time of the breach
    int level = 0;        ///< lattice level that tripped
    bool upper = false;   ///< true: upper breach, false: lower breach
    Tokens observed = 0;  ///< the offending window count
    Tokens bound = 0;     ///< the design-curve value it crossed

    friend bool operator==(const Violation&, const Violation&) = default;
  };

  /// Samples `design_lower` / `design_upper` on the lattice of `estimator`.
  /// The estimator reference is only used for its deltas; any estimator with
  /// the same LatticeConfig may be passed to check().
  ConformanceChecker(const CurveEstimator& estimator, const Curve& design_lower,
                     const Curve& design_upper);

  /// Evaluate Eq. (2) on the estimator's current records. Returns the breach
  /// found this call (if any); all breaches are also counted.
  std::optional<Violation> check(const CurveEstimator& estimator) {
    SCCFT_EXPECTS(estimator.levels() == static_cast<int>(upper_bound_.size()));
    ++checks_;
    std::optional<Violation> found;
    const TimeNs at = estimator.instant();
    bool live = false;

    const int levels = estimator.levels();
    for (int j = 0; j < levels; ++j) {
      const auto idx = static_cast<std::size_t>(j);

      // Upper breach: the window ending right now holds more events than the
      // design curve allows. Evaluated on the live count (not the running max)
      // so a sustained burst is counted per offending event, not per check.
      const Tokens count = estimator.window_count(j);
      if (count > upper_bound_[idx]) [[unlikely]] {
        live = true;
        ++upper_violations_;
        Violation v{.at = at, .level = j, .upper = true, .observed = count,
                    .bound = upper_bound_[idx]};
        if (!first_) first_ = v;
        if (!found) found = v;
      }

      // Lower breach: the running minimum dropped below the design curve. The
      // minimum is sticky, so only count when it deepens past what was already
      // reported.
      if (estimator.lower_valid(j)) {
        const Tokens low = estimator.lower_record(j);
        if (low < lower_bound_[idx] &&
            (lower_reported_valid_[idx] == 0 || low < lower_reported_[idx]))
            [[unlikely]] {
          const Violation v = record_lower(at, j, low);
          if (!found) found = v;
        }
      }
    }
    upper_live_ = live;
    return found;
  }

  /// Fused hot path: record an own-stream emission at `at` and check. One
  /// pass over the lattice does the pointer maintenance, the record updates,
  /// and the Eq. (2) comparisons.
  std::optional<Violation> add_and_check(CurveEstimator& estimator, TimeNs at) {
    estimator.push_event(at);
    return fused_check(estimator, at, /*is_event=*/true);
  }

  /// Fused hot path: move the stream's observation instant to `at` (a peer's
  /// emission) and check. While no upper breach is live this touches only the
  /// closed pointers and lower records.
  std::optional<Violation> advance_and_check(CurveEstimator& estimator, TimeNs at) {
    if (upper_live_) [[unlikely]] {
      SCCFT_EXPECTS(at >= estimator.instant());
      return fused_check(estimator, at, /*is_event=*/false);
    }
    ++checks_;
    std::optional<Violation> found;
    estimator.advance_lower(at, [&](std::size_t j, Tokens low) {
      if (low < lower_bound_[j] &&
          (lower_reported_valid_[j] == 0 || low < lower_reported_[j]))
          [[unlikely]] {
        const Violation v = record_lower(at, static_cast<int>(j), low);
        if (!found) found = v;
      }
    });
    return found;
  }

  [[nodiscard]] const std::optional<Violation>& first() const { return first_; }
  [[nodiscard]] std::uint64_t upper_violations() const { return upper_violations_; }
  [[nodiscard]] std::uint64_t lower_violations() const { return lower_violations_; }
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

  [[nodiscard]] Tokens upper_bound(int level) const {
    return upper_bound_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] Tokens lower_bound(int level) const {
    return lower_bound_[static_cast<std::size_t>(level)];
  }

 private:
  std::optional<Violation> fused_check(CurveEstimator& estimator, TimeNs at,
                                       bool is_event) {
    ++checks_;
    std::optional<Violation> found;
    bool live = false;
    estimator.observe_with(
        at, is_event,
        [&](std::size_t j, Tokens count) {
          if (count > upper_bound_[j]) [[unlikely]] {
            live = true;
            ++upper_violations_;
            Violation v{.at = at, .level = static_cast<int>(j), .upper = true,
                        .observed = count, .bound = upper_bound_[j]};
            if (!first_) first_ = v;
            if (!found) found = v;
          }
        },
        [&](std::size_t j, Tokens low) {
          if (low < lower_bound_[j] &&
              (lower_reported_valid_[j] == 0 || low < lower_reported_[j]))
              [[unlikely]] {
            const Violation v = record_lower(at, static_cast<int>(j), low);
            if (!found) found = v;
          }
        });
    upper_live_ = live;
    return found;
  }

  /// Books a lower breach: bumps the counter, deepens the reported floor, and
  /// latches first_. Out of the fast path — breaches are rare by design.
  Violation record_lower(TimeNs at, int level, Tokens low) {
    const auto idx = static_cast<std::size_t>(level);
    lower_reported_valid_[idx] = 1;
    lower_reported_[idx] = low;
    ++lower_violations_;
    const Violation v{.at = at, .level = level, .upper = false,
                      .observed = low, .bound = lower_bound_[idx]};
    if (!first_) first_ = v;
    return v;
  }

  std::vector<Tokens> upper_bound_;
  std::vector<Tokens> lower_bound_;
  // A lower breach at level j stays visible in the estimator's running
  // minimum forever; remember the worst value already reported so only a
  // *deepening* starvation re-counts.
  std::vector<Tokens> lower_reported_;
  std::vector<std::uint8_t> lower_reported_valid_;

  std::optional<Violation> first_;
  std::uint64_t upper_violations_ = 0;
  std::uint64_t lower_violations_ = 0;
  std::uint64_t checks_ = 0;
  /// True while some level's current window count exceeds its upper bound —
  /// set by every (fused or plain) check; gates the reduced advance path.
  bool upper_live_ = false;
};

}  // namespace sccft::rtc::online
