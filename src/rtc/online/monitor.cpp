#include "rtc/online/monitor.hpp"

#include <algorithm>

namespace sccft::rtc::online {

OnlineMonitor::OnlineMonitor(trace::TraceBus& bus, const LatticeConfig& lattice,
                             std::vector<StreamSpec> specs)
    : OnlineMonitor(bus, lattice, std::move(specs), Options{}) {}

OnlineMonitor::OnlineMonitor(trace::TraceBus& bus, const LatticeConfig& lattice,
                             std::vector<StreamSpec> specs, Options options)
    : bus_(bus), options_(options) {
  streams_.reserve(specs.size());
  for (auto& spec : specs) {
    CurveEstimator estimator(lattice);
    ConformanceChecker checker(estimator, spec.design_lower.get(),
                               spec.design_upper.get());
    streams_.push_back(Stream{.subject = bus_.intern(spec.subject),
                              .name = std::move(spec.name),
                              .replica = spec.replica,
                              .estimator = std::move(estimator),
                              .checker = std::move(checker)});
    if (options_.weakly_hard) {
      streams_.back().window.emplace(*options_.weakly_hard);
    }
  }
  bus_.subscribe(this, trace::bit(trace::EventKind::kEmission));
}

OnlineMonitor::~OnlineMonitor() { bus_.unsubscribe(this); }

void OnlineMonitor::on_event(const trace::Event& event) {
  if (event.kind != trace::EventKind::kEmission) return;
  for (auto& stream : streams_) {
    // Fused estimator+checker passes (conformance.hpp): one loop over the
    // lattice per stream per emission.
    if (stream.subject == event.subject) {
      observe(stream, event.time,
              stream.checker.add_and_check(stream.estimator, event.time),
              /*own=*/true);
    } else if (event.time >
               stream.estimator.instant() + options_.cross_advance_quantum) {
      // Cross-stream advance: a peer's traffic moves this stream's clock, so
      // starvation is witnessed without waiting for the starved stream to
      // speak (or for finalize). At fleet cardinality the quantum batches
      // these advances (see Options::cross_advance_quantum).
      observe(stream, event.time,
              stream.checker.advance_and_check(stream.estimator, event.time),
              /*own=*/false);
    }
  }
}

void OnlineMonitor::observe(Stream& stream, TimeNs at,
                            const std::optional<ConformanceChecker::Violation>& violation,
                            bool own) {
  if (!stream.window) {
    escalate(stream, at, violation);
    return;
  }
  // Weakly-hard acceptance: the stream's own emissions record hit-or-miss;
  // peer-driven advances record only misses (a starving stream accumulates
  // pressure from its peers' traffic, but never hits it did not earn).
  const bool miss = violation.has_value();
  if (!miss) {
    if (own) stream.window->record(false);
    return;
  }
  const bool breach = stream.window->record(true);
  ++stream.misses;
  // Always-on emit, like kCurveViolation: the adaptation policy acts on
  // sub-threshold pressure on the same code path as every other verdict.
  bus_.emit(trace::EventKind::kAcceptanceMiss, stream.subject, at,
            stream.replica, stream.window->misses(), stream.window->params().K);
  if (breach) escalate(stream, at, violation);
}

void OnlineMonitor::escalate(Stream& stream, TimeNs at,
                             const std::optional<ConformanceChecker::Violation>& violation) {
  if (violation && !stream.escalated && options_.escalate) {
    stream.escalated = true;
    // Verdict-class event: always-on emit (not the macro) so the supervisor
    // sees it on the same code path as every other detection.
    bus_.emit(trace::EventKind::kCurveViolation, stream.subject, at,
              stream.replica, violation->upper ? 0 : 1, violation->level);
  }
}

std::vector<OnlineMonitor::StreamReport> OnlineMonitor::finalize(TimeNs at) {
  std::vector<StreamReport> reports;
  reports.reserve(streams_.size());
  auto& metrics = bus_.metrics();
  for (auto& stream : streams_) {
    if (at > stream.estimator.instant()) {
      observe(stream, at,
              stream.checker.advance_and_check(stream.estimator, at),
              /*own=*/false);
    }
    StreamReport report;
    report.name = stream.name;
    report.replica = stream.replica;
    report.snapshot = stream.estimator.snapshot(stream.estimator.instant());
    report.events = stream.estimator.events();
    report.upper_violations = stream.checker.upper_violations();
    report.lower_violations = stream.checker.lower_violations();
    report.acceptance_misses = stream.misses;
    report.first = stream.checker.first();
    metrics.add("online." + stream.name + ".events", report.events);
    metrics.add("online." + stream.name + ".upper_violations", report.upper_violations);
    metrics.add("online." + stream.name + ".lower_violations", report.lower_violations);
    if (report.first) {
      metrics.gauge_max("online." + stream.name + ".first_violation_ns",
                        report.first->at);
    }
    if (stream.window) {
      metrics.add("online." + stream.name + ".acceptance_misses", stream.misses);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

EmpiricalCurveSnapshot OnlineMonitor::snapshot_stream(std::size_t index, TimeNs at) {
  SCCFT_EXPECTS(index < streams_.size());
  Stream& stream = streams_[index];
  return stream.estimator.snapshot(std::max(at, stream.estimator.instant()));
}

std::uint64_t OnlineMonitor::stream_events(std::size_t index) const {
  SCCFT_EXPECTS(index < streams_.size());
  return streams_[index].estimator.events();
}

}  // namespace sccft::rtc::online
