#include "rtc/online/monitor.hpp"

namespace sccft::rtc::online {

OnlineMonitor::OnlineMonitor(trace::TraceBus& bus, const LatticeConfig& lattice,
                             std::vector<StreamSpec> specs)
    : OnlineMonitor(bus, lattice, std::move(specs), Options{}) {}

OnlineMonitor::OnlineMonitor(trace::TraceBus& bus, const LatticeConfig& lattice,
                             std::vector<StreamSpec> specs, Options options)
    : bus_(bus), options_(options) {
  streams_.reserve(specs.size());
  for (auto& spec : specs) {
    CurveEstimator estimator(lattice);
    ConformanceChecker checker(estimator, spec.design_lower.get(),
                               spec.design_upper.get());
    streams_.push_back(Stream{.subject = bus_.intern(spec.subject),
                              .name = std::move(spec.name),
                              .replica = spec.replica,
                              .estimator = std::move(estimator),
                              .checker = std::move(checker)});
  }
  bus_.subscribe(this, trace::bit(trace::EventKind::kEmission));
}

OnlineMonitor::~OnlineMonitor() { bus_.unsubscribe(this); }

void OnlineMonitor::on_event(const trace::Event& event) {
  if (event.kind != trace::EventKind::kEmission) return;
  for (auto& stream : streams_) {
    // Fused estimator+checker passes (conformance.hpp): one loop over the
    // lattice per stream per emission.
    if (stream.subject == event.subject) {
      escalate(stream, event.time,
               stream.checker.add_and_check(stream.estimator, event.time));
    } else if (event.time >
               stream.estimator.instant() + options_.cross_advance_quantum) {
      // Cross-stream advance: a peer's traffic moves this stream's clock, so
      // starvation is witnessed without waiting for the starved stream to
      // speak (or for finalize). At fleet cardinality the quantum batches
      // these advances (see Options::cross_advance_quantum).
      escalate(stream, event.time,
               stream.checker.advance_and_check(stream.estimator, event.time));
    }
  }
}

void OnlineMonitor::escalate(Stream& stream, TimeNs at,
                             const std::optional<ConformanceChecker::Violation>& violation) {
  if (violation && !stream.escalated && options_.escalate) {
    stream.escalated = true;
    // Verdict-class event: always-on emit (not the macro) so the supervisor
    // sees it on the same code path as every other detection.
    bus_.emit(trace::EventKind::kCurveViolation, stream.subject, at,
              stream.replica, violation->upper ? 0 : 1, violation->level);
  }
}

std::vector<OnlineMonitor::StreamReport> OnlineMonitor::finalize(TimeNs at) {
  std::vector<StreamReport> reports;
  reports.reserve(streams_.size());
  auto& metrics = bus_.metrics();
  for (auto& stream : streams_) {
    if (at > stream.estimator.instant()) {
      escalate(stream, at,
               stream.checker.advance_and_check(stream.estimator, at));
    }
    StreamReport report;
    report.name = stream.name;
    report.replica = stream.replica;
    report.snapshot = stream.estimator.snapshot(stream.estimator.instant());
    report.events = stream.estimator.events();
    report.upper_violations = stream.checker.upper_violations();
    report.lower_violations = stream.checker.lower_violations();
    report.first = stream.checker.first();
    metrics.add("online." + stream.name + ".events", report.events);
    metrics.add("online." + stream.name + ".upper_violations", report.upper_violations);
    metrics.add("online." + stream.name + ".lower_violations", report.lower_violations);
    if (report.first) {
      metrics.gauge_max("online." + stream.name + ".first_violation_ns",
                        report.first->at);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace sccft::rtc::online
