// Online re-dimensioning: the paper's Section 3.4 analyses (Eqs. 3-8) re-run
// on *measured* arrival curves instead of design-time PJD models.
//
// Given empirical snapshots of the producer and both replica output streams,
// the dimensioner rebuilds the measured counterparts of the quantities the
// framework was dimensioned with —
//
//   |F_i|  (Eq. 3)  replicator FIFO capacity against each replica's design
//                   input service,
//   D      (Eq. 5)  selector divergence threshold from the replicas' measured
//                   output curves,
//   L      (Eq. 8)  silence-fault detection latency at the *designed*
//                   threshold D, from each replica's measured lower curve —
//
// and reports the margins (designed minus measured). For a stream that
// conforms to its design model the empirical curves are pointwise inside the
// design envelope, so every margin is >= 0: positive slack means the design
// over-provisioned; a negative FIFO/D margin means the deployed stream needs
// more than the design gave it (and the ConformanceChecker will have flagged
// the same drift at curve level).
//
// All computations reuse rtc/sizing verbatim — the sizing code is the oracle,
// the only new ingredient is the empirical curves. The analysis horizon is
// clamped to the snapshots' certified span (empirical_horizon) because the
// measured curves are flat beyond their lattice and would otherwise make
// every sup look infinite-horizon-stable.
#pragma once

#include <optional>

#include "rtc/online/snapshot.hpp"
#include "rtc/sizing.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc::online {

/// Measured-vs-designed dimensioning quantities. `measured_*` fields are
/// nullopt when the corresponding bound is infeasible on the measured data
/// (e.g. the run was too short for any lower window to certify).
struct OnlineMargins {
  std::optional<Tokens> measured_fifo1;  ///< Eq. (3) on measured producer upper
  std::optional<Tokens> measured_fifo2;
  Tokens designed_fifo1 = 0;
  Tokens designed_fifo2 = 0;

  std::optional<Tokens> measured_divergence;  ///< Eq. (5) on measured outputs
  Tokens designed_divergence = 0;

  std::optional<TimeNs> measured_latency;  ///< Eq. (8) at designed D, measured lower
  TimeNs designed_latency = 0;

  TimeNs horizon = 0;  ///< the clamped analysis horizon actually used
};

/// Re-run the sizing analyses on measured curves. `design` supplies the
/// replica-input service curves (Eq. 3 needs the consuming side, which the
/// emission taps cannot measure) and `designed` the design-time quantities the
/// margins are taken against.
[[nodiscard]] OnlineMargins redimension(const EmpiricalCurveSnapshot& producer,
                                        const EmpiricalCurveSnapshot& replica1_out,
                                        const EmpiricalCurveSnapshot& replica2_out,
                                        const NetworkTimingModel& design,
                                        const SizingReport& designed);

}  // namespace sccft::rtc::online
