// Deterministic snapshots of empirically measured arrival curves.
//
// A CurveEstimator (rtc/online/estimator.hpp) observes a live token stream
// and maintains, per window length Delta_j of a power-of-two lattice, the
// maximum count seen in any window (Delta_j-long, ending at an event) and the
// minimum count seen in any fully observed window. A snapshot freezes those
// records at a virtual-time instant, so results are pure functions of the
// event stream — byte-identical across runs and across `--jobs` values.
//
// This header is intentionally rtc-only (no trace/sim dependencies) so the
// rtc serialization layer (rtc/serialize.hpp) can round-trip snapshots
// without depending on the online subsystem's library.
#pragma once

#include <cstdint>
#include <vector>

#include "rtc/curve.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc::online {

/// The measured alpha-hat^u / alpha-hat^l staircase of one stream, sampled on
/// the estimator's Delta lattice at virtual time `at`.
struct EmpiricalCurveSnapshot {
  TimeNs at = 0;             ///< virtual time the snapshot was taken
  std::uint64_t events = 0;  ///< events observed since construction
  TimeNs first_event = -1;   ///< timestamp of the first event (-1: none yet)

  struct Point {
    TimeNs delta = 0;          ///< lattice window length
    Tokens upper = 0;          ///< max events in any observed (t-delta, t]
    Tokens lower = 0;          ///< min events in any fully observed [t-delta, t)
    bool lower_valid = false;  ///< false until one full window of this length fits
                               ///< inside the observed span

    friend bool operator==(const Point&, const Point&) = default;
  };
  std::vector<Point> points;  ///< strictly increasing in delta

  friend bool operator==(const EmpiricalCurveSnapshot&,
                         const EmpiricalCurveSnapshot&) = default;
};

/// The measured upper staircase as a Curve usable by rtc/sizing.
///
/// At every lattice point the curve equals the measurement exactly; between
/// lattice points (and beyond the last one) it holds the last certified
/// value. The result is a *lower* bound on the true alpha^u — the measured
/// requirement at the sampled windows — so sizing quantities derived from it
/// compare meaningfully against their design-time counterparts (a conformant
/// stream's measured |F|/D never exceed the designed ones). Runtime
/// conformance checking does not use this interpolation at all: the
/// ConformanceChecker compares records at lattice points directly.
[[nodiscard]] inline StaircaseCurve empirical_upper_curve(
    const EmpiricalCurveSnapshot& snapshot) {
  std::vector<StaircaseCurve::Jump> jumps;
  Tokens value = 0;
  for (const auto& point : snapshot.points) {
    if (point.upper > value) {  // monotonize
      jumps.push_back({point.delta, point.upper - value});
      value = point.upper;
    }
  }
  return StaircaseCurve(0, std::move(jumps), 0, 0, 0, "empirical-upper");
}

/// The measured lower staircase as a Curve usable by rtc/sizing. Lattice
/// points whose windows were never fully observed contribute nothing (the
/// curve stays at its last certified value). Flat beyond the lattice, like
/// the upper curve.
[[nodiscard]] inline StaircaseCurve empirical_lower_curve(
    const EmpiricalCurveSnapshot& snapshot) {
  std::vector<StaircaseCurve::Jump> jumps;
  Tokens value = 0;
  for (const auto& point : snapshot.points) {
    if (!point.lower_valid) continue;
    if (point.lower > value) {
      jumps.push_back({point.delta, point.lower - value});
      value = point.lower;
    }
  }
  return StaircaseCurve(0, std::move(jumps), 0, 0, 0, "empirical-lower");
}

/// The largest window length the snapshot fully certifies (largest lattice
/// point with a valid lower record), i.e. the sound analysis horizon for
/// sizing computations on the empirical curves. Falls back to the largest
/// lattice point when no lower window was ever completed.
[[nodiscard]] inline TimeNs empirical_horizon(const EmpiricalCurveSnapshot& snapshot) {
  TimeNs horizon = 0;
  for (const auto& point : snapshot.points) {
    if (point.lower_valid && point.delta > horizon) horizon = point.delta;
  }
  if (horizon == 0 && !snapshot.points.empty()) horizon = snapshot.points.back().delta;
  return horizon;
}

}  // namespace sccft::rtc::online
