// Queue sizing, divergence thresholds, and fault-detection latency bounds.
//
// Implements the design-time analyses of the paper's Section 3.4:
//   Eq. (3)  replicator/producer FIFO capacity,
//   Eq. (4)  initial token count at the consumer-side FIFO,
//   Eq. (5)  selector divergence threshold D (no-false-positive bound),
//   Eq. (6)-(8)  worst-case fault-detection latency.
//
// All computations are exact for staircase curves: suprema/infima of curve
// differences are evaluated at the curves' jump points (and one nanosecond
// before each), which is where extrema of integer staircases occur.
#pragma once

#include <optional>
#include <string>

#include "rtc/curve.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc {

/// Result of a supremum computation over a bounded horizon.
struct SupResult {
  Tokens value = 0;      ///< the supremum of f - g over (0, horizon]
  TimeNs at = 0;         ///< a window length attaining it
  bool bounded = true;   ///< false if long_term_rate(f) > long_term_rate(g)
  bool stabilized = true;///< true if the supremum was attained in the first
                         ///< half of the horizon (heuristic convergence check)
};

/// sup over Delta in [0, horizon] of f(Delta) - g(Delta).
///
/// If f's long-term rate exceeds g's the difference grows without bound and
/// `bounded` is false (`value` then holds the horizon-limited maximum).
[[nodiscard]] SupResult sup_difference(const Curve& f, const Curve& g, TimeNs horizon);

/// Smallest Delta in (0, horizon] with f(Delta) - g(Delta) >= target, if any.
[[nodiscard]] std::optional<TimeNs> first_time_difference_reaches(const Curve& f,
                                                                  const Curve& g,
                                                                  Tokens target,
                                                                  TimeNs horizon);

/// Eq. (3): smallest FIFO capacity |F| such that
/// alpha_P^u(Delta) <= alpha_in^l(Delta) + |F| for all Delta.
/// Returns nullopt if the producer's rate exceeds the consumer-side rate
/// (no finite FIFO suffices).
[[nodiscard]] std::optional<Tokens> min_fifo_capacity(const Curve& producer_upper,
                                                      const Curve& consumer_lower,
                                                      TimeNs horizon);

/// Eq. (4): smallest initial fill F_C0 such that
/// alpha_out^l(Delta) >= alpha_C^u(Delta) - F_C0 for all Delta.
[[nodiscard]] std::optional<Tokens> min_initial_fill(const Curve& replica_out_lower,
                                                     const Curve& consumer_upper,
                                                     TimeNs horizon);

/// Eq. (5): smallest integer D with
/// D > sup_{i != j, lambda >= 0} { alpha_i^u(lambda) - alpha_j^l(lambda) }.
/// Guarantees no false positives of the divergence detector.
[[nodiscard]] std::optional<Tokens> divergence_threshold(const Curve& out1_upper,
                                                         const Curve& out1_lower,
                                                         const Curve& out2_upper,
                                                         const Curve& out2_lower,
                                                         TimeNs horizon);

/// Eq. (6): inf { Delta | (alpha_healthy^l - alpha_faulty^u)(Delta) >= 2D-1 },
/// the worst-case detection latency when the faulty replica still emits
/// tokens bounded by `faulty_upper`.
[[nodiscard]] std::optional<TimeNs> detection_latency_bound(const Curve& healthy_lower,
                                                            const Curve& faulty_upper,
                                                            Tokens threshold_d,
                                                            TimeNs horizon);

/// Eq. (8): special case of Eq. (6) for a replica that falls completely
/// silent (faulty upper curve identically zero).
[[nodiscard]] std::optional<TimeNs> detection_latency_bound_silence(
    const Curve& healthy_lower, Tokens threshold_d, TimeNs horizon);

/// Eq. (7): maximum over both fault assignments (replica 1 faulty with
/// replica 2 healthy, and vice versa).
[[nodiscard]] std::optional<TimeNs> detection_latency_bound_both(
    const Curve& out1_lower, const Curve& out1_faulty_upper, const Curve& out2_lower,
    const Curve& out2_faulty_upper, Tokens threshold_d, TimeNs horizon);

/// Bundle of all design-time quantities for one duplicated network, as
/// produced by `analyze_duplicated_network`.
struct SizingReport {
  Tokens replicator_capacity1 = 0;  ///< |R1| (Eq. 3, replica 1 input)
  Tokens replicator_capacity2 = 0;  ///< |R2|
  Tokens selector_capacity1 = 0;    ///< |S1| (consumer-side, replica 1)
  Tokens selector_capacity2 = 0;    ///< |S2|
  Tokens selector_initial1 = 0;     ///< |S1|_0 initial tokens (Eq. 4)
  Tokens selector_initial2 = 0;     ///< |S2|_0
  Tokens replicator_threshold = 0;  ///< divergence threshold D at replicator (Eq. 5)
  Tokens selector_threshold = 0;    ///< divergence threshold D at selector (Eq. 5)
  /// Worst-case silence-fault detection latency of the replicator's
  /// queue-overflow rule: the producer, writing no faster than its lower
  /// curve requires, fills the dead replica's FIFO (|R_i| tokens from an
  /// empty queue) and detects on the (|R_i|+1)-th write attempt.
  TimeNs replicator_overflow_bound = 0;
  /// Eq. (7)/(8) divergence-rule bound applied to the replicas' input
  /// consumption streams ("computations for the replicator are analogous").
  TimeNs replicator_divergence_bound = 0;
  TimeNs selector_latency_bound = 0;    ///< Eq. (7)/(8) at the selector
};

/// Inputs to the sizing analysis: arrival-curve pairs for the producer, each
/// replica's input consumption, each replica's output production, and the
/// consumer's consumption.
struct NetworkTimingModel {
  CurveRef producer_upper, producer_lower;
  CurveRef replica1_in_upper, replica1_in_lower;
  CurveRef replica2_in_upper, replica2_in_lower;
  CurveRef replica1_out_upper, replica1_out_lower;
  CurveRef replica2_out_upper, replica2_out_lower;
  CurveRef consumer_upper, consumer_lower;
};

/// Runs the complete Section 3.4 analysis. Throws util::ContractViolation if
/// any bound is infeasible within `horizon` (e.g. producer faster than a
/// replica can consume).
[[nodiscard]] SizingReport analyze_duplicated_network(const NetworkTimingModel& model,
                                                      TimeNs horizon);

/// Eq. (6) for a *rate-degradation* fault: the faulty replica keeps emitting,
/// but `slowdown_factor` times slower — its post-fault upper curve is its
/// healthy model stretched in time. Returns the worst-case detection latency
/// of the divergence rule via detection_latency_bound(), or nullopt if the
/// degradation is too mild to accumulate 2D-1 tokens of divergence within
/// the horizon (the detectability limit: a replica only infinitesimally
/// slower than its contract takes arbitrarily long to convict).
[[nodiscard]] std::optional<TimeNs> detection_latency_bound_rate_fault(
    const Curve& healthy_lower, const struct PJD& faulty_model,
    double slowdown_factor, Tokens threshold_d, TimeNs horizon);

}  // namespace sccft::rtc
