// PJD (period, jitter, delay) event models.
//
// The paper reports all timing parameters as <period, jitter, delay> tuples
// "as is common in real time systems" (Section 4.2, Table 1). Period and
// jitter define the event-bound functions over half-open windows of length
// Delta > 0 (eta^+(0) = eta^-(0) = 0):
//
//   eta^+ (Delta) = ceil((Delta + J) / P)
//   eta^- (Delta) = max(0, floor((Delta - J) / P))
//
// (K. Richter, "Compositional Scheduling Analysis Using Standard Event
// Models", 2005.) The third element, the *delay* d, is a phase offset — the
// nominal time of the stream's first event — and therefore does not affect
// the (time-invariant) arrival curves, only the generators/shapers that
// realize the stream. This reading is forced by the paper's own numbers:
// with a min-distance interpretation of d, Table 2's ADPCM |S2| = 8 would
// come out as 7 (the d-term would cap replica 2's output burst), while the
// phase-delay interpretation reproduces every Table 2 capacity exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "rtc/curve.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc {

/// A <period, jitter, delay> event model. All values in nanoseconds.
struct PJD {
  TimeNs period = 0;  ///< P > 0
  TimeNs jitter = 0;  ///< J >= 0
  TimeNs delay = 0;   ///< d >= 0: nominal phase of event 0 (curve-invariant)

  [[nodiscard]] static PJD from_ms(double period_ms, double jitter_ms,
                                   double delay_ms);

  /// Human-readable "<P, J, d> ms" string (as printed in the paper's Table 1).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PJD&, const PJD&) = default;
};

std::ostream& operator<<(std::ostream& os, const PJD& pjd);

/// Upper event-bound curve eta^+ of a PJD model.
class PJDUpperCurve final : public Curve {
 public:
  explicit PJDUpperCurve(PJD model);

  [[nodiscard]] Tokens value_at(TimeNs delta) const override;
  [[nodiscard]] std::vector<TimeNs> jump_points_up_to(TimeNs horizon) const override;
  [[nodiscard]] double long_term_rate() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Curve> clone() const override {
    return std::make_unique<PJDUpperCurve>(*this);
  }
  [[nodiscard]] const PJD& model() const { return model_; }

 private:
  PJD model_;
};

/// Lower event-bound curve eta^- of a PJD model.
class PJDLowerCurve final : public Curve {
 public:
  explicit PJDLowerCurve(PJD model);

  [[nodiscard]] Tokens value_at(TimeNs delta) const override;
  [[nodiscard]] std::vector<TimeNs> jump_points_up_to(TimeNs horizon) const override;
  [[nodiscard]] double long_term_rate() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Curve> clone() const override {
    return std::make_unique<PJDLowerCurve>(*this);
  }
  [[nodiscard]] const PJD& model() const { return model_; }

 private:
  PJD model_;
};

/// Convenience pair [alpha^u, alpha^l] for one stream.
struct ArrivalCurvePair {
  CurveRef upper;
  CurveRef lower;

  [[nodiscard]] static ArrivalCurvePair from_pjd(const PJD& model);
};

}  // namespace sccft::rtc
