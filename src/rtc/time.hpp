// Time and token-count base types for the Real-Time Calculus layer.
//
// All simulated time in this repository is expressed in integer nanoseconds.
// The DAC'14 paper's timing parameters are millisecond-scale (e.g. the ADPCM
// period of 6.3 ms), so nanoseconds give exact integer arithmetic with no
// rounding anywhere in the queue-sizing math.
#pragma once

#include <cstdint>

namespace sccft::rtc {

/// Simulated time / time-interval length in nanoseconds. Non-negative in all
/// curve-domain contexts.
using TimeNs = std::int64_t;

/// Token (event) counts.
using Tokens = std::int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

[[nodiscard]] constexpr TimeNs from_us(std::int64_t us) { return us * kNsPerUs; }
[[nodiscard]] constexpr TimeNs from_ms(std::int64_t ms) { return ms * kNsPerMs; }
[[nodiscard]] constexpr TimeNs from_ms(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs));
}
[[nodiscard]] constexpr TimeNs from_sec(double sec) {
  return static_cast<TimeNs>(sec * static_cast<double>(kNsPerSec));
}
[[nodiscard]] constexpr double to_ms(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}
[[nodiscard]] constexpr double to_us(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerUs);
}
[[nodiscard]] constexpr double to_sec(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

/// Ceiling division for non-negative numerator, positive denominator.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t num, std::int64_t den) {
  return (num + den - 1) / den;
}

/// Floor division that is correct for negative numerators as well.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t num, std::int64_t den) {
  const std::int64_t q = num / den;
  return (num % den != 0 && (num < 0) != (den < 0)) ? q - 1 : q;
}

}  // namespace sccft::rtc
