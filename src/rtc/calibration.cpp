#include "rtc/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace sccft::rtc {

namespace {

void check_sorted(std::span<const TimeNs> arrivals) {
  SCCFT_EXPECTS(arrivals.size() >= 2);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    SCCFT_EXPECTS(arrivals[i] >= arrivals[i - 1]);
  }
}

}  // namespace

StaircaseCurve trace_upper_curve(std::span<const TimeNs> arrivals) {
  check_sorted(arrivals);
  const std::size_t n = arrivals.size();
  // minspan[k] = smallest time span covering k consecutive events
  // (k = 2..n). A half-open window of length Delta contains k events iff
  // Delta > minspan(k), so the upper curve jumps to k at minspan(k) + 1.
  std::vector<StaircaseCurve::Jump> jumps;
  jumps.push_back({1, 1});  // any window of positive length can contain 1 event
  TimeNs prev_at = 1;
  for (std::size_t k = 2; k <= n; ++k) {
    TimeNs minspan = std::numeric_limits<TimeNs>::max();
    for (std::size_t i = 0; i + k <= n; ++i) {
      minspan = std::min(minspan, arrivals[i + k - 1] - arrivals[i]);
    }
    const TimeNs at = std::max<TimeNs>(minspan + 1, prev_at + 1);
    if (at == prev_at) {
      jumps.back().step += 1;  // simultaneous events: merge the step
    } else {
      jumps.push_back({at, 1});
      prev_at = at;
    }
  }
  // Coalesce equal jump points produced by the max() clamp above.
  std::vector<StaircaseCurve::Jump> merged;
  for (const auto& jump : jumps) {
    if (!merged.empty() && merged.back().at == jump.at) {
      merged.back().step += jump.step;
    } else {
      merged.push_back(jump);
    }
  }
  return StaircaseCurve(0, std::move(merged), 0, 0, 0, "trace-upper");
}

StaircaseCurve trace_lower_curve(std::span<const TimeNs> arrivals) {
  check_sorted(arrivals);
  const std::size_t n = arrivals.size();
  const TimeNs span = arrivals.back() - arrivals.front();
  SCCFT_EXPECTS(span > 0);
  // maxspan[k] = largest "gap" containing only k events strictly inside:
  // a window sliding between arrival i's right edge and arrival i+k+1 holds
  // exactly k events. The lower curve reaches value k once Delta exceeds the
  // largest such window, i.e. lower(Delta) >= k iff every window of length
  // Delta holds >= k events iff Delta > maxgap(k-1) where
  // maxgap(m) = max_i (arrivals[i + m + 1] - arrivals[i]) over interior fits.
  std::vector<StaircaseCurve::Jump> jumps;
  TimeNs prev_at = 0;
  for (std::size_t k = 1; k + 1 <= n; ++k) {
    // Largest window containing only (k-1) events: open interval between
    // arrivals i and i+k (exclusive of both endpoints).
    TimeNs maxgap = 0;
    for (std::size_t i = 0; i + k < n; ++i) {
      maxgap = std::max(maxgap, arrivals[i + k] - arrivals[i]);
    }
    if (maxgap > span) break;  // window no longer fits in the trace
    const TimeNs at = std::max<TimeNs>(maxgap, prev_at + 1);
    jumps.push_back({at, 1});
    prev_at = at;
  }
  std::vector<StaircaseCurve::Jump> merged;
  for (const auto& jump : jumps) {
    if (!merged.empty() && merged.back().at == jump.at) {
      merged.back().step += jump.step;
    } else {
      merged.push_back(jump);
    }
  }
  return StaircaseCurve(0, std::move(merged), 0, 0, 0, "trace-lower");
}

PJD fit_pjd(std::span<const TimeNs> arrivals) {
  check_sorted(arrivals);
  const std::size_t n = arrivals.size();
  const TimeNs span = arrivals.back() - arrivals.front();
  SCCFT_EXPECTS(span > 0);
  const auto period = static_cast<TimeNs>(std::llround(
      static_cast<double>(span) / static_cast<double>(n - 1)));
  SCCFT_ENSURES(period > 0);

  TimeNs jitter = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TimeNs expected = arrivals.front() + static_cast<TimeNs>(i) * period;
    jitter = std::max(jitter, std::abs(arrivals[i] - expected));
  }
  // The deviation-from-grid estimate can under-cover: the grid anchor (first
  // arrival) and the rounded period are both estimates. Calibration must be
  // *conservative* — inflate the jitter until the fitted curves provably
  // bound the trace (geometric steps; terminates because J >= span makes
  // eta-/eta+ trivially loose).
  const TimeNs max_jitter = span + period;
  PJD fit{period, jitter, arrivals.front()};
  while (fit.jitter < max_jitter) {
    const PJDUpperCurve upper(fit);
    const PJDLowerCurve lower(fit);
    if (curves_bound_trace(upper, lower, arrivals)) break;
    fit.jitter += std::max<TimeNs>(period / 16, 1);
  }
  return fit;
}

ArrivalCurvePair calibrate(std::span<const TimeNs> arrivals) {
  return ArrivalCurvePair::from_pjd(fit_pjd(arrivals));
}

bool curves_bound_trace(const Curve& upper, const Curve& lower,
                        std::span<const TimeNs> arrivals) {
  check_sorted(arrivals);
  const std::size_t n = arrivals.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const TimeNs window = arrivals[j] - arrivals[i] + 1;  // covers both, half-open
      const auto count = static_cast<Tokens>(j - i + 1);
      if (upper.value_at(window) < count) return false;
    }
  }
  // Lower bound: count events in windows anchored between consecutive events.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Window starting just after arrivals[i], ending just before
      // arrivals[j]: contains events i+1..j-1.
      const TimeNs window = arrivals[j] - arrivals[i];
      if (window <= 0) continue;
      if (arrivals[i] + window > arrivals.back()) continue;  // must fit in span
      const auto count = static_cast<Tokens>(j - i - 1);
      if (lower.value_at(window - 1) > count + 1) return false;
    }
  }
  return true;
}

}  // namespace sccft::rtc
