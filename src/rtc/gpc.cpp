#include "rtc/gpc.hpp"

#include <algorithm>

#include "rtc/minplus.hpp"
#include "rtc/sizing.hpp"
#include "util/assert.hpp"

namespace sccft::rtc {

RateLatencyCurve::RateLatencyCurve(TimeNs token_period, TimeNs latency)
    : token_period_(token_period), latency_(latency) {
  SCCFT_EXPECTS(token_period_ > 0);
  SCCFT_EXPECTS(latency_ >= 0);
}

Tokens RateLatencyCurve::value_at(TimeNs delta) const {
  SCCFT_EXPECTS(delta >= 0);
  if (delta <= latency_) return 0;
  return (delta - latency_) / token_period_;
}

std::vector<TimeNs> RateLatencyCurve::jump_points_up_to(TimeNs horizon) const {
  SCCFT_EXPECTS(horizon >= 0);
  std::vector<TimeNs> points;
  for (TimeNs k = 1;; ++k) {
    const TimeNs at = latency_ + k * token_period_;
    if (at > horizon) break;
    points.push_back(at);
  }
  return points;
}

double RateLatencyCurve::long_term_rate() const {
  return 1.0 / static_cast<double>(token_period_);
}

std::string RateLatencyCurve::describe() const {
  return "rate-latency(1/" + std::to_string(token_period_) + "ns, T=" +
         std::to_string(latency_) + "ns)";
}

std::optional<TimeNs> horizontal_deviation(const Curve& arrival_upper,
                                           const Curve& service_lower,
                                           TimeNs horizon) {
  SCCFT_EXPECTS(horizon > 0);
  // Unstable systems (arrivals faster than service) have an unbounded
  // horizontal gap; any horizon-limited maximum would be misleading.
  if (arrival_upper.long_term_rate() >
      service_lower.long_term_rate() * (1.0 + 1e-9)) {
    return std::nullopt;
  }
  // For staircases the worst horizontal gap occurs at an up-jump of the
  // arrival curve: the d needed there is how much longer the service curve
  // takes to reach that level. Compute, for each jump point t of alpha^u,
  // the smallest s with beta^l(s) >= alpha^u(t); deviation = max(s - t).
  TimeNs worst = 0;
  auto service_jumps = service_lower.jump_points_up_to(2 * horizon);
  auto reach_time = [&](Tokens level) -> std::optional<TimeNs> {
    if (level <= service_lower.value_at(0)) return 0;
    for (TimeNs at : service_jumps) {
      if (service_lower.value_at(at) >= level) return at;
    }
    return std::nullopt;
  };
  std::vector<TimeNs> arrival_points = arrival_upper.jump_points_up_to(horizon);
  arrival_points.insert(arrival_points.begin(), 0);
  for (TimeNs t : arrival_points) {
    const Tokens level = arrival_upper.value_at(t);
    const auto s = reach_time(level);
    if (!s) return std::nullopt;
    worst = std::max(worst, *s - t);
  }
  return worst;
}

GpcResult gpc_analyze(const Curve& arrival_upper, const Curve& arrival_lower,
                      const Curve& service_lower, TimeNs horizon) {
  SCCFT_EXPECTS(horizon > 0);
  // Stability: the service rate must cover the arrival rate.
  SCCFT_EXPECTS(service_lower.long_term_rate() >=
                arrival_upper.long_term_rate() * (1.0 - 1e-9));

  const SupResult backlog = sup_difference(arrival_upper, service_lower, horizon);
  SCCFT_ENSURES(backlog.bounded);
  const auto delay = horizontal_deviation(arrival_upper, service_lower, horizon);
  SCCFT_ENSURES(delay.has_value());

  // Remaining service: beta'(Delta) = max(0, sup over 0 <= lambda <= Delta
  // of beta(lambda) - alpha^u(lambda)). Materialize over the curves' jump
  // points (the difference is piecewise constant in between, so its running
  // maximum changes only there).
  std::vector<TimeNs> points{0};
  for (const Curve* curve : {&service_lower, &arrival_upper}) {
    for (TimeNs at : curve->jump_points_up_to(horizon)) {
      points.push_back(at);
      if (at > 0) points.push_back(at - 1);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  Tokens running = 0;
  Tokens prev_value = 0;
  std::vector<StaircaseCurve::Jump> jumps;
  for (TimeNs at : points) {
    running = std::max(running,
                       service_lower.value_at(at) - arrival_upper.value_at(at));
    const Tokens value = std::max<Tokens>(running, 0);
    if (value > prev_value) {
      jumps.push_back({std::max<TimeNs>(at, 1), value - prev_value});
      prev_value = value;
    }
  }

  GpcResult result{
      .output_upper = minplus_deconv(arrival_upper, service_lower, horizon),
      .output_lower = minplus_conv(arrival_lower, service_lower, horizon),
      .remaining_service =
          StaircaseCurve(0, std::move(jumps), 0, 0, 0, "remaining-service"),
      .backlog_bound = std::max<Tokens>(backlog.value, 0),
      .delay_bound = *delay,
  };
  return result;
}

}  // namespace sccft::rtc
