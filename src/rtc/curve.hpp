// Arrival curves (Real-Time Calculus event-count bounds).
//
// An arrival curve bounds the number of tokens observed in any half-open time
// window [s, s+Delta), matching the paper's Eq. (2):
//
//   alpha^l(t - s)  <=  G[s, t)  <=  alpha^u(t - s)      for all s < t.
//
// All curves here are integer *staircase* functions of the window length:
// monotone non-decreasing, with a computable set of jump points and a long-term
// rate. That is sufficient (and exact) for the PJD event models used by the
// paper and for curves calibrated from traces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtc/time.hpp"

namespace sccft::rtc {

/// Abstract integer staircase curve over window lengths Delta >= 0.
///
/// Invariants every implementation must satisfy:
///  * value_at(0) >= 0 and value_at is monotone non-decreasing;
///  * jump_points_up_to(H) returns, in increasing order, every Delta in (0, H]
///    at which value_at changes (evaluating at each jump point and one
///    nanosecond before it brackets the step);
///  * long_term_rate() is the limit of value_at(D)/D for D -> infinity,
///    in tokens per nanosecond.
class Curve {
 public:
  virtual ~Curve() = default;

  [[nodiscard]] virtual Tokens value_at(TimeNs delta) const = 0;
  [[nodiscard]] virtual std::vector<TimeNs> jump_points_up_to(TimeNs horizon) const = 0;
  [[nodiscard]] virtual double long_term_rate() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Curve> clone() const = 0;
};

/// The all-zero curve. Models a replica that has fallen silent (used as the
/// post-fault upper curve in the paper's Eq. (8)).
class ZeroCurve final : public Curve {
 public:
  [[nodiscard]] Tokens value_at(TimeNs) const override { return 0; }
  [[nodiscard]] std::vector<TimeNs> jump_points_up_to(TimeNs) const override { return {}; }
  [[nodiscard]] double long_term_rate() const override { return 0.0; }
  [[nodiscard]] std::string describe() const override { return "zero"; }
  [[nodiscard]] std::unique_ptr<Curve> clone() const override {
    return std::make_unique<ZeroCurve>();
  }
};

/// Explicit staircase: value_at(Delta) = base + #{jump points <= Delta},
/// with each jump carrying an integer step height. After the last explicit
/// jump the curve optionally extends periodically (period, tokens_per_period).
///
/// Used by trace calibration and by curve algebra results.
class StaircaseCurve final : public Curve {
 public:
  struct Jump {
    TimeNs at = 0;      // window length at which the value steps up (at > 0)
    Tokens step = 1;    // step height (> 0)
  };

  /// `jumps` must be strictly increasing in `at`. If `tail_period` > 0 the
  /// staircase repeats beyond the last jump: every `tail_period` after
  /// `tail_start` adds `tail_step` tokens.
  StaircaseCurve(Tokens base, std::vector<Jump> jumps, TimeNs tail_start = 0,
                 TimeNs tail_period = 0, Tokens tail_step = 0,
                 std::string name = "staircase");

  [[nodiscard]] Tokens value_at(TimeNs delta) const override;
  [[nodiscard]] std::vector<TimeNs> jump_points_up_to(TimeNs horizon) const override;
  [[nodiscard]] double long_term_rate() const override;
  [[nodiscard]] std::string describe() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Curve> clone() const override {
    return std::make_unique<StaircaseCurve>(*this);
  }

  [[nodiscard]] const std::vector<Jump>& jumps() const { return jumps_; }
  [[nodiscard]] Tokens base() const { return base_; }
  [[nodiscard]] TimeNs tail_start() const { return tail_start_; }
  [[nodiscard]] TimeNs tail_period() const { return tail_period_; }
  [[nodiscard]] Tokens tail_step() const { return tail_step_; }

 private:
  Tokens base_;
  std::vector<Jump> jumps_;
  TimeNs tail_start_;
  TimeNs tail_period_;
  Tokens tail_step_;
  std::string name_;
};

/// Owning value wrapper so curves can be stored in containers and passed by
/// value while remaining polymorphic (Core Guidelines C.67: avoid slicing).
class CurveRef final {
 public:
  CurveRef() : curve_(std::make_unique<ZeroCurve>()) {}
  explicit CurveRef(std::unique_ptr<Curve> curve);
  CurveRef(const CurveRef& other) : curve_(other.curve_->clone()) {}
  CurveRef& operator=(const CurveRef& other);
  CurveRef(CurveRef&&) noexcept = default;
  CurveRef& operator=(CurveRef&&) noexcept = default;
  ~CurveRef() = default;

  [[nodiscard]] const Curve& get() const { return *curve_; }
  [[nodiscard]] const Curve* operator->() const { return curve_.get(); }
  [[nodiscard]] const Curve& operator*() const { return *curve_; }

 private:
  std::unique_ptr<Curve> curve_;
};

template <typename T, typename... Args>
[[nodiscard]] CurveRef make_curve(Args&&... args) {
  return CurveRef(std::make_unique<T>(std::forward<Args>(args)...));
}

}  // namespace sccft::rtc
