#include "rtc/serialize.hpp"

#include <sstream>

#include "rtc/gpc.hpp"
#include "util/assert.hpp"

namespace sccft::rtc {

namespace {

std::int64_t read_int(std::istringstream& is, const char* what) {
  std::int64_t value = 0;
  is >> value;
  if (is.fail()) {
    throw util::ContractViolation(std::string("malformed curve text: missing ") + what);
  }
  return value;
}

std::uint64_t read_uint(std::istringstream& is, const char* what) {
  std::uint64_t value = 0;
  is >> value;
  if (is.fail()) {
    throw util::ContractViolation(std::string("malformed curve text: missing ") + what);
  }
  return value;
}

}  // namespace

std::string to_text(const PJD& model) {
  std::ostringstream os;
  os << "pjd " << model.period << " " << model.jitter << " " << model.delay;
  return os.str();
}

PJD pjd_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  SCCFT_EXPECTS(tag == "pjd");
  PJD model;
  model.period = read_int(is, "period");
  model.jitter = read_int(is, "jitter");
  model.delay = read_int(is, "delay");
  return model;
}

std::string curve_to_text(const Curve& curve) {
  std::ostringstream os;
  if (const auto* upper = dynamic_cast<const PJDUpperCurve*>(&curve)) {
    const auto& m = upper->model();
    os << "pjd-upper " << m.period << " " << m.jitter << " " << m.delay;
  } else if (const auto* lower = dynamic_cast<const PJDLowerCurve*>(&curve)) {
    const auto& m = lower->model();
    os << "pjd-lower " << m.period << " " << m.jitter << " " << m.delay;
  } else if (const auto* rl = dynamic_cast<const RateLatencyCurve*>(&curve)) {
    os << "rate-latency " << rl->token_period() << " " << rl->latency();
  } else if (dynamic_cast<const ZeroCurve*>(&curve) != nullptr) {
    os << "zero";
  } else if (const auto* stair = dynamic_cast<const StaircaseCurve*>(&curve)) {
    os << "staircase " << stair->base() << " " << stair->jumps().size();
    for (const auto& jump : stair->jumps()) {
      os << " " << jump.at << " " << jump.step;
    }
    os << " " << stair->tail_start() << " " << stair->tail_period() << " "
       << stair->tail_step();
  } else {
    throw util::ContractViolation("unsupported curve type for serialization: " +
                                  curve.describe());
  }
  return os.str();
}

std::unique_ptr<Curve> curve_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  if (tag == "pjd-upper" || tag == "pjd-lower") {
    PJD model;
    model.period = read_int(is, "period");
    model.jitter = read_int(is, "jitter");
    model.delay = read_int(is, "delay");
    if (tag == "pjd-upper") return std::make_unique<PJDUpperCurve>(model);
    return std::make_unique<PJDLowerCurve>(model);
  }
  if (tag == "rate-latency") {
    const TimeNs token_period = read_int(is, "token period");
    const TimeNs latency = read_int(is, "latency");
    return std::make_unique<RateLatencyCurve>(token_period, latency);
  }
  if (tag == "zero") return std::make_unique<ZeroCurve>();
  if (tag == "staircase") {
    const Tokens base = read_int(is, "base");
    const auto count = read_int(is, "jump count");
    SCCFT_EXPECTS(count >= 0);
    std::vector<StaircaseCurve::Jump> jumps;
    jumps.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      StaircaseCurve::Jump jump;
      jump.at = read_int(is, "jump at");
      jump.step = read_int(is, "jump step");
      jumps.push_back(jump);
    }
    const TimeNs tail_start = read_int(is, "tail start");
    const TimeNs tail_period = read_int(is, "tail period");
    const Tokens tail_step = read_int(is, "tail step");
    return std::make_unique<StaircaseCurve>(base, std::move(jumps), tail_start,
                                            tail_period, tail_step, "deserialized");
  }
  throw util::ContractViolation("unknown curve tag: " + tag);
}

std::string snapshot_to_text(const online::EmpiricalCurveSnapshot& snapshot) {
  std::ostringstream os;
  os << "empirical " << snapshot.at << " " << snapshot.events << " "
     << snapshot.first_event << " " << snapshot.points.size();
  for (const auto& point : snapshot.points) {
    os << " " << point.delta << " " << point.upper << " " << point.lower << " "
       << (point.lower_valid ? 1 : 0);
  }
  return os.str();
}

online::EmpiricalCurveSnapshot snapshot_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  if (tag != "empirical") {
    throw util::ContractViolation("unknown snapshot tag: " + tag);
  }
  online::EmpiricalCurveSnapshot snapshot;
  snapshot.at = read_int(is, "at");
  const std::int64_t events = read_int(is, "events");
  if (events < 0) throw util::ContractViolation("malformed snapshot: negative event count");
  snapshot.events = static_cast<std::uint64_t>(events);
  snapshot.first_event = read_int(is, "first event");
  const std::int64_t count = read_int(is, "point count");
  // A lattice of 2^k windows never has more than a few dozen points; a huge
  // count is certainly garbage and must not drive a giant allocation.
  constexpr std::int64_t kMaxPoints = 4096;
  if (count < 0 || count > kMaxPoints) {
    throw util::ContractViolation("malformed snapshot: implausible point count " +
                                  std::to_string(count));
  }
  snapshot.points.reserve(static_cast<std::size_t>(count));
  TimeNs prev_delta = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    online::EmpiricalCurveSnapshot::Point point;
    point.delta = read_int(is, "point delta");
    if (point.delta <= prev_delta) {
      throw util::ContractViolation("malformed snapshot: deltas must be strictly increasing");
    }
    prev_delta = point.delta;
    point.upper = read_int(is, "point upper");
    point.lower = read_int(is, "point lower");
    if (point.upper < 0 || point.lower < 0) {
      throw util::ContractViolation("malformed snapshot: negative window count");
    }
    const std::int64_t valid = read_int(is, "point lower-valid flag");
    if (valid != 0 && valid != 1) {
      throw util::ContractViolation("malformed snapshot: lower-valid flag must be 0 or 1");
    }
    point.lower_valid = valid == 1;
    snapshot.points.push_back(point);
  }
  return snapshot;
}

std::string to_text(const online::AdaptationConfig& config) {
  std::ostringstream os;
  os << "adapt-policy " << (config.enabled ? 1 : 0) << " " << config.window.m
     << " " << config.window.K << " " << config.deadband << " "
     << config.cooldown << " " << config.redimension_period << " "
     << config.quiesce_window << " " << config.widen_at << " "
     << config.resize_at << " " << config.widen_percent << " "
     << config.grow_percent << " " << config.headroom << " "
     << config.max_capacity << " " << config.max_divergence;
  return os.str();
}

online::AdaptationConfig adaptation_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  if (tag != "adapt-policy") {
    throw util::ContractViolation("unknown adaptation tag: " + tag);
  }
  const std::int64_t enabled = read_int(is, "enabled flag");
  if (enabled != 0 && enabled != 1) {
    throw util::ContractViolation("malformed adapt-policy: enabled flag must be 0 or 1");
  }
  online::AdaptationConfig config;
  config.enabled = enabled == 1;
  config.window.m = static_cast<int>(read_int(is, "window m"));
  config.window.K = static_cast<int>(read_int(is, "window K"));
  if (config.window.K < 1 || config.window.K > 64 || config.window.m < 0 ||
      config.window.m >= config.window.K) {
    throw util::ContractViolation(
        "malformed adapt-policy: (m,K) must satisfy 0 <= m < K <= 64, got (" +
        std::to_string(config.window.m) + "," + std::to_string(config.window.K) + ")");
  }
  config.deadband = read_int(is, "deadband");
  config.cooldown = read_int(is, "cooldown");
  config.redimension_period = read_int(is, "redimension period");
  config.quiesce_window = read_int(is, "quiesce window");
  if (config.deadband < 0 || config.cooldown < 0 ||
      config.redimension_period < 0 || config.quiesce_window < 0) {
    throw util::ContractViolation(
        "malformed adapt-policy: hysteresis/timing fields must be >= 0");
  }
  config.widen_at = static_cast<int>(read_int(is, "widen threshold"));
  config.resize_at = static_cast<int>(read_int(is, "resize threshold"));
  if (config.widen_at < 1 || config.resize_at < config.widen_at) {
    throw util::ContractViolation(
        "malformed adapt-policy: ladder must satisfy 1 <= widen_at <= resize_at");
  }
  config.widen_percent = static_cast<int>(read_int(is, "widen percent"));
  config.grow_percent = static_cast<int>(read_int(is, "grow percent"));
  if (config.widen_percent <= 0 || config.grow_percent <= 0) {
    throw util::ContractViolation(
        "malformed adapt-policy: actuation percents must be > 0");
  }
  config.headroom = read_int(is, "headroom");
  config.max_capacity = read_int(is, "max capacity");
  config.max_divergence = read_int(is, "max divergence");
  if (config.headroom < 0 || config.max_capacity < 1 || config.max_divergence < 0) {
    throw util::ContractViolation(
        "malformed adapt-policy: headroom/ceiling fields out of range");
  }
  return config;
}

std::string to_text(const online::WeaklyHardWindow& window) {
  std::ostringstream os;
  os << "mk-window " << window.params().m << " " << window.params().K << " "
     << window.mask() << " " << window.filled() << " " << window.cursor();
  return os.str();
}

online::WeaklyHardWindow window_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  if (tag != "mk-window") {
    throw util::ContractViolation("unknown window tag: " + tag);
  }
  online::WeaklyHardParams params;
  params.m = static_cast<int>(read_int(is, "window m"));
  params.K = static_cast<int>(read_int(is, "window K"));
  if (params.K < 1 || params.K > 64 || params.m < 0 || params.m >= params.K) {
    throw util::ContractViolation(
        "malformed mk-window: (m,K) must satisfy 0 <= m < K <= 64, got (" +
        std::to_string(params.m) + "," + std::to_string(params.K) + ")");
  }
  const std::uint64_t mask = read_uint(is, "window mask");
  if (params.K < 64 && (mask >> params.K) != 0) {
    throw util::ContractViolation("malformed mk-window: mask bits beyond K");
  }
  const std::int64_t filled = read_int(is, "window filled");
  const std::int64_t cursor = read_int(is, "window cursor");
  if (filled < 0 || filled > params.K || cursor < 0 || cursor >= params.K) {
    throw util::ContractViolation(
        "malformed mk-window: filled/cursor outside the ring");
  }
  int misses = 0;
  for (int i = 0; i < params.K; ++i) {
    if ((mask >> i) & 1u) ++misses;
  }
  if (misses > filled) {
    throw util::ContractViolation(
        "malformed mk-window: more miss bits than checks seen");
  }
  return online::WeaklyHardWindow::from_state(params, mask,
                                              static_cast<int>(filled),
                                              static_cast<int>(cursor));
}

}  // namespace sccft::rtc
