#include "rtc/serialize.hpp"

#include <sstream>

#include "rtc/gpc.hpp"
#include "util/assert.hpp"

namespace sccft::rtc {

namespace {

std::int64_t read_int(std::istringstream& is, const char* what) {
  std::int64_t value = 0;
  is >> value;
  if (is.fail()) {
    throw util::ContractViolation(std::string("malformed curve text: missing ") + what);
  }
  return value;
}

}  // namespace

std::string to_text(const PJD& model) {
  std::ostringstream os;
  os << "pjd " << model.period << " " << model.jitter << " " << model.delay;
  return os.str();
}

PJD pjd_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  SCCFT_EXPECTS(tag == "pjd");
  PJD model;
  model.period = read_int(is, "period");
  model.jitter = read_int(is, "jitter");
  model.delay = read_int(is, "delay");
  return model;
}

std::string curve_to_text(const Curve& curve) {
  std::ostringstream os;
  if (const auto* upper = dynamic_cast<const PJDUpperCurve*>(&curve)) {
    const auto& m = upper->model();
    os << "pjd-upper " << m.period << " " << m.jitter << " " << m.delay;
  } else if (const auto* lower = dynamic_cast<const PJDLowerCurve*>(&curve)) {
    const auto& m = lower->model();
    os << "pjd-lower " << m.period << " " << m.jitter << " " << m.delay;
  } else if (const auto* rl = dynamic_cast<const RateLatencyCurve*>(&curve)) {
    os << "rate-latency " << rl->token_period() << " " << rl->latency();
  } else if (dynamic_cast<const ZeroCurve*>(&curve) != nullptr) {
    os << "zero";
  } else if (const auto* stair = dynamic_cast<const StaircaseCurve*>(&curve)) {
    os << "staircase " << stair->base() << " " << stair->jumps().size();
    for (const auto& jump : stair->jumps()) {
      os << " " << jump.at << " " << jump.step;
    }
    os << " " << stair->tail_start() << " " << stair->tail_period() << " "
       << stair->tail_step();
  } else {
    throw util::ContractViolation("unsupported curve type for serialization: " +
                                  curve.describe());
  }
  return os.str();
}

std::unique_ptr<Curve> curve_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  if (tag == "pjd-upper" || tag == "pjd-lower") {
    PJD model;
    model.period = read_int(is, "period");
    model.jitter = read_int(is, "jitter");
    model.delay = read_int(is, "delay");
    if (tag == "pjd-upper") return std::make_unique<PJDUpperCurve>(model);
    return std::make_unique<PJDLowerCurve>(model);
  }
  if (tag == "rate-latency") {
    const TimeNs token_period = read_int(is, "token period");
    const TimeNs latency = read_int(is, "latency");
    return std::make_unique<RateLatencyCurve>(token_period, latency);
  }
  if (tag == "zero") return std::make_unique<ZeroCurve>();
  if (tag == "staircase") {
    const Tokens base = read_int(is, "base");
    const auto count = read_int(is, "jump count");
    SCCFT_EXPECTS(count >= 0);
    std::vector<StaircaseCurve::Jump> jumps;
    jumps.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      StaircaseCurve::Jump jump;
      jump.at = read_int(is, "jump at");
      jump.step = read_int(is, "jump step");
      jumps.push_back(jump);
    }
    const TimeNs tail_start = read_int(is, "tail start");
    const TimeNs tail_period = read_int(is, "tail period");
    const Tokens tail_step = read_int(is, "tail step");
    return std::make_unique<StaircaseCurve>(base, std::move(jumps), tail_start,
                                            tail_period, tail_step, "deserialized");
  }
  throw util::ContractViolation("unknown curve tag: " + tag);
}

}  // namespace sccft::rtc
