#include "rtc/pjd.hpp"

#include <limits>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace sccft::rtc {

PJD PJD::from_ms(double period_ms, double jitter_ms, double delay_ms) {
  return PJD{rtc::from_ms(period_ms), rtc::from_ms(jitter_ms), rtc::from_ms(delay_ms)};
}

std::string PJD::to_string() const {
  std::ostringstream os;
  os << "<" << to_ms(period) << ", " << to_ms(jitter) << ", " << to_ms(delay) << "> ms";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const PJD& pjd) {
  return os << pjd.to_string();
}

PJDUpperCurve::PJDUpperCurve(PJD model) : model_(model) {
  SCCFT_EXPECTS(model_.period > 0);
  SCCFT_EXPECTS(model_.jitter >= 0);
  SCCFT_EXPECTS(model_.delay >= 0);
}

Tokens PJDUpperCurve::value_at(TimeNs delta) const {
  SCCFT_EXPECTS(delta >= 0);
  if (delta == 0) return 0;
  return ceil_div(delta + model_.jitter, model_.period);
}

std::vector<TimeNs> PJDUpperCurve::jump_points_up_to(TimeNs horizon) const {
  SCCFT_EXPECTS(horizon >= 0);
  // ceil((Delta + J)/P) changes value between Delta = k*P - J and k*P - J + 1,
  // plus the initial jump at Delta = 1 (from eta^+(0) = 0).
  std::vector<TimeNs> points;
  if (horizon >= 1) points.push_back(1);
  for (TimeNs k = 1;; ++k) {
    SCCFT_ASSERT(k < std::numeric_limits<TimeNs>::max() / 2 / model_.period);
    const TimeNs at = k * model_.period - model_.jitter + 1;
    if (at > horizon) break;
    if (at > 1) points.push_back(at);
  }
  return points;
}

double PJDUpperCurve::long_term_rate() const {
  return 1.0 / static_cast<double>(model_.period);
}

std::string PJDUpperCurve::describe() const { return "eta+" + model_.to_string(); }

PJDLowerCurve::PJDLowerCurve(PJD model) : model_(model) {
  SCCFT_EXPECTS(model_.period > 0);
  SCCFT_EXPECTS(model_.jitter >= 0);
  SCCFT_EXPECTS(model_.delay >= 0);
}

Tokens PJDLowerCurve::value_at(TimeNs delta) const {
  SCCFT_EXPECTS(delta >= 0);
  if (delta <= model_.jitter) return 0;
  return floor_div(delta - model_.jitter, model_.period);
}

std::vector<TimeNs> PJDLowerCurve::jump_points_up_to(TimeNs horizon) const {
  SCCFT_EXPECTS(horizon >= 0);
  // floor((Delta - J)/P) steps at Delta = J + k*P, k >= 1.
  std::vector<TimeNs> points;
  for (TimeNs k = 1;; ++k) {
    const TimeNs at = model_.jitter + k * model_.period;
    if (at > horizon) break;
    points.push_back(at);
  }
  return points;
}

double PJDLowerCurve::long_term_rate() const {
  return 1.0 / static_cast<double>(model_.period);
}

std::string PJDLowerCurve::describe() const { return "eta-" + model_.to_string(); }

ArrivalCurvePair ArrivalCurvePair::from_pjd(const PJD& model) {
  return ArrivalCurvePair{make_curve<PJDUpperCurve>(model),
                          make_curve<PJDLowerCurve>(model)};
}

}  // namespace sccft::rtc
