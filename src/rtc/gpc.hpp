// Greedy Processing Component (GPC) analysis — service-curve propagation.
//
// The paper's design flow assumes interface-level timing models for the
// replicas' outputs. Reference [1] (Chakraborty et al., "Interface-based
// rate analysis of embedded systems", RTSS 2006) derives them: a stream with
// arrival curves [alpha^u, alpha^l] processed by a component with a lower
// service curve beta^l produces an output stream whose curves, and the
// component's delay/backlog bounds, follow from min-plus algebra:
//
//   alpha'^u = alpha^u (/) beta^l              (output upper bound)
//   alpha'^l = alpha^l (x) beta^l              (output lower bound)
//   beta'^l(Delta) = max(0, sup over 0 <= lambda <= Delta of
//                            beta^l(lambda) - alpha^u(lambda))
//                                              (remaining service)
//   backlog <= sup (alpha^u - beta^l)          (vertical deviation)
//   delay   <= horizontal deviation of alpha^u below beta^l
//
// These are the standard conservative forms; together with sizing.hpp they
// let a designer start from producer curves plus per-stage service curves
// and derive everything the fault-tolerance harness needs.
#pragma once

#include <optional>

#include "rtc/curve.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc {

/// Rate-latency (lower) service curve: no service for `latency`, then one
/// token every `token_period` — beta(Delta) = floor((Delta - latency) /
/// token_period) for Delta > latency. The canonical model of a processing
/// stage with initial delay.
class RateLatencyCurve final : public Curve {
 public:
  RateLatencyCurve(TimeNs token_period, TimeNs latency);

  [[nodiscard]] Tokens value_at(TimeNs delta) const override;
  [[nodiscard]] std::vector<TimeNs> jump_points_up_to(TimeNs horizon) const override;
  [[nodiscard]] double long_term_rate() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Curve> clone() const override {
    return std::make_unique<RateLatencyCurve>(*this);
  }

  [[nodiscard]] TimeNs token_period() const { return token_period_; }
  [[nodiscard]] TimeNs latency() const { return latency_; }

 private:
  TimeNs token_period_;
  TimeNs latency_;
};

/// Maximum horizontal deviation: the smallest d >= 0 such that
/// alpha^u(Delta) <= beta^l(Delta + d) for all Delta in [0, horizon].
/// This is the classic delay bound of a greedy component. Returns nullopt if
/// no d <= horizon suffices (service slower than arrivals).
[[nodiscard]] std::optional<TimeNs> horizontal_deviation(const Curve& arrival_upper,
                                                         const Curve& service_lower,
                                                         TimeNs horizon);

/// Result of propagating one stream through one greedy component.
struct GpcResult {
  StaircaseCurve output_upper;     ///< alpha'^u on [0, horizon]
  StaircaseCurve output_lower;     ///< alpha'^l on [0, horizon]
  StaircaseCurve remaining_service;///< beta'^l on [0, horizon]
  Tokens backlog_bound = 0;        ///< max queued tokens
  TimeNs delay_bound = 0;          ///< max per-token delay
};

/// Runs the GPC analysis on [0, horizon]. Throws util::ContractViolation if
/// the service cannot sustain the arrivals (unbounded backlog).
[[nodiscard]] GpcResult gpc_analyze(const Curve& arrival_upper,
                                    const Curve& arrival_lower,
                                    const Curve& service_lower, TimeNs horizon);

}  // namespace sccft::rtc
