#include "rtc/sizing.hpp"

#include "rtc/pjd.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace sccft::rtc {

namespace {

/// Candidate window lengths at which an extremum of f - g can occur: Delta=0,
/// every jump point of either curve, and one nanosecond before every jump
/// point (for staircases, f - g is piecewise constant between jumps; its
/// maximum is attained immediately at an up-jump of f or immediately before
/// an up-jump of g).
std::vector<TimeNs> candidate_points(const Curve& f, const Curve& g, TimeNs horizon) {
  std::vector<TimeNs> candidates{0};
  for (const Curve* curve : {&f, &g}) {
    for (TimeNs at : curve->jump_points_up_to(horizon)) {
      candidates.push_back(at);
      if (at > 0) candidates.push_back(at - 1);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  return candidates;
}

}  // namespace

SupResult sup_difference(const Curve& f, const Curve& g, TimeNs horizon) {
  SCCFT_EXPECTS(horizon > 0);
  SupResult result;
  result.value = f.value_at(0) - g.value_at(0);
  result.at = 0;
  for (TimeNs at : candidate_points(f, g, horizon)) {
    const Tokens diff = f.value_at(at) - g.value_at(at);
    if (diff > result.value) {
      result.value = diff;
      result.at = at;
    }
  }
  // Rates are tokens/ns (~1e-7 scale); compare with a relative tolerance.
  const double rf = f.long_term_rate();
  const double rg = g.long_term_rate();
  result.bounded = rf <= rg * (1.0 + 1e-9) + 1e-18;
  result.stabilized = result.at <= horizon / 2;
  return result;
}

std::optional<TimeNs> first_time_difference_reaches(const Curve& f, const Curve& g,
                                                    Tokens target, TimeNs horizon) {
  SCCFT_EXPECTS(horizon > 0);
  for (TimeNs at : candidate_points(f, g, horizon)) {
    if (f.value_at(at) - g.value_at(at) >= target) return at;
  }
  return std::nullopt;
}

std::optional<Tokens> min_fifo_capacity(const Curve& producer_upper,
                                        const Curve& consumer_lower, TimeNs horizon) {
  const SupResult sup = sup_difference(producer_upper, consumer_lower, horizon);
  if (!sup.bounded || !sup.stabilized) return std::nullopt;
  return std::max<Tokens>(sup.value, 1);
}

std::optional<Tokens> min_initial_fill(const Curve& replica_out_lower,
                                       const Curve& consumer_upper, TimeNs horizon) {
  const SupResult sup = sup_difference(consumer_upper, replica_out_lower, horizon);
  if (!sup.bounded || !sup.stabilized) return std::nullopt;
  return std::max<Tokens>(sup.value, 0);
}

std::optional<Tokens> divergence_threshold(const Curve& out1_upper,
                                           const Curve& out1_lower,
                                           const Curve& out2_upper,
                                           const Curve& out2_lower, TimeNs horizon) {
  const SupResult s12 = sup_difference(out1_upper, out2_lower, horizon);
  const SupResult s21 = sup_difference(out2_upper, out1_lower, horizon);
  if (!s12.bounded || !s21.bounded || !s12.stabilized || !s21.stabilized) {
    return std::nullopt;
  }
  // Eq. (5): smallest integer strictly greater than the supremum.
  return std::max(s12.value, s21.value) + 1;
}

std::optional<TimeNs> detection_latency_bound(const Curve& healthy_lower,
                                              const Curve& faulty_upper,
                                              Tokens threshold_d, TimeNs horizon) {
  SCCFT_EXPECTS(threshold_d >= 1);
  return first_time_difference_reaches(healthy_lower, faulty_upper,
                                       2 * threshold_d - 1, horizon);
}

std::optional<TimeNs> detection_latency_bound_rate_fault(const Curve& healthy_lower,
                                                         const PJD& faulty_model,
                                                         double slowdown_factor,
                                                         Tokens threshold_d,
                                                         TimeNs horizon) {
  SCCFT_EXPECTS(slowdown_factor > 1.0);
  // Post-fault upper curve: the faulty replica's period stretches by the
  // slowdown factor (its jitter envelope stretches with it).
  PJD degraded = faulty_model;
  degraded.period =
      static_cast<TimeNs>(static_cast<double>(faulty_model.period) * slowdown_factor);
  degraded.jitter =
      static_cast<TimeNs>(static_cast<double>(faulty_model.jitter) * slowdown_factor);
  const PJDUpperCurve faulty_upper(degraded);
  if (healthy_lower.long_term_rate() <= faulty_upper.long_term_rate() * (1.0 + 1e-9)) {
    return std::nullopt;  // divergence never accumulates
  }
  return detection_latency_bound(healthy_lower, faulty_upper, threshold_d, horizon);
}

std::optional<TimeNs> detection_latency_bound_silence(const Curve& healthy_lower,
                                                      Tokens threshold_d,
                                                      TimeNs horizon) {
  const ZeroCurve silent;
  return detection_latency_bound(healthy_lower, silent, threshold_d, horizon);
}

std::optional<TimeNs> detection_latency_bound_both(const Curve& out1_lower,
                                                   const Curve& out1_faulty_upper,
                                                   const Curve& out2_lower,
                                                   const Curve& out2_faulty_upper,
                                                   Tokens threshold_d, TimeNs horizon) {
  // Eq. (7): the max over both fault assignments. Replica 1 faulty means
  // replica 2 (healthy, lower curve) races against replica 1's residual
  // post-fault output (faulty upper curve), and vice versa.
  const auto fault1 =
      detection_latency_bound(out2_lower, out1_faulty_upper, threshold_d, horizon);
  const auto fault2 =
      detection_latency_bound(out1_lower, out2_faulty_upper, threshold_d, horizon);
  if (!fault1 || !fault2) return std::nullopt;
  return std::max(*fault1, *fault2);
}

SizingReport analyze_duplicated_network(const NetworkTimingModel& model,
                                        TimeNs horizon) {
  SizingReport report;

  // Eq. (3): replicator FIFO capacities. The producer must never block on a
  // fault-free replica's input FIFO.
  const auto r1 = min_fifo_capacity(*model.producer_upper, *model.replica1_in_lower, horizon);
  const auto r2 = min_fifo_capacity(*model.producer_upper, *model.replica2_in_lower, horizon);
  SCCFT_ENSURES(r1.has_value() && r2.has_value());
  report.replicator_capacity1 = *r1;
  report.replicator_capacity2 = *r2;

  // Eq. (4): initial tokens so the consumer never stalls.
  const auto init1 =
      min_initial_fill(*model.replica1_out_lower, *model.consumer_upper, horizon);
  const auto init2 =
      min_initial_fill(*model.replica2_out_lower, *model.consumer_upper, horizon);
  SCCFT_ENSURES(init1.has_value() && init2.has_value());
  report.selector_initial1 = *init1;
  report.selector_initial2 = *init2;

  // Selector FIFO capacities: the virtual queue for replica i must absorb the
  // initial fill plus the largest lead of replica i's production over the
  // consumer's guaranteed consumption (same Eq. (3) construction applied to
  // the consumer side).
  const auto lead1 =
      sup_difference(*model.replica1_out_upper, *model.consumer_lower, horizon);
  const auto lead2 =
      sup_difference(*model.replica2_out_upper, *model.consumer_lower, horizon);
  SCCFT_ENSURES(lead1.bounded && lead2.bounded);
  report.selector_capacity1 = report.selector_initial1 + std::max<Tokens>(lead1.value, 1);
  report.selector_capacity2 = report.selector_initial2 + std::max<Tokens>(lead2.value, 1);

  // Eq. (5): divergence thresholds. At the selector the divergence is between
  // the replicas' output streams; at the replicator between their input
  // consumption streams ("computations for the replicator are analogous").
  const auto d_sel =
      divergence_threshold(*model.replica1_out_upper, *model.replica1_out_lower,
                           *model.replica2_out_upper, *model.replica2_out_lower, horizon);
  const auto d_rep =
      divergence_threshold(*model.replica1_in_upper, *model.replica1_in_lower,
                           *model.replica2_in_upper, *model.replica2_in_lower, horizon);
  SCCFT_ENSURES(d_sel.has_value() && d_rep.has_value());
  report.selector_threshold = *d_sel;
  report.replicator_threshold = *d_rep;

  // Eq. (7)/(8): worst-case detection latency for a silence fault.
  const auto lat_sel_1 =
      detection_latency_bound_silence(*model.replica2_out_lower, *d_sel, horizon);
  const auto lat_sel_2 =
      detection_latency_bound_silence(*model.replica1_out_lower, *d_sel, horizon);
  const auto lat_rep_1 =
      detection_latency_bound_silence(*model.replica2_in_lower, *d_rep, horizon);
  const auto lat_rep_2 =
      detection_latency_bound_silence(*model.replica1_in_lower, *d_rep, horizon);
  SCCFT_ENSURES(lat_sel_1 && lat_sel_2 && lat_rep_1 && lat_rep_2);
  report.selector_latency_bound = std::max(*lat_sel_1, *lat_sel_2);
  report.replicator_divergence_bound = std::max(*lat_rep_1, *lat_rep_2);

  // Replicator overflow rule: detection on the write attempt that finds the
  // dead replica's FIFO full. Worst case: FIFO empty at fault time, producer
  // at its minimum rate.
  const ZeroCurve silent;
  const auto ovf1 = first_time_difference_reaches(
      *model.producer_lower, silent, report.replicator_capacity1 + 1, horizon);
  const auto ovf2 = first_time_difference_reaches(
      *model.producer_lower, silent, report.replicator_capacity2 + 1, horizon);
  SCCFT_ENSURES(ovf1.has_value() && ovf2.has_value());
  report.replicator_overflow_bound = std::max(*ovf1, *ovf2);

  return report;
}

}  // namespace sccft::rtc
