// Min-plus / max-plus algebra on staircase curves.
//
// Real-Time Calculus composes arrival and service curves with min-plus
// convolution and deconvolution. The sizing math in sizing.hpp only needs
// suprema of differences, but the full operators are provided so the library
// can be used for general RTC workflows (e.g. propagating curves through a
// chain of processes, as the paper's "interface-based rate analysis"
// reference [1] does).
//
// All operators are exact for staircase curves over a bounded horizon: the
// candidate set of a min-plus convolution's breakpoints is contained in the
// pairwise sums of the operands' breakpoints.
#pragma once

#include "rtc/curve.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc {

/// (f (x) g)(Delta) = inf over 0 <= lambda <= Delta of f(lambda) + g(Delta-lambda).
[[nodiscard]] Tokens minplus_conv_at(const Curve& f, const Curve& g, TimeNs delta);

/// (f (/) g)(Delta) = sup over lambda in [0, horizon] of f(Delta+lambda) - g(lambda).
[[nodiscard]] Tokens minplus_deconv_at(const Curve& f, const Curve& g, TimeNs delta,
                                       TimeNs horizon);

/// Materializes f (x) g on [0, horizon] as an explicit staircase.
[[nodiscard]] StaircaseCurve minplus_conv(const Curve& f, const Curve& g, TimeNs horizon);

/// Materializes f (/) g on [0, horizon] (sup taken over the same horizon).
[[nodiscard]] StaircaseCurve minplus_deconv(const Curve& f, const Curve& g,
                                            TimeNs horizon);

/// Pointwise minimum / maximum / sum, materialized on [0, horizon].
[[nodiscard]] StaircaseCurve pointwise_min(const Curve& f, const Curve& g, TimeNs horizon);
[[nodiscard]] StaircaseCurve pointwise_max(const Curve& f, const Curve& g, TimeNs horizon);
[[nodiscard]] StaircaseCurve pointwise_sum(const Curve& f, const Curve& g, TimeNs horizon);

}  // namespace sccft::rtc
