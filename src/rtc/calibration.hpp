// Trace-based calibration of arrival curves.
//
// The paper notes that interface-level timing models "are either available,
// or can be generated quickly from calibrations" (Section 1). This module
// turns a measured arrival trace (sorted timestamps of token events) into
//   (a) exact trace staircase curves (tightest bounds the trace supports), and
//   (b) a conservative PJD fit suitable for the sizing math of sizing.hpp.
#pragma once

#include <span>
#include <vector>

#include "rtc/curve.hpp"
#include "rtc/pjd.hpp"
#include "rtc/time.hpp"

namespace sccft::rtc {

/// Exact upper staircase of a finite trace: the maximum number of events any
/// half-open window of length Delta contains. Requires >= 2 events.
[[nodiscard]] StaircaseCurve trace_upper_curve(std::span<const TimeNs> arrivals);

/// Exact lower staircase of a finite trace: the minimum number of events over
/// windows of length Delta that fit inside the trace span. Requires >= 2
/// events. Windows extending past the trace are excluded (edge effects would
/// otherwise produce a spuriously low bound).
[[nodiscard]] StaircaseCurve trace_lower_curve(std::span<const TimeNs> arrivals);

/// Conservative PJD model fitted to a trace:
///   period = round(mean inter-arrival time),
///   jitter = max deviation of arrivals from the fitted periodic grid,
///   delay  = the first arrival (phase of event 0).
/// The resulting eta+ / eta- dominate the trace's exact curves.
[[nodiscard]] PJD fit_pjd(std::span<const TimeNs> arrivals);

/// Convenience: calibrate a trace and return the fitted PJD's curve pair.
[[nodiscard]] ArrivalCurvePair calibrate(std::span<const TimeNs> arrivals);

/// Checks that `upper`/`lower` bound the given trace (useful as a validation
/// step after calibration and as a test oracle).
[[nodiscard]] bool curves_bound_trace(const Curve& upper, const Curve& lower,
                                      std::span<const TimeNs> arrivals);

}  // namespace sccft::rtc
