#include "rtc/curve.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sccft::rtc {

StaircaseCurve::StaircaseCurve(Tokens base, std::vector<Jump> jumps, TimeNs tail_start,
                               TimeNs tail_period, Tokens tail_step, std::string name)
    : base_(base),
      jumps_(std::move(jumps)),
      tail_start_(tail_start),
      tail_period_(tail_period),
      tail_step_(tail_step),
      name_(std::move(name)) {
  SCCFT_EXPECTS(base_ >= 0);
  SCCFT_EXPECTS(tail_period_ >= 0);
  SCCFT_EXPECTS(tail_period_ == 0 || tail_step_ >= 0);
  TimeNs prev = 0;
  for (const auto& jump : jumps_) {
    SCCFT_EXPECTS(jump.at > prev);
    SCCFT_EXPECTS(jump.step > 0);
    prev = jump.at;
  }
  if (tail_period_ > 0) {
    SCCFT_EXPECTS(tail_start_ >= prev);
  }
}

Tokens StaircaseCurve::value_at(TimeNs delta) const {
  SCCFT_EXPECTS(delta >= 0);
  Tokens value = base_;
  for (const auto& jump : jumps_) {
    if (jump.at > delta) break;
    value += jump.step;
  }
  if (tail_period_ > 0 && delta > tail_start_) {
    // Tail contributes tail_step at tail_start + k * tail_period, k >= 1.
    const std::int64_t k = (delta - tail_start_) / tail_period_;
    value += k * tail_step_;
  }
  return value;
}

std::vector<TimeNs> StaircaseCurve::jump_points_up_to(TimeNs horizon) const {
  SCCFT_EXPECTS(horizon >= 0);
  std::vector<TimeNs> points;
  for (const auto& jump : jumps_) {
    if (jump.at > horizon) return points;
    points.push_back(jump.at);
  }
  if (tail_period_ > 0 && tail_step_ > 0) {
    for (TimeNs at = tail_start_ + tail_period_; at <= horizon; at += tail_period_) {
      points.push_back(at);
    }
  }
  return points;
}

double StaircaseCurve::long_term_rate() const {
  if (tail_period_ == 0) return 0.0;
  return static_cast<double>(tail_step_) / static_cast<double>(tail_period_);
}

CurveRef::CurveRef(std::unique_ptr<Curve> curve) : curve_(std::move(curve)) {
  SCCFT_EXPECTS(curve_ != nullptr);
}

CurveRef& CurveRef::operator=(const CurveRef& other) {
  if (this != &other) curve_ = other.curve_->clone();
  return *this;
}

}  // namespace sccft::rtc
