#include "rtc/minplus.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace sccft::rtc {

namespace {

std::vector<TimeNs> merged_points(const Curve& f, const Curve& g, TimeNs horizon) {
  std::vector<TimeNs> points{0};
  for (const Curve* curve : {&f, &g}) {
    for (TimeNs at : curve->jump_points_up_to(horizon)) points.push_back(at);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

/// Builds a staircase by sampling `eval` at each candidate point (assumed to
/// include every point at which the result can change). The result is exact
/// on [0, horizon]; beyond it, a periodic tail continues at `tail_rate`
/// tokens/ns (0 = no tail) so long-term-rate-based reasoning (boundedness
/// checks in sizing.hpp) stays correct for composed curves.
StaircaseCurve materialize(const std::vector<TimeNs>& candidates,
                           const std::function<Tokens(TimeNs)>& eval,
                           const std::string& name, TimeNs horizon,
                           double tail_rate) {
  SCCFT_EXPECTS(!candidates.empty() && candidates.front() == 0);
  const Tokens base = eval(0);
  std::vector<StaircaseCurve::Jump> jumps;
  Tokens prev = base;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const Tokens v = eval(candidates[i]);
    SCCFT_ASSERT(v >= prev);  // results of these operators are monotone
    if (v > prev) {
      jumps.push_back({candidates[i], v - prev});
      prev = v;
    }
  }
  TimeNs tail_start = 0;
  TimeNs tail_period = 0;
  Tokens tail_step = 0;
  if (tail_rate > 0.0) {
    tail_period = static_cast<TimeNs>(std::llround(1.0 / tail_rate));
    SCCFT_ASSERT(tail_period > 0);
    tail_step = 1;
    tail_start = std::max(horizon, jumps.empty() ? 0 : jumps.back().at);
  }
  return StaircaseCurve(base, std::move(jumps), tail_start, tail_period, tail_step,
                        name);
}

}  // namespace

Tokens minplus_conv_at(const Curve& f, const Curve& g, TimeNs delta) {
  SCCFT_EXPECTS(delta >= 0);
  // inf over lambda of f(lambda) + g(delta - lambda). For staircases the
  // infimum is attained at lambda = 0, lambda = delta, a jump point of f, or
  // delta minus a jump point of g (approaching from below: jump - 1).
  Tokens best = std::numeric_limits<Tokens>::max();
  auto consider = [&](TimeNs lambda) {
    if (lambda < 0 || lambda > delta) return;
    best = std::min(best, f.value_at(lambda) + g.value_at(delta - lambda));
  };
  consider(0);
  consider(delta);
  for (TimeNs at : f.jump_points_up_to(delta)) {
    consider(at);
    consider(at - 1);
  }
  for (TimeNs at : g.jump_points_up_to(delta)) {
    consider(delta - at);
    consider(delta - at + 1);
  }
  return best;
}

Tokens minplus_deconv_at(const Curve& f, const Curve& g, TimeNs delta, TimeNs horizon) {
  SCCFT_EXPECTS(delta >= 0);
  SCCFT_EXPECTS(horizon >= 0);
  Tokens best = std::numeric_limits<Tokens>::min();
  auto consider = [&](TimeNs lambda) {
    if (lambda < 0 || lambda > horizon) return;
    best = std::max(best, f.value_at(delta + lambda) - g.value_at(lambda));
  };
  consider(0);
  consider(horizon);
  for (TimeNs at : g.jump_points_up_to(horizon)) {
    consider(at);
    consider(at - 1);
  }
  for (TimeNs at : f.jump_points_up_to(delta + horizon)) {
    consider(at - delta);
    consider(at - delta - 1);
  }
  return best;
}

StaircaseCurve minplus_conv(const Curve& f, const Curve& g, TimeNs horizon) {
  SCCFT_EXPECTS(horizon > 0);
  // Breakpoints of the convolution lie in pairwise sums of operand breakpoints.
  std::vector<TimeNs> f_points = f.jump_points_up_to(horizon);
  std::vector<TimeNs> g_points = g.jump_points_up_to(horizon);
  f_points.insert(f_points.begin(), 0);
  g_points.insert(g_points.begin(), 0);
  std::vector<TimeNs> candidates;
  candidates.reserve(f_points.size() * g_points.size());
  for (TimeNs a : f_points) {
    for (TimeNs b : g_points) {
      if (a + b <= horizon) candidates.push_back(a + b);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  return materialize(
      candidates, [&](TimeNs d) { return minplus_conv_at(f, g, d); },
      "(" + f.describe() + " conv " + g.describe() + ")", horizon,
      std::min(f.long_term_rate(), g.long_term_rate()));
}

StaircaseCurve minplus_deconv(const Curve& f, const Curve& g, TimeNs horizon) {
  SCCFT_EXPECTS(horizon > 0);
  std::vector<TimeNs> candidates{0};
  for (TimeNs at : f.jump_points_up_to(2 * horizon)) {
    for (TimeNs b : g.jump_points_up_to(horizon)) {
      const TimeNs d = at - b;
      if (d >= 0 && d <= horizon) candidates.push_back(d);
      if (d - 1 >= 0 && d - 1 <= horizon) candidates.push_back(d - 1);
    }
    if (at <= horizon) candidates.push_back(at);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  return materialize(
      candidates, [&](TimeNs d) { return minplus_deconv_at(f, g, d, horizon); },
      "(" + f.describe() + " deconv " + g.describe() + ")", horizon,
      f.long_term_rate());
}

StaircaseCurve pointwise_min(const Curve& f, const Curve& g, TimeNs horizon) {
  return materialize(
      merged_points(f, g, horizon),
      [&](TimeNs d) { return std::min(f.value_at(d), g.value_at(d)); },
      "min(" + f.describe() + ", " + g.describe() + ")", horizon,
      std::min(f.long_term_rate(), g.long_term_rate()));
}

StaircaseCurve pointwise_max(const Curve& f, const Curve& g, TimeNs horizon) {
  return materialize(
      merged_points(f, g, horizon),
      [&](TimeNs d) { return std::max(f.value_at(d), g.value_at(d)); },
      "max(" + f.describe() + ", " + g.describe() + ")", horizon,
      std::max(f.long_term_rate(), g.long_term_rate()));
}

StaircaseCurve pointwise_sum(const Curve& f, const Curve& g, TimeNs horizon) {
  return materialize(
      merged_points(f, g, horizon),
      [&](TimeNs d) { return f.value_at(d) + g.value_at(d); },
      "sum(" + f.describe() + ", " + g.describe() + ")", horizon,
      f.long_term_rate() + g.long_term_rate());
}

}  // namespace sccft::rtc
