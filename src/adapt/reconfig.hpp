// Live-resize protocol driver (Layer 8, adaptation loop).
//
// The channels implement the mechanics of a reconfiguration window
// (ReplicatorChannel / SelectorChannel begin/end_reconfiguration + the
// clamped setters); this controller sequences them into the three-phase
// protocol the adaptation policy speaks:
//
//   quiesce  — both channels enter the window: the replicator's overflow
//              rule and the selector's divergence rule are suspended, and
//              writers rejoining through the reintegration frontier stay
//              held, so no verdict can fire against in-flight sizes;
//   resize   — after `quiesce_window` ns the pending targets (TMR-voted,
//              see below) are applied through the channels' clamped
//              setters, which guarantee a resize by itself can never
//              convict retroactively;
//   resume   — both channels leave the window in the same event: deferred
//              detection re-arms against the new sizes (any fault that
//              landed inside the window is convicted now, bounding its
//              detection latency by the window length) and held writers
//              are woken.
//
// No token is ever dropped by a window: the replicator's physical deque
// absorbs over-capacity demand while the rule is suspended, and the
// selector keeps serving reads throughout. The chaos no-loss/ordering
// oracles run unchanged across reconfiguration windows (chaos_soak
// --reconfigure) to enforce exactly that.
//
// TMR pending words: the decision-to-apply gap is a window in which a bit
// flip could install a garbage capacity, so the pending targets are held
// in Tmr words and the apply phase reads the majority vote. The
// controller is its own Scrubbable (stable word order {pending |F1|,
// pending |F2|, pending D}) registered with the scrubber only when
// adaptation is enabled — the channels' own word indices, which fault
// plans address globally, are untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ft/replicator.hpp"
#include "ft/scrub.hpp"
#include "ft/selector.hpp"
#include "rtc/time.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"

namespace sccft::adapt {

/// Sequences quiesce -> resize -> resume windows over one replicator /
/// selector pair. One window in flight at a time; requests arriving while a
/// window is open are rejected (the policy retries on its next stimulus).
/// Must outlive every scheduled window close (i.e. the simulator run).
class ReconfigurationController final : public ft::Scrubbable {
 public:
  struct Config {
    /// Quiesce-to-apply delay; also the bound on deferred detection latency.
    rtc::TimeNs quiesce_window = 1'000'000;
    std::string name = "reconfig";
  };

  /// Resize targets; unset fields keep the channel's current value.
  struct Request {
    std::optional<rtc::Tokens> fifo1;
    std::optional<rtc::Tokens> fifo2;
    std::optional<rtc::Tokens> divergence;

    [[nodiscard]] bool empty() const {
      return !fifo1 && !fifo2 && !divergence;
    }
  };

  struct Stats {
    std::uint64_t windows_opened = 0;
    std::uint64_t windows_completed = 0;
    std::uint64_t targets_applied = 0;
    std::uint64_t rejected_busy = 0;
    /// Requested values adjusted by the channels' no-retroactive-conviction
    /// clamps (shrink below fill+1, narrow below gap+1).
    std::uint64_t clamped = 0;
  };

  ReconfigurationController(sim::Simulator& sim, trace::TraceBus& bus,
                            ft::ReplicatorChannel& replicator,
                            ft::SelectorChannel& selector, Config config);

  ReconfigurationController(const ReconfigurationController&) = delete;
  ReconfigurationController& operator=(const ReconfigurationController&) = delete;

  /// Opens a window for `request`. Returns false (and counts rejected_busy)
  /// if a window is already open or the request is empty.
  bool request(const Request& request);

  [[nodiscard]] bool window_open() const { return window_open_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] trace::SubjectId trace_subject() const { return subject_; }

  // Currently-installed sizes, read back from the channels' own TMR words.
  [[nodiscard]] rtc::Tokens fifo1() const {
    return replicator_.capacity(ft::ReplicaIndex::kReplica1);
  }
  [[nodiscard]] rtc::Tokens fifo2() const {
    return replicator_.capacity(ft::ReplicaIndex::kReplica2);
  }
  [[nodiscard]] rtc::Tokens divergence() const {
    return selector_.divergence_threshold();
  }

  // Live occupancy, for shrink floors: a re-dimensioning target below the
  // tokens currently in flight would be clamped by the channels to fill+1 /
  // gap+1 — legal, but with zero slack, so the very next token trips the
  // rule. The policy floors its targets above these instead.
  [[nodiscard]] rtc::Tokens fill1() const {
    return replicator_.fill(ft::ReplicaIndex::kReplica1);
  }
  [[nodiscard]] rtc::Tokens fill2() const {
    return replicator_.fill(ft::ReplicaIndex::kReplica2);
  }
  /// Current |W1 - W2| write gap the divergence rule (b) measures.
  [[nodiscard]] rtc::Tokens divergence_gap() const {
    const auto w1 =
        static_cast<std::int64_t>(selector_.tokens_received(ft::ReplicaIndex::kReplica1));
    const auto w2 =
        static_cast<std::int64_t>(selector_.tokens_received(ft::ReplicaIndex::kReplica2));
    return static_cast<rtc::Tokens>(w1 > w2 ? w1 - w2 : w2 - w1);
  }

  // Scrubbable: pending-target words in stable order
  //   {0: pending |F1|, 1: pending |F2|, 2: pending D}
  // (-1 = no change requested; only meaningful while a window is open).
  [[nodiscard]] std::string scrub_name() const override { return config_.name; }
  [[nodiscard]] int control_word_count() const override { return scrub_set_.size(); }
  void corrupt_control_word(int word, int copy, std::uint64_t mask) override {
    scrub_set_.corrupt(word, copy, mask);
  }
  [[nodiscard]] ft::ScrubReport scrub_control_state() override {
    return scrub_set_.scrub();
  }

 private:
  void close_window();

  sim::Simulator& sim_;
  trace::TraceBus& bus_;
  ft::ReplicatorChannel& replicator_;
  ft::SelectorChannel& selector_;
  Config config_;
  trace::SubjectId subject_ = 0;
  bool window_open_ = false;
  /// Bumped per window; the scheduled close checks it so a stale event can
  /// never close a later window (defensive — requests are serialized).
  std::uint64_t epoch_ = 0;
  ft::Tmr<rtc::Tokens> pending_fifo1_ = -1;
  ft::Tmr<rtc::Tokens> pending_fifo2_ = -1;
  ft::Tmr<rtc::Tokens> pending_divergence_ = -1;
  ft::ScrubSet scrub_set_;
  Stats stats_;
};

}  // namespace sccft::adapt
