#include "adapt/reconfig.hpp"

#include "util/assert.hpp"

namespace sccft::adapt {

ReconfigurationController::ReconfigurationController(
    sim::Simulator& sim, trace::TraceBus& bus, ft::ReplicatorChannel& replicator,
    ft::SelectorChannel& selector, Config config)
    : sim_(sim),
      bus_(bus),
      replicator_(replicator),
      selector_(selector),
      config_(std::move(config)),
      subject_(bus_.intern(config_.name)) {
  SCCFT_EXPECTS(config_.quiesce_window >= 0);
  scrub_set_.add(pending_fifo1_);
  scrub_set_.add(pending_fifo2_);
  scrub_set_.add(pending_divergence_);
}

bool ReconfigurationController::request(const Request& request) {
  if (window_open_ || request.empty()) {
    ++stats_.rejected_busy;
    return false;
  }
  SCCFT_EXPECTS(!request.fifo1 || *request.fifo1 > 0);
  SCCFT_EXPECTS(!request.fifo2 || *request.fifo2 > 0);
  SCCFT_EXPECTS(!request.divergence || *request.divergence >= 0);

  window_open_ = true;
  ++stats_.windows_opened;
  ++epoch_;
  pending_fifo1_ = request.fifo1.value_or(-1);
  pending_fifo2_ = request.fifo2.value_or(-1);
  pending_divergence_ = request.divergence.value_or(-1);

  // Phase 0: quiesce. Both channels suspend their verdict rules; the
  // selector additionally holds resyncing writers across the window.
  replicator_.begin_reconfiguration();
  selector_.begin_reconfiguration();
  bus_.emit(trace::EventKind::kReconfig, subject_, sim_.now(), /*phase=*/0,
            /*target=*/-1, 0);

  const std::uint64_t epoch = epoch_;
  sim_.schedule_after(config_.quiesce_window, [this, epoch] {
    if (epoch == epoch_ && window_open_) close_window();
  });
  return true;
}

void ReconfigurationController::close_window() {
  const rtc::TimeNs now = sim_.now();

  // Phase 1: apply, reading the TMR vote of each pending word so a bit flip
  // in the decision-to-apply gap cannot install a garbage size.
  struct Target {
    rtc::Tokens pending;
    int id;
  };
  const Target targets[] = {{pending_fifo1_.vote(), 0},
                            {pending_fifo2_.vote(), 1},
                            {pending_divergence_.vote(), 2}};
  for (const Target& target : targets) {
    if (target.pending < 0) continue;
    rtc::Tokens applied = 0;
    switch (target.id) {
      case 0:
        applied =
            replicator_.set_capacity(ft::ReplicaIndex::kReplica1, target.pending);
        break;
      case 1:
        applied =
            replicator_.set_capacity(ft::ReplicaIndex::kReplica2, target.pending);
        break;
      default:
        applied = selector_.set_divergence_threshold(target.pending);
        break;
    }
    ++stats_.targets_applied;
    if (applied != target.pending) ++stats_.clamped;
    bus_.emit(trace::EventKind::kReconfig, subject_, now, /*phase=*/1,
              target.id, applied);
  }
  pending_fifo1_ = -1;
  pending_fifo2_ = -1;
  pending_divergence_ = -1;

  // Phase 2: resume. Deferred detection re-arms against the new sizes and
  // held writers are woken.
  replicator_.end_reconfiguration();
  selector_.end_reconfiguration();
  window_open_ = false;
  ++stats_.windows_completed;
  bus_.emit(trace::EventKind::kReconfig, subject_, now, /*phase=*/2,
            /*target=*/-1, 0);
}

}  // namespace sccft::adapt
