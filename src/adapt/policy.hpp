// Adaptation policy (Layer 8): decides *when* the live-resize protocol runs
// and *what* it installs.
//
// Two stimuli feed the decision:
//
//  * kAcceptanceMiss events from the OnlineMonitor's weakly-hard (m,K)
//    acceptance layer — the reactive path. Sub-threshold misses climb a
//    graduated ladder: at `widen_at` misses in the window the policy widens
//    the selector's divergence threshold D (cheap, reversible — buys the
//    drifting replica slack before rule (b) convicts it); at `resize_at`
//    misses it additionally grows the replicator FIFOs (absorbs sustained
//    rate/jitter creep). The final rung — conviction — is not the policy's:
//    when misses exceed m the monitor escalates kCurveViolation and the
//    Supervisor convicts, exactly as without adaptation.
//
//  * Periodic margin snapshots from the online dimensioner — the proactive
//    path. Every `redimension_period` the policy re-runs Eqs. (3)/(5) on
//    measured curves (via the injected MeasureFn) and re-dimensions toward
//    measured demand + headroom, growing before the first miss ever lands
//    and shrinking back when the load recedes.
//
// Hysteresis keeps the loop stable: a request is suppressed unless the
// target differs from the installed value by at least `deadband` tokens,
// and at most one window opens per `cooldown` ns. Ceilings
// (`max_capacity`, `max_divergence`) bound runaway growth — a genuinely
// faulty replica must still be convictable, so D cannot widen forever.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "adapt/reconfig.hpp"
#include "rtc/online/dimensioner.hpp"
#include "rtc/online/weakly_hard.hpp"
#include "rtc/time.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"

namespace sccft::adapt {

/// Margin probe: re-runs the sizing analyses on measured curves at `now`.
/// Returns nullopt while too little traffic has been observed to certify
/// any bound (the policy then skips the proactive tick).
using MeasureFn =
    std::function<std::optional<rtc::online::OnlineMargins>(rtc::TimeNs)>;

class AdaptationPolicy final : public trace::Sink {
 public:
  using Config = rtc::online::AdaptationConfig;

  struct Stats {
    std::uint64_t ticks = 0;              ///< proactive measurement ticks
    std::uint64_t misses_seen = 0;        ///< kAcceptanceMiss events observed
    std::uint64_t breaches_seen = 0;      ///< kCurveViolation events observed
    std::uint64_t widen_requests = 0;     ///< ladder rung: widen D
    std::uint64_t resize_requests = 0;    ///< ladder rung: grow FIFOs (+D)
    std::uint64_t proactive_requests = 0; ///< margin-driven re-dimensioning
    std::uint64_t suppressed_cooldown = 0;
    std::uint64_t suppressed_deadband = 0;
    /// Proactive targets that bypassed hysteresis because the installed
    /// value had decayed inside the live-occupancy floor.
    std::uint64_t floor_overrides = 0;
    rtc::TimeNs last_action_at = -1;
  };

  /// Subscribes to kAcceptanceMiss + kCurveViolation on construction.
  /// `measure` may be empty: the proactive path is then disabled and only
  /// the reactive ladder runs.
  AdaptationPolicy(sim::Simulator& sim, trace::TraceBus& bus,
                   ReconfigurationController& controller, Config config,
                   MeasureFn measure);
  ~AdaptationPolicy() override;

  AdaptationPolicy(const AdaptationPolicy&) = delete;
  AdaptationPolicy& operator=(const AdaptationPolicy&) = delete;

  /// Schedules the first proactive tick (no-op without a MeasureFn or with
  /// redimension_period <= 0). Call once, before the simulator runs.
  void start();

  // trace::Sink — the reactive ladder.
  void on_event(const trace::Event& event) override;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void tick();
  /// Applies deadband + ceiling to one target; nullopt = leave unchanged.
  [[nodiscard]] std::optional<rtc::Tokens> step_toward(rtc::Tokens current,
                                                       rtc::Tokens target,
                                                       rtc::Tokens ceiling);
  [[nodiscard]] bool in_cooldown(rtc::TimeNs now);
  void note_action(rtc::TimeNs now);

  sim::Simulator& sim_;
  trace::TraceBus& bus_;
  ReconfigurationController& controller_;
  Config config_;
  MeasureFn measure_;
  bool started_ = false;
  Stats stats_;
};

}  // namespace sccft::adapt
