#include "adapt/policy.hpp"

#include <algorithm>

#include "trace/event.hpp"
#include "util/assert.hpp"

namespace sccft::adapt {

namespace {

/// `base` grown by `percent`, at least +1 so small sizes still move.
rtc::Tokens grown(rtc::Tokens base, int percent) {
  return base + std::max<rtc::Tokens>(1, base * percent / 100);
}

}  // namespace

AdaptationPolicy::AdaptationPolicy(sim::Simulator& sim, trace::TraceBus& bus,
                                   ReconfigurationController& controller,
                                   Config config, MeasureFn measure)
    : sim_(sim),
      bus_(bus),
      controller_(controller),
      config_(config),
      measure_(std::move(measure)) {
  SCCFT_EXPECTS(config_.window.K >= 1 && config_.window.K <= 64);
  SCCFT_EXPECTS(config_.window.m >= 0 && config_.window.m < config_.window.K);
  SCCFT_EXPECTS(config_.widen_at >= 1);
  SCCFT_EXPECTS(config_.resize_at >= config_.widen_at);
  SCCFT_EXPECTS(config_.deadband >= 0);
  SCCFT_EXPECTS(config_.cooldown >= 0);
  SCCFT_EXPECTS(config_.widen_percent > 0 && config_.grow_percent > 0);
  SCCFT_EXPECTS(config_.headroom >= 0);
  bus_.subscribe(this, trace::bit(trace::EventKind::kAcceptanceMiss) |
                           trace::bit(trace::EventKind::kCurveViolation));
}

AdaptationPolicy::~AdaptationPolicy() { bus_.unsubscribe(this); }

void AdaptationPolicy::start() {
  SCCFT_EXPECTS(!started_);
  started_ = true;
  if (!measure_ || config_.redimension_period <= 0) return;
  sim_.schedule_after(config_.redimension_period, [this] { tick(); });
}

void AdaptationPolicy::on_event(const trace::Event& event) {
  if (event.kind == trace::EventKind::kCurveViolation) {
    // The final rung: the monitor escalated, the Supervisor convicts. The
    // policy only witnesses it (so experiments can count rungs climbed).
    ++stats_.breaches_seen;
    return;
  }
  if (event.kind != trace::EventKind::kAcceptanceMiss) return;
  ++stats_.misses_seen;

  const auto misses = static_cast<int>(event.b);
  if (misses < config_.widen_at) return;
  if (controller_.window_open() || in_cooldown(event.time)) return;

  ReconfigurationController::Request request;
  // Rung: widen D (unless rule (b) is disabled, D == 0).
  const rtc::Tokens d = controller_.divergence();
  if (d > 0) {
    request.divergence = step_toward(d, grown(d, config_.widen_percent),
                                     config_.max_divergence);
  }
  // Higher rung: also grow both FIFOs.
  if (misses >= config_.resize_at) {
    request.fifo1 = step_toward(controller_.fifo1(),
                                grown(controller_.fifo1(), config_.grow_percent),
                                config_.max_capacity);
    request.fifo2 = step_toward(controller_.fifo2(),
                                grown(controller_.fifo2(), config_.grow_percent),
                                config_.max_capacity);
  }
  if (request.empty()) return;
  if (controller_.request(request)) {
    note_action(event.time);
    if (misses >= config_.resize_at) {
      ++stats_.resize_requests;
    } else {
      ++stats_.widen_requests;
    }
  }
}

void AdaptationPolicy::tick() {
  ++stats_.ticks;
  sim_.schedule_after(config_.redimension_period, [this] { tick(); });

  const rtc::TimeNs now = sim_.now();
  if (controller_.window_open()) return;
  const auto margins = measure_(now);
  if (!margins) return;

  // Re-dimension toward measured demand + headroom, both directions: grow
  // before the first miss lands, shrink back when the load recedes. Every
  // target is floored above the live occupancy (+ headroom): the measured
  // margins come from the *arrival-curve* analyses, which cannot see
  // consumer-side backlog — shrinking into tokens already in flight would
  // leave the channel clamped at zero slack and convict on the next token.
  //
  // A floor violation (installed value already inside the occupancy floor)
  // is urgent: hysteresis exists to damp steady-state oscillation, but
  // delaying this repair by a deadband or a cooldown is exactly what lets
  // the next token convict, so urgent components bypass both.
  bool urgent = false;
  const auto target_for = [&](rtc::Tokens current, std::optional<rtc::Tokens> measured,
                              rtc::Tokens floor,
                              rtc::Tokens ceiling) -> std::optional<rtc::Tokens> {
    if (current < floor && current < ceiling) {
      urgent = true;
      ++stats_.floor_overrides;
      const rtc::Tokens demand = measured ? *measured + config_.headroom : floor;
      return std::clamp<rtc::Tokens>(std::max(demand, floor), 1, ceiling);
    }
    if (!measured) return std::nullopt;
    return step_toward(current, std::max(*measured + config_.headroom, floor),
                       ceiling);
  };
  ReconfigurationController::Request request;
  request.fifo1 = target_for(controller_.fifo1(), margins->measured_fifo1,
                             controller_.fill1() + 1 + config_.headroom,
                             config_.max_capacity);
  request.fifo2 = target_for(controller_.fifo2(), margins->measured_fifo2,
                             controller_.fill2() + 1 + config_.headroom,
                             config_.max_capacity);
  const rtc::Tokens d = controller_.divergence();
  if (d > 0) {
    request.divergence =
        target_for(d, margins->measured_divergence,
                   controller_.divergence_gap() + 1 + config_.headroom,
                   config_.max_divergence);
  }
  if (request.empty()) return;
  if (!urgent && in_cooldown(now)) return;
  if (controller_.request(request)) {
    note_action(now);
    ++stats_.proactive_requests;
  }
}

std::optional<rtc::Tokens> AdaptationPolicy::step_toward(rtc::Tokens current,
                                                         rtc::Tokens target,
                                                         rtc::Tokens ceiling) {
  target = std::clamp<rtc::Tokens>(target, 1, ceiling);
  const rtc::Tokens delta = target > current ? target - current : current - target;
  if (delta < std::max<rtc::Tokens>(1, config_.deadband)) {
    if (delta > 0) ++stats_.suppressed_deadband;
    return std::nullopt;
  }
  return target;
}

bool AdaptationPolicy::in_cooldown(rtc::TimeNs now) {
  if (stats_.last_action_at >= 0 && now - stats_.last_action_at < config_.cooldown) {
    ++stats_.suppressed_cooldown;
    return true;
  }
  return false;
}

void AdaptationPolicy::note_action(rtc::TimeNs now) { stats_.last_action_at = now; }

}  // namespace sccft::adapt
