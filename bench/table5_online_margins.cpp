// Table 5 (this reproduction's extension): online arrival-curve conformance
// under PJD drift, and the re-dimensioned protection parameters.
//
// The paper dimensions |F_i| (Eq. 3), D (Eq. 5), and the detection-latency
// bound (Eqs. 6-8) from design-time curves and stops there. This campaign
// asks the deployment question: when the deployed stream *drifts* from its
// PJD model — rate creep (emissions stretch apart) or jitter creep (extra
// random displacement) — how fast does the online-RTC monitor flag the
// Eq. (2) breach, and what do the paper's formulas say when re-run on the
// *measured* curves?
//
// Per scenario (no drift + rate/jitter creep sweeps on replica 1's output
// and the producer), 20-run campaigns on the ADPCM application report:
//   * runs with a conformance violation on the drifted stream, and runs with
//     a violation anywhere before the drift onset (false positives — must be
//     0, the empirical curves of a conformant stream sit inside the design
//     envelope by construction),
//   * detection latency from drift onset to the first violation,
//   * measured-vs-designed margins: |F_1| (Eq. 3 on the measured producer
//     curve), D (Eq. 5 on the measured output curves), and the Eq. (8)
//     latency bound at the designed D on the measured lower curves.
//
// Every run's empirical-curve snapshots are exported as CSV, folded in seed
// order: byte-identical at any --jobs value (the determinism-lane contract).
//
// With SCCFT_TRACE_COMPILED_OUT the monitor observes no kEmission events;
// every scenario then reports zero events and zero violations (stated in the
// table header so the output is self-explaining in that configuration).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "apps/adpcm/app.hpp"
#include "bench/campaign.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using namespace sccft;

struct Scenario {
  std::string name;
  apps::DriftSpec drift;
};

/// The stream a drift target lands on (what the monitor should flag).
std::string drifted_stream(apps::DriftSpec::Target target) {
  switch (target) {
    case apps::DriftSpec::Target::kProducer: return "producer";
    case apps::DriftSpec::Target::kReplica1: return "r1.out";
    case apps::DriftSpec::Target::kReplica2: return "r2.out";
    case apps::DriftSpec::Target::kNone: break;
  }
  return "";
}

std::string opt_tokens(const std::optional<rtc::Tokens>& v) {
  return v ? std::to_string(*v) : "-";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("table5_online_margins",
                      "Online RTC conformance & re-dimensioning under PJD drift "
                      "(ADPCM, 20-run campaigns per scenario)");
  util::add_jobs_flag(cli);
  cli.add_int_flag("runs", bench::kRuns, "runs per drift scenario", /*min=*/1);
  cli.add_flag("csv", "/tmp/sccft_table5_online_margins.csv",
               "path for the per-run empirical-curve export");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage().c_str());
    return 0;
  }
  const int jobs = util::get_jobs(cli);
  const int runs = static_cast<int>(cli.get_int("runs"));
  SCCFT_EXPECTS(runs >= 1);
  const std::string csv_path = cli.get("csv");

  apps::ExperimentRunner runner(apps::adpcm::make_application());
  const rtc::TimeNs period = runner.app().timing.producer.period;

  apps::ExperimentOptions options;
  options.run_periods = 240;
  options.online_monitor = true;

  constexpr std::uint64_t kDriftAfterPeriods = 120;
  const rtc::TimeNs onset = static_cast<rtc::TimeNs>(kDriftAfterPeriods) * period;

  using Target = apps::DriftSpec::Target;
  auto drift = [&](Target target, double rate_mult, rtc::TimeNs extra_jitter) {
    apps::DriftSpec spec;
    spec.target = target;
    spec.after_periods = kDriftAfterPeriods;
    spec.rate_mult = rate_mult;
    spec.extra_jitter = extra_jitter;
    return spec;
  };
  const std::vector<Scenario> scenarios{
      {"conformant (no drift)", {}},
      {"R1 rate x1.25", drift(Target::kReplica1, 1.25, 0)},
      {"R1 rate x1.5", drift(Target::kReplica1, 1.5, 0)},
      {"R1 rate x2.0", drift(Target::kReplica1, 2.0, 0)},
      {"R1 jitter +2P", drift(Target::kReplica1, 1.0, 2 * period)},
      {"producer rate x1.5", drift(Target::kProducer, 1.5, 0)},
  };

  util::CsvWriter csv({"scenario", "seed", "stream", "at_ns", "events", "delta_ns",
                       "upper", "lower", "lower_valid"});
  csv.add_comment("empirical arrival-curve snapshots per run (rtc/online), " +
                  std::string("drift onset at period ") +
                  std::to_string(kDriftAfterPeriods));

  util::Table table(
      "Table 5 (adpcm): online RTC conformance under drift (" + std::to_string(runs) +
      " runs per scenario; zero events/violations everywhere means the build "
      "compiled data-path tracing out)");
  table.set_header({"Scenario", "Viol. runs", "FP runs", "Detection latency",
                    "|F1| meas (max)", "|F1| design", "D meas (max)", "D design",
                    "Eq.8 meas (max)"});

  const auto wall_start = std::chrono::steady_clock::now();

  for (const auto& scenario : scenarios) {
    auto scenario_options = options;
    scenario_options.drift = scenario.drift;
    const auto per_run = bench::run_campaign_runs(runner, scenario_options, runs, jobs);

    const std::string watched = drifted_stream(scenario.drift.target);
    int violated_runs = 0;
    int false_positive_runs = 0;
    util::SampleSet latency_ms;
    std::optional<rtc::Tokens> fifo_meas_max, div_meas_max;
    std::optional<rtc::TimeNs> lat_meas_max;
    rtc::Tokens fifo_design = 0, div_design = 0;

    for (int run = 1; run <= runs; ++run) {
      const bench::CampaignRun& pr = per_run[static_cast<std::size_t>(run - 1)];
      util::flush_captured(pr.log);
      const apps::ExperimentResult& r = pr.result;

      bool early = false;
      bool drifted_hit = false;
      for (const auto& stream : r.online_streams) {
        if (stream.first_violation && stream.first_violation->at < onset) early = true;
        if (stream.name == watched && stream.first_violation &&
            stream.first_violation->at >= onset) {
          drifted_hit = true;
          latency_ms.add(rtc::to_ms(stream.first_violation->at - onset));
        }
        for (const auto& point : stream.snapshot.points) {
          csv.add_row({scenario.name, std::to_string(run), stream.name,
                       std::to_string(stream.snapshot.at),
                       std::to_string(stream.snapshot.events),
                       std::to_string(point.delta), std::to_string(point.upper),
                       std::to_string(point.lower),
                       point.lower_valid ? "1" : "0"});
        }
      }
      if (watched.empty()) {
        // No-drift scenario: any violation at all is a false positive.
        for (const auto& stream : r.online_streams) {
          if (stream.first_violation) early = true;
        }
      }
      if (early) ++false_positive_runs;
      if (drifted_hit) ++violated_runs;

      if (r.online_margins) {
        const auto& m = *r.online_margins;
        fifo_design = m.designed_fifo1;
        div_design = m.designed_divergence;
        if (m.measured_fifo1 && (!fifo_meas_max || *m.measured_fifo1 > *fifo_meas_max)) {
          fifo_meas_max = m.measured_fifo1;
        }
        if (m.measured_divergence &&
            (!div_meas_max || *m.measured_divergence > *div_meas_max)) {
          div_meas_max = m.measured_divergence;
        }
        if (m.measured_latency && (!lat_meas_max || *m.measured_latency > *lat_meas_max)) {
          lat_meas_max = m.measured_latency;
        }
      }
    }

    table.add_row({scenario.name,
                   std::to_string(violated_runs) + "/" + std::to_string(runs),
                   std::to_string(false_positive_runs), bench::stat_row(latency_ms),
                   opt_tokens(fifo_meas_max), std::to_string(fifo_design),
                   opt_tokens(div_meas_max), std::to_string(div_design),
                   lat_meas_max ? bench::ms(rtc::to_ms(*lat_meas_max)) : "-"});
  }

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cerr << "table5_online_margins: " << scenarios.size() << " scenarios x "
            << runs << " runs in "
            << static_cast<long long>(wall.count() * 1000.0) << " ms with --jobs "
            << jobs << "\n";

  std::cout << table << "\n";
  std::cout << "Margins compare Eqs. (3)/(5)/(8) re-run on measured curves "
               "(horizon: the snapshots' certified lattice span) against the "
               "design-time sizing. A conformant stream's measured values never "
               "exceed the designed ones. Drift inflates the divergence column: "
               "the drifted stream's measured lower curve collapses, so Eq. (5) "
               "re-derived on measurements demands a far larger D than the "
               "design — the quantitative case for re-dimensioning after a "
               "model change rather than trusting design-time curves.\n\n";
  // Provenance goes to stderr with the wall clock: stdout must stay
  // byte-identical across --jobs AND across --csv destinations, so the
  // determinism lane can cmp it directly.
  if (csv.write_file(csv_path)) {
    std::cerr << "per-run empirical curves (seeds 1.." << runs
              << " per scenario) written to " << csv_path << "\n";
  } else {
    std::cerr << "WARNING: could not write " << csv_path << "\n";
  }
  return 0;
}
