// Regenerates the paper's Table 1: "Parameters for Fault Tolerance
// Experiments" — the <period, jitter, delay> tuples of every interface of
// every application, plus derived bandwidths.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sccft;

std::string bandwidth(const apps::ApplicationSpec& app) {
  const double tokens_per_sec =
      1e9 / static_cast<double>(app.timing.producer.period);
  const double in_bw = tokens_per_sec * app.input_token_bytes;
  const double out_bw = tokens_per_sec * app.output_token_bytes;
  return util::format_si(in_bw, "B/s", 0) + " in / " +
         util::format_si(out_bw, "B/s", 0) + " out";
}

void add_app(util::Table& table, const apps::ApplicationSpec& app) {
  const auto& t = app.timing;
  table.add_row({app.name, "producer (input rate)", t.producer.to_string(),
                 bandwidth(app)});
  table.add_row({"", "replica 1 consumption", t.replica1_in.to_string(), ""});
  table.add_row({"", "replica 1 production", t.replica1_out.to_string(), ""});
  table.add_row({"", "replica 2 consumption", t.replica2_in.to_string(), ""});
  table.add_row({"", "replica 2 production", t.replica2_out.to_string(), ""});
  table.add_row({"", "consumer consumption", t.consumer.to_string(), ""});
  table.add_separator();
}

}  // namespace

int main() {
  util::Table table(
      "Table 1: Parameters for Fault Tolerance Experiments "
      "(<period, jitter, delay> per interface)");
  table.set_header({"Application", "Interface", "<P, J, d>", "Nominal bandwidth"});
  table.set_alignment({util::Align::kLeft, util::Align::kLeft, util::Align::kLeft,
                       util::Align::kLeft});
  add_app(table, apps::mjpeg::make_application());
  add_app(table, apps::adpcm::make_application());
  add_app(table, apps::h264::make_application());
  std::cout << table << "\n";
  std::cout << "Token sizes: MJPEG ~10 KB encoded in / 76.8 KB decoded out;\n"
               "             ADPCM 3 KB in / 3 KB out (4:1 inside the replica);\n"
               "             H.264 25.3 KB raw in / ~8 KB encoded out.\n";
  return 0;
}
