// Ablation C: replicator FIFO capacity sweep (DESIGN.md Section 5, item 3).
//
// Eq. (3) gives the smallest capacity with no fault-free overflow. This
// bench overrides |R_1| = |R_2| across a sweep: undersized queues convert
// legal jitter into false positives; oversized queues slow the overflow
// detector down linearly (every extra slot is one more producer period to
// fill).
#include <iostream>

#include "apps/mjpeg/app.hpp"
#include "bench/campaign.hpp"

int main() {
  using namespace sccft;
  apps::ExperimentRunner runner(apps::mjpeg::make_application());

  apps::ExperimentOptions base;
  base.run_periods = 240;
  base.fault_after_periods = 150;

  const auto analyzed = rtc::analyze_duplicated_network(
      runner.app().timing.to_model(), runner.app().timing.default_horizon());
  std::cout << "Analyzed Eq. (3) capacities: |R1| = " << analyzed.replicator_capacity1
            << ", |R2| = " << analyzed.replicator_capacity2 << "\n\n";

  util::Table table("Ablation C: replicator capacity override (MJPEG, 20+20 runs)");
  table.set_header({"|R| override", "Replicator latency (min/mean/max)", "Detections",
                    "False positives"});

  for (rtc::Tokens cap = 1; cap <= analyzed.replicator_capacity2 + 3; ++cap) {
    auto options = base;
    options.replicator_capacity_override = cap;
    const auto faults =
        bench::run_fault_campaign(runner, options, ft::ReplicaIndex::kReplica2);
    const auto clean = bench::run_fault_free_campaign(runner, options);
    const bool is_analyzed = cap == analyzed.replicator_capacity2;
    table.add_row({std::to_string(cap) + (is_analyzed ? " *" : ""),
                   bench::stat_row(faults.replicator_latency_ms),
                   std::to_string(faults.detected) + "/" + std::to_string(bench::kRuns),
                   std::to_string(clean.false_positives + faults.false_positives)});
  }
  std::cout << table << "\n";
  std::cout
      << "* = Eq. (3)'s |R2| — the smallest capacity that provably never\n"
         "overflows for ANY pair of conforming producer/consumption streams.\n"
         "Smaller capacities risk misflagging worst-case-aligned legal jitter\n"
         "(this generator's streams are milder than the curve-level worst case,\n"
         "so the risk does not materialize in 20 finite runs); every slot above\n"
         "|R2| slows the overflow detector by one producer period.\n";
  return 0;
}
