// Shared Table-2 harness: runs the full paper evaluation protocol for one
// application and prints the Table 2 block (theoretical capacities vs.
// observed fills, fault-detection latency vs. bounds, overheads, decoded
// inter-frame timings reference vs. duplicated). Every number is read from
// the campaigns' merged metrics registries; the fault-free campaign's full
// registry is also exported as CSV so the table can be re-derived offline.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/campaign.hpp"
#include "util/cli.hpp"

namespace sccft::bench {

/// Shared argv handling for the table2_* mains: `--jobs N` plus the
/// `--online-monitor` switch that attaches the rtc/online conformance
/// monitor to every run.
struct Table2Cli {
  int jobs = 1;
  bool online_monitor = false;
};

[[nodiscard]] inline Table2Cli parse_table2_cli(int argc, const char* const* argv,
                                                const std::string& program,
                                                const std::string& description) {
  util::CliParser cli(program, description);
  util::add_jobs_flag(cli);
  cli.add_flag("online-monitor", "false",
               "attach the online-RTC monitor (rtc/online): estimate empirical "
               "arrival curves per run and report Eq. (2) conformance");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage().c_str());
    std::exit(0);
  }
  return Table2Cli{util::get_jobs(cli), cli.get_bool("online-monitor")};
}

/// Writes a merged campaign registry as "metric,kind,value" CSV rows.
inline bool write_metrics_csv(const trace::MetricsRegistry& registry,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << registry.render_csv();
  return static_cast<bool>(out);
}

inline void run_table2(apps::ApplicationSpec app, int jobs = 1,
                       bool online_monitor = false) {
  apps::ExperimentRunner runner(std::move(app));
  const auto& name = runner.app().name;

  apps::ExperimentOptions options;
  options.run_periods = 240;
  options.fault_after_periods = 150;
  options.online_monitor = online_monitor;

  const auto wall_start = std::chrono::steady_clock::now();

  // --- fault-free campaign: fills + duplicated inter-arrival timings -------
  auto dup_free = run_fault_free_campaign(runner, options, kRuns, jobs);

  // --- reference network: inter-arrival timings -----------------------------
  auto ref_options = options;
  ref_options.duplicated = false;
  auto ref_free = run_fault_free_campaign(runner, ref_options, kRuns, jobs);

  // --- fault campaigns: each replica faulty, 20 runs each -------------------
  auto fault1 = run_fault_campaign(runner, options, ft::ReplicaIndex::kReplica1, kRuns, jobs);
  auto fault2 = run_fault_campaign(runner, options, ft::ReplicaIndex::kReplica2, kRuns, jobs);

  // Wall clock goes to stderr: stdout (tables + CSV paths) must stay
  // byte-identical across --jobs values for the determinism diff lane.
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cerr << "table2 " << name << ": 4 campaigns x " << kRuns << " runs in "
            << static_cast<long long>(wall.count() * 1000.0) << " ms with --jobs "
            << jobs << "\n";
  util::SampleSet rep_lat = fault1.replicator_latency_ms;
  for (double v : fault2.replicator_latency_ms.samples()) rep_lat.add(v);
  util::SampleSet sel_lat = fault1.selector_latency_ms;
  for (double v : fault2.selector_latency_ms.samples()) sel_lat.add(v);

  const auto& sizing = dup_free.sizing;

  util::Table fifo("Table 2 (" + name + "): FIFO dimensioning (Eq. 3/4) vs. observation");
  fifo.set_header({"FIFO", "|R1|", "|R2|", "|S1|", "|S2|", "|S1|_0", "|S2|_0"});
  fifo.add_row({"Theoretical capacity (tokens)", std::to_string(sizing.replicator_capacity1),
                std::to_string(sizing.replicator_capacity2),
                std::to_string(sizing.selector_capacity1),
                std::to_string(sizing.selector_capacity2),
                std::to_string(sizing.selector_initial1),
                std::to_string(sizing.selector_initial2)});
  fifo.add_row({"Max observed fill (no faults, 20 runs, " + seed_list(dup_free.seeds) + ")",
                std::to_string(dup_free.max_fill_r1), std::to_string(dup_free.max_fill_r2),
                std::to_string(dup_free.max_fill_s1), std::to_string(dup_free.max_fill_s2),
                "-", "-"});
  std::cout << fifo << "\n";

  util::Table latency("Table 2 (" + name + "): fault-detection latency (20 runs per faulty replica, " +
                      seed_list(fault1.seeds) + ")");
  latency.set_header({"Channel", "Min", "Mean", "Max", "Computed upper bound"});
  auto lat_row = [&](const std::string& channel, const util::SampleSet& set,
                     rtc::TimeNs bound) {
    latency.add_row({channel, set.empty() ? "-" : ms(set.min()),
                     set.empty() ? "-" : ms(set.mean()),
                     set.empty() ? "-" : ms(set.max()), ms(rtc::to_ms(bound))});
  };
  lat_row("Replicator (overflow rule)", rep_lat, sizing.replicator_overflow_bound);
  lat_row("Selector (stall/divergence)", sel_lat, sizing.selector_latency_bound);
  std::cout << latency << "\n";

  util::Table overhead("Table 2 (" + name + "): framework overhead");
  overhead.set_header({"Component", "Control memory", "Notes"});
  overhead.add_row({"Replicator", std::to_string(dup_free.replicator_memory) + " B",
                    "+ " + std::to_string(sizing.replicator_capacity1 +
                                          sizing.replicator_capacity2) +
                        " token slots"});
  overhead.add_row({"Selector", std::to_string(dup_free.selector_memory) + " B",
                    "+ " + std::to_string(std::max(sizing.selector_capacity1,
                                                   sizing.selector_capacity2)) +
                        " token slots"});
  overhead.add_row({"Runtime per op", "(see bench/micro_overhead)",
                    "arbitration is O(1) counter updates"});
  std::cout << overhead << "\n";

  util::Table timings("Table 2 (" + name + "): consumer inter-arrival timings (ms)");
  timings.set_header({"Network", "Min", "Mean", "Max", "Samples"});
  auto tim_row = [&](const std::string& label, const util::SampleSet& set) {
    timings.add_row({label, util::format_double(set.min(), 2),
                     util::format_double(set.mean(), 2),
                     util::format_double(set.max(), 2), std::to_string(set.count())});
  };
  tim_row("Reference", ref_free.interarrival_ms);
  tim_row("Duplicated", dup_free.interarrival_ms);
  std::cout << timings << "\n";

  std::cout << "Detection campaigns: " << (fault1.detected + fault2.detected) << "/"
            << 2 * kRuns << " faults detected, "
            << (fault1.correct_replica + fault2.correct_replica)
            << " blamed the correct replica, "
            << (fault1.false_positives + fault2.false_positives +
                dup_free.false_positives)
            << " false positives (" << seed_list(fault1.seeds)
            << " per campaign).\n\n";

  if (online_monitor) {
    // Empirical-curve conformance (Eq. 2) from the merged registries. A
    // conformant deployment shows zero violations in the fault-free campaign;
    // the fault campaigns show the monitor flagging the injected misbehaviour
    // as curve-level drift. With SCCFT_TRACE_COMPILED_OUT the monitor sees no
    // kEmission events and every cell reads 0.
    util::Table online("Table 2 (" + name +
                       "): online RTC conformance (events / upper viol. / lower viol.)");
    online.set_header({"Stream", "Fault-free", "R1 fault", "R2 fault"});
    auto cell = [](const trace::MetricsRegistry& merged, const std::string& stream) {
      const std::string prefix = "online." + stream;
      return std::to_string(merged.counter(prefix + ".events")) + " / " +
             std::to_string(merged.counter(prefix + ".upper_violations")) + " / " +
             std::to_string(merged.counter(prefix + ".lower_violations"));
    };
    for (const char* stream : {"producer", "r1.out", "r2.out"}) {
      online.add_row({stream, cell(dup_free.merged, stream), cell(fault1.merged, stream),
                      cell(fault2.merged, stream)});
    }
    std::cout << online << "\n";
  }

  // Machine-readable record of the fault-free campaign: the merged metrics
  // registry every cell of the fills/overhead/timings rows was read from.
  const std::string csv_path = "/tmp/sccft_table2_" + name + ".csv";
  if (write_metrics_csv(dup_free.merged, csv_path)) {
    std::cout << "Merged metrics registry (" << seed_list(dup_free.seeds)
              << ") written to " << csv_path << "\n\n";
  }
}

}  // namespace sccft::bench
