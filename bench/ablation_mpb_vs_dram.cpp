// Ablation E: why the paper routes everything through the MPB.
//
// Section 4.1: "all data was sent/received in chunk sizes not exceeding 3KB,
// ensuring that all messages are routed exclusively via the message passing
// buffers". This bench quantifies the alternative: the same token sizes over
// (a) the chunked MPB path and (b) the shared-DRAM path, alone and under
// contention from 7 concurrent same-quadrant senders. The DRAM path is both
// slower and — the part that matters for this paper — far less predictable:
// its latency spread under contention would have to be absorbed as extra
// jitter in every Table 1 model, inflating every Eq. (3)-(6) bound.
#include <iostream>

#include "scc/dram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace sccft;
  using scc::CoreId;

  util::Table table(
      "Ablation E: MPB (3 KiB chunks) vs. shared-DRAM transfer path");
  table.set_header({"Token size", "MPB alone", "MPB contended (spread)",
                    "DRAM alone", "DRAM contended (spread)"});

  for (int bytes : {1 * 1024, 3 * 1024, 10 * 1024, 76'800 /* MJPEG frame */}) {
    // Alone.
    scc::NocModel noc_alone;
    scc::DramModel dram_alone(noc_alone);
    const auto mpb_alone = noc_alone.estimate_latency(CoreId{0}, CoreId{26}, bytes);
    const auto dram_alone_lat = dram_alone.estimate_latency(CoreId{0}, CoreId{26}, bytes);

    // Contended: 8 same-quadrant senders firing simultaneously.
    scc::NocModel noc_busy;
    util::SampleSet mpb_lat;
    for (int i = 0; i < 8; ++i) {
      mpb_lat.add(static_cast<double>(
          noc_busy.transfer(CoreId{2 * i}, CoreId{2 * i + 24}, bytes, 0)));
    }
    scc::NocModel noc_dram;
    scc::DramModel dram_busy(noc_dram);
    util::SampleSet dram_lat;
    for (int i = 0; i < 8; ++i) {
      dram_lat.add(static_cast<double>(
          dram_busy.transfer(CoreId{2 * i}, CoreId{2 * i + 24}, bytes, 0)));
    }

    auto us = [](double ns) { return util::format_double(ns / 1000.0, 1) + " us"; };
    table.add_row(
        {util::format_si(bytes, "B", 1), us(static_cast<double>(mpb_alone)),
         us(mpb_lat.max()) + " (+" + us(mpb_lat.max() - mpb_lat.min()) + ")",
         us(static_cast<double>(dram_alone_lat)),
         us(dram_lat.max()) + " (+" + us(dram_lat.max() - dram_lat.min()) + ")"});
  }
  std::cout << table << "\n";
  std::cout
      << "The contended-spread column is the extra *jitter* each path injects.\n"
         "DRAM's spread would have to be added to every interface jitter J in\n"
         "Table 1, inflating D, the FIFO capacities, and every detection-latency\n"
         "bound of Section 3.4 — which is why the paper pins all traffic to the\n"
         "MPB with <= 3 KiB chunks.\n";
  return 0;
}
