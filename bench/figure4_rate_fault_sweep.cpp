// Figure 4 (extension figure): detection latency vs. rate-fault severity.
//
// Sweeps the slowdown factor of a rate-degradation fault on the ADPCM
// application and compares the measured detection latency (20 runs) against
// the Eq. (6) bound with the residual post-fault upper curve (the faulty
// replica's PJD stretched by the factor). The shape this demonstrates: as
// the fault gets milder (factor -> 1), both the bound and the measured
// latency grow — the paper's Eq. (6) detectability limit in action; silence
// (factor -> infinity) is the fastest-detected fault.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "bench/campaign.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sccft;
  const int jobs = util::parse_jobs_or_exit(
      argc, argv, "figure4_rate_fault_sweep",
      "Detection latency vs. rate-fault severity (20-run campaigns per point)");
  apps::ExperimentRunner runner(apps::adpcm::make_application());

  const auto& timing = runner.app().timing;
  const auto horizon = timing.default_horizon() * 4;
  const auto sizing =
      rtc::analyze_duplicated_network(timing.to_model(), timing.default_horizon());
  const rtc::PJDLowerCurve healthy_lower(timing.replica2_out);  // R2 stays healthy

  util::Table table(
      "Figure 4: detection latency vs. rate-fault severity (ADPCM, R1 degraded, 20 runs)");
  table.set_header({"Slowdown", "Eq. (6) bound", "Measured mean", "Measured max",
                    "Detected"});
  util::CsvWriter csv({"slowdown", "bound_ms", "measured_mean_ms", "measured_max_ms",
                       "detected"});

  for (double factor : {1.5, 2.0, 3.0, 4.0, 6.0, 10.0}) {
    const auto bound = rtc::detection_latency_bound_rate_fault(
        healthy_lower, timing.replica1_out, factor, sizing.selector_threshold, horizon);

    apps::ExperimentOptions options;
    options.run_periods = 700;
    options.fault_after_periods = 150;
    options.fault_mode = ft::FaultMode::kRateDegradation;
    options.rate_factor = factor;
    const auto campaign = bench::run_fault_campaign(
        runner, options, ft::ReplicaIndex::kReplica1, bench::kRuns, jobs);

    const bool have = !campaign.first_latency_ms.empty();
    table.add_row(
        {util::format_double(factor, 1) + "x",
         bound ? util::format_double(rtc::to_ms(*bound), 1) + " ms" : "unbounded",
         have ? util::format_double(campaign.first_latency_ms.mean(), 1) + " ms" : "-",
         have ? util::format_double(campaign.first_latency_ms.max(), 1) + " ms" : "-",
         std::to_string(campaign.detected) + "/" + std::to_string(bench::kRuns)});
    csv.add_row({util::format_double(factor, 2),
                 bound ? util::format_double(rtc::to_ms(*bound), 3) : "-1",
                 have ? util::format_double(campaign.first_latency_ms.mean(), 3) : "-1",
                 have ? util::format_double(campaign.first_latency_ms.max(), 3) : "-1",
                 std::to_string(campaign.detected)});
  }
  std::cout << table << "\n";
  if (csv.write_file("/tmp/sccft_figure4.csv")) {
    std::cout << "Series written to /tmp/sccft_figure4.csv\n";
  }
  std::cout << "Milder faults take longer to convict (Eq. 6: the healthy lower\n"
               "curve must out-run the residual faulty upper curve by 2D-1 tokens);\n"
               "silence is the easy case the paper evaluates.\n";
  return 0;
}
