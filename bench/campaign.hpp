// Shared experiment-campaign helpers for the table-regenerating benches.
//
// Each paper table aggregates statistics over 20 runs. Aggregation rides the
// metrics registry: every run's registry snapshot (ExperimentResult::metrics)
// is merged into the campaign's — counters add, gauges keep the cross-run
// maximum, series append in run order — and the reported numbers are read
// back out of the merged registry, so each table cell traces to the same
// record the run itself kept.
//
// Parallel execution (`--jobs N`): the per-seed runs are embarrassingly
// parallel — each owns an isolated single-threaded Simulator — so the
// campaign fans them out onto a worker pool and then folds the results *in
// seed order, not completion order*. Tables, CSV exports, and seed_list
// provenance are therefore byte-identical at any job count; `--jobs 1` is
// the exact serial path. Per-run log output is captured per worker and
// flushed in seed order for the same reason.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/common/experiment.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sccft::bench {

inline constexpr int kRuns = 20;  // paper: "over 20 such runs"

/// One campaign run's deliverables, produced on a worker thread and folded on
/// the campaign thread in seed order.
struct CampaignRun {
  apps::ExperimentResult result;
  std::string log;  ///< per-run log lines, replayed in seed order
};

/// Fans `runs` seeded experiment runs (seeds 1..runs) out onto `jobs` worker
/// threads and returns them indexed by run (index i = seed i+1), so callers
/// fold in seed order regardless of completion order. Run-local sinks cannot
/// be shared across concurrent runs, hence the contract on options.
inline std::vector<CampaignRun> run_campaign_runs(apps::ExperimentRunner& runner,
                                                  const apps::ExperimentOptions& options,
                                                  int runs, int jobs) {
  SCCFT_EXPECTS(runs > 0);
  SCCFT_EXPECTS(jobs >= 1);
  if (jobs > 1) {
    SCCFT_EXPECTS(options.trace_sink == nullptr);
    SCCFT_EXPECTS(options.vcd_path.empty());
  }
  std::vector<CampaignRun> per_run(static_cast<std::size_t>(runs));
  util::parallel_for_ordered(runs, jobs, [&](int i) {
    util::ScopedLogCapture capture;
    apps::ExperimentOptions run_options = options;
    run_options.seed = static_cast<std::uint64_t>(i) + 1;
    per_run[static_cast<std::size_t>(i)].result = runner.run(run_options);
    per_run[static_cast<std::size_t>(i)].log = capture.take();
  });
  return per_run;
}

struct FaultCampaignResult {
  util::SampleSet replicator_latency_ms;
  util::SampleSet selector_latency_ms;
  util::SampleSet first_latency_ms;
  util::SampleSet distance_latency_ms;   // only if baselines attached
  util::SampleSet watchdog_latency_ms;
  /// First Eq. (2) conformance breach of the faulty replica's output stream,
  /// relative to the fault instant (only if options.online_monitor was set).
  util::SampleSet online_latency_ms;
  int detected = 0;
  int correct_replica = 0;
  int false_positives = 0;
  std::vector<std::uint64_t> seeds;  ///< RNG seed of every run, in order
  rtc::SizingReport sizing;
  trace::MetricsRegistry merged;  ///< all runs' registries, merged
};

/// Runs `runs` fault-injection campaigns (seeds 1..runs) against `faulty` on
/// `jobs` worker threads. Results are folded in seed order: byte-identical
/// at any job count.
inline FaultCampaignResult run_fault_campaign(apps::ExperimentRunner& runner,
                                              apps::ExperimentOptions options,
                                              ft::ReplicaIndex faulty,
                                              int runs = kRuns, int jobs = 1) {
  options.inject_fault = true;
  options.faulty_replica = faulty;
  const std::vector<CampaignRun> per_run = run_campaign_runs(runner, options, runs, jobs);

  FaultCampaignResult result;
  for (int run = 1; run <= runs; ++run) {
    const CampaignRun& pr = per_run[static_cast<std::size_t>(run - 1)];
    util::flush_captured(pr.log);
    result.seeds.push_back(static_cast<std::uint64_t>(run));
    const apps::ExperimentResult& r = pr.result;
    result.sizing = r.sizing;
    result.merged.merge(*r.metrics);
    if (r.false_positive) ++result.false_positives;
    if (r.any_detection && !r.false_positive) {
      ++result.detected;
      if (r.correct_replica) ++result.correct_replica;
      if (r.replicator_latency) {
        result.replicator_latency_ms.add(rtc::to_ms(*r.replicator_latency));
      }
      if (r.selector_latency) {
        result.selector_latency_ms.add(rtc::to_ms(*r.selector_latency));
      }
      if (r.first_latency) result.first_latency_ms.add(rtc::to_ms(*r.first_latency));
    }
    if (r.distance_latency) result.distance_latency_ms.add(rtc::to_ms(*r.distance_latency));
    if (r.watchdog_latency) result.watchdog_latency_ms.add(rtc::to_ms(*r.watchdog_latency));
    if (r.fault_injected_at >= 0) {
      for (const auto& stream : r.online_streams) {
        if (stream.replica == ft::index_of(faulty) && stream.first_violation &&
            stream.first_violation->at >= r.fault_injected_at) {
          result.online_latency_ms.add(
              rtc::to_ms(stream.first_violation->at - r.fault_injected_at));
        }
      }
    }
  }
  return result;
}

struct FaultFreeCampaignResult {
  rtc::Tokens max_fill_r1 = 0, max_fill_r2 = 0, max_fill_s1 = 0, max_fill_s2 = 0;
  util::SampleSet interarrival_ms;  // pooled over runs
  int false_positives = 0;
  std::vector<std::uint64_t> seeds;  ///< RNG seed of every run, in order
  rtc::SizingReport sizing;
  std::size_t replicator_memory = 0, selector_memory = 0;
  trace::MetricsRegistry merged;  ///< all runs' registries, merged
};

/// Runs `runs` fault-free campaigns. Fill high-water marks, control-memory
/// footprints, and the pooled consumer inter-arrival statistics are all read
/// from the merged registry.
inline FaultFreeCampaignResult run_fault_free_campaign(apps::ExperimentRunner& runner,
                                                       apps::ExperimentOptions options,
                                                       int runs = kRuns, int jobs = 1) {
  options.inject_fault = false;
  const std::vector<CampaignRun> per_run = run_campaign_runs(runner, options, runs, jobs);

  FaultFreeCampaignResult result;
  for (int run = 1; run <= runs; ++run) {
    const CampaignRun& pr = per_run[static_cast<std::size_t>(run - 1)];
    util::flush_captured(pr.log);
    result.seeds.push_back(static_cast<std::uint64_t>(run));
    const apps::ExperimentResult& r = pr.result;
    result.sizing = r.sizing;
    result.merged.merge(*r.metrics);
    if (r.any_detection) ++result.false_positives;
  }
  const std::string& app = runner.app().name;
  const auto fill = [&result](const std::string& gauge) {
    return static_cast<rtc::Tokens>(result.merged.gauge(gauge));
  };
  if (options.duplicated) {
    const std::string rep = app + ".replicator", sel = app + ".selector";
    result.max_fill_r1 = fill(rep + ".R1.max_fill");
    result.max_fill_r2 = fill(rep + ".R2.max_fill");
    result.max_fill_s1 = fill(sel + ".S1.max_observed_fill");
    result.max_fill_s2 = fill(sel + ".S2.max_observed_fill");
    result.replicator_memory =
        static_cast<std::size_t>(result.merged.gauge(rep + ".control_bytes"));
    result.selector_memory =
        static_cast<std::size_t>(result.merged.gauge(sel + ".control_bytes"));
  } else {
    result.max_fill_r1 = fill(app + ".F_P.max_fill");
    result.max_fill_s1 = fill(app + ".F_C.max_fill");
  }
  if (const auto* series = result.merged.find_series("consumer.interarrival_ns")) {
    for (const std::int64_t v : series->samples()) {
      result.interarrival_ms.add(rtc::to_ms(v));
    }
  }
  return result;
}

inline std::string ms(double v) { return util::format_double(v, 1) + " ms"; }

/// Renders a campaign's per-run seeds for table titles and CSV headers, so
/// every reported number can be reproduced exactly. Contiguous ranges
/// (the common case: seeds 1..kRuns) are compacted to "first..last".
inline std::string seed_list(const std::vector<std::uint64_t>& seeds) {
  if (seeds.empty()) return "seeds -";
  bool contiguous = true;
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    if (seeds[i] != seeds[i - 1] + 1) {
      contiguous = false;
      break;
    }
  }
  if (contiguous && seeds.size() > 1) {
    return "seeds " + std::to_string(seeds.front()) + ".." + std::to_string(seeds.back());
  }
  std::string out = "seeds ";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(seeds[i]);
  }
  return out;
}

inline std::string stat_row(const util::SampleSet& set) {
  if (set.empty()) return "-";
  return "min " + util::format_double(set.min(), 1) + " / mean " +
         util::format_double(set.mean(), 1) + " / max " +
         util::format_double(set.max(), 1) + " ms";
}

}  // namespace sccft::bench
