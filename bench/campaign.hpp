// Shared experiment-campaign helpers for the table-regenerating benches.
//
// Each paper table aggregates statistics over 20 runs; these helpers run the
// seed sweep and collect the quantities Tables 2 and 3 report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/common/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sccft::bench {

inline constexpr int kRuns = 20;  // paper: "over 20 such runs"

struct FaultCampaignResult {
  util::SampleSet replicator_latency_ms;
  util::SampleSet selector_latency_ms;
  util::SampleSet first_latency_ms;
  util::SampleSet distance_latency_ms;   // only if baselines attached
  util::SampleSet watchdog_latency_ms;
  int detected = 0;
  int correct_replica = 0;
  int false_positives = 0;
  std::vector<std::uint64_t> seeds;  ///< RNG seed of every run, in order
  rtc::SizingReport sizing;
};

/// Runs `runs` fault-injection campaigns (seeds 1..runs) against `faulty`.
inline FaultCampaignResult run_fault_campaign(apps::ExperimentRunner& runner,
                                              apps::ExperimentOptions options,
                                              ft::ReplicaIndex faulty,
                                              int runs = kRuns) {
  FaultCampaignResult result;
  options.inject_fault = true;
  options.faulty_replica = faulty;
  for (int run = 1; run <= runs; ++run) {
    options.seed = static_cast<std::uint64_t>(run);
    result.seeds.push_back(options.seed);
    const auto r = runner.run(options);
    result.sizing = r.sizing;
    if (r.false_positive) ++result.false_positives;
    if (r.any_detection && !r.false_positive) {
      ++result.detected;
      if (r.correct_replica) ++result.correct_replica;
      if (r.replicator_latency) {
        result.replicator_latency_ms.add(rtc::to_ms(*r.replicator_latency));
      }
      if (r.selector_latency) {
        result.selector_latency_ms.add(rtc::to_ms(*r.selector_latency));
      }
      if (r.first_latency) result.first_latency_ms.add(rtc::to_ms(*r.first_latency));
    }
    if (r.distance_latency) result.distance_latency_ms.add(rtc::to_ms(*r.distance_latency));
    if (r.watchdog_latency) result.watchdog_latency_ms.add(rtc::to_ms(*r.watchdog_latency));
  }
  return result;
}

struct FaultFreeCampaignResult {
  rtc::Tokens max_fill_r1 = 0, max_fill_r2 = 0, max_fill_s1 = 0, max_fill_s2 = 0;
  util::SampleSet interarrival_ms;  // pooled over runs
  int false_positives = 0;
  std::vector<std::uint64_t> seeds;  ///< RNG seed of every run, in order
  rtc::SizingReport sizing;
  std::size_t replicator_memory = 0, selector_memory = 0;
};

/// Runs `runs` fault-free campaigns; pools fill high-water marks and consumer
/// inter-arrival statistics.
inline FaultFreeCampaignResult run_fault_free_campaign(apps::ExperimentRunner& runner,
                                                       apps::ExperimentOptions options,
                                                       int runs = kRuns) {
  FaultFreeCampaignResult result;
  options.inject_fault = false;
  for (int run = 1; run <= runs; ++run) {
    options.seed = static_cast<std::uint64_t>(run);
    result.seeds.push_back(options.seed);
    const auto r = runner.run(options);
    result.sizing = r.sizing;
    result.max_fill_r1 = std::max(result.max_fill_r1, r.fill_r1);
    result.max_fill_r2 = std::max(result.max_fill_r2, r.fill_r2);
    result.max_fill_s1 = std::max(result.max_fill_s1, r.fill_s1);
    result.max_fill_s2 = std::max(result.max_fill_s2, r.fill_s2);
    if (r.any_detection) ++result.false_positives;
    for (double v : r.consumer_interarrival_ms.samples()) result.interarrival_ms.add(v);
    result.replicator_memory = r.replicator_memory_bytes;
    result.selector_memory = r.selector_memory_bytes;
  }
  return result;
}

inline std::string ms(double v) { return util::format_double(v, 1) + " ms"; }

/// Renders a campaign's per-run seeds for table titles and CSV headers, so
/// every reported number can be reproduced exactly. Contiguous ranges
/// (the common case: seeds 1..kRuns) are compacted to "first..last".
inline std::string seed_list(const std::vector<std::uint64_t>& seeds) {
  if (seeds.empty()) return "seeds -";
  bool contiguous = true;
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    if (seeds[i] != seeds[i - 1] + 1) {
      contiguous = false;
      break;
    }
  }
  if (contiguous && seeds.size() > 1) {
    return "seeds " + std::to_string(seeds.front()) + ".." + std::to_string(seeds.back());
  }
  std::string out = "seeds ";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(seeds[i]);
  }
  return out;
}

inline std::string stat_row(const util::SampleSet& set) {
  if (set.empty()) return "-";
  return "min " + util::format_double(set.min(), 1) + " / mean " +
         util::format_double(set.mean(), 1) + " / max " +
         util::format_double(set.max(), 1) + " ms";
}

}  // namespace sccft::bench
