// Shared experiment-campaign helpers for the table-regenerating benches.
//
// Each paper table aggregates statistics over 20 runs. Aggregation rides the
// metrics registry: every run's registry snapshot (ExperimentResult::metrics)
// is merged into the campaign's — counters add, gauges keep the cross-run
// maximum, series append in run order — and the reported numbers are read
// back out of the merged registry, so each table cell traces to the same
// record the run itself kept.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/common/experiment.hpp"
#include "trace/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sccft::bench {

inline constexpr int kRuns = 20;  // paper: "over 20 such runs"

struct FaultCampaignResult {
  util::SampleSet replicator_latency_ms;
  util::SampleSet selector_latency_ms;
  util::SampleSet first_latency_ms;
  util::SampleSet distance_latency_ms;   // only if baselines attached
  util::SampleSet watchdog_latency_ms;
  int detected = 0;
  int correct_replica = 0;
  int false_positives = 0;
  std::vector<std::uint64_t> seeds;  ///< RNG seed of every run, in order
  rtc::SizingReport sizing;
  trace::MetricsRegistry merged;  ///< all runs' registries, merged
};

/// Runs `runs` fault-injection campaigns (seeds 1..runs) against `faulty`.
inline FaultCampaignResult run_fault_campaign(apps::ExperimentRunner& runner,
                                              apps::ExperimentOptions options,
                                              ft::ReplicaIndex faulty,
                                              int runs = kRuns) {
  FaultCampaignResult result;
  options.inject_fault = true;
  options.faulty_replica = faulty;
  for (int run = 1; run <= runs; ++run) {
    options.seed = static_cast<std::uint64_t>(run);
    result.seeds.push_back(options.seed);
    const auto r = runner.run(options);
    result.sizing = r.sizing;
    result.merged.merge(*r.metrics);
    if (r.false_positive) ++result.false_positives;
    if (r.any_detection && !r.false_positive) {
      ++result.detected;
      if (r.correct_replica) ++result.correct_replica;
      if (r.replicator_latency) {
        result.replicator_latency_ms.add(rtc::to_ms(*r.replicator_latency));
      }
      if (r.selector_latency) {
        result.selector_latency_ms.add(rtc::to_ms(*r.selector_latency));
      }
      if (r.first_latency) result.first_latency_ms.add(rtc::to_ms(*r.first_latency));
    }
    if (r.distance_latency) result.distance_latency_ms.add(rtc::to_ms(*r.distance_latency));
    if (r.watchdog_latency) result.watchdog_latency_ms.add(rtc::to_ms(*r.watchdog_latency));
  }
  return result;
}

struct FaultFreeCampaignResult {
  rtc::Tokens max_fill_r1 = 0, max_fill_r2 = 0, max_fill_s1 = 0, max_fill_s2 = 0;
  util::SampleSet interarrival_ms;  // pooled over runs
  int false_positives = 0;
  std::vector<std::uint64_t> seeds;  ///< RNG seed of every run, in order
  rtc::SizingReport sizing;
  std::size_t replicator_memory = 0, selector_memory = 0;
  trace::MetricsRegistry merged;  ///< all runs' registries, merged
};

/// Runs `runs` fault-free campaigns. Fill high-water marks, control-memory
/// footprints, and the pooled consumer inter-arrival statistics are all read
/// from the merged registry.
inline FaultFreeCampaignResult run_fault_free_campaign(apps::ExperimentRunner& runner,
                                                       apps::ExperimentOptions options,
                                                       int runs = kRuns) {
  FaultFreeCampaignResult result;
  options.inject_fault = false;
  for (int run = 1; run <= runs; ++run) {
    options.seed = static_cast<std::uint64_t>(run);
    result.seeds.push_back(options.seed);
    const auto r = runner.run(options);
    result.sizing = r.sizing;
    result.merged.merge(*r.metrics);
    if (r.any_detection) ++result.false_positives;
  }
  const std::string& app = runner.app().name;
  const auto fill = [&result](const std::string& gauge) {
    return static_cast<rtc::Tokens>(result.merged.gauge(gauge));
  };
  if (options.duplicated) {
    const std::string rep = app + ".replicator", sel = app + ".selector";
    result.max_fill_r1 = fill(rep + ".R1.max_fill");
    result.max_fill_r2 = fill(rep + ".R2.max_fill");
    result.max_fill_s1 = fill(sel + ".S1.max_observed_fill");
    result.max_fill_s2 = fill(sel + ".S2.max_observed_fill");
    result.replicator_memory =
        static_cast<std::size_t>(result.merged.gauge(rep + ".control_bytes"));
    result.selector_memory =
        static_cast<std::size_t>(result.merged.gauge(sel + ".control_bytes"));
  } else {
    result.max_fill_r1 = fill(app + ".F_P.max_fill");
    result.max_fill_s1 = fill(app + ".F_C.max_fill");
  }
  if (const auto* series = result.merged.find_series("consumer.interarrival_ns")) {
    for (const std::int64_t v : series->samples()) {
      result.interarrival_ms.add(rtc::to_ms(v));
    }
  }
  return result;
}

inline std::string ms(double v) { return util::format_double(v, 1) + " ms"; }

/// Renders a campaign's per-run seeds for table titles and CSV headers, so
/// every reported number can be reproduced exactly. Contiguous ranges
/// (the common case: seeds 1..kRuns) are compacted to "first..last".
inline std::string seed_list(const std::vector<std::uint64_t>& seeds) {
  if (seeds.empty()) return "seeds -";
  bool contiguous = true;
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    if (seeds[i] != seeds[i - 1] + 1) {
      contiguous = false;
      break;
    }
  }
  if (contiguous && seeds.size() > 1) {
    return "seeds " + std::to_string(seeds.front()) + ".." + std::to_string(seeds.back());
  }
  std::string out = "seeds ";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(seeds[i]);
  }
  return out;
}

inline std::string stat_row(const util::SampleSet& set) {
  if (set.empty()) return "-";
  return "min " + util::format_double(set.min(), 1) + " / mean " +
         util::format_double(set.mean(), 1) + " / max " +
         util::format_double(set.max(), 1) + " ms";
}

}  // namespace sccft::bench
