// Regenerates the paper's Table 2, ADPCM application block.
#include "apps/adpcm/app.hpp"
#include "bench/table2_common.hpp"

int main(int argc, char** argv) {
  const auto cli = sccft::bench::parse_table2_cli(
      argc, argv, "table2_adpcm", "Paper Table 2, ADPCM block (20-run campaigns)");
  sccft::bench::run_table2(sccft::apps::adpcm::make_application(), cli.jobs,
                           cli.online_monitor);
  return 0;
}
