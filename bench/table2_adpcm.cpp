// Regenerates the paper's Table 2, ADPCM application block.
#include "apps/adpcm/app.hpp"
#include "bench/table2_common.hpp"

int main() {
  sccft::bench::run_table2(sccft::apps::adpcm::make_application());
  return 0;
}
