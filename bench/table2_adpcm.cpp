// Regenerates the paper's Table 2, ADPCM application block.
#include "apps/adpcm/app.hpp"
#include "bench/table2_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const int jobs = sccft::util::parse_jobs_or_exit(
      argc, argv, "table2_adpcm", "Paper Table 2, ADPCM block (20-run campaigns)");
  sccft::bench::run_table2(sccft::apps::adpcm::make_application(), jobs);
  return 0;
}
