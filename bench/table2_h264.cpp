// Generates the Table 2 analog for the H.264 encoder (the paper ran this
// application but omitted the numbers "due to space constraints").
#include "apps/h264/app.hpp"
#include "bench/table2_common.hpp"

int main() {
  sccft::bench::run_table2(sccft::apps::h264::make_application());
  return 0;
}
