// Generates the Table 2 analog for the H.264 encoder (the paper ran this
// application but omitted the numbers "due to space constraints").
#include "apps/h264/app.hpp"
#include "bench/table2_common.hpp"

int main(int argc, char** argv) {
  const auto cli = sccft::bench::parse_table2_cli(
      argc, argv, "table2_h264", "Table 2 analog, H.264 block (20-run campaigns)");
  sccft::bench::run_table2(sccft::apps::h264::make_application(), cli.jobs,
                           cli.online_monitor);
  return 0;
}
