// Table 4 (extension table): taxonomy of detection approaches under legal
// bursty jitter — the quantified version of the paper's related-work
// arguments (Section 1).
//
// Four monitors watch the same legal PJD stream (period 10 ms, jitter = 2
// periods — the bursty case that breaks naive approaches), then the stream
// goes silent. Reported per monitor over 20 seeded trials:
//   * false positives on the legal stream (must be 0 to be usable),
//   * silence-detection latency (mean/max),
//   * runtime timers required.
//
// Monitors:
//   arrival-curve   — our framework's machinery distilled to a monitor: flag
//                     when observed counts leave the [eta-, eta+] envelope
//                     (here via the divergence-equivalent gap bound J + P);
//   distance-func   — Neukirchner-style l-repetitive monitor (paper's [11]);
//   watchdog        — timeout P + J (sound) / timeout P (naive variant);
//   statistical     — EWMA mean + k*sigma (the "inexact" class, papers [4,5]);
//   online-conform  — the rtc/online subsystem (CurveEstimator +
//                     ConformanceChecker) run as a plain monitor: empirical
//                     curve records checked against the design envelope at
//                     every lattice point (Eq. (2)). Exact like the envelope
//                     monitor, but measured rather than derived — the same
//                     code path --online-monitor attaches in the experiments.
#include <array>
#include <iostream>
#include <vector>

#include "kpn/timing.hpp"
#include "monitor/distance_function.hpp"
#include "monitor/statistical.hpp"
#include "monitor/watchdog.hpp"
#include "rtc/online/conformance.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/pjd.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sccft;
using rtc::from_ms;
using rtc::TimeNs;

struct Outcome {
  int false_positives = 0;
  util::SampleSet latency_ms;
  int timers = 0;
};

/// Drives one monitor through a legal stream of `tokens` events, then
/// silence; returns false-positive flag and silence-detection latency.
template <typename MonitorT>
void run_trial(MonitorT& monitor, const rtc::PJD& model, std::uint64_t seed,
               Outcome& outcome) {
  util::Xoshiro256 rng(seed);
  kpn::TimingShaper shaper(model, 0, rng);
  TimeNs last = 0;
  bool false_positive = false;
  for (int k = 0; k < 400; ++k) {
    const TimeNs event = shaper.next_emission(last);
    shaper.commit(event);
    for (TimeNs poll = last + from_ms(1.0); poll < event; poll += from_ms(1.0)) {
      if (monitor.poll(poll)) false_positive = true;
    }
    if (monitor.on_event(event)) false_positive = true;
    last = event;
  }
  if (false_positive || monitor.fault_detected()) {
    ++outcome.false_positives;
    return;
  }
  // Silence begins.
  for (TimeNs poll = last + from_ms(1.0); poll < last + from_ms(3000.0);
       poll += from_ms(1.0)) {
    if (const auto detected = monitor.poll(poll)) {
      outcome.latency_ms.add(rtc::to_ms(*detected - last));
      return;
    }
  }
}

/// The rtc/online subsystem dressed in the taxonomy's monitor interface:
/// every event feeds the estimator, every poll advances its observation
/// instant, and a breach is whatever the conformance checker reports against
/// the stream's own PJD design curves. No timers — records live on event
/// counters and virtual timestamps only.
class OnlineConformanceMonitor {
 public:
  explicit OnlineConformanceMonitor(const rtc::PJD& model)
      : estimator_({.base_delta = model.period, .levels = 4}),
        curves_(rtc::ArrivalCurvePair::from_pjd(model)),
        checker_(estimator_, curves_.lower.get(), curves_.upper.get()) {}

  std::optional<TimeNs> poll(TimeNs now) {
    estimator_.advance_to(now);
    if (const auto v = checker_.check(estimator_)) return v->at;
    return std::nullopt;
  }

  bool on_event(TimeNs at) {
    estimator_.add_event(at);
    return checker_.check(estimator_).has_value();
  }

  [[nodiscard]] bool fault_detected() const { return checker_.first().has_value(); }
  [[nodiscard]] int timers_required() const { return 0; }

 private:
  rtc::online::CurveEstimator estimator_;
  rtc::ArrivalCurvePair curves_;
  rtc::online::ConformanceChecker checker_;
};

std::string stats_cell(const util::SampleSet& set) {
  if (set.empty()) return "-";
  return util::format_double(set.mean(), 1) + " / " +
         util::format_double(set.max(), 1) + " ms";
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = util::parse_jobs_or_exit(
      argc, argv, "table4_monitor_taxonomy",
      "Table 4 extension: monitor taxonomy under legal bursty jitter (20 trials)");
  const rtc::PJD model = rtc::PJD::from_ms(10, 20, 0);  // legal bursty stream
  constexpr int kTrials = 20;
  constexpr int kMonitors = 7;

  // Each trial is independent (own RNG seeded 1..kTrials), so the seed loop
  // fans out across --jobs workers; per-seed partial Outcomes are folded in
  // seed order below, keeping the table byte-identical at any job count.
  struct Trial {
    std::array<Outcome, kMonitors> outcomes;
    std::string log;
  };
  std::vector<Trial> trials(kTrials);
  util::parallel_for_ordered(kTrials, jobs, [&](int i) {
    util::ScopedLogCapture capture;
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    Trial& trial = trials[static_cast<std::size_t>(i)];
    {
      // Arrival-curve envelope monitor: silence convicted once the gap
      // exceeds the eta- bound J + P — the same information our selector's
      // divergence rule uses, with zero learned state.
      monitor::DistanceFunctionMonitor m(
          {.model = model, .l = 1, .polling_interval = from_ms(1.0),
           .fail_silent_only = true});
      run_trial(m, model, seed, trial.outcomes[0]);
      trial.outcomes[0].timers = 0;  // in-framework form needs none (counters only)
    }
    {
      monitor::DistanceFunctionMonitor m(
          {.model = model, .l = 3, .polling_interval = from_ms(1.0),
           .fail_silent_only = true});
      run_trial(m, model, seed, trial.outcomes[1]);
      trial.outcomes[1].timers = m.timers_required();
    }
    {
      monitor::WatchdogMonitor m(
          {.timeout = monitor::WatchdogMonitor::sound_timeout(model),
           .polling_interval = from_ms(1.0)});
      run_trial(m, model, seed, trial.outcomes[2]);
      trial.outcomes[2].timers = m.timers_required();
    }
    {
      monitor::WatchdogMonitor m({.timeout = model.period,  // naive: timeout = P
                                  .polling_interval = from_ms(1.0)});
      run_trial(m, model, seed, trial.outcomes[3]);
      trial.outcomes[3].timers = m.timers_required();
    }
    {
      monitor::StatisticalMonitor m({.sigma_threshold = 1.5,
                                     .ewma_alpha = 0.1,
                                     .warmup_events = 10,
                                     .polling_interval = from_ms(1.0)});
      run_trial(m, model, seed, trial.outcomes[4]);
      trial.outcomes[4].timers = m.timers_required();
    }
    {
      monitor::StatisticalMonitor m({.sigma_threshold = 6.0,
                                     .ewma_alpha = 0.1,
                                     .warmup_events = 10,
                                     .polling_interval = from_ms(1.0)});
      run_trial(m, model, seed, trial.outcomes[5]);
      trial.outcomes[5].timers = m.timers_required();
    }
    {
      OnlineConformanceMonitor m(model);
      run_trial(m, model, seed, trial.outcomes[6]);
      trial.outcomes[6].timers = m.timers_required();
    }
    trial.log = capture.take();
  });

  std::array<Outcome, kMonitors> merged;
  for (const Trial& trial : trials) {
    util::flush_captured(trial.log);
    for (int m = 0; m < kMonitors; ++m) {
      const Outcome& partial = trial.outcomes[static_cast<std::size_t>(m)];
      Outcome& total = merged[static_cast<std::size_t>(m)];
      total.false_positives += partial.false_positives;
      for (const double sample : partial.latency_ms.samples()) {
        total.latency_ms.add(sample);
      }
      total.timers = partial.timers;
    }
  }
  const Outcome& curve_based = merged[0];
  const Outcome& distance = merged[1];
  const Outcome& watchdog_sound = merged[2];
  const Outcome& watchdog_naive = merged[3];
  const Outcome& stat_tight = merged[4];
  const Outcome& stat_safe = merged[5];
  const Outcome& online_conformance = merged[6];

  util::Table table(
      "Table 4 (extension): detection approaches under legal bursty jitter "
      "(P=10 ms, J=20 ms; 20 trials; silence fault after 400 tokens)");
  table.set_header({"Approach", "False positives", "Silence latency (mean/max)",
                    "Timers"});
  auto row = [&](const std::string& name, const Outcome& outcome) {
    table.add_row({name, std::to_string(outcome.false_positives) + "/" +
                             std::to_string(kTrials),
                   stats_cell(outcome.latency_ms), std::to_string(outcome.timers)});
  };
  row("Arrival-curve envelope (ours)", curve_based);
  row("Online conformance (curve estimator)", online_conformance);
  row("Distance function (l=3)", distance);
  row("Watchdog, sound timeout P+J", watchdog_sound);
  row("Watchdog, naive timeout P", watchdog_naive);
  row("Statistical EWMA, k=1.5", stat_tight);
  row("Statistical EWMA, k=6", stat_safe);
  std::cout << table << "\n";
  std::cout
      << "The paper's Section 1 argument, quantified: naive watchdogs and tight\n"
         "statistical thresholds misfire on legal bursty streams; safe variants\n"
         "pay latency; the arrival-curve approach is exact — zero false\n"
         "positives at the model-optimal latency, and inside the framework it\n"
         "needs no runtime timer at all. The online-conformance row is the\n"
         "same guarantee obtained by measurement: the rtc/online estimator's\n"
         "window records are real window counts, so a conforming stream can\n"
         "never breach its own design envelope.\n";
  return 0;
}
