// Regenerates the paper's Figure 1: the reference process network and its
// duplicated counterpart (replicator + two replicas + selector), rendered as
// ASCII topology, plus a structural validation that the duplication preserves
// the reference shape.
#include <iostream>

#include "apps/mjpeg/app.hpp"
#include "apps/common/experiment.hpp"
#include "rtc/sizing.hpp"

int main() {
  using namespace sccft;
  apps::ExperimentRunner runner(apps::mjpeg::make_application());

  std::cout << "Figure 1 (top): reference process network\n";
  std::cout << runner.render_topology(false) << "\n";
  std::cout << "Figure 1 (bottom): duplicated process network\n";
  std::cout << runner.render_topology(true) << "\n";

  const auto& app = runner.app();
  const auto sizing = rtc::analyze_duplicated_network(app.timing.to_model(),
                                                      app.timing.default_horizon());
  std::cout << "Channel dimensioning (Section 3.4):\n"
            << "  replicator:  |R1| = " << sizing.replicator_capacity1
            << ", |R2| = " << sizing.replicator_capacity2 << " tokens\n"
            << "  selector:    |S1| = " << sizing.selector_capacity1
            << ", |S2| = " << sizing.selector_capacity2
            << " tokens, initial |S1|_0 = " << sizing.selector_initial1
            << ", |S2|_0 = " << sizing.selector_initial2 << "\n"
            << "  divergence threshold D = " << sizing.selector_threshold << "\n";

  // Structural check: the duplicated network contains two copies of every
  // reference stage plus exactly one replicator and one selector path.
  const std::string dup = runner.render_topology(true);
  const std::string ref = runner.render_topology(false);
  int ref_edges = 0, dup_edges = 0;
  for (char c : ref) ref_edges += (c == '\n');
  for (char c : dup) dup_edges += (c == '\n');
  std::cout << "\nStructure: reference has " << ref_edges << " edges; duplicated has "
            << dup_edges << " (= 2x" << ref_edges
            << ", replicator/selector fan the endpoints).\n";
  return dup_edges == 2 * ref_edges ? 0 : 1;
}
