// Ablation D: replica count N = 2..4 — the paper's n-fault generalization.
//
// For each N, runs a synthetic pipeline campaign: kills replicas one by one
// (N-1 sequential silence faults) and reports detection latency of each
// fault, stream integrity, and the memory cost of the extra queues.
#include <iostream>
#include <vector>

#include "ft/nreplica.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sccft;

struct NRunResult {
  int detections = 0;
  bool stream_intact = true;
  std::uint64_t received = 0;
  util::SampleSet latencies_ms;
  rtc::Tokens total_queue_slots = 0;
};

NRunResult run_campaign(int n, std::uint64_t seed) {
  sim::Simulator simulator;
  kpn::Network net(simulator);

  const auto producer_model = rtc::PJD::from_ms(10, 1, 10);
  const auto consumer_model = rtc::PJD::from_ms(10, 1, 10);
  std::vector<rtc::PJD> replica_models;
  for (int r = 0; r < n; ++r) {
    replica_models.push_back(rtc::PJD::from_ms(10, 2.0 + 3.0 * r, 10));
  }

  ft::NReplicaTimingModel model;
  model.producer_upper = rtc::make_curve<rtc::PJDUpperCurve>(producer_model);
  model.producer_lower = rtc::make_curve<rtc::PJDLowerCurve>(producer_model);
  model.consumer_upper = rtc::make_curve<rtc::PJDUpperCurve>(consumer_model);
  model.consumer_lower = rtc::make_curve<rtc::PJDLowerCurve>(consumer_model);
  for (const auto& pjd : replica_models) {
    model.in_upper.push_back(rtc::make_curve<rtc::PJDUpperCurve>(pjd));
    model.in_lower.push_back(rtc::make_curve<rtc::PJDLowerCurve>(pjd));
    model.out_upper.push_back(rtc::make_curve<rtc::PJDUpperCurve>(pjd));
    model.out_lower.push_back(rtc::make_curve<rtc::PJDLowerCurve>(pjd));
  }
  const auto sizing = ft::analyze_n_replica_network(model, rtc::from_sec(3.0));

  auto& replicator = net.adopt_channel(std::make_unique<ft::NReplicatorChannel>(
      simulator, "replicator", sizing.replicator_capacity));
  auto& selector = net.adopt_channel(std::make_unique<ft::NSelectorChannel>(
      simulator, "selector",
      ft::NSelectorChannel::Config{sizing.selector_capacity, sizing.selector_initial,
                                   sizing.divergence_threshold, true}));

  NRunResult result;
  for (rtc::Tokens c : sizing.replicator_capacity) result.total_queue_slots += c;
  for (rtc::Tokens c : sizing.selector_capacity) {
    result.total_queue_slots = std::max(result.total_queue_slots + 0, result.total_queue_slots);
    (void)c;
  }

  std::vector<rtc::TimeNs> fault_times;
  std::vector<std::optional<rtc::TimeNs>> first_detection(
      static_cast<std::size_t>(n), std::nullopt);
  auto observer = [&](const ft::NDetectionRecord& r) {
    auto& slot = first_detection[static_cast<std::size_t>(r.replica)];
    if (!slot) slot = r.detected_at;
  };
  replicator.set_fault_observer(observer);
  selector.set_fault_observer(observer);

  net.add_process("producer", scc::CoreId{0}, seed + 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(producer_model, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(8, static_cast<std::uint8_t>(k));
                      co_await kpn::write(replicator,
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });

  std::vector<kpn::Process*> replicas;
  for (int r = 0; r < n; ++r) {
    replicas.push_back(&net.add_process(
        "replica" + std::to_string(r), scc::CoreId{2 * (r + 1)}, seed + 10 + r,
        [&, r, pjd = replica_models[static_cast<std::size_t>(r)]](
            kpn::ProcessContext& ctx) -> sim::Task {
          kpn::TimingShaper emit(pjd, 0, ctx.rng());
          while (true) {
            SCCFT_FAULT_GATE(ctx);
            kpn::Token token = co_await kpn::read(replicator.read_interface(r));
            SCCFT_FAULT_GATE(ctx);
            const rtc::TimeNs t = emit.next_emission(ctx.now());
            if (t > ctx.now()) co_await ctx.compute(t - ctx.now());
            SCCFT_FAULT_GATE(ctx);
            co_await kpn::write(selector.write_interface(r), token);
            emit.commit(ctx.now());
          }
        }));
  }

  std::uint64_t next_expected = 0;
  net.add_process("consumer", scc::CoreId{20}, seed + 99,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(consumer_model, 0, ctx.rng());
                    while (true) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      kpn::Token token = co_await kpn::read(selector);
                      shaper.commit(ctx.now());
                      if (token.seq() != next_expected) result.stream_intact = false;
                      next_expected = token.seq() + 1;
                      ++result.received;
                    }
                  });

  // Kill replicas 0..n-2, 500 ms apart.
  for (int r = 0; r + 1 < n; ++r) {
    const rtc::TimeNs at = rtc::from_ms(400.0 + 500.0 * r);
    fault_times.push_back(at);
    simulator.schedule_at(at, [&, r] {
      replicas[static_cast<std::size_t>(r)]->context().fault().silenced = true;
      replicator.freeze_reader(r);
      selector.freeze_writer(r);
    });
  }

  net.run_until(rtc::from_ms(400.0 + 500.0 * n));
  net.rethrow_failures();

  for (int r = 0; r + 1 < n; ++r) {
    if (first_detection[static_cast<std::size_t>(r)]) {
      ++result.detections;
      result.latencies_ms.add(rtc::to_ms(*first_detection[static_cast<std::size_t>(r)] -
                                         fault_times[static_cast<std::size_t>(r)]));
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace sccft;
  util::Table table("Ablation D: replica count N (tolerating N-1 sequential faults; 10 seeds)");
  table.set_header({"N", "Faults injected", "Detected", "Latency (min/mean/max)",
                    "Streams intact", "Replicator slots"});

  for (int n = 2; n <= 4; ++n) {
    int injected = 0, detected = 0, intact = 0;
    util::SampleSet latencies;
    rtc::Tokens slots = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto result = run_campaign(n, seed * 1000);
      injected += n - 1;
      detected += result.detections;
      intact += result.stream_intact ? 1 : 0;
      for (double v : result.latencies_ms.samples()) latencies.add(v);
      slots = result.total_queue_slots;
    }
    table.add_row({std::to_string(n), std::to_string(injected), std::to_string(detected),
                   latencies.empty()
                       ? "-"
                       : util::format_double(latencies.min(), 1) + " / " +
                             util::format_double(latencies.mean(), 1) + " / " +
                             util::format_double(latencies.max(), 1) + " ms",
                   std::to_string(intact) + "/10", std::to_string(slots)});
  }
  std::cout << table << "\n";
  std::cout << "Tolerating more faults costs one replica (plus its Eq. (3) queue)\n"
               "per additional fault; detection latency per fault is unchanged —\n"
               "the arbitration stays O(1) counters per token.\n";
  return 0;
}
