// Fleet-scale saturation sweep (ft/fleet.hpp): how many concurrent streams
// fit on one shared SCC mesh before the Section 3.4 guarantees degrade?
//
// For each stream count the bench runs `--runs` seeded fleets (every other
// stream duplicated + supervised, a transient silence injected into each
// critical stream) and reports, aggregated over seeds:
//
//   * aggregate throughput    — tokens/s and simulator events per simulated
//                               second (wall-clock events/s goes to stderr:
//                               stdout must stay byte-diffable across hosts
//                               and job counts);
//   * detection latency       — per-stream p50/p95/p99 across all critical
//                               streams and seeds, against the worst Eq.
//                               (6)-(8) bound of the fleet;
//   * sizing degradation      — streams whose observed queue fill consumed
//                               the whole Eq. (3)/(5) designed capacity,
//                               back-pressure stalls, and false convictions
//                               (an Eq. (5) threshold firing on a healthy
//                               replica under cross-traffic);
//   * NoC saturation          — contention stalls and the hottest link's
//                               utilization (busy time / simulated time);
//   * placement shape         — tiles used, max core load, max tile MPB use.
//
// Stream counts that do not fit the mesh (placement infeasible: anti-affinity
// + MPB constraints unsatisfiable) are reported as such, ending the sweep.
//
// The count x seed grid fans out with --jobs; cells are folded in grid order,
// so stdout and the CSV are byte-identical at any job count.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/campaign.hpp"
#include "ft/fleet.hpp"
#include "scc/placement.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace sccft::bench {
namespace {

struct FleetCell {
  bool feasible = false;
  std::string placement_error;
  ft::FleetRunResult result;
  std::string log;
};

int run(int jobs, int runs, int max_streams, const std::string& csv_path) {
  std::vector<int> counts;
  for (int c : {1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96}) {
    if (c <= max_streams) counts.push_back(c);
  }
  std::vector<std::uint64_t> seeds;
  for (int s = 1; s <= runs; ++s) seeds.push_back(static_cast<std::uint64_t>(s));

  const int grid = static_cast<int>(counts.size()) * runs;
  std::vector<FleetCell> cells(static_cast<std::size_t>(grid));
  const auto wall_start = std::chrono::steady_clock::now();
  util::parallel_for_ordered(grid, jobs, [&](int i) {
    util::ScopedLogCapture capture;
    FleetCell& cell = cells[static_cast<std::size_t>(i)];
    ft::FleetSpec spec;
    spec.streams = counts[static_cast<std::size_t>(i / runs)];
    spec.seed = seeds[static_cast<std::size_t>(i % runs)];
    spec.shared_restart_budget = 2 * spec.streams;
    try {
      cell.result = ft::run_fleet(spec);
      cell.feasible = true;
    } catch (const scc::PlacementError& error) {
      cell.placement_error = error.what();
    }
    cell.log = capture.take();
  });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::uint64_t total_events = 0;
  for (const FleetCell& cell : cells) {
    total_events += cell.result.events_processed;
  }
  std::cerr << "fleet sweep: " << grid << " fleets in "
            << static_cast<long long>(wall.count() * 1000.0) << " ms with --jobs "
            << jobs << " (" << util::format_si(
                   static_cast<double>(total_events) /
                       std::max(wall.count(), 1e-9),
                   "ev/s (wall)")
            << ")\n";
  for (const FleetCell& cell : cells) util::flush_captured(cell.log);

  util::Table table("Fleet saturation sweep (" + std::to_string(runs) +
                    " fleets per stream count, " + seed_list(seeds) + ")");
  table.set_header({"Streams", "Tok/s", "Ev/simsec", "Det p50/p95/p99",
                    "Bound", "FalseConv", "FillsAtCap", "Stalls", "NoC util",
                    "Tiles", "MaxLoad", "MPB max"});
  util::CsvWriter csv(
      {"streams", "runs", "feasible", "tokens_per_sec", "events_per_sim_sec",
       "det_p50_ms", "det_p95_ms", "det_p99_ms", "det_bound_ms",
       "detected_streams", "false_convictions", "fills_at_capacity",
       "writer_blocks", "rate_ratio_mean", "noc_stalls", "max_link_util",
       "tiles_used", "max_core_load", "max_tile_mpb_bytes", "pool_used",
       "upper_violations", "lower_violations"});
  csv.add_comment("fleet saturation sweep, " + std::to_string(runs) +
                  " fleets per stream count, " + seed_list(seeds));

  for (std::size_t c = 0; c < counts.size(); ++c) {
    const int streams = counts[c];
    bool feasible = true;
    std::string placement_error;
    double tokens_per_sec = 0;
    double events_per_sim_sec = 0;
    util::SampleSet detection_ms;
    util::SampleSet rate_ratio;
    double bound_ms = 0;
    int detected = 0, false_convictions = 0, fills_at_capacity = 0;
    std::uint64_t writer_blocks = 0, noc_stalls = 0;
    std::uint64_t upper_violations = 0, lower_violations = 0;
    double max_link_util = 0;
    int tiles_used = 0, max_core_load = 0, pool_used = 0;
    std::size_t max_tile_mpb = 0;

    for (int run = 0; run < runs; ++run) {
      const FleetCell& cell =
          cells[c * static_cast<std::size_t>(runs) + static_cast<std::size_t>(run)];
      if (!cell.feasible) {
        feasible = false;
        placement_error = cell.placement_error;
        break;
      }
      const ft::FleetRunResult& r = cell.result;
      const double sim_sec = static_cast<double>(r.simulated_ns) / 1e9;
      events_per_sim_sec +=
          static_cast<double>(r.events_processed) / sim_sec / runs;
      noc_stalls += r.noc_contention_stalls;
      max_link_util = std::max(
          max_link_util, static_cast<double>(r.max_link_busy_ns) /
                             static_cast<double>(r.simulated_ns));
      tiles_used = std::max(tiles_used, r.tiles_used);
      max_core_load = std::max(max_core_load, r.max_core_load);
      max_tile_mpb = std::max(max_tile_mpb, r.max_tile_mpb_used);
      pool_used = std::max(pool_used, r.pool_used);
      for (const ft::FleetStreamOutcome& stream : r.streams) {
        tokens_per_sec += stream.achieved_rate_hz / runs;
        rate_ratio.add(stream.achieved_rate_hz /
                       std::max(stream.nominal_rate_hz, 1e-9));
        writer_blocks += stream.writer_blocks;
        upper_violations += stream.upper_violations;
        lower_violations += stream.lower_violations;
        if (stream.critical) {
          bound_ms = std::max(bound_ms, rtc::to_ms(stream.detection_bound));
          if (stream.detected) ++detected;
          if (stream.false_conviction) ++false_convictions;
          if (stream.detection_latency) {
            detection_ms.add(rtc::to_ms(*stream.detection_latency));
          }
        }
        // For critical streams the injected silence *fills the dead
        // replica's FIFO by design* (that is the overflow detection rule),
        // so only the selector side witnesses genuine sizing pressure.
        const bool at_capacity =
            stream.critical
                ? stream.selector_max_fill >= stream.selector_capacity
                : stream.replicator_max_fill >= stream.replicator_capacity ||
                      stream.selector_max_fill >= stream.selector_capacity;
        if (at_capacity) ++fills_at_capacity;
      }
    }

    if (!feasible) {
      table.add_row({std::to_string(streams), "infeasible", "-", "-", "-", "-",
                     "-", "-", "-", "-", "-", "-"});
      csv.add_row({std::to_string(streams), std::to_string(runs), "0", "", "",
                   "", "", "", "", "", "", "", "", "", "", "", "", "", "", "",
                   "", ""});
      util::log_line(util::LogLevel::kInfo, "fleet",
                     std::to_string(streams) +
                         " streams infeasible: " + placement_error);
      continue;
    }

    const std::string det =
        detection_ms.empty()
            ? "-"
            : util::format_double(detection_ms.percentile(50.0), 1) + "/" +
                  util::format_double(detection_ms.percentile(95.0), 1) + "/" +
                  util::format_double(detection_ms.percentile(99.0), 1) + " ms";
    table.add_row(
        {std::to_string(streams), util::format_double(tokens_per_sec, 0),
         util::format_si(events_per_sim_sec, "ev/s", 1), det,
         ms(bound_ms), std::to_string(false_convictions),
         std::to_string(fills_at_capacity), std::to_string(writer_blocks),
         util::format_double(max_link_util * 100.0, 2) + " %",
         std::to_string(tiles_used), std::to_string(max_core_load),
         std::to_string(max_tile_mpb)});
    csv.add_row(
        {std::to_string(streams), std::to_string(runs), "1",
         util::format_double(tokens_per_sec, 1),
         util::format_double(events_per_sim_sec, 1),
         detection_ms.empty() ? ""
                              : util::format_double(detection_ms.percentile(50.0), 3),
         detection_ms.empty() ? ""
                              : util::format_double(detection_ms.percentile(95.0), 3),
         detection_ms.empty() ? ""
                              : util::format_double(detection_ms.percentile(99.0), 3),
         util::format_double(bound_ms, 3), std::to_string(detected),
         std::to_string(false_convictions), std::to_string(fills_at_capacity),
         std::to_string(writer_blocks),
         util::format_double(rate_ratio.empty() ? 0.0 : rate_ratio.mean(), 4),
         std::to_string(noc_stalls), util::format_double(max_link_util, 6),
         std::to_string(tiles_used), std::to_string(max_core_load),
         std::to_string(max_tile_mpb), std::to_string(pool_used),
         std::to_string(upper_violations), std::to_string(lower_violations)});
  }

  std::cout << table << "\n";
  std::cout << "Every second stream is duplicated + supervised (paper rig); a\n"
               "60 ms transient silence hits each critical stream at 150 ms.\n"
               "FillsAtCap counts streams whose observed fill consumed the\n"
               "whole Eq. (3)/(5) designed capacity; FalseConv counts healthy\n"
               "replicas convicted under cross-traffic (Eq. (5) margin\n"
               "violated). NoC util is the hottest mesh link's busy fraction.\n\n";
  if (csv.write_file(csv_path)) {
    std::cerr << "Series written to " << csv_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace sccft::bench

int main(int argc, char** argv) {
  sccft::util::CliParser cli("fleet",
                             "Fleet-scale stream saturation sweep on one mesh");
  sccft::util::add_jobs_flag(cli);
  cli.add_int_flag("runs", 3, "fleets per stream count", /*min=*/1);
  cli.add_int_flag("max-streams", 32, "largest stream count to sweep",
                   /*min=*/1, /*max=*/4096);
  cli.add_flag("csv", "/tmp/sccft_fleet.csv", "output CSV path");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }
  return sccft::bench::run(sccft::util::get_jobs(cli),
                           static_cast<int>(cli.get_int("runs")),
                           static_cast<int>(cli.get_int("max-streams")),
                           cli.get("csv"));
}
