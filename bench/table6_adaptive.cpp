// Table 6 (this reproduction's extension): adaptive re-dimensioning under
// long-horizon timing drift — the static design vs. the Layer-8 loop.
//
// The paper dimensions |F_i| (Eq. 3) and D (Eq. 5) once, at design time, and
// the protection rules then treat any excursion past those constants as a
// fault. This campaign runs deployments whose timing has drifted from the
// design PJD model (rate creep or jitter creep on replica 1's output, onset
// mid-run, sustained to the end) and compares three configurations per seed:
//
//   reference — no drift, adaptation off: the golden output-checksum stream;
//   static    — drift, adaptation off: the paper's design. The drifting
//               (but healthy) replica slides into the divergence /
//               overflow rules and is falsely convicted;
//   adaptive  — drift, adaptation on: the OnlineMonitor's weakly-hard (m,K)
//               window turns the drift into graduated kAcceptanceMiss
//               pressure, the AdaptationPolicy widens D / grows the FIFOs
//               through lossless reconfiguration windows, and the run ends
//               with zero false convictions.
//
// The no-loss proof rides the consumer's checksum stream: every adaptive
// run's output must be a prefix of the same seed's reference stream (drift
// slows the pipeline, so fewer tokens arrive — but every token that does
// arrive must be the right one, in the right order, bit-exact). A resize
// that dropped, duplicated, or reordered one token anywhere would break the
// prefix.
//
// stdout is byte-identical at any --jobs value (runs fold in seed order) —
// the campaign-determinism CI lane diffs it directly.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/adpcm/app.hpp"
#include "bench/campaign.hpp"
#include "util/cli.hpp"

namespace {

using namespace sccft;

struct Scenario {
  std::string name;
  apps::DriftSpec drift;
};

/// Per-scenario fold of one configuration's campaign.
struct ConfigFold {
  int false_positive_runs = 0;
  std::uint64_t consumer_tokens = 0;  // summed over runs
  std::uint64_t misses = 0, widens = 0, resizes = 0, proactive = 0;
  std::uint64_t windows = 0, clamped = 0;
  rtc::Tokens max_final_divergence = 0;
  rtc::Tokens max_final_fifo1 = 0;
  int prefix_mismatch_runs = 0;  // adaptive output not a reference prefix
  int empty_output_runs = 0;     // adaptive run consumed no data tokens
};

ConfigFold fold_campaign(const std::vector<bench::CampaignRun>& per_run,
                         const std::vector<bench::CampaignRun>* reference) {
  ConfigFold fold;
  for (std::size_t i = 0; i < per_run.size(); ++i) {
    util::flush_captured(per_run[i].log);
    const apps::ExperimentResult& r = per_run[i].result;
    if (r.false_positive) ++fold.false_positive_runs;
    fold.consumer_tokens += r.consumer_tokens;
    if (r.adaptation) {
      const auto& a = *r.adaptation;
      fold.misses += a.misses_seen;
      fold.widens += a.widen_requests;
      fold.resizes += a.resize_requests;
      fold.proactive += a.proactive_requests;
      fold.windows += a.windows_completed;
      fold.clamped += a.clamped;
      fold.max_final_divergence =
          std::max(fold.max_final_divergence, a.final_divergence);
      fold.max_final_fifo1 = std::max(fold.max_final_fifo1, a.final_fifo1);
    }
    if (reference != nullptr) {
      const auto& got = r.output_checksums;
      const auto& want = (*reference)[i].result.output_checksums;
      if (got.empty()) {
        ++fold.empty_output_runs;
      } else if (got.size() > want.size() ||
                 !std::equal(got.begin(), got.end(), want.begin())) {
        ++fold.prefix_mismatch_runs;
      }
    }
  }
  return fold;
}

std::string fp_cell(int fp, int runs) {
  return std::to_string(fp) + "/" + std::to_string(runs);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("table6_adaptive",
                      "Adaptive re-dimensioning vs. the static design under "
                      "long-horizon timing drift (ADPCM)");
  util::add_jobs_flag(cli);
  cli.add_int_flag("runs", 10, "runs per scenario and configuration", /*min=*/1);
  cli.add_int_flag("periods", 400, "simulated length in producer periods",
                   /*min=*/10);
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage().c_str());
    return 0;
  }
  const int jobs = util::get_jobs(cli);
  const int runs = static_cast<int>(cli.get_int("runs"));
  const auto periods = static_cast<std::uint64_t>(cli.get_int("periods"));

  apps::ExperimentRunner runner(apps::adpcm::make_application());
  const rtc::TimeNs period = runner.app().timing.producer.period;

  constexpr std::uint64_t kDriftAfterPeriods = 120;
  using Target = apps::DriftSpec::Target;
  auto drift = [&](Target target, double rate_mult, rtc::TimeNs extra_jitter) {
    apps::DriftSpec spec;
    spec.target = target;
    spec.after_periods = kDriftAfterPeriods;
    spec.rate_mult = rate_mult;
    spec.extra_jitter = extra_jitter;
    return spec;
  };
  const std::vector<Scenario> scenarios{
      {"R1 rate x1.2", drift(Target::kReplica1, 1.2, 0)},
      {"R1 jitter +2P", drift(Target::kReplica1, 1.0, 2 * period)},
  };

  apps::ExperimentOptions base;
  base.run_periods = periods;
  // Rule (a), the stall rule, measures *absolute* lag — the one symptom of a
  // slow replica that no amount of re-dimensioning can (or should) mask, so
  // the comparison disables it in every configuration and isolates the two
  // sizing-derived rules the adaptation loop actually re-dimensions:
  // replicator overflow (Eq. 3) and selector divergence (Eq. 5).
  base.enable_selector_stall_rule = false;

  const auto wall_start = std::chrono::steady_clock::now();

  // Golden checksum streams: same seeds, no drift, no adaptation.
  const auto reference = bench::run_campaign_runs(runner, base, runs, jobs);
  for (const auto& run : reference) util::flush_captured(run.log);

  util::Table table("Table 6 (adpcm): static vs adaptive under drift (" +
                    std::to_string(runs) + " runs x " + std::to_string(periods) +
                    " periods per cell; drift onset at period " +
                    std::to_string(kDriftAfterPeriods) + ")");
  table.set_header({"Scenario", "Static FP", "Adaptive FP", "Misses", "Widen",
                    "Resize", "Proactive", "Windows", "D final (max)",
                    "|F1| final (max)", "No-loss prefix"});

  bool all_green = true;
  for (const auto& scenario : scenarios) {
    auto static_options = base;
    static_options.drift = scenario.drift;
    const auto static_runs =
        bench::run_campaign_runs(runner, static_options, runs, jobs);
    const ConfigFold static_fold = fold_campaign(static_runs, nullptr);

    auto adaptive_options = static_options;
    adaptive_options.online_monitor = true;
    adaptive_options.adaptation.enabled = true;
    const auto adaptive_runs =
        bench::run_campaign_runs(runner, adaptive_options, runs, jobs);
    const ConfigFold adaptive_fold = fold_campaign(adaptive_runs, &reference);

    const bool green = adaptive_fold.false_positive_runs == 0 &&
                       adaptive_fold.prefix_mismatch_runs == 0 &&
                       adaptive_fold.empty_output_runs == 0;
    all_green = all_green && green;
    table.add_row(
        {scenario.name, fp_cell(static_fold.false_positive_runs, runs),
         fp_cell(adaptive_fold.false_positive_runs, runs),
         std::to_string(adaptive_fold.misses), std::to_string(adaptive_fold.widens),
         std::to_string(adaptive_fold.resizes),
         std::to_string(adaptive_fold.proactive),
         std::to_string(adaptive_fold.windows),
         std::to_string(adaptive_fold.max_final_divergence),
         std::to_string(adaptive_fold.max_final_fifo1),
         green ? "OK"
               : "FAIL (" + std::to_string(adaptive_fold.prefix_mismatch_runs) +
                     " mismatch, " + std::to_string(adaptive_fold.empty_output_runs) +
                     " empty)"});
  }

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cerr << "table6_adaptive: " << scenarios.size() << " scenarios x 2 configs x "
            << runs << " runs in "
            << static_cast<long long>(wall.count() * 1000.0) << " ms with --jobs "
            << jobs << "\n";

  std::cout << table << "\n";
  std::cout << "Static FP counts runs where the paper's fixed |F|/D design "
               "convicted a replica with no fault injected (the drifting "
               "replica is healthy, merely mis-modeled). Adaptive FP must be "
               "0: the weakly-hard window absorbs the early misses, the "
               "policy widens D and grows the FIFOs through quiesced "
               "reconfiguration windows, and the final column proves every "
               "consumed token matched the drift-free reference stream "
               "(prefix-exact), i.e. no resize lost, duplicated, or "
               "reordered a single token.\n";

  if (!all_green) {
    std::cerr << "FAILED: an adaptive run falsely convicted, lost output, or "
                 "diverged from the reference stream\n";
    return 1;
  }
  return 0;
}
