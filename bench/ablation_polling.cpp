// Ablation B: distance-function polling-interval sweep (DESIGN.md Section 5,
// item 2 — the paper's "Brief Discussion" trade-off).
//
// The baseline's detection latency is quantized by its polling interval;
// finer polling costs proportionally more timer work. Our approach needs no
// timer, so its latency is constant across the sweep.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "bench/campaign.hpp"

int main() {
  using namespace sccft;
  apps::ExperimentRunner runner(
      apps::minimize_replica_jitter(apps::adpcm::make_application()));

  apps::ExperimentOptions base;
  base.run_periods = 240;
  base.fault_after_periods = 150;
  base.attach_baseline_monitors = true;

  util::Table table(
      "Ablation B: distance-function polling interval (ADPCM, minimized jitter, 20 runs)");
  table.set_header({"Polling interval", "DF latency (min/mean/max)",
                    "Ours (min/mean/max)", "Timer ticks/sec"});

  for (double poll_ms : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    auto options = base;
    options.monitor_polling_interval = rtc::from_ms(poll_ms);
    const auto campaign =
        bench::run_fault_campaign(runner, options, ft::ReplicaIndex::kReplica1);
    table.add_row({util::format_double(poll_ms, 1) + " ms",
                   bench::stat_row(campaign.distance_latency_ms),
                   bench::stat_row(campaign.first_latency_ms),
                   util::format_double(1000.0 / poll_ms, 0)});
  }
  std::cout << table << "\n";
  std::cout << "The baseline's latency tracks the polling interval (plus the model's\n"
               "max gap); our detection latency is identical in every row because the\n"
               "framework performs no runtime timekeeping at all.\n";
  return 0;
}
