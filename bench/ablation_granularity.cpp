// Ablation F: token granularity (paper Section 4.2: "it is possible to
// reduce token sizes by restructuring the application: i.e., split input
// frames into parts ... such adjustments depend on the application and the
// fault-detection latency requirements").
//
// Restructures the ADPCM application at several granularities — the same
// audio throughput carried as fewer/larger or more/smaller tokens (period
// and sample count scale together) — and measures detection latency.
// Expected shape: latency scales linearly with the token period (detection
// costs a fixed number of *tokens*), while bytes/second stay constant.
#include <iostream>

#include "apps/adpcm/adpcm_codec.hpp"
#include "apps/common/generators.hpp"
#include "bench/campaign.hpp"
#include "util/csv.hpp"

namespace {

using namespace sccft;

/// ADPCM variant: `samples` per token at `period_ms` (both scaled from the
/// paper's 1536 @ 6.3 ms so the audio rate is constant).
apps::ApplicationSpec make_scaled_adpcm(int samples, double period_ms) {
  apps::ApplicationSpec app;
  app.name = "adpcm" + std::to_string(samples);
  app.topology = apps::ReplicaTopology::kTwoStage;
  app.input_token_bytes = samples * 2;
  app.output_token_bytes = samples * 2;
  app.stage_compute_time = rtc::from_ms(period_ms / 32.0);

  const double scale = period_ms / 6.3;
  app.timing.producer = rtc::PJD::from_ms(period_ms, 0.1 * scale, period_ms);
  app.timing.replica1_in = rtc::PJD::from_ms(period_ms, 0.8 * scale, period_ms);
  app.timing.replica1_out = rtc::PJD::from_ms(period_ms, 0.8 * scale, period_ms);
  app.timing.replica2_in = rtc::PJD::from_ms(period_ms, 2.0 * period_ms, period_ms);
  app.timing.replica2_out = rtc::PJD::from_ms(period_ms, 2.0 * period_ms, period_ms);
  app.timing.consumer = rtc::PJD::from_ms(period_ms, 0.1 * scale, period_ms);

  app.make_input = [samples](std::uint64_t index) -> apps::Bytes {
    return apps::samples_to_bytes(apps::generate_audio(
        static_cast<std::size_t>(samples),
        index * static_cast<std::uint64_t>(samples), 2014));
  };
  app.stage1 = [](apps::BytesView input) -> apps::Bytes {
    return apps::adpcm::encode(
        apps::bytes_to_samples(apps::Bytes(input.begin(), input.end())));
  };
  app.stage2 = [](apps::BytesView encoded) -> apps::Bytes {
    return apps::samples_to_bytes(apps::adpcm::decode(encoded));
  };
  return app;
}

}  // namespace

int main() {
  util::Table table(
      "Ablation F: token granularity at constant audio rate (ADPCM, 20 runs each)");
  table.set_header({"Samples/token", "Period", "D", "Detection latency (min/mean/max)",
                    "Bound (selector)"});
  util::CsvWriter csv({"samples", "period_ms", "D", "mean_latency_ms", "bound_ms"});

  for (const auto& [samples, period_ms] :
       {std::pair{384, 1.575}, {768, 3.15}, {1536, 6.3}, {3072, 12.6}}) {
    apps::ExperimentRunner runner(make_scaled_adpcm(samples, period_ms));
    apps::ExperimentOptions options;
    options.run_periods = 260;
    options.fault_after_periods = 160;
    const auto campaign =
        bench::run_fault_campaign(runner, options, ft::ReplicaIndex::kReplica2);

    const auto& sizing = campaign.sizing;
    table.add_row({std::to_string(samples),
                   util::format_double(period_ms, 2) + " ms",
                   std::to_string(sizing.selector_threshold),
                   bench::stat_row(campaign.first_latency_ms),
                   util::format_double(rtc::to_ms(sizing.selector_latency_bound), 1) +
                       " ms"});
    csv.add_row({std::to_string(samples), util::format_double(period_ms, 3),
                 std::to_string(sizing.selector_threshold),
                 campaign.first_latency_ms.empty()
                     ? "-1"
                     : util::format_double(campaign.first_latency_ms.mean(), 3),
                 util::format_double(rtc::to_ms(sizing.selector_latency_bound), 3)});
  }
  std::cout << table << "\n";
  if (csv.write_file("/tmp/sccft_ablation_granularity.csv")) {
    std::cout << "Series written to /tmp/sccft_ablation_granularity.csv\n";
  }
  std::cout
      << "Same audio throughput, different token sizes: D is granularity-\n"
         "invariant (the jitter/period ratio is fixed), so detection costs a\n"
         "fixed number of tokens and the latency scales linearly with the\n"
         "token period — halve the tokens, halve the detection latency, at the\n"
         "cost of twice the arbitration executions per second. Exactly the\n"
         "paper's restructuring trade-off.\n";
  return 0;
}
