// Figure 3 (this repo's extension figure): detection latency and design-time
// quantities as a function of the slow replica's jitter.
//
// Sweeps replica 2's jitter from 0.5 to 3 periods on an ADPCM-rate synthetic
// stream and reports, per point: Eq. (5)'s D, the Eq. (3) capacity |R2|, the
// computed latency bounds, and the measured detection latency (20 runs).
// Shows the framework's central trade-off: tolerating more legal timing
// diversity (design diversity between replicas) costs detection speed,
// linearly and predictably. Emits both an ASCII table and CSV for plotting.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "bench/campaign.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sccft;
  const int jobs = util::parse_jobs_or_exit(
      argc, argv, "figure3_jitter_sweep",
      "Detection latency vs. replica-2 jitter (20-run campaigns per point)");
  util::Table table(
      "Figure 3: detection latency vs. replica-2 jitter (ADPCM rate, 20 runs/point)");
  table.set_header({"J2 (ms)", "D", "|R2|", "Replicator bound", "Selector bound",
                    "Measured mean", "Measured max"});
  util::CsvWriter csv({"jitter_ms", "D", "R2_capacity", "replicator_bound_ms",
                       "selector_bound_ms", "measured_mean_ms", "measured_max_ms"});

  for (double j2 : {3.15, 6.3, 9.45, 12.6, 15.75, 18.9}) {
    auto app = apps::adpcm::make_application();
    app.timing.replica2_in = rtc::PJD::from_ms(6.3, j2, 6.3);
    app.timing.replica2_out = rtc::PJD::from_ms(6.3, j2, 6.3);
    apps::ExperimentRunner runner(std::move(app));

    apps::ExperimentOptions options;
    options.run_periods = 260;
    options.fault_after_periods = 160;
    const auto campaign = bench::run_fault_campaign(
        runner, options, ft::ReplicaIndex::kReplica2, bench::kRuns, jobs);

    const auto& sizing = campaign.sizing;
    const double mean =
        campaign.first_latency_ms.empty() ? 0.0 : campaign.first_latency_ms.mean();
    const double max =
        campaign.first_latency_ms.empty() ? 0.0 : campaign.first_latency_ms.max();
    table.add_row({util::format_double(j2, 2), std::to_string(sizing.selector_threshold),
                   std::to_string(sizing.replicator_capacity2),
                   util::format_double(rtc::to_ms(sizing.replicator_overflow_bound), 1) + " ms",
                   util::format_double(rtc::to_ms(sizing.selector_latency_bound), 1) + " ms",
                   util::format_double(mean, 1) + " ms",
                   util::format_double(max, 1) + " ms"});
    csv.add_row({util::format_double(j2, 2), std::to_string(sizing.selector_threshold),
                 std::to_string(sizing.replicator_capacity2),
                 util::format_double(rtc::to_ms(sizing.replicator_overflow_bound), 3),
                 util::format_double(rtc::to_ms(sizing.selector_latency_bound), 3),
                 util::format_double(mean, 3), util::format_double(max, 3)});
  }
  std::cout << table << "\n";
  const std::string csv_path = "/tmp/sccft_figure3.csv";
  if (csv.write_file(csv_path)) {
    std::cout << "Series written to " << csv_path << " for plotting.\n";
  }
  std::cout << "More jitter tolerance (design diversity) => larger D and |R2| =>\n"
               "proportionally slower worst-case detection; measured latencies track\n"
               "the bounds with consistent slack.\n";
  return 0;
}
