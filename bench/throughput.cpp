// Kernel-throughput bench: simulated-events/sec and tokens/sec across three
// workload shapes, persisted as BENCH_throughput.json so the perf trajectory
// of the DES kernel is visible across PRs.
//
//   * single_stream — one producer -> FIFO -> consumer pipe pushing 3 KB
//     payloads; pure kernel churn (schedule/dispatch, token copies, channel
//     wakes) with no application work.
//   * table2_mix   — one fault-free duplicated run per paper application
//     (ADPCM, MJPEG, H.264) through the full experiment harness, transform
//     caches pre-warmed so codec work is memoized and the simulator dominates.
//   * chaos_storm  — chaos::run_storm over a seed range of default storms:
//     the fault-injection soak path (supervisor, flight recorder, oracles'
//     observation capture) that the 500-run soak lanes hammer hardest.
//
// Wall time is the min over --reps repetitions; event and token counts are
// deterministic and asserted identical across reps. The JSON snapshot uses a
// fixed key order with one workload per line, so the --compare mode (and the
// CI bench lane) can parse it without a JSON library.
//
// --compare FILE re-runs the bench and prints a GitHub `::warning::` line for
// every workload whose events/sec fell more than 10% below the committed
// snapshot. It always exits 0: the lane warns, it does not gate — wall-clock
// numbers are machine-dependent.
#include <algorithm>
#include <chrono>
#include <memory>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "chaos/runner.hpp"
#include "chaos/storm.hpp"
#include "kpn/channel.hpp"
#include "kpn/network.hpp"
#include "kpn/token.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"

namespace {

using sccft::rtc::TimeNs;

struct WorkloadSample {
  std::uint64_t events = 0;  ///< simulator events dispatched (deterministic)
  std::uint64_t tokens = 0;  ///< tokens delivered to consumers (deterministic)
};

struct WorkloadResult {
  std::string name;
  std::uint64_t events = 0;
  std::uint64_t tokens = 0;
  double wall_ms = 0.0;  ///< best-of-reps
};

/// Runs `body` --reps times, checks the deterministic counts agree, and
/// returns the best wall time.
template <typename Body>
WorkloadResult measure(const std::string& name, int reps, Body&& body) {
  WorkloadResult result;
  result.name = name;
  double best = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const WorkloadSample sample = body();
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    if (rep == 0) {
      result.events = sample.events;
      result.tokens = sample.tokens;
    } else {
      // The kernel contract: identical inputs give identical schedules.
      SCCFT_ASSERT(sample.events == result.events);
      SCCFT_ASSERT(sample.tokens == result.tokens);
    }
    if (best < 0.0 || wall.count() < best) best = wall.count();
  }
  result.wall_ms = best;
  return result;
}

// --- workload 1: single stream ---------------------------------------------

WorkloadSample run_single_stream(std::uint64_t token_count) {
  sccft::sim::Simulator sim;
  sccft::kpn::Network net(sim);
  auto& fifo = net.add_fifo("pipe", 8);
  constexpr TimeNs kPeriod = 1'000;
  net.add_process("producer", sccft::scc::CoreId{0}, 1,
                  [&](sccft::kpn::ProcessContext& ctx) -> sccft::sim::Task {
                    for (std::uint64_t k = 0; k < token_count; ++k) {
                      std::vector<std::uint8_t> payload(3 * 1024,
                                                        static_cast<std::uint8_t>(k));
                      co_await sccft::kpn::write(
                          fifo, sccft::kpn::Token(std::move(payload), k, ctx.now()));
                      co_await ctx.delay(kPeriod);
                    }
                  });
  std::uint64_t consumed = 0;
  net.add_process("consumer", sccft::scc::CoreId{1}, 2,
                  [&](sccft::kpn::ProcessContext& ctx) -> sccft::sim::Task {
                    while (true) {
                      (void)co_await sccft::kpn::read(fifo);
                      ++consumed;
                      co_await ctx.delay(kPeriod - 200);
                    }
                  });
  net.run_until(static_cast<TimeNs>(token_count + 16) * kPeriod);
  SCCFT_ASSERT(consumed == token_count);
  return {sim.events_processed(), consumed};
}

// --- workload 2: table2 application mix -------------------------------------

WorkloadSample run_table2_mix(
    std::vector<std::unique_ptr<sccft::apps::ExperimentRunner>>& runners,
    int runs_per_app) {
  WorkloadSample sample;
  for (auto& runner_ptr : runners) {
    auto& runner = *runner_ptr;
    for (int run = 1; run <= runs_per_app; ++run) {
      sccft::apps::ExperimentOptions options;
      options.seed = static_cast<std::uint64_t>(run);
      options.run_periods = 240;
      const auto result = runner.run(options);
      sample.events += result.events_processed;
      sample.tokens += result.consumer_tokens;
    }
  }
  return sample;
}

// --- workload 3: chaos storm ------------------------------------------------

WorkloadSample run_chaos_storms(const std::vector<sccft::chaos::StormPlan>& plans) {
  WorkloadSample sample;
  for (const auto& plan : plans) {
    const auto obs = sccft::chaos::run_storm(plan);
    SCCFT_ASSERT(!obs.contract_violation.has_value());
    sample.events += obs.events_processed;
    sample.tokens += obs.consumed_seqs.size();
  }
  return sample;
}

// --- snapshot I/O -----------------------------------------------------------

double events_per_sec(const WorkloadResult& r) {
  return static_cast<double>(r.events) / (r.wall_ms / 1000.0);
}
double tokens_per_sec(const WorkloadResult& r) {
  return static_cast<double>(r.tokens) / (r.wall_ms / 1000.0);
}

std::string render_json(const std::vector<WorkloadResult>& results) {
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char line[512];
    std::snprintf(line, sizeof line,
                  "    {\"name\": \"%s\", \"events\": %llu, \"tokens\": %llu, "
                  "\"wall_ms\": %.3f, \"events_per_sec\": %.0f, "
                  "\"tokens_per_sec\": %.0f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.tokens), r.wall_ms,
                  events_per_sec(r), tokens_per_sec(r),
                  i + 1 < results.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  return os.str();
}

/// Pulls (name, events_per_sec) pairs back out of a snapshot written by
/// render_json: one workload object per line, fixed key order.
std::vector<std::pair<std::string, double>> parse_snapshot(const std::string& path) {
  std::vector<std::pair<std::string, double>> parsed;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto name_key = line.find("\"name\": \"");
    const auto rate_key = line.find("\"events_per_sec\": ");
    if (name_key == std::string::npos || rate_key == std::string::npos) continue;
    const auto name_start = name_key + 9;
    const auto name_end = line.find('"', name_start);
    if (name_end == std::string::npos) continue;
    parsed.emplace_back(line.substr(name_start, name_end - name_start),
                        std::strtod(line.c_str() + rate_key + 18, nullptr));
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  sccft::util::CliParser cli(
      "throughput",
      "DES-kernel throughput over three workload shapes; writes a "
      "BENCH_throughput.json snapshot of simulated-events/sec and tokens/sec");
  cli.add_int_flag("reps", 3, "repetitions per workload (wall time = best-of)",
                   /*min=*/1);
  cli.add_flag("out", "BENCH_throughput.json",
               "snapshot path (empty = don't write)");
  cli.add_flag("compare", "",
               "committed snapshot to compare against: warn (::warning::, "
               "exit 0) when events/sec regresses > 10%");
  cli.add_flag("quick", "false",
               "shrink every workload for a smoke-test run (ctest)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage().c_str());
    return 0;
  }
  const bool quick = cli.get_bool("quick");
  const int reps = quick ? 1 : static_cast<int>(cli.get_int("reps"));
  SCCFT_EXPECTS(reps >= 1);

  const std::uint64_t stream_tokens = quick ? 5'000 : 50'000;
  const int runs_per_app = quick ? 1 : 4;
  const int storm_count = quick ? 5 : 60;

  // Pre-warm the per-app transform caches (outside the timed region) so the
  // table2 workload measures the simulator, not first-touch codec encodes.
  std::vector<std::unique_ptr<sccft::apps::ExperimentRunner>> runners;
  runners.push_back(std::make_unique<sccft::apps::ExperimentRunner>(
      sccft::apps::adpcm::make_application()));
  runners.push_back(std::make_unique<sccft::apps::ExperimentRunner>(
      sccft::apps::mjpeg::make_application()));
  runners.push_back(std::make_unique<sccft::apps::ExperimentRunner>(
      sccft::apps::h264::make_application()));
  (void)run_table2_mix(runners, runs_per_app);

  // Plan generation is seeded-random but not kernel work: keep it untimed.
  sccft::chaos::StormGenerator generator;
  std::vector<sccft::chaos::StormPlan> plans;
  plans.reserve(static_cast<std::size_t>(storm_count));
  for (int seed = 1; seed <= storm_count; ++seed) {
    plans.push_back(generator.generate(static_cast<std::uint64_t>(seed)));
  }

  std::vector<WorkloadResult> results;
  results.push_back(measure("single_stream", reps,
                            [&] { return run_single_stream(stream_tokens); }));
  results.push_back(measure("table2_mix", reps,
                            [&] { return run_table2_mix(runners, runs_per_app); }));
  results.push_back(
      measure("chaos_storm", reps, [&] { return run_chaos_storms(plans); }));

  std::printf("%-14s %12s %10s %9s %14s %14s\n", "workload", "events", "tokens",
              "wall_ms", "events/sec", "tokens/sec");
  for (const auto& r : results) {
    std::printf("%-14s %12llu %10llu %9.3f %14.0f %14.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.tokens), r.wall_ms,
                events_per_sec(r), tokens_per_sec(r));
  }

  const std::string json = render_json(results);
  const std::string out_path = cli.get("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out || !(out << json)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("snapshot written to %s\n", out_path.c_str());
  }

  const std::string compare_path = cli.get("compare");
  if (!compare_path.empty()) {
    const auto committed = parse_snapshot(compare_path);
    if (committed.empty()) {
      std::printf("::warning::%s has no parsable workloads; skipping comparison\n",
                  compare_path.c_str());
      return 0;
    }
    for (const auto& [name, committed_rate] : committed) {
      const auto it = std::find_if(results.begin(), results.end(),
                                   [&](const auto& r) { return r.name == name; });
      if (it == results.end()) {
        std::printf("::warning::workload %s in %s no longer exists\n", name.c_str(),
                    compare_path.c_str());
        continue;
      }
      const double fresh_rate = events_per_sec(*it);
      if (fresh_rate < 0.9 * committed_rate) {
        std::printf("::warning::throughput regression on %s: %.0f events/sec vs "
                    "committed %.0f (-%.1f%%)\n",
                    name.c_str(), fresh_rate, committed_rate,
                    100.0 * (1.0 - fresh_rate / committed_rate));
      } else {
        std::printf("%s: %.0f events/sec vs committed %.0f — ok\n", name.c_str(),
                    fresh_rate, committed_rate);
      }
    }
  }
  return 0;
}
