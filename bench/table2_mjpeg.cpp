// Regenerates the paper's Table 2, MJPEG decoder block.
#include "apps/mjpeg/app.hpp"
#include "bench/table2_common.hpp"

int main() {
  sccft::bench::run_table2(sccft::apps::mjpeg::make_application());
  return 0;
}
