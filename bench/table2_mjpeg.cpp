// Regenerates the paper's Table 2, MJPEG decoder block.
#include "apps/mjpeg/app.hpp"
#include "bench/table2_common.hpp"

int main(int argc, char** argv) {
  const auto cli = sccft::bench::parse_table2_cli(
      argc, argv, "table2_mjpeg", "Paper Table 2, MJPEG block (20-run campaigns)");
  sccft::bench::run_table2(sccft::apps::mjpeg::make_application(), cli.jobs,
                           cli.online_monitor);
  return 0;
}
