// Regenerates the paper's Table 2, MJPEG decoder block.
#include "apps/mjpeg/app.hpp"
#include "bench/table2_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const int jobs = sccft::util::parse_jobs_or_exit(
      argc, argv, "table2_mjpeg", "Paper Table 2, MJPEG block (20-run campaigns)");
  sccft::bench::run_table2(sccft::apps::mjpeg::make_application(), jobs);
  return 0;
}
