// Chaos soak driver: randomized multi-fault storms under invariant oracles,
// with automatic shrinking of the first failure to a minimal reproducer.
//
//   chaos_soak --runs 200 --jobs 8            # the soak itself
//   chaos_soak --replay /tmp/artifact.txt     # re-execute a failure bundle
//   chaos_soak --plant-bug drop-after-second-restart --runs 64
//                                             # end-to-end pipeline check
//   chaos_soak --control-plane --runs 200     # extended taxonomy: storms also
//                                             # attack the supervisor/counters/
//                                             # trace sink, with the watchdog +
//                                             # scrubber defenses armed
//   chaos_soak --control-demo                 # ablation: each control-plane
//                                             # storm clean with defenses on,
//                                             # violating with one defense off
//   chaos_soak --reconfigure --runs 50        # periodic live-resize windows
//                                             # (adapt/) under storm fire, with
//                                             # an extra template landing faults
//                                             # inside the quiesce->resume gap
//
// Every run is a pure function of its seed (seed0 + index), so stdout and
// the CSV are byte-identical for any --jobs value. Wall-clock time, file
// paths, and progress chatter go to stderr, which is allowed to vary.
// --minutes caps wall time by stopping BETWEEN blocks of runs: the runs that
// did execute are still deterministic, but how many fit the budget is not —
// only --runs-bound soaks are byte-diffable end to end.
//
// On the first (lowest-index) violating run the driver writes a failure
// artifact (seed, fault plan, oracle verdicts, flight-recorder dump,
// registry snapshot), ddmin-shrinks the plan to a 1-minimal reproducer,
// appends it to the artifact, and re-validates the artifact by replaying it
// through the same parse -> run -> oracle path `--replay` uses.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/artifact.hpp"
#include "chaos/oracle.hpp"
#include "chaos/runner.hpp"
#include "chaos/shrink.hpp"
#include "chaos/storm.hpp"
#include "ft/fault_plan.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace sccft::bench {
namespace {

int restarts_of(const chaos::RunObservation& obs) {
  return static_cast<int>(
      std::count_if(obs.transitions.begin(), obs.transitions.end(),
                    [](const ft::HealthTransition& t) {
                      return t.to == ft::ReplicaHealth::kRestarting;
                    }));
}

struct SoakCell {
  chaos::StormPlan plan;
  chaos::RunObservation obs;
  std::vector<chaos::Violation> violations;
  std::string log;
  bool executed = false;
};

/// Re-runs an artifact's plan (the shrunk one when present) and reports
/// whether any of the recorded violation codes come back.
int replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "chaos_soak: cannot open artifact " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  chaos::FailureArtifact artifact;
  try {
    artifact = chaos::parse_artifact(text.str());
  } catch (const util::ContractViolation& violation) {
    std::cerr << "chaos_soak: malformed artifact: " << violation.what() << "\n";
    return 2;
  }

  chaos::StormPlan plan;
  plan.seed = artifact.seed;
  plan.run_length = artifact.run_length;
  plan.faults = artifact.shrunk ? *artifact.shrunk : artifact.plan;
  chaos::RunOptions options;
  options.planted = artifact.planted;
  options.control_plane = artifact.control_plane;
  options.reconfig = artifact.reconfig;

  std::cout << "replaying seed " << plan.seed << " with " << plan.faults.size()
            << " fault(s) (" << (artifact.shrunk ? "shrunk" : "full")
            << " plan, planted bug: " << chaos::to_string(artifact.planted)
            << ", defenses: "
            << (options.control_plane.enabled
                    ? std::string(options.control_plane.watchdog ? "watchdog" : "no-watchdog") +
                          "/" + (options.control_plane.scrubber ? "scrubber" : "no-scrubber")
                    : std::string("off"))
            << ", reconfigure: " << (options.reconfig.enabled ? "on" : "off")
            << ")\n";
  const chaos::RunObservation golden =
      chaos::run_golden(plan.seed, plan.run_length, options.reconfig);
  const chaos::RunObservation obs = chaos::run_storm(plan, options);
  const std::vector<chaos::Violation> found =
      chaos::check_invariants(plan, obs, golden);

  bool reproduced = false;
  for (const chaos::Violation& violation : found) {
    const bool recorded =
        std::any_of(artifact.violations.begin(), artifact.violations.end(),
                    [&](const chaos::Violation& original) {
                      return original.code == violation.code;
                    });
    std::cout << "  " << chaos::to_string(violation.code) << ": "
              << violation.detail << (recorded ? "" : "  [new]") << "\n";
    reproduced = reproduced || recorded;
  }
  std::cout << (reproduced ? "REPRODUCED\n" : "did NOT reproduce\n");
  return reproduced ? 0 : 1;
}

int soak(int runs, int jobs, double minutes, std::uint64_t seed0,
         chaos::PlantedBug planted, const chaos::ControlPlaneOptions& cp,
         const chaos::ReconfigOptions& rc, bool shrink,
         const std::string& csv_path, const std::string& artifact_path) {
  SCCFT_EXPECTS(runs >= 1);
  chaos::StormConfig storm_config;
  storm_config.control_plane = cp.enabled;
  storm_config.reconfigure = rc.enabled;
  const chaos::StormGenerator generator{storm_config};
  chaos::RunOptions options;
  options.planted = planted;
  options.control_plane = cp;
  options.reconfig = rc;

  std::vector<SoakCell> cells(static_cast<std::size_t>(runs));
  const auto wall_start = std::chrono::steady_clock::now();
  // Blocks keep --minutes honest without a mid-run abort: the budget is
  // checked only at block boundaries, so every executed run is complete.
  const int block = std::max(4 * jobs, 16);
  int scheduled = 0;
  while (scheduled < runs) {
    if (minutes > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - wall_start;
      if (elapsed.count() >= minutes * 60.0) break;
    }
    const int n = std::min(block, runs - scheduled);
    util::parallel_for_ordered(n, jobs, [&, scheduled](int i) {
      util::ScopedLogCapture capture;
      SoakCell& cell = cells[static_cast<std::size_t>(scheduled + i)];
      cell.plan = generator.generate(seed0 + static_cast<std::uint64_t>(scheduled + i));
      const chaos::RunObservation golden =
          chaos::run_golden(cell.plan.seed, cell.plan.run_length, rc);
      cell.obs = chaos::run_storm(cell.plan, options);
      cell.violations = chaos::check_invariants(cell.plan, cell.obs, golden);
      cell.executed = true;
      cell.log = capture.take();
    });
    scheduled += n;
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cerr << "chaos soak: " << scheduled << "/" << runs << " runs in "
            << static_cast<long long>(wall.count() * 1000.0)
            << " ms with --jobs " << jobs << "\n";
  for (int i = 0; i < scheduled; ++i) {
    util::flush_captured(cells[static_cast<std::size_t>(i)].log);
  }

  // Fold in index order: everything below is a pure function of the cells.
  int clean = 0, lossless = 0;
  std::uint64_t watchdog_resets = 0, scrub_repairs = 0;
  std::uint64_t reconfig_windows = 0, reconfig_clamped = 0;
  std::map<std::string, int> code_histogram;
  std::optional<int> first_violating;
  util::CsvWriter csv({"run", "seed", "faults", "lossless", "consumed",
                       "restarts", "heartbeats", "wd_resets", "scrub_repairs",
                       "violations", "first_code"});
  csv.add_comment("chaos soak, seed0 " + std::to_string(seed0) +
                  ", planted bug " + chaos::to_string(planted) +
                  ", control plane " + (cp.enabled ? "on" : "off"));
  for (int i = 0; i < scheduled; ++i) {
    const SoakCell& cell = cells[static_cast<std::size_t>(i)];
    const bool is_lossless = chaos::plan_is_lossless(cell.plan.faults);
    if (is_lossless) ++lossless;
    watchdog_resets += cell.obs.watchdog_resets;
    scrub_repairs += cell.obs.scrub_repairs;
    reconfig_windows += cell.obs.reconfig_windows;
    reconfig_clamped += cell.obs.reconfig_clamped;
    if (cell.violations.empty()) {
      ++clean;
    } else {
      if (!first_violating) first_violating = i;
      for (const chaos::Violation& violation : cell.violations) {
        ++code_histogram[chaos::to_string(violation.code)];
      }
    }
    csv.add_row({std::to_string(i), std::to_string(cell.plan.seed),
                 std::to_string(cell.plan.faults.size()),
                 is_lossless ? "1" : "0",
                 std::to_string(cell.obs.consumed_seqs.size()),
                 std::to_string(restarts_of(cell.obs)),
                 std::to_string(cell.obs.heartbeats),
                 std::to_string(cell.obs.watchdog_resets),
                 std::to_string(cell.obs.scrub_repairs),
                 std::to_string(cell.violations.size()),
                 cell.violations.empty()
                     ? ""
                     : chaos::to_string(cell.violations.front().code)});
  }

  util::Table table("Chaos soak: " + std::to_string(scheduled) +
                    " randomized multi-fault storms (seed0 " +
                    std::to_string(seed0) + ", planted bug " +
                    chaos::to_string(planted) + ")");
  table.set_header({"Metric", "Value"});
  table.add_row({"runs executed", std::to_string(scheduled)});
  table.add_row({"clean runs", std::to_string(clean)});
  table.add_row({"violating runs", std::to_string(scheduled - clean)});
  table.add_row({"lossless plans", std::to_string(lossless)});
  if (cp.enabled) {
    table.add_row({"watchdog resets", std::to_string(watchdog_resets)});
    table.add_row({"scrub repairs", std::to_string(scrub_repairs)});
  }
  if (rc.enabled) {
    table.add_row({"reconfig windows", std::to_string(reconfig_windows)});
    table.add_row({"reconfig clamped", std::to_string(reconfig_clamped)});
  }
  for (const auto& [code, count] : code_histogram) {
    table.add_row({"  " + code, std::to_string(count)});
  }
  std::cout << table << "\n";

  if (csv.write_file(csv_path)) {
    std::cerr << "Series written to " << csv_path << "\n";
  }

  if (!first_violating) {
    std::cout << "all runs clean: no artifact produced\n";
    return 0;
  }

  // --- failure artifact + shrink + self-replay ------------------------------
  const SoakCell& failing = cells[static_cast<std::size_t>(*first_violating)];
  chaos::FailureArtifact artifact = chaos::make_artifact(
      failing.plan, options, failing.obs, failing.violations);
  std::cout << "first violation at run " << *first_violating << " (seed "
            << failing.plan.seed << ", " << failing.plan.faults.size()
            << " faults):\n";
  for (const chaos::Violation& violation : failing.violations) {
    std::cout << "  " << chaos::to_string(violation.code) << ": "
              << violation.detail << "\n";
  }

  if (shrink) {
    const chaos::ShrinkResult minimal =
        chaos::shrink_plan(failing.plan, options, failing.violations);
    artifact.shrunk = minimal.faults;
    std::cout << "shrunk " << failing.plan.faults.size() << " -> "
              << minimal.faults.size() << " fault(s) in " << minimal.probes
              << " probes\n";
    for (const ft::FaultSpec& spec : minimal.faults) {
      std::cout << "  " << ft::serialize(spec) << "\n";
    }
  }

  std::ofstream out(artifact_path);
  if (out) {
    out << chaos::serialize(artifact);
    std::cerr << "Artifact written to " << artifact_path << "\n";
  } else {
    std::cerr << "chaos_soak: cannot write artifact " << artifact_path << "\n";
  }

  // Round-trip the artifact through the replay path to prove the bundle is
  // self-contained. Deterministic, so it belongs on stdout.
  const chaos::FailureArtifact parsed =
      chaos::parse_artifact(chaos::serialize(artifact));
  chaos::StormPlan replay_plan;
  replay_plan.seed = parsed.seed;
  replay_plan.run_length = parsed.run_length;
  replay_plan.faults = parsed.shrunk ? *parsed.shrunk : parsed.plan;
  const chaos::RunObservation golden =
      chaos::run_golden(replay_plan.seed, replay_plan.run_length, parsed.reconfig);
  chaos::RunOptions replay_options;
  replay_options.planted = parsed.planted;
  replay_options.control_plane = parsed.control_plane;
  replay_options.reconfig = parsed.reconfig;
  const chaos::RunObservation obs = chaos::run_storm(replay_plan, replay_options);
  const std::vector<chaos::Violation> found =
      chaos::check_invariants(replay_plan, obs, golden);
  const bool reproduced =
      std::any_of(found.begin(), found.end(), [&](const chaos::Violation& v) {
        return std::any_of(parsed.violations.begin(), parsed.violations.end(),
                           [&](const chaos::Violation& original) {
                             return original.code == v.code;
                           });
      });
  std::cout << "artifact replay: " << (reproduced ? "REPRODUCED" : "LOST") << "\n";
  return reproduced ? 1 : 3;  // violations found: nonzero either way
}

// ---------------------------------------------------------------------------
// --control-demo: the last-line-defense ablation study
// ---------------------------------------------------------------------------

/// Runs one single-fault control-plane plan under the given defense config
/// and returns the oracle verdicts.
std::vector<chaos::Violation> demo_run(const ft::FaultSpec& spec,
                                       const chaos::ControlPlaneOptions& cp) {
  chaos::StormPlan plan;
  plan.seed = 7;  // rig seed (timing jitter); the fault's own rng uses spec.seed
  plan.run_length = rtc::from_ms(2000.0);
  plan.faults = {spec};
  chaos::RunOptions options;
  options.control_plane = cp;
  const chaos::RunObservation golden =
      chaos::run_golden(plan.seed, plan.run_length);
  const chaos::RunObservation obs = chaos::run_storm(plan, options);
  return chaos::check_invariants(plan, obs, golden);
}

/// Three planted control-plane storms, each run twice: with the full defense
/// stack (must pass every oracle) and with exactly the defense that guards it
/// disabled (must fail the named oracle). Exit 0 only if all six runs behave
/// as designed.
int control_demo() {
  chaos::ControlPlaneOptions defended;
  defended.enabled = true;

  struct DemoCase {
    const char* name;
    ft::FaultSpec spec;
    chaos::ControlPlaneOptions ablated;
    chaos::ViolationCode expected;
  };
  std::vector<DemoCase> cases;

  {  // 1. Permanent supervisor hang; only the watchdog can clear it.
    DemoCase c;
    c.name = "supervisor-hang (permanent)";
    c.spec.kind = ft::FaultKind::kSupervisorHang;
    c.spec.at = rtc::from_ms(600.0);
    c.spec.duration = 0;  // nothing in software ever clears it
    c.spec.tile = 3;
    c.ablated = defended;
    c.ablated.watchdog = false;
    c.expected = chaos::ViolationCode::kSilentSupervisor;
    cases.push_back(c);
  }
  {  // 2. Wedged flight recorder; only the scrubber resyncs the ring.
    DemoCase c;
    c.name = "trace-sink-stuck (600 ms)";
    c.spec.kind = ft::FaultKind::kTraceSinkStuck;
    c.spec.at = rtc::from_ms(500.0);
    c.spec.duration = rtc::from_ms(600.0);
    c.spec.tile = 0;
    c.ablated = defended;
    c.ablated.scrubber = false;
    c.expected = chaos::ViolationCode::kSpineInconsistent;
    cases.push_back(c);
  }
  {  // 3. Repeated TMR flips pinned to the selector S1 capacity word (a
     // quiescent word: never rewritten, so without the scrubber the
     // corruption accumulates until the vote collapses to the corrupt copy
     // and the stall rule convicts an innocent replica). The spec seed is
     // chosen empirically so the accumulated copy-0 XOR undershoots the live
     // space watermark within the fault window.
    DemoCase c;
    c.name = "counter-corruption (S1 capacity)";
    c.spec.kind = ft::FaultKind::kCounterCorruption;
    c.spec.at = rtc::from_ms(500.0);
    c.spec.duration = rtc::from_ms(1200.0);
    c.spec.burst_on_mean = rtc::from_ms(20.0);
    c.spec.burst_off_mean = 3;  // pin to global scrub word 2 (selector S1 capacity)
    c.spec.seed = 4;
    c.ablated = defended;
    c.ablated.scrubber = false;
    c.expected = chaos::ViolationCode::kUnjustifiedConviction;
    cases.push_back(c);
  }

  util::Table table("Control-plane ablation: defenses on vs. one defense off");
  table.set_header({"Storm", "Defenses on", "Ablated defense", "Ablated verdict"});
  bool ok = true;
  for (const DemoCase& c : cases) {
    const std::vector<chaos::Violation> with_defense = demo_run(c.spec, defended);
    const std::vector<chaos::Violation> without = demo_run(c.spec, c.ablated);
    const bool clean_on = with_defense.empty();
    const bool failed_as_designed =
        std::any_of(without.begin(), without.end(),
                    [&](const chaos::Violation& v) { return v.code == c.expected; });
    ok = ok && clean_on && failed_as_designed;
    std::string verdict;
    for (const chaos::Violation& v : without) {
      if (!verdict.empty()) verdict += ", ";
      verdict += chaos::to_string(v.code);
    }
    if (verdict.empty()) verdict = "(clean)";
    table.add_row({c.name, clean_on ? "PASS" : "VIOLATED",
                   !c.ablated.watchdog ? "watchdog" : "scrubber", verdict});
    if (!clean_on) {
      for (const chaos::Violation& v : with_defense) {
        std::cout << "  [defended run violated] " << c.name << ": "
                  << chaos::to_string(v.code) << ": " << v.detail << "\n";
      }
    }
  }
  std::cout << table << "\n";
  std::cout << (ok ? "ablation study behaved as designed\n"
                   : "ablation study FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sccft::bench

int main(int argc, char** argv) {
  sccft::util::CliParser cli("chaos_soak",
                             "Randomized multi-fault storms under invariant "
                             "oracles, with ddmin shrinking");
  sccft::util::add_jobs_flag(cli);
  cli.add_int_flag("runs", 200, "number of storms to run", /*min=*/1);
  cli.add_double_flag("minutes", 0,
                      "wall-clock budget (0 = unlimited; see header)", /*min=*/0);
  cli.add_int_flag("seed0", 1, "seed of the first run (run i uses seed0 + i)",
                   /*min=*/0);
  cli.add_flag("plant-bug", "none",
               "test-only defect: none | drop-after-second-restart | "
               "corrupt-after-restart");
  cli.add_flag("shrink", "true", "ddmin-shrink the first failure");
  cli.add_flag("control-plane", "false",
               "extend storms with control-plane faults and arm the "
               "watchdog + scrubber defenses");
  cli.add_flag("disable-watchdog", "false",
               "ablation: keep --control-plane but leave the watchdog unarmed");
  cli.add_flag("disable-scrubber", "false",
               "ablation: keep --control-plane but stop the scrubber");
  cli.add_flag("control-demo", "false",
               "run the three planted control-plane ablation storms and exit");
  cli.add_flag("reconfigure", "false",
               "open periodic live-resize windows (adapt/) in every run and "
               "add the fault-inside-window adversarial template");
  cli.add_flag("csv", "/tmp/sccft_chaos_soak.csv", "output CSV path");
  cli.add_flag("artifact", "/tmp/sccft_chaos_artifact.txt",
               "failure artifact output path");
  cli.add_flag("replay", "", "replay a failure artifact instead of soaking");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }
  if (!cli.get("replay").empty()) {
    return sccft::bench::replay(cli.get("replay"));
  }
  if (cli.get_bool("control-demo")) {
    return sccft::bench::control_demo();
  }
  sccft::chaos::ControlPlaneOptions cp;
  cp.enabled = cli.get_bool("control-plane");
  cp.watchdog = !cli.get_bool("disable-watchdog");
  cp.scrubber = !cli.get_bool("disable-scrubber");
  sccft::chaos::ReconfigOptions rc;
  rc.enabled = cli.get_bool("reconfigure");
  sccft::chaos::PlantedBug planted = sccft::chaos::PlantedBug::kNone;
  try {
    planted = sccft::chaos::planted_bug_from_text(cli.get("plant-bug"));
  } catch (const sccft::util::ContractViolation&) {
    std::cerr << "chaos_soak: unknown --plant-bug tag '" << cli.get("plant-bug")
              << "'\n" << cli.usage();
    return 2;
  }
  return sccft::bench::soak(static_cast<int>(cli.get_int("runs")),
                            sccft::util::get_jobs(cli), cli.get_double("minutes"),
                            static_cast<std::uint64_t>(cli.get_int("seed0")),
                            planted, cp, rc, cli.get_bool("shrink"),
                            cli.get("csv"), cli.get("artifact"));
}
