// Regenerates the paper's Figure 2: the MJPEG decoder and ADPCM application
// process networks (plus the H.264 encoder used in the text), rendered as
// ASCII graphs with token sizes.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "apps/common/experiment.hpp"

int main() {
  using namespace sccft;

  std::cout << "Figure 2 (top): the MJPEG decoder\n";
  apps::ExperimentRunner mjpeg(apps::mjpeg::make_application());
  std::cout << mjpeg.render_topology(true) << "\n";

  std::cout << "Figure 2 (bottom): the ADPCM application (encoder + decoder)\n";
  apps::ExperimentRunner adpcm(apps::adpcm::make_application());
  std::cout << adpcm.render_topology(true) << "\n";

  std::cout << "(Also used in the paper's text): the H.264 encoder\n";
  apps::ExperimentRunner h264(apps::h264::make_application());
  std::cout << h264.render_topology(true) << "\n";

  std::cout << "Replica-internal structure per application:\n"
            << "  mjpeg: splitstream -> {decode_a, decode_b} -> mergeframe "
            << "(4 processes per replica)\n"
            << "  adpcm: encoder -> decoder (2 processes per replica)\n"
            << "  h264:  intra encoder (1 process per replica)\n";
  return 0;
}
